"""Bench: regenerate Figure F — hop-distribution surface, case 1, greedy.

Paper targets (§IV.a): the ridge sits at ~5 hops independent of the failure
level; ~50% of requests resolve in <= 4 hops for G.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_f``.
"""

from conftest import scenario_bench

test_figure_f = scenario_bench("figure_f")
