"""Bench: regenerate Figure F — hop-distribution surface, case 1, greedy.

Paper targets (§IV.a): the ridge sits at ~5 hops independent of the failure
level; ~50% of requests resolve in <= 4 hops for G.
"""

from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_fg
from repro.viz.ascii import surface_table


def test_figure_f(benchmark):
    surfaces = benchmark.pedantic(
        lambda: figure_fg.run(n=BENCH_N, seed=BENCH_SEED,
                              lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    surf = surfaces["F"]
    print()
    print(surface_table(surf.failed_percent, surf.percent_rows,
                        title=f"Figure F — case 1, algorithm G, n={BENCH_N}"))
    ridge = surf.ridge_hops()
    early = ridge[: len(ridge) // 2]
    assert max(early) - min(early) <= 4, "ridge must stay near-constant"
    assert 2 <= ridge[0] <= 10
    peak_hops, peak_pct = surf.peak()
    assert peak_pct >= 15.0
