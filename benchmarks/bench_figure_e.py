"""Bench: regenerate Figure E — max/min hops of failed lookups (case 1).

Paper target (§IV.a): the max failed-hop count jumps once the network
splits into isolated sub-networks; the minimum stays near zero.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_e``.
"""

from conftest import scenario_bench

test_figure_e = scenario_bench("figure_e")
