"""Bench: regenerate Figure E — max/min hops of failed lookups (case 1).

Paper target (§IV.a): the max failed-hop count jumps once the network
splits into isolated sub-networks (~35% dead in the authors' run): doomed
requests wander far before the TTL/dead-end backstop, while the minimum
stays near zero throughout.
"""

import numpy as np
from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_e


def test_figure_e(benchmark):
    series = benchmark.pedantic(
        lambda: figure_e.run(n=BENCH_N, seed=BENCH_SEED,
                             lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    print()
    print(figure_e.render(n=BENCH_N, seed=BENCH_SEED,
                          lookups_per_step=BENCH_LOOKUPS))
    smax, smin = series["max"], series["min"]
    assert smax.max_y() <= 256  # TTL backstop
    assert all(a >= b for a, b in zip(smax.ys(), smin.ys()))
    # The max grows well beyond the steady-state hop count somewhere in
    # the sweep — the wandering-request signature.
    assert smax.max_y() >= 10.0
