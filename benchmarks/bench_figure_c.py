"""Bench: regenerate Figure C — failed lookups vs failed nodes (case 2).

Paper target (§IV.b): same family shape as Figure A under variable ``nc``;
performance notably affected once ~40% of nodes are disconnected.
"""

from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_c


def test_figure_c(benchmark):
    series = benchmark.pedantic(
        lambda: figure_c.run(n=BENCH_N, seed=BENCH_SEED,
                             lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    print()
    print(figure_c.render(n=BENCH_N, seed=BENCH_SEED,
                          lookups_per_step=BENCH_LOOKUPS))
    g = series["G"]
    assert g.interp(30.0) <= 25.0
    assert g.interp(80.0) >= g.interp(20.0)
