"""Bench: regenerate Figure C — failed lookups vs failed nodes (case 2).

Paper target (§IV.b): same family shape as Figure A under variable ``nc``;
performance notably affected once ~40% of nodes are disconnected.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_c``.
"""

from conftest import scenario_bench

test_figure_c = scenario_bench("figure_c")
