"""Bench: regenerate Figure A — % failed lookups vs % failed nodes (case 1).

Paper targets (§IV.a): ~10% failed lookups at 30% dead, 25-30% at 50%;
G / NG / NGSA within a few % of each other.
"""

from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_a


def test_figure_a(benchmark):
    series = benchmark.pedantic(
        lambda: figure_a.run(n=BENCH_N, seed=BENCH_SEED,
                             lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    print()
    print(figure_a.render(n=BENCH_N, seed=BENCH_SEED,
                          lookups_per_step=BENCH_LOOKUPS))
    # Shape assertions: robust at 30% dead, degrading by 80%.
    g = series["G"]
    assert g.interp(30.0) <= 25.0, "too fragile at 30% dead"
    assert g.interp(80.0) >= g.interp(20.0), "failure curve must grow"
    # The three algorithms stay in one family band.
    at30 = [series[a].interp(30.0) for a in ("G", "NG", "NGSA")]
    assert max(at30) - min(at30) <= 15.0
