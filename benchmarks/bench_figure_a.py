"""Bench: regenerate Figure A — % failed lookups vs % failed nodes (case 1).

Paper targets (§IV.a): ~10% failed lookups at 30% dead, 25-30% at 50%;
G / NG / NGSA within a few % of each other.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_a``.
"""

from conftest import scenario_bench

test_figure_a = scenario_bench("figure_a")
