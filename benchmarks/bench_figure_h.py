"""Bench: regenerate Figure H — hop-distribution surface, case 2, greedy.

Paper targets (§IV.b): with variable ``nc`` the distribution is steeper —
the flattened hierarchy concentrates path lengths.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_h``.
"""

from conftest import scenario_bench

test_figure_h = scenario_bench("figure_h")
