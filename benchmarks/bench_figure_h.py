"""Bench: regenerate Figure H — hop-distribution surface, case 2, greedy.

Paper targets (§IV.b): with variable ``nc`` the distribution is steeper,
peaking around 5 hops with ~60% of requests — the flattened hierarchy
concentrates path lengths.
"""

from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_fg, figure_hi
from repro.viz.ascii import surface_table


def test_figure_h(benchmark):
    surfaces = benchmark.pedantic(
        lambda: figure_hi.run(n=BENCH_N, seed=BENCH_SEED,
                              lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    surf = surfaces["H"]
    print()
    print(surface_table(surf.failed_percent, surf.percent_rows,
                        title=f"Figure H — case 2 (variable nc), algorithm G, n={BENCH_N}"))
    ridge = surf.ridge_hops()
    assert 1 <= ridge[0] <= 8
    # Steeper than case 1: the peak percentage is at least as high.
    case1 = figure_fg.run(n=BENCH_N, seed=BENCH_SEED,
                          lookups_per_step=BENCH_LOOKUPS)["F"]
    assert surf.peak()[1] >= case1.peak()[1] - 8.0
