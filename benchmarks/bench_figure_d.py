"""Bench: regenerate Figure D — average hops, fixed vs variable ``nc``.

Paper targets (§IV.b): the variable-nc hierarchy is flatter, so it needs no
more hops at low failure rates; its hop count *depends* on the failure rate.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_d``.
"""

from conftest import scenario_bench

test_figure_d = scenario_bench("figure_d")
