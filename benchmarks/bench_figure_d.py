"""Bench: regenerate Figure D — average hops, fixed vs variable ``nc``.

Paper targets (§IV.b): the variable-nc hierarchy is flatter, so it needs no
more hops at low failure rates; its hop count *depends* on the failure rate,
with the divergence becoming important beyond ~30% dead nodes.
"""

import numpy as np
from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_d


def test_figure_d(benchmark):
    series = benchmark.pedantic(
        lambda: figure_d.run(n=BENCH_N, seed=BENCH_SEED,
                             lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    print()
    print(figure_d.render(n=BENCH_N, seed=BENCH_SEED,
                          lookups_per_step=BENCH_LOOKUPS))
    fixed, variable = series["fixed nc=4"], series["variable nc"]
    # Flatter hierarchy -> no more hops at the start of the sweep.
    assert variable.interp(10.0) <= fixed.interp(10.0) + 1.0
    # Variable-nc hop count moves with the failure rate more than fixed
    # (paper: "the average number of hops depends [on] the number of nodes
    # that have been removed").
    var_spread = float(np.ptp(variable.ys()[: len(variable) * 3 // 4]))
    assert var_spread >= 0.5
