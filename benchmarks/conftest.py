"""Shared plumbing for the pytest-benchmark entry points.

Every ``bench_*.py`` here is a one-line binding of a registered
``repro.bench`` scenario to pytest-benchmark — the measurement logic,
parameter grids (full and ``--smoke``), metric schemas and the invariant
checks the old bench files asserted all live in
``src/repro/bench/scenarios/``.  Running a bench file via pytest executes
the identical code path as ``python -m repro.bench run <name>``, prints
the regenerated figure/table (so the bench log still doubles as the
results record), and writes the same ``benchmarks/out/bench_<name>.json``
``BenchResult`` envelope the CLI emits — pytest runs and CLI runs feed
one perf trajectory.

The two underlying figure sweeps (case 1 / case 2) stay memoised per
process (:mod:`repro.experiments.cache`): the first figure bench touching
a case pays for its sweep, the rest measure only extraction + rendering.
"""

import os

from repro.bench import testing

#: Where every bench run (pytest or CLI) drops its BenchResult envelope.
OUT_DIR = os.path.join(os.path.dirname(__file__), "out")


def scenario_bench(name: str):
    """Bind registered scenario *name* to a pytest-benchmark test."""
    return testing.pytest_scenario(name, out_dir=OUT_DIR)
