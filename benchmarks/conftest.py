"""Shared benchmark configuration.

Every figure bench regenerates its figure at the sizes below.  The two
underlying sweeps (case 1 / case 2) are memoised per process (see
:mod:`repro.experiments.cache`): the first bench touching a case pays for
its sweep; the rest measure their own extraction + rendering.  Benches
print the regenerated figure so the bench log doubles as the results
record (EXPERIMENTS.md quotes it).

``BENCH_N = 1024`` reaches the paper's case-1 height h = 6 while keeping
the whole bench suite under a couple of minutes.
"""

BENCH_N = 1024
BENCH_SEED = 42
BENCH_LOOKUPS = 200
