"""Ablation bench: ID assignment strategy (random / hash / balanced).

§III offers random IDs, hashes of IP/port, and "a preliminary search for an
ID range … allowing the system to maintain a balanced tree" (§VI asks for
the evaluation).  Measured: tree height, cell-size spread, hop count.
"""

from conftest import BENCH_SEED

from repro.experiments.ablations import id_assignment
from repro.viz.ascii import table


def test_ablation_id_assignment(benchmark):
    out = benchmark.pedantic(
        lambda: id_assignment(n=512, seed=BENCH_SEED, lookups=200),
        rounds=1, iterations=1,
    )
    print()
    print(table(
        ["strategy", "height", "avg children", "cell-size std", "avg hops", "success"],
        [[k, v["height"], v["avg_children"], v["cell_size_std"],
          v["avg_hops"], v["success_rate"]] for k, v in out.items()],
        title="ID assignment ablation (n=512, case 1)",
    ))
    # Balanced IDs give the most even tessellation.
    assert out["balanced"]["cell_size_std"] <= out["random"]["cell_size_std"] + 0.25
    # Hash ~ random statistically.
    assert abs(out["hash"]["height"] - out["random"]["height"]) <= 1
    for row in out.values():
        assert row["success_rate"] >= 0.95
