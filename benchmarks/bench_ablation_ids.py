"""Ablation bench: ID assignment strategy (random / hash / balanced).

§III offers random IDs, hashes of IP/port, and a preliminary balanced
search (§VI asks for the evaluation).

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run ablation_ids``.
"""

from conftest import scenario_bench

test_ablation_ids = scenario_bench("ablation_ids")
