"""pytest-benchmark binding for the `scale_jobs` scenario (see
src/repro/bench/scenarios/scale.py and docs/performance.md)."""

from conftest import scenario_bench

test_scale_jobs = scenario_bench("scale_jobs")
