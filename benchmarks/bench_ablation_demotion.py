"""Ablation bench: demotion policy — strict vs §VI's keep-upper variant,
measured as upper-layer survival through a child-starvation event.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run ablation_demotion``.
"""

from conftest import scenario_bench

test_ablation_demotion = scenario_bench("ablation_demotion")
