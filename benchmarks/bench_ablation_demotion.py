"""Ablation bench: demotion policy — strict vs §VI's keep-upper variant.

The paper's future work proposes that "if the node is in level i > 1, it
maintains its current status even if it doesn't have any children", keeping
stable, powerful nodes in the upper layers.  Measured: how many upper-layer
nodes survive a child-starvation event under each policy.
"""

from conftest import BENCH_SEED

from repro.experiments.ablations import demotion_policy
from repro.viz.ascii import table


def test_ablation_demotion_policy(benchmark):
    out = benchmark.pedantic(
        lambda: demotion_policy(n=256, seed=BENCH_SEED),
        rounds=1, iterations=1,
    )
    print()
    print(table(
        ["policy", "upper nodes before", "after starvation", "victims"],
        [[k, v["upper_nodes_before"], v["upper_nodes_after"], v["victims"]]
         for k, v in out.items()],
        title="Demotion policy ablation (protocol mode, n=256)",
    ))
    # The keep-upper variant retains at least as many upper-layer nodes.
    assert (out["keep-upper"]["upper_nodes_after"]
            >= out["strict"]["upper_nodes_after"])
