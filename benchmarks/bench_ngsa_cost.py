"""Bench: §IV.a's NGSA bandwidth verdict.

Paper claim: NGSA does not perform much better than NG or G, and the gain
"compared to its cost in terms of bandwidth makes it less attractive".
Measured: success, hops, messages and *bytes* per lookup at 30% dead nodes
(NGSA's overhead rides inside the request payload, not in extra packets).
"""

from conftest import BENCH_N, BENCH_SEED

from repro.experiments import ngsa_cost


def test_ngsa_cost_benefit(benchmark):
    out = benchmark.pedantic(
        lambda: ngsa_cost.run(n=BENCH_N, seed=BENCH_SEED, lookups=300,
                              dead_fraction=0.30),
        rounds=1, iterations=1,
    )
    print()
    print(ngsa_cost.render(n=BENCH_N, seed=BENCH_SEED, lookups=300,
                           dead_fraction=0.30))
    g, ng, ngsa = out["G"], out["NG"], out["NGSA"]
    # NGSA's success gain over NG is marginal...
    assert ngsa.success_rate <= ng.success_rate + 0.05
    # ...while each of its request bytes costs more than NG's.
    ngsa_byte_per_msg = ngsa.bytes_per_lookup / max(ngsa.messages_per_lookup, 1e-9)
    ng_byte_per_msg = ng.bytes_per_lookup / max(ng.messages_per_lookup, 1e-9)
    assert ngsa_byte_per_msg > ng_byte_per_msg
    # All three resolve the large majority at 30% dead (Fig. A regime).
    for c in out.values():
        assert c.success_rate >= 0.7
