"""Bench: §IV.a's NGSA bandwidth verdict — success, hops, messages and
*bytes* per lookup at 30% dead nodes.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run ngsa_cost``.
"""

from conftest import scenario_bench

test_ngsa_cost = scenario_bench("ngsa_cost")
