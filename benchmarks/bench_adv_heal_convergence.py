"""Chaos bench: scheduled partition with exactly-once heal hooks and
anti-entropy reconvergence.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios.adversarial`; run it standalone with
``python -m repro.bench run adv_heal_convergence``.
"""

from conftest import scenario_bench

test_adv_heal_convergence = scenario_bench("adv_heal_convergence")
