"""Chaos bench: whole-rack correlated failures vs grid job completion.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios.adversarial`; run it standalone with
``python -m repro.bench run adv_rack_failure_jobs``.
"""

from conftest import scenario_bench

test_adv_rack_failure_jobs = scenario_bench("adv_rack_failure_jobs")
