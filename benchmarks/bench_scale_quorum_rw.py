"""pytest-benchmark binding for the `scale_quorum_rw` scenario (see
src/repro/bench/scenarios/scale.py and docs/performance.md)."""

from conftest import scenario_bench

test_scale_quorum_rw = scenario_bench("scale_quorum_rw")
