"""Bench: regenerate Figure B — average hops vs % failed nodes (case 1).

Paper target (§IV.a): the average hop count is roughly independent of the
failure rate (~5 hops) until the network fragments around 70%.
"""

import numpy as np
from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_b


def test_figure_b(benchmark):
    series = benchmark.pedantic(
        lambda: figure_b.run(n=BENCH_N, seed=BENCH_SEED,
                             lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    print()
    print(figure_b.render(n=BENCH_N, seed=BENCH_SEED,
                          lookups_per_step=BENCH_LOOKUPS))
    g = series["G"]
    # Log-scale hop count at steady state...
    assert 2.0 <= g.ys()[0] <= 12.0
    # ...and flat through the first half of the sweep (paper: "independent
    # of the rate of failed nodes").
    first_half = g.ys()[: len(g) // 2]
    assert float(np.max(first_half) - np.min(first_half)) <= 4.0
