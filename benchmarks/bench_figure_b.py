"""Bench: regenerate Figure B — average hops vs % failed nodes (case 1).

Paper target (§IV.a): the average hop count is roughly independent of the
failure rate (~5 hops) until the network fragments around 70%.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_b``.
"""

from conftest import scenario_bench

test_figure_b = scenario_bench("figure_b")
