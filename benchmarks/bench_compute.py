"""Grid-compute benchmarks: scheduling under 30% burst churn, with the
checkpointing-vs-restart wasted-work comparison.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run compute``.
"""

from conftest import scenario_bench

test_compute = scenario_bench("compute")
