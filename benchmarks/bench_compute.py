"""Grid-compute benchmarks: scheduling under burst churn, checkpointing on
vs off.

The subsystem's acceptance scenario: a mixed job stream (Poisson arrivals,
heterogeneous demands, a layered DAG batch) runs while a seeded
:class:`~repro.workloads.churn.ChurnSchedule` kills 30% of the population
in bursts.  Between bursts the overlay heals, anti-entropy re-replicates,
and the scheduler fails over if its host died.  The invariants:

* with checkpointed re-execution, **100%** of submitted jobs complete, and
* checkpointing reports **strictly less wasted work** than the
  restart-from-scratch ablation on the identical seed.

Besides the pytest-benchmark timings, the run writes its scheduling
metrics to ``benchmarks/out/bench_compute.json`` so CI can archive the
numbers as a workflow artifact.
"""

import json
import os

from conftest import BENCH_SEED

from repro import Cluster, ComputeConfig, QuorumConfig, TreePConfig
from repro.viz.ascii import table
from repro.workloads import ChurnSchedule, JobWorkload
from repro.workloads.churn import ChurnEvent

N_NODES = 96
N_STREAM_JOBS = 24
DAG_LAYERS = (3, 4, 2, 1)
KILL_FRACTION = 0.30
BURST = 6
BURST_SPACING = 15.0
DEADLINE = 1500.0

OUT_PATH = os.path.join(os.path.dirname(__file__), "out", "bench_compute.json")


def burst_churn_schedule(net):
    """Seeded timed leave events killing KILL_FRACTION in bursts."""
    rng = net.rng.get("bench-compute-churn")
    order = [int(v) for v in rng.permutation(net.ids)]
    total = int(round(KILL_FRACTION * len(net.ids)))
    events = [
        ChurnEvent(time=BURST_SPACING * (1 + i // BURST), kind="leave",
                   node=order[i])
        for i in range(total)
    ]
    return ChurnSchedule(events=events)


def run_scenario(checkpointing: bool, seed: int = BENCH_SEED):
    """One full run; returns (all_done, SchedulingStats, alive count)."""
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
               .build(N_NODES)
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
               .with_compute(ComputeConfig(
                   checkpoint_interval=8.0 if checkpointing else None)))
    net, grid, ae = cluster.net, cluster.compute, cluster.anti_entropy

    wl = JobWorkload(rng=net.rng.get("bench-compute-jobs"),
                     arrival_rate=1.0, work_mean=150.0, work_sigma=0.4,
                     constrained_fraction=0.25)
    specs = wl.jobs(N_STREAM_JOBS) + wl.dag_batch(DAG_LAYERS, work=60.0)
    grid.schedule_submissions(specs)

    # Replay the churn schedule burst by burst, healing in between —
    # exactly the storage bench's driver shape, plus scheduler failover.
    # (Aggregate refresh is owned by the directory service: the leave
    # callbacks mark it stale and the next matchmaking query resyncs.)
    pending = list(burst_churn_schedule(net))
    while pending:
        t = pending[0].time
        burst = [e for e in pending if e.time == t]
        pending = pending[len(burst):]
        if net.sim.now < t:
            net.sim.run(until=t)
        victims = [e.node for e in burst if e.kind == "leave"]
        cluster.fail_nodes(victims, heal=True)
        ae.converge()
        grid.ensure_scheduler()

    done = grid.run_until_done(timeout=DEADLINE)
    stats = grid.stats()
    alive = len(net.alive_ids())
    cluster.shutdown()
    return done, stats, alive


def test_compute_under_30pct_burst_churn(benchmark):
    """Acceptance: 100% completion with checkpointing; strictly less wasted
    work than the restart-from-scratch ablation."""
    results = {}

    def run_both():
        results["checkpoint"] = run_scenario(checkpointing=True)
        results["restart"] = run_scenario(checkpointing=False)
        return results

    benchmark.pedantic(run_both, rounds=1, iterations=1)

    done_ck, stats_ck, alive = results["checkpoint"]
    done_rs, stats_rs, _ = results["restart"]

    print()
    rows = [["population / alive", f"{N_NODES} / {alive}"]]
    for label, stats in (("checkpoint", stats_ck), ("restart", stats_rs)):
        for name, value in stats.summary_rows():
            rows.append([f"{label}: {name}", value])
    print(table(["metric", "value"],
                rows, title="grid jobs under 30% burst churn"))

    os.makedirs(os.path.dirname(OUT_PATH), exist_ok=True)
    with open(OUT_PATH, "w") as fh:
        json.dump({
            "scenario": {
                "nodes": N_NODES, "kill_fraction": KILL_FRACTION,
                "burst": BURST, "jobs": N_STREAM_JOBS + sum(DAG_LAYERS),
            },
            "checkpoint": stats_ck.to_dict(),
            "restart": stats_rs.to_dict(),
        }, fh, indent=2)

    # -------- acceptance criteria --------
    assert done_ck, "checkpointing run did not finish every job"
    assert stats_ck.completion_rate == 1.0
    assert stats_ck.reexecutions > 0, "churn never killed a worker: scenario too mild"
    assert stats_ck.checkpoints_written > 0
    assert stats_ck.wasted_work < stats_rs.wasted_work, (
        f"checkpointing must strictly reduce wasted work "
        f"({stats_ck.wasted_work:.1f} vs {stats_rs.wasted_work:.1f})")


def test_steady_state_throughput(benchmark):
    """No churn: dispatch → heartbeat → complete cost for a job batch."""
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=BENCH_SEED + 7)
               .build(N_NODES).with_compute())
    net, grid = cluster.net, cluster.compute
    wl = JobWorkload(rng=net.rng.get("bench-steady"), arrival_rate=2.0,
                     work_mean=15.0, constrained_fraction=0.0)

    def run_batch():
        specs = wl.jobs(20, start=net.sim.now)
        grid.schedule_submissions(specs)
        assert grid.run_until_done(timeout=400.0)
        return len(specs)

    benchmark.pedantic(run_batch, rounds=2, iterations=1)
    stats = grid.stats()
    cluster.shutdown()
    print()
    print(table(["metric", "value"], stats.summary_rows(),
                title=f"steady-state scheduling (n={N_NODES})"))
    assert stats.completion_rate == 1.0
    assert stats.goodput > 0.99  # nothing should be re-run without churn
