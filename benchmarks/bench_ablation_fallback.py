"""Ablation bench: §III.f's TTL-triggered Euclidean fallback on/off,
measured at 50% dead nodes.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run ablation_fallback``.
"""

from conftest import scenario_bench

test_ablation_fallback = scenario_bench("ablation_fallback")
