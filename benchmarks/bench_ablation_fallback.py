"""Ablation bench: §III.f's TTL-triggered Euclidean fallback on/off.

"When a node receives a request [with] a TTL greater than the height of the
hierarchy, the Euclidian distance is used instead" — finer-grained routing
for disrupted networks.  Measured at 50% dead nodes.
"""

from conftest import BENCH_SEED

from repro.experiments.ablations import euclidean_fallback
from repro.viz.ascii import table


def test_ablation_euclidean_fallback(benchmark):
    out = benchmark.pedantic(
        lambda: euclidean_fallback(n=512, seed=BENCH_SEED, lookups=200),
        rounds=1, iterations=1,
    )
    print()
    print(table(
        ["mode", "success rate", "avg hops"],
        [[k, v["success_rate"], v["avg_hops"]] for k, v in out.items()],
        title="Euclidean-fallback ablation at 50% dead (n=512, case 1)",
    ))
    # The fallback must not hurt success under disruption.
    assert (out["fallback-on"]["success_rate"]
            >= out["fallback-off"]["success_rate"] - 0.05)
