"""Bench: regenerate Figure G — hop-distribution surface, case 1, NG.

Paper targets (§IV.a): NG's surface matches G's but slightly less
front-loaded (NGSA's surface is omitted, "almost identical" to NG's).

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_g``.
"""

from conftest import scenario_bench

test_figure_g = scenario_bench("figure_g")
