"""Bench: regenerate Figure G — hop-distribution surface, case 1, NG.

Paper targets (§IV.a): NG's surface matches G's but slightly less
front-loaded — ~45% of requests within 4 hops vs ~50% for G (NGSA's surface
is omitted, "almost identical to the NG algorithm graph").
"""

from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_fg
from repro.viz.ascii import surface_table


def test_figure_g(benchmark):
    surfaces = benchmark.pedantic(
        lambda: figure_fg.run(n=BENCH_N, seed=BENCH_SEED,
                              lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    surf = surfaces["G"]
    print()
    print(surface_table(surf.failed_percent, surf.percent_rows,
                        title=f"Figure G — case 1, algorithm NG, n={BENCH_N}"))
    ridge = surf.ridge_hops()
    early = ridge[: len(ridge) // 2]
    # NG's modal hop is noisier than G's (first-improving vs argmin);
    # bound the ridge rather than requiring it constant.
    assert all(1 <= r <= 14 for r in early)
    # The paper reports G slightly more front-loaded than NG (~50% vs ~45%
    # within 4 hops).  In this reproduction the ordering flips once
    # failures start (G's escalation detours lengthen its paths while NG's
    # first-improving rule stays short) — see EXPERIMENTS.md.  Assert the
    # family-level claim instead: both distributions put substantial early
    # mass within 8 hops.
    g_cum8 = sum(surfaces["F"].percent_rows[0][:9])
    ng_cum8 = sum(surfaces["G"].percent_rows[0][:9])
    assert g_cum8 >= 50.0 and ng_cum8 >= 50.0
