"""Core micro-benchmarks: build throughput, lookup latency, table sizes.

Not a paper figure — engineering numbers a downstream user wants: how long
does it take to assemble a steady-state overlay, how fast are simulated
lookups, and do routing-table sizes obey §III.e.
"""

import numpy as np
from conftest import BENCH_N, BENCH_SEED

from repro import TreePConfig, TreePNetwork
from repro.viz.ascii import table


def test_build_steady_state(benchmark):
    def build():
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=BENCH_SEED)
        net.build(BENCH_N)
        return net

    net = benchmark(build)
    assert len(net.nodes) == BENCH_N
    assert net.height >= 4


def test_lookup_throughput(benchmark):
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=BENCH_SEED)
    net.build(BENCH_N)
    rng = np.random.default_rng(0)
    pairs = [tuple(int(x) for x in rng.choice(net.ids, 2, replace=False))
             for _ in range(100)]

    results = benchmark.pedantic(
        lambda: net.run_lookup_batch(pairs, "G"), rounds=3, iterations=1
    )
    # Greedy is not guaranteed loop-free/complete even on a healthy
    # topology (paper Fig. 4); allow the occasional dead end.
    assert sum(r.found for r in results) >= 98


def test_routing_table_bounds(benchmark):
    """§III.e: leaf nodes keep tiny tables; every table is far from O(n)."""
    def build_and_measure():
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=BENCH_SEED)
        net.build(BENCH_N)
        sizes = net.routing_table_sizes()
        conns = net.active_connection_counts()
        leaf_sizes = [sizes[i] for i, nd in net.nodes.items() if nd.max_level == 0]
        return sizes, conns, leaf_sizes

    sizes, conns, leaf_sizes = benchmark.pedantic(build_and_measure,
                                                  rounds=1, iterations=1)
    print()
    print(table(
        ["metric", "mean", "max"],
        [
            ["routing table entries (all)", float(np.mean(list(sizes.values()))),
             max(sizes.values())],
            ["routing table entries (leaves)", float(np.mean(leaf_sizes)),
             max(leaf_sizes)],
            ["active connections", float(np.mean(list(conns.values()))),
             max(conns.values())],
        ],
        title=f"§III.e table-size check (n={BENCH_N})",
    ))
    assert np.mean(leaf_sizes) < 15
    assert max(sizes.values()) < BENCH_N // 8
