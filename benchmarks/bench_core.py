"""Core micro-benchmarks: build throughput, lookup latency, table sizes.

Not a paper figure — engineering numbers a downstream user wants.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run core``.
"""

from conftest import scenario_bench

test_core = scenario_bench("core")
