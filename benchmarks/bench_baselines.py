"""Bench: TreeP vs Chord vs flooding — the §I/§II positioning, measured.

Rows printed per overlay: steady-state success rate, average hops, messages
per lookup, and success at 30% dead nodes.  Expectations: flooding pays
orders of magnitude more messages; TreeP and Chord both route in O(log n);
TreeP stays functional under failures with only lateral healing.
"""

import numpy as np
from conftest import BENCH_N, BENCH_SEED

from repro import TreePConfig, TreePNetwork
from repro.baselines import ChordNetwork, FloodNetwork
from repro.core.repair import PAPER_POLICY, apply_failure_step
from repro.viz.ascii import table

LOOKUPS = 200


def _pairs(rng, population, count):
    pop = list(population)
    out = []
    while len(out) < count:
        o, t = (int(x) for x in rng.choice(pop, 2, replace=False))
        out.append((o, t))
    return out


def run_comparison():
    rng = np.random.default_rng(BENCH_SEED)
    rows = []

    treep = TreePNetwork(config=TreePConfig.paper_case1(), seed=BENCH_SEED)
    treep.build(BENCH_N)
    m0 = treep.network.stats.sent
    healthy = treep.run_lookup_batch(_pairs(rng, treep.ids, LOOKUPS), "G")
    msgs = (treep.network.stats.sent - m0) / LOOKUPS
    victims = [int(v) for v in rng.choice(treep.ids, int(0.3 * BENCH_N), replace=False)]
    treep.fail_nodes(victims)
    apply_failure_step(treep, victims, PAPER_POLICY)
    failed = treep.run_lookup_batch(_pairs(rng, treep.alive_ids(), LOOKUPS), "G")
    rows.append(("TreeP (G)", healthy, failed, msgs))

    chord = ChordNetwork(seed=BENCH_SEED)
    chord.build(BENCH_N)
    m0 = chord.network.stats.sent
    healthy = chord.run_lookup_batch(_pairs(rng, chord.ids, LOOKUPS))
    msgs = (chord.network.stats.sent - m0) / LOOKUPS
    victims = [int(v) for v in rng.choice(chord.ids, int(0.3 * BENCH_N), replace=False)]
    chord.fail_nodes(victims)
    chord.repair_step()
    failed = chord.run_lookup_batch(_pairs(rng, chord.alive_ids(), LOOKUPS))
    rows.append(("Chord", healthy, failed, msgs))

    flood = FloodNetwork(seed=BENCH_SEED, degree=4, default_ttl=7)
    flood.build(BENCH_N)
    m0 = flood.network.stats.sent
    healthy = flood.run_lookup_batch(_pairs(rng, flood.ids, 50))
    msgs = (flood.network.stats.sent - m0) / 50
    victims = [int(v) for v in rng.choice(flood.ids, int(0.3 * BENCH_N), replace=False)]
    flood.fail_nodes(victims)
    flood.repair_step()
    failed = flood.run_lookup_batch(_pairs(rng, flood.alive_ids(), 50))
    rows.append(("Flooding", healthy, failed, msgs))

    out = {}
    for name, healthy, failed_batch, msgs in rows:
        ok = [r for r in healthy if r.found]
        okf = [r for r in failed_batch if r.found]
        out[name] = dict(
            success=100 * len(ok) / len(healthy),
            hops=float(np.mean([r.hops for r in ok])) if ok else 0.0,
            msgs_per_lookup=float(msgs),
            success_30pct_dead=100 * len(okf) / len(failed_batch),
        )
    return out


def test_baseline_comparison(benchmark):
    out = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    print()
    print(table(
        ["overlay", "success%", "hops", "msgs/lookup", "success%@30%dead"],
        [[k, v["success"], v["hops"], v["msgs_per_lookup"],
          v["success_30pct_dead"]] for k, v in out.items()],
        title=f"TreeP vs baselines (n={BENCH_N})",
    ))
    assert out["TreeP (G)"]["success"] >= 99.0
    assert out["Chord"]["success"] >= 99.0
    # The scalability contrast the paper leads with:
    assert out["Flooding"]["msgs_per_lookup"] > 20 * out["TreeP (G)"]["msgs_per_lookup"]
    # Log-n routing for the structured overlays.
    assert out["TreeP (G)"]["hops"] <= 2 * np.log2(BENCH_N)
    assert out["Chord"]["hops"] <= 2 * np.log2(BENCH_N)
    # Failure resilience within the paper's band.
    assert out["TreeP (G)"]["success_30pct_dead"] >= 70.0
