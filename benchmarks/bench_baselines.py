"""Bench: TreeP vs Chord vs flooding — the §I/§II positioning, measured
on the same simulated substrate.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run baselines``.
"""

from conftest import scenario_bench

test_baselines = scenario_bench("baselines")
