"""Chaos bench: Gilbert-Elliott burst loss on every link vs lookups.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios.adversarial`; run it standalone with
``python -m repro.bench run adv_loss_burst_lookup``.
"""

from conftest import scenario_bench

test_adv_loss_burst_lookup = scenario_bench("adv_loss_burst_lookup")
