"""Chaos bench: straggler injection vs the lookup latency tail (p999,
SLO-evaluated against an inline spec).

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios.adversarial`; run it standalone with
``python -m repro.bench run adv_straggler_tail``.
"""

from conftest import scenario_bench

test_adv_straggler_tail = scenario_bench("adv_straggler_tail")
