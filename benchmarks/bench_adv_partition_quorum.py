"""Chaos bench: asymmetric subtree partition + heal, quorum durability.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios.adversarial`; run it standalone with
``python -m repro.bench run adv_partition_quorum``.
"""

from conftest import scenario_bench

test_adv_partition_quorum = scenario_bench("adv_partition_quorum")
