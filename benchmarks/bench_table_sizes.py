"""Bench: §III.e routing-table size analysis, measured vs the paper's
formulas.

Paper targets: a level-0-only node (the vast majority) holds ~``l0 + h``
entries and ``l0 + 1`` active connections; level-1 nodes maintain
``l0 + ca + da``; upper nodes two more — "reasonably small", demonstrating
the efficient use of heterogeneity.
"""

from conftest import BENCH_N, BENCH_SEED

from repro.experiments import table_sizes


def test_table_sizes_case1(benchmark):
    rows = benchmark.pedantic(
        lambda: table_sizes.run(n=BENCH_N, seed=BENCH_SEED, case="case1"),
        rounds=1, iterations=1,
    )
    print()
    print(table_sizes.render(n=BENCH_N, seed=BENCH_SEED, case="case1"))
    classes = {r.node_class: r for r in rows}
    leaf = classes["level-0 only"]
    # The majority of the network is leaf-only with tiny state.
    assert leaf.count > BENCH_N * 0.5
    assert leaf.connections_mean <= leaf.connections_bound + 1.0
    for r in rows:
        assert r.within_bounds(slack=2.0), f"{r.node_class} exceeds 2x bound"


def test_table_sizes_case2(benchmark):
    rows = benchmark.pedantic(
        lambda: table_sizes.run(n=BENCH_N, seed=BENCH_SEED, case="case2"),
        rounds=1, iterations=1,
    )
    print()
    print(table_sizes.render(n=BENCH_N, seed=BENCH_SEED, case="case2"))
    for r in rows:
        assert r.within_bounds(slack=2.5), f"{r.node_class} exceeds bound"
