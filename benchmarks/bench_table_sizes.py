"""Bench: §III.e routing-table size analysis, measured vs the paper's
formulas, for both experimental cases.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run table_sizes``.
"""

from conftest import scenario_bench

test_table_sizes = scenario_bench("table_sizes")
