"""Bench: regenerate Figure I — hop-distribution surface, case 2, NG.

Paper target (§IV.b): both case-2 surfaces peak sharply near 5 hops,
NG mirroring G.

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run figure_i``.
"""

from conftest import scenario_bench

test_figure_i = scenario_bench("figure_i")
