"""Bench: regenerate Figure I — hop-distribution surface, case 2, NG.

Paper target (§IV.b): both case-2 surfaces peak sharply near 5 hops
(~60% of requests in the authors' run), NG mirroring G.
"""

from conftest import BENCH_LOOKUPS, BENCH_N, BENCH_SEED

from repro.experiments import figure_hi
from repro.viz.ascii import surface_table


def test_figure_i(benchmark):
    surfaces = benchmark.pedantic(
        lambda: figure_hi.run(n=BENCH_N, seed=BENCH_SEED,
                              lookups_per_step=BENCH_LOOKUPS),
        rounds=1, iterations=1,
    )
    surf = surfaces["I"]
    print()
    print(surface_table(surf.failed_percent, surf.percent_rows,
                        title=f"Figure I — case 2 (variable nc), algorithm NG, n={BENCH_N}"))
    ridge = surf.ridge_hops()
    assert 1 <= ridge[0] <= 8
    # NG's case-2 surface stays in the same family as G's (paper shows
    # near-identical shapes).
    g_peak = surfaces["H"].peak()
    ng_peak = surf.peak()
    assert abs(g_peak[0] - ng_peak[0]) <= 4
