"""Replicated-storage benchmarks: quorum throughput, anti-entropy cost,
and 100% durability under 30% burst churn (N=3, W=2, R=2).

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run storage``.
"""

from conftest import scenario_bench

test_storage = scenario_bench("storage")
