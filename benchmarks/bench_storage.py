"""Replicated-storage benchmarks: quorum throughput, anti-entropy cost,
durability under churn.

Engineering numbers for the storage subsystem (not a paper figure):

* quorum PUT / GET throughput through the simulated overlay,
* what one anti-entropy sweep costs (wall time + repair datagrams) after a
  mass failure,
* and the headline durability scenario the subsystem exists for: a seeded
  churn schedule kills 30% of the population in bursts; with N=3, W=2, R=2
  and anti-entropy between bursts the store must keep 100% of its keys
  quorum-readable.

Everything is wired through the 1.3.0 `Cluster` facade (build → storage →
anti-entropy); the metrics are the subsystem's acceptance record and must
stay no worse than their pre-facade values.
"""

import numpy as np
from conftest import BENCH_SEED

from repro import Cluster, QuorumConfig, TreePConfig
from repro.viz.ascii import table

STORE_N = 256  # population: storage ops drain the sim per request
N_KEYS = 120


def _loaded_cluster(seed=BENCH_SEED, n=STORE_N, quorum=None, anti_entropy=30.0):
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
               .build(n)
               .with_storage(quorum or QuorumConfig(n=3, w=2, r=2),
                             anti_entropy=anti_entropy))
    store = cluster.storage
    for i in range(N_KEYS):
        assert store.put(f"bench/{i:04d}", {"i": i}).ok
    return cluster


def _loaded_store(seed=BENCH_SEED, n=STORE_N, quorum=None):
    cluster = _loaded_cluster(seed=seed, n=n, quorum=quorum)
    return cluster.net, cluster.storage


def test_quorum_put_throughput(benchmark):
    net, store = _loaded_store()
    counter = iter(range(10**9))

    def put_batch():
        base = next(counter) * 50
        for i in range(50):
            r = store.put(f"put/{base + i:06d}", i)
            assert r.ok
        return 50

    benchmark.pedantic(put_batch, rounds=3, iterations=1)


def test_quorum_get_throughput(benchmark):
    net, store = _loaded_store()
    rng = np.random.default_rng(0)

    def get_batch():
        hits = 0
        for i in rng.integers(0, N_KEYS, size=50):
            hits += store.get(f"bench/{int(i):04d}").found
        assert hits == 50
        return hits

    benchmark.pedantic(get_batch, rounds=3, iterations=1)


def test_antientropy_sweep_cost(benchmark):
    """Cost of detect+repair after 20% of the population dies at once."""
    cluster = _loaded_cluster()
    net, store, ae = cluster.net, cluster.storage, cluster.anti_entropy
    rng = np.random.default_rng(1)
    victims = [int(v) for v in rng.choice(net.ids, STORE_N // 5, replace=False)]
    cluster.fail_nodes(victims, heal=True)
    net.network.reset_stats()

    first = {}

    def sweep_once():
        report = ae.sweep()
        net.sim.drain()
        if not first:
            first.update(under=report.under_replicated,
                         repairs=report.repairs_sent)
        return report

    benchmark.pedantic(sweep_once, rounds=3, iterations=1)
    by_type = net.network.stats.by_type
    print()
    print(table(
        ["metric", "value"],
        [
            ["keys under-replicated (first sweep)", first["under"]],
            ["repair datagrams (first sweep)", first["repairs"]],
            ["StoreReplicate sent (all sweeps)", by_type.get("StoreReplicate", 0)],
            ["min live rf after repair",
             min(store.replication_factors().values())],
        ],
        title=f"anti-entropy after 20% mass failure (n={STORE_N}, keys={N_KEYS})",
    ))
    assert min(store.replication_factors().values()) == store.quorum.n


def test_durability_under_30pct_churn(benchmark):
    """The acceptance scenario: burst churn to 30% dead, AE between bursts,
    then every key must still be quorum-readable (N=3, W=2, R=2)."""

    def run_scenario():
        cluster = _loaded_cluster(seed=BENCH_SEED + 1, anti_entropy=10.0)
        net, store, ae = cluster.net, cluster.storage, cluster.anti_entropy
        rng = net.rng.get("bench-churn")
        order = [int(v) for v in rng.permutation(net.ids)]
        total, burst = int(0.30 * STORE_N), STORE_N // 20
        killed = 0
        while killed < total:
            step = order[killed:killed + min(burst, total - killed)]
            killed += len(step)
            cluster.fail_nodes(step, heal=True)
            ae.converge()
        alive = net.alive_ids()
        results = [store.get(f"bench/{i:04d}", via=alive[i % len(alive)])
                   for i in range(N_KEYS)]
        readable = sum(r.found for r in results)
        rfs = store.replication_factors()
        return readable, min(rfs.values()), len(alive), ae

    readable, min_rf, alive, ae = benchmark.pedantic(
        run_scenario, rounds=1, iterations=1)
    print()
    print(table(
        ["metric", "value"],
        [
            ["population / alive", f"{STORE_N} / {alive}"],
            ["keys readable", f"{readable}/{N_KEYS}"],
            ["min replication factor", min_rf],
            ["anti-entropy sweeps", len(ae.reports)],
            ["keys ever lost", max(r.lost for r in ae.reports)],
        ],
        title="durability under 30% churn (N=3, W=2, R=2)",
    ))
    assert readable == N_KEYS  # 100% readable after convergence
    assert min_rf == 3
    assert ae.tracker.always_durable
