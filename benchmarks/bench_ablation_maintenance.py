"""Ablation bench: maintenance cost — keep-alive interval vs control traffic,
and which repair mechanism buys how much resilience.

§III.d claims maintenance "minimizes the data exchange between the nodes";
this bench quantifies the control-plane cost per node per second in
protocol mode, and the resilience value of each healing mechanism
(purge-only / lateral / full adoption) in converged mode.
"""

from conftest import BENCH_SEED

from repro.experiments.ablations import maintenance_interval, repair_mechanisms
from repro.viz.ascii import table


def test_ablation_maintenance_interval(benchmark):
    out = benchmark.pedantic(
        lambda: maintenance_interval(n=128, seed=BENCH_SEED, horizon=60.0),
        rounds=1, iterations=1,
    )
    print()
    print(table(
        ["keepalive interval (s)", "msgs/node/s", "bytes/node/s"],
        [[k, v["messages_per_node_per_s"], v["bytes_per_node_per_s"]]
         for k, v in sorted(out.items())],
        title="Maintenance overhead vs keep-alive interval (protocol mode, n=128)",
    ))
    costs = [out[i]["messages_per_node_per_s"] for i in sorted(out)]
    assert costs == sorted(costs, reverse=True)
    # The paper's low-overhead claim: even at 2 s keep-alives, a node sends
    # only a handful of datagrams per second.
    assert costs[0] < 10.0


def test_ablation_repair_mechanisms(benchmark):
    out = benchmark.pedantic(
        lambda: repair_mechanisms(n=512, seed=BENCH_SEED, lookups=200),
        rounds=1, iterations=1,
    )
    print()
    print(table(
        ["policy", "success rate @30% dead", "avg hops"],
        [[k, v["success_rate"], v["avg_hops"]] for k, v in out.items()],
        title="Repair-mechanism ablation at 30% dead (n=512, case 1)",
    ))
    assert (out["purge-only"]["success_rate"]
            <= out["full adoption"]["success_rate"] + 0.05)
