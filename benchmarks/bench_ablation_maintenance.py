"""Ablation bench: maintenance cost — keep-alive interval vs control
traffic, plus which repair mechanism buys how much resilience (§III.d).

Thin registration: the scenario (parameter grids, metric schema, checks)
lives in :mod:`repro.bench.scenarios`; run it standalone with
``python -m repro.bench run ablation_maintenance``.
"""

from conftest import scenario_bench

test_ablation_maintenance = scenario_bench("ablation_maintenance")
