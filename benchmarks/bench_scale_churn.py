"""pytest-benchmark binding for the `scale_churn` scenario (see
src/repro/bench/scenarios/scale.py and docs/performance.md)."""

from conftest import scenario_bench

test_scale_churn = scenario_bench("scale_churn")
