"""pytest-benchmark binding for the `scale_lookup` scenario (see
src/repro/bench/scenarios/scale.py and docs/performance.md)."""

from conftest import scenario_bench

test_scale_lookup = scenario_bench("scale_lookup")
