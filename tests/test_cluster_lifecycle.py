"""Service lifecycle under churn: the `Cluster` facade, the `Service`
protocol and the per-node registry's owned cleanup.

Covers the 1.3.0 redesign invariants:

* join/leave/revive callbacks fire exactly once per churn event for every
  attached service (30% churn schedule with revivals and protocol joins);
* a departed node's handlers are unregistered and its periodic tasks
  cancelled; a revived node gets its handlers back;
* a torn-down facade leaves no handlers behind, on existing *or* rebuilt
  nodes (the pre-1.3 leak);
* `Cluster` owns construction order and the compute → storage → overlay
  dependency chain, and shutdown detaches in reverse order.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro import (
    Cluster,
    ComputeConfig,
    JobSpec,
    QuorumConfig,
    Service,
    ServiceError,
    TreePConfig,
)
from repro.core.messages import DhtGet, DhtPut, JobSubmit, StoreGet, StorePut


def make_cluster(n=64, seed=11):
    return Cluster(config=TreePConfig.paper_case1(), seed=seed).build(n)


class ProbeService(Service):
    """Counts every lifecycle callback (the exactly-once regression)."""

    name = "probe"

    def __init__(self) -> None:
        super().__init__()
        self.setups: Counter = Counter()
        self.joins: Counter = Counter()
        self.leaves: Counter = Counter()
        self.revives: Counter = Counter()
        self.ticks = 0
        self.detached = False

    def on_attach(self, ctx) -> None:
        ctx.every(5.0, self._tick, label="probe-tick")

    def _tick(self) -> None:
        self.ticks += 1

    def setup_node(self, node) -> None:
        self.setups[node.ident] += 1

    def on_node_join(self, node) -> None:
        self.joins[node.ident] += 1

    def on_node_leave(self, ident) -> None:
        self.leaves[ident] += 1

    def on_node_revive(self, node) -> None:
        self.revives[node.ident] += 1

    def on_detach(self) -> None:
        self.detached = True


# ------------------------------------------------------------ churn counts
def test_callbacks_fire_exactly_once_per_event_under_30pct_churn():
    cluster = (make_cluster(n=96)
               .with_dht()
               .with_loadbalance()
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
               .with_compute(ComputeConfig()))
    probe = ProbeService()
    cluster.add_service(probe)

    net = cluster.net
    rng = net.rng.get("lifecycle-churn")
    order = [int(v) for v in rng.permutation(net.ids)]
    total = int(0.30 * len(net.ids))
    burst = max(1, len(net.ids) // 16)

    killed: list[int] = []
    revived: list[int] = []
    joined: list[int] = []
    next_id = max(net.ids) + 1
    while len(killed) < total:
        step = order[len(killed):len(killed) + min(burst, total - len(killed))]
        cluster.fail_nodes(step, heal=True)
        killed.extend(step)
        cluster.run_for(5.0)
        # Revive every other burst's first victim; join one brand-new peer.
        if len(revived) < len(killed) // (2 * burst) + 1:
            back = step[0]
            cluster.revive_nodes([back])
            revived.append(back)
        cluster.join_node(next_id)
        joined.append(next_id)
        next_id += 1
        cluster.run_for(5.0)

    leave_events = Counter(killed)
    revive_events = Counter(revived)
    join_events = Counter(joined)
    assert probe.leaves == leave_events, "leave callbacks must fire exactly once"
    assert probe.revives == revive_events, "revive callbacks must fire exactly once"
    assert probe.joins == join_events, "join callbacks must fire exactly once"
    # Setup ran once per pre-existing node at attach plus once per join.
    assert sum(probe.setups.values()) == 96 + len(joined)
    assert max(probe.setups.values()) == 1
    # Double-kill of an already-down node must not re-fire callbacks.
    still_down = next(i for i in killed if i not in revived)
    cluster.fail_nodes([still_down])
    assert probe.leaves[still_down] == leave_events[still_down]
    assert probe.ticks > 0  # the service-wide periodic task ran
    cluster.shutdown()


# ------------------------------------------------------- registry cleanup
def test_leave_unregisters_handlers_and_cancels_node_tasks():
    cluster = (make_cluster()
               .with_storage(QuorumConfig(n=3, w=2, r=2))
               .with_compute(ComputeConfig()))
    state = cluster.state
    victim = next(i for i in cluster.ids if i != cluster.compute.scheduler_ident)
    node = cluster.net.nodes[victim]
    assert StorePut in node.handler_types()
    assert JobSubmit in node.handler_types()
    assert state.registry_for(node).active_timers("compute") > 0  # steal probe

    cluster.fail_nodes([victim])
    assert node.handler_types() == set(), "departure must sweep all handlers"
    assert state.registry_for(node).active_timers("compute") == 0
    assert state.registry_for(node).active_timers("storage") == 0

    cluster.revive_nodes([victim])
    assert StorePut in node.handler_types(), "revival must re-install handlers"
    assert JobSubmit in node.handler_types()
    assert state.registry_for(node).active_timers("compute") > 0
    cluster.shutdown()


def test_detach_sweeps_handlers_everywhere_and_spares_other_services():
    cluster = make_cluster().with_dht().with_storage()
    store = cluster.storage
    store.close()
    assert not store.attached
    for node in cluster.net.nodes.values():
        types = node.handler_types()
        assert StorePut not in types and StoreGet not in types
        assert DhtPut in types and DhtGet in types  # dht untouched
    cluster.shutdown()
    for node in cluster.net.nodes.values():
        assert node.handler_types() == set()


def test_rebuilt_node_has_no_stale_handlers():
    """The pre-1.3 leak: a closed facade kept wiring every future node."""
    cluster = make_cluster().with_storage()
    store = cluster.storage
    store.close()
    new_id = max(cluster.ids) + 1
    cluster.join_node(new_id)
    rebuilt = cluster.net.nodes[new_id]
    assert rebuilt.handler_types() == set()
    assert new_id not in store.agents  # no longer covering new nodes


def test_same_name_service_replaces_predecessor():
    cluster = make_cluster().with_storage(QuorumConfig(n=2, w=1, r=1))
    first = cluster.storage
    hooks_before = len(cluster.net.node_hooks)
    cluster.with_storage(QuorumConfig(n=3, w=2, r=2))
    second = cluster.storage
    assert second is not first
    assert not first.attached and second.attached
    assert len(cluster.net.node_hooks) == hooks_before  # no hook leak
    assert second.put("k", 1).ok


def test_periodic_tasks_cancelled_on_shutdown():
    cluster = make_cluster().with_storage(anti_entropy=10.0).with_compute()
    ae = cluster.anti_entropy
    ae.start()
    assert ae.running
    grid = cluster.compute
    grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=5.0))
    assert grid.run_until_done(timeout=120.0)
    state = cluster.state
    cluster.shutdown()
    assert not ae.running, "shutdown must cancel the anti-entropy sweep"
    for registry in state.registries.values():
        for svc in registry.services():
            assert registry.active_timers(svc) == 0


# ------------------------------------------------- construction & ordering
def test_with_compute_owns_dependency_chain():
    cluster = make_cluster().with_compute(ComputeConfig())
    names = [s.name for s in cluster.services]
    assert names == ["storage", "discovery", "compute"]
    assert cluster.compute.store is cluster.storage
    assert cluster.compute.directory is cluster.directory
    # Detaching compute takes the dependencies it spawned with it.
    cluster.compute.close()
    assert [s.name for s in cluster.services] == []


def test_with_compute_reuses_existing_storage():
    cluster = (make_cluster()
               .with_storage(QuorumConfig(n=3, w=2, r=2))
               .with_compute())
    assert cluster.compute.store is cluster.storage
    assert cluster.storage.quorum.n == 3
    cluster.compute.close()
    # An explicitly attached storage service is NOT owned by compute.
    assert cluster.storage.attached


def test_services_require_built_overlay():
    cluster = Cluster(seed=3)
    with pytest.raises(ServiceError):
        cluster.with_storage()
    with pytest.raises(ServiceError):
        cluster.with_compute()


def test_missing_service_accessor_raises_with_hint():
    cluster = make_cluster()
    with pytest.raises(ServiceError, match="with_storage"):
        cluster.storage
    with pytest.raises(ServiceError, match="with_compute"):
        cluster.compute


def test_service_cannot_attach_to_two_networks():
    a = make_cluster(seed=5)
    b = make_cluster(seed=6)
    a.with_storage()
    with pytest.raises(ServiceError):
        b.state.attach(a.storage)


def test_cluster_context_manager_shuts_down():
    with make_cluster().with_storage(anti_entropy=5.0) as cluster:
        store, ae = cluster.storage, cluster.anti_entropy
        ae.start()
        assert store.put("k", 1).ok
    assert not ae.running
    assert not store.attached


def test_shared_state_with_legacy_constructors():
    """Old direct-wire constructors attach through the same registry, so
    the two styles compose instead of colliding."""
    from repro.storage.quorum import ReplicatedStore

    cluster = make_cluster()
    with pytest.deprecated_call():
        store = ReplicatedStore(cluster.net, QuorumConfig(n=2, w=1, r=1))
    assert cluster.storage is store
    cluster.with_compute()
    assert cluster.compute.store is store


# ------------------------------------------------------ review regressions
def test_scheduler_monitor_survives_host_fail_and_revive():
    """Regression: a fail+revive of the scheduler host (with no
    ensure_scheduler in between) must leave heartbeat-loss detection armed
    — the registry cancels the node-scoped monitor at departure, so the
    revival callback has to re-arm it."""
    cluster = make_cluster().with_compute(ComputeConfig())
    grid = cluster.compute
    host = grid.scheduler_ident
    cluster.fail_nodes([host])
    assert not grid.scheduler_core()._timer.running
    cluster.revive_nodes([host])
    assert not grid.ensure_scheduler()  # same process, table intact: no failover
    assert grid.scheduler_core()._timer.running, "monitor must be re-armed"
    # End-to-end: a worker killed mid-job is still detected and re-placed.
    grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=30.0))
    cluster.run_for(10.0)
    core = grid.scheduler_core()
    worker = core.records[1].worker
    if worker is not None and worker != host:
        cluster.fail_nodes([worker], heal=True)
    assert grid.run_until_done(timeout=600.0)
    assert grid.results[1].ok
    cluster.shutdown()


def test_failed_attach_rolls_back_spawned_dependencies():
    """Regression: with_compute dying mid-attach must not leave the
    storage/discovery services it spawned wired to the network."""
    cluster = make_cluster(n=16)
    cluster.fail_nodes(list(cluster.ids))  # no live host for the scheduler
    with pytest.raises(RuntimeError):
        cluster.with_compute()
    assert [s.name for s in cluster.services] == []
    for node in cluster.net.nodes.values():
        assert node.handler_types() == set()


def test_anti_entropy_attaches_injected_detached_store():
    """Regression: the generic add_service path with a new-style (detached)
    store must wire the store too, not sweep over zero agents."""
    from repro.storage.antientropy import AntiEntropy
    from repro.storage.quorum import ReplicatedStore

    cluster = make_cluster()
    store = ReplicatedStore(quorum=QuorumConfig(n=2, w=1, r=1))
    cluster.add_service(AntiEntropy(store, interval=5.0))
    assert store.attached and cluster.storage is store
    assert store.put("k", 1).ok
    report = cluster.anti_entropy.sweep()
    assert report.keys >= 1
    cluster.shutdown()


def test_detach_cascade_spares_shared_dependencies():
    """Regression: compute detaching must not tear down the storage service
    it spawned while anti-entropy (another attached service) depends on it."""
    from repro.storage.antientropy import AntiEntropy

    cluster = make_cluster().with_compute()  # spawns storage + discovery
    store = cluster.storage
    cluster.add_service(AntiEntropy(interval=5.0))  # requires 'storage'
    cluster.compute.close()
    assert store.attached, "shared dependency must survive its spawner"
    assert cluster.storage is store
    assert store.put("k", 1).ok
    assert cluster.anti_entropy.sweep().keys >= 1  # still sweeping live agents
    cluster.shutdown()


def test_unattached_anti_entropy_fails_loud():
    from repro.storage.antientropy import AntiEntropy
    from repro.storage.quorum import ReplicatedStore

    ae = AntiEntropy(interval=5.0)
    with pytest.raises(ServiceError, match="no attached store"):
        ae.start()
    with pytest.raises(ServiceError, match="no attached store"):
        ae.sweep()
    with pytest.raises(ServiceError, match="no attached store"):
        AntiEntropy(ReplicatedStore(), interval=5.0).sweep()


def test_legacy_anti_entropy_constructor_warns():
    from repro.storage.antientropy import AntiEntropy
    from repro.storage.quorum import ReplicatedStore

    cluster = make_cluster(n=8)
    with pytest.deprecated_call():
        store = ReplicatedStore(cluster.net)
    with pytest.deprecated_call():
        AntiEntropy(store, interval=5.0)


def test_replacement_refused_while_dependents_attached():
    """Regression: replacing the storage service while anti-entropy/compute
    still hold the attached instance would leave them driving a detached
    store (handlers gone, every repair/checkpoint silently failing)."""
    cluster = (make_cluster()
               .with_storage(QuorumConfig(n=2, w=1, r=1), anti_entropy=10.0)
               .with_compute())
    first = cluster.storage
    with pytest.raises(ServiceError, match="depend"):
        cluster.with_storage(QuorumConfig(n=3, w=2, r=2))
    assert cluster.storage is first and first.attached  # untouched
    # Detaching the dependents makes the replacement legal again.
    cluster.compute.close()
    cluster.anti_entropy.detach()
    cluster.with_storage(QuorumConfig(n=3, w=2, r=2))
    assert cluster.storage is not first
    assert cluster.storage.put("k", 1).ok
    cluster.shutdown()


def test_conflicting_handler_claims_are_refused():
    """Regression: a second service silently stealing another's message
    type would black-hole that type once the thief detaches."""

    class Thief(Service):
        name = "thief"

        def node_handlers(self, node):
            return {StorePut: lambda src, msg: None}

    cluster = make_cluster(n=8).with_storage()
    with pytest.raises(ServiceError, match="StorePut"):
        cluster.add_service(Thief())
    # Failed attach rolled back cleanly: storage still owns its traffic.
    assert cluster.service("thief") is None
    assert cluster.storage.put("k", 1).ok
    cluster.shutdown()


def test_cluster_net_wrap_rejects_conflicting_args():
    cluster = make_cluster(n=8)
    with pytest.raises(ValueError, match="existing network"):
        Cluster(seed=5, net=cluster.net)
    wrapped = Cluster(net=cluster.net)  # bare wrap is fine
    assert wrapped.net is cluster.net


# ----------------------------------------------------- churn survivability
def test_storage_survives_churn_driven_through_cluster():
    """Quorum data stays readable across a 30% churn schedule driven
    entirely through the Cluster facade (no manual facade plumbing)."""
    cluster = make_cluster(n=96, seed=23).with_storage(
        QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
    store, ae = cluster.storage, cluster.anti_entropy
    keys = [f"k{i}" for i in range(30)]
    for k in keys:
        assert store.put(k, k.upper()).ok

    rng = cluster.net.rng.get("cluster-churn")
    order = [int(v) for v in rng.permutation(cluster.ids)]
    total, burst = int(0.30 * 96), 6
    killed = 0
    while killed < total:
        step = order[killed:killed + min(burst, total - killed)]
        killed += len(step)
        cluster.fail_nodes(step, heal=True)
        ae.converge()

    alive = cluster.alive_ids()
    readable = sum(store.get(k, via=alive[i % len(alive)]).found
                   for i, k in enumerate(keys))
    assert readable == len(keys)
    cluster.shutdown()
