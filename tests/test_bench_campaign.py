"""Tier-1 coverage for repro.bench.campaign: spec → grid → aggregate.

Pins the seed policy (exactly one repetition per (param point, seed), in
spec order), the aggregate math against a by-hand recompute, the
campaign-1 envelope round-trip and schema validation, the CI-overlap
compare semantics, and the CLI exit-code contract — all on the real
``core`` scenario run serially, so nothing here registers a synthetic
scenario (``test_bench_harness`` pins the registry at exactly 23).
"""

import json

import pytest

import repro.bench.scenarios  # noqa: F401  (populates the registry)
from repro.bench import registry
from repro.bench.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignResult,
    _parse_minimal_toml,
    compare_campaigns,
    deterministic_view,
    is_wallclock_metric,
    load_campaign,
    load_campaigns,
    parse_campaign,
    run_campaign,
    validate_campaign_dict,
)
from repro.bench.cli import main
from repro.metrics.stats import summarize_samples

SPEC_DICT = {"campaign": {
    "name": "unit", "scenario": "core", "seeds": [42, 43],
    "params": {"lookups": [40, 60]},
}}

SPEC_TOML = """\
[campaign]
name = "unit"
scenario = "core"
seeds = [42, 43]

[campaign.params]
lookups = [40, 60]
"""


@pytest.fixture(scope="module")
def campaign_result():
    """One real (serial, smoke) campaign shared by the read-only tests."""
    return run_campaign(parse_campaign(SPEC_DICT), smoke=True, workers=1)


# ------------------------------------------------------------ spec parsing

def test_parse_campaign_builds_the_grid():
    spec = parse_campaign(SPEC_DICT)
    assert spec.name == "unit" and spec.scenario == "core"
    assert spec.seeds == (42, 43)
    assert spec.points() == [{"lookups": 40}, {"lookups": 60}]
    assert len(spec) == 4  # 2 points × 2 seeds


def test_scalar_params_are_fixed_overrides():
    spec = parse_campaign({"campaign": {
        "name": "x", "scenario": "core", "seeds": [1],
        "params": {"lookups": [40, 60], "n": 128}}})
    assert spec.fixed == {"n": 128}
    assert spec.points() == [{"lookups": 40, "n": 128},
                             {"lookups": 60, "n": 128}]


def test_toml_json_and_fallback_parser_agree(tmp_path):
    tomllib = pytest.importorskip("tomllib")  # stdlib on 3.11+
    assert _parse_minimal_toml(SPEC_TOML) == tomllib.loads(SPEC_TOML)
    toml_path, json_path = tmp_path / "c.toml", tmp_path / "c.json"
    toml_path.write_text(SPEC_TOML)
    json_path.write_text(json.dumps(SPEC_DICT))
    a, b = load_campaign(str(toml_path)), load_campaign(str(json_path))
    assert (a.name, a.scenario, a.seeds, a.axes, a.fixed) == \
           (b.name, b.scenario, b.seeds, b.axes, b.fixed)


def test_fallback_parser_handles_committed_ci_spec():
    """The spec CI actually runs must parse identically on Python < 3.11."""
    tomllib = pytest.importorskip("tomllib")
    with open("benchmarks/campaigns/smoke.toml") as fh:
        text = fh.read()
    assert _parse_minimal_toml(text) == tomllib.loads(text)


def test_parse_campaign_rejects_malformed_specs():
    def spec(**over):
        base = {"name": "x", "scenario": "core", "seeds": [1, 2]}
        base.update(over)
        return {"campaign": base}

    for data, msg in [
        ({}, "non-empty"),
        (spec(bogus=1), "unknown"),
        (spec(name="no spaces"), "name"),
        (spec(seeds=[]), "seeds"),
        (spec(seeds=[1, 1]), "distinct"),
        (spec(seeds=[1, True]), "seeds"),
        (spec(confidence=1.5), "confidence"),
        (spec(ci="wald"), "ci must be"),
        (spec(resamples=0), "resamples"),
        (spec(params={"lookups": []}), "sweeps no values"),
        (spec(params="nope"), "params"),
    ]:
        with pytest.raises(ValueError, match=msg):
            parse_campaign(data)


def test_run_campaign_fails_fast_on_bad_grid():
    with pytest.raises(KeyError, match="unknown scenario"):
        run_campaign(parse_campaign({"campaign": {
            "name": "x", "scenario": "nope", "seeds": [1]}}), smoke=True)
    with pytest.raises(KeyError, match="no parameter"):
        run_campaign(parse_campaign({"campaign": {
            "name": "x", "scenario": "core", "seeds": [1],
            "params": {"bogus": [1, 2]}}}), smoke=True)


# -------------------------------------------------------------- seed policy

def test_exactly_one_repetition_per_point_and_seed(campaign_result):
    r = campaign_result
    assert len(r.points) == 2
    for point in r.points:
        # one repetition per seed, in spec order, each at this point's params
        assert [rep["seed"] for rep in point["repetitions"]] == [42, 43]
        for rep in point["repetitions"]:
            assert rep["params"]["lookups"] == point["params"]["lookups"]
            assert rep["smoke"] is True
        for entry in point["metrics"].values():
            assert entry["n"] == 2


def test_rerun_is_identical_up_to_wallclock(campaign_result):
    again = run_campaign(parse_campaign(SPEC_DICT), smoke=True, workers=1)
    a, b = campaign_result.to_dict(), again.to_dict()
    assert deterministic_view(a) == deterministic_view(b)
    # ...and the view really strips the fields that may legitimately move
    dv = deterministic_view(a)
    for field in ("wall_time_s", "unix_time", "git_sha"):
        assert field in a and field not in dv
    for point in dv["points"]:
        assert not any(is_wallclock_metric(m) for m in point["metrics"])
        for rep in point["repetitions"]:
            assert "wall_time_s" not in rep


# ---------------------------------------------------------- aggregate math

def test_aggregates_match_manual_recompute(campaign_result):
    for point in campaign_result.points:
        for name, entry in point["metrics"].items():
            samples = [rep["metrics"][name] for rep in point["repetitions"]]
            assert entry == summarize_samples(samples).to_dict()
    assert campaign_result.metrics_aggregated == sum(
        len(p["metrics"]) for p in campaign_result.points)


def test_failed_checks_name_the_failing_seeds():
    # seed 44 fails core's healthy_lookups_succeed at smoke params (97.5%
    # success < the 98% floor); seed 42 passes — the aggregate must say so.
    result = run_campaign(parse_campaign({"campaign": {
        "name": "fail", "scenario": "core", "seeds": [42, 44],
        "params": {"lookups": [40]}}}), smoke=True, workers=1)
    failed = result.failed_checks()
    assert failed, "expected seed 44 to fail a core check"
    assert all(c["failed_seeds"] == [44] for c in failed)


# ------------------------------------------------- envelope + validation

def test_campaign_envelope_roundtrips_through_json(tmp_path, campaign_result):
    path = campaign_result.write(str(tmp_path))
    assert path.endswith("campaign_unit.smoke.json")  # smoke never clobbers
    raw = json.loads((tmp_path / "campaign_unit.smoke.json").read_text())
    validate_campaign_dict(raw)
    assert raw["schema"] == CAMPAIGN_SCHEMA
    loaded = CampaignResult.read(path)
    assert loaded.to_dict() == campaign_result.to_dict()
    assert set(load_campaigns(str(tmp_path))) == {"unit"}


def test_validate_rejects_malformed_campaign_envelopes(campaign_result):
    good = campaign_result.to_dict()
    for mutate, msg in [
        (lambda d: d.pop("seeds"), "missing fields"),
        (lambda d: d.update(schema="repro.bench/999"), "schema"),
        (lambda d: d.update(points=[]), "non-empty"),
        (lambda d: d["points"][0].pop("repetitions"), "repetitions"),
        (lambda d: d["points"][0].update(metrics={}), "non-empty"),
        (lambda d: d["points"][0]["metrics"].update(x={"mean": 1}), "missing"),
        (lambda d: d["points"][0]["repetitions"].pop(), "per seed"),
        (lambda d: d["points"][0]["repetitions"][0].pop("git_sha"), "git_sha"),
    ]:
        bad = json.loads(json.dumps(good))
        mutate(bad)
        with pytest.raises(ValueError, match=msg):
            validate_campaign_dict(bad)


def test_load_campaigns_prefers_full_over_smoke_twin(tmp_path,
                                                     campaign_result):
    campaign_result.write(str(tmp_path))
    full = json.loads(json.dumps(campaign_result.to_dict()))
    full["smoke"] = False
    path = tmp_path / "campaign_unit.json"
    path.write_text(json.dumps(full))
    assert load_campaigns(str(tmp_path))["unit"].smoke is False


# ---------------------------------------------------- CI-overlap compare

def _directional_metric(result):
    """Some aggregated metric of the campaign's scenario that compare gates."""
    scenario = registry.get(result.scenario)
    names = set(result.points[0]["metrics"])
    for m in scenario.metrics:
        if m.direction != "neutral" and m.name in names:
            return m.name, m.direction
    raise AssertionError("core has no directional aggregated metric")


def _shifted(result, metric, delta):
    """A deep copy with *metric*'s aggregate translated by *delta* at every
    point — CI and mean move together, so a large delta makes the
    intervals disjoint while keeping the envelope schema-valid."""
    data = json.loads(json.dumps(result.to_dict()))
    for point in data["points"]:
        entry = point["metrics"][metric]
        for key in ("mean", "ci_lo", "ci_hi"):
            if entry[key] is not None:
                entry[key] += delta
    return CampaignResult.from_dict(data)


def test_compare_identical_campaigns_is_ok(campaign_result):
    comparison = compare_campaigns({"unit": campaign_result},
                                   {"unit": campaign_result})
    assert comparison.ok
    assert not comparison.regressions()
    assert comparison.deltas  # identical still compares every metric
    assert all(d.status in ("ok", "neutral") for d in comparison.deltas)


def test_disjoint_cis_in_the_bad_direction_regress(campaign_result):
    metric, direction = _directional_metric(campaign_result)
    bad = 1e6 if direction == "lower" else -1e6
    worse = _shifted(campaign_result, metric, bad)
    comparison = compare_campaigns({"unit": campaign_result},
                                   {"unit": worse})
    assert not comparison.ok
    assert {d.metric for d in comparison.regressions()} == {metric}
    # the same move in the good direction is an improvement, not a gate
    better = _shifted(campaign_result, metric, -bad)
    comparison = compare_campaigns({"unit": campaign_result},
                                   {"unit": better})
    assert comparison.ok
    assert {d.metric for d in comparison.improvements()} == {metric}


def test_overlapping_cis_report_ok_not_regression(campaign_result):
    # a shift far smaller than any CI width keeps every interval overlapping
    metric, direction = _directional_metric(campaign_result)
    nudged = _shifted(campaign_result, metric, 1e-12)
    comparison = compare_campaigns({"unit": campaign_result},
                                   {"unit": nudged})
    assert comparison.ok and not comparison.improvements()


def test_differing_seed_lists_still_compare():
    """The point of the aggregate: distributions compare across seed
    choices, where single-run compare would refuse the pair."""
    spec = {"campaign": {"name": "unit", "scenario": "core",
                         "seeds": [47, 49], "params": {"lookups": [40, 60]}}}
    a = run_campaign(parse_campaign(SPEC_DICT), smoke=True, workers=1)
    b = run_campaign(parse_campaign(spec), smoke=True, workers=1)
    comparison = compare_campaigns({"unit": a}, {"unit": b})
    assert not comparison.mismatched
    assert comparison.deltas


def test_scenario_or_smoke_drift_is_mismatched_not_gated(campaign_result):
    data = json.loads(json.dumps(campaign_result.to_dict()))
    data["smoke"] = False
    full = CampaignResult.from_dict(data)
    comparison = compare_campaigns({"unit": campaign_result}, {"unit": full})
    assert comparison.mismatched == ["unit"]
    assert not comparison.deltas and comparison.ok


def test_unpaired_points_and_campaign_sets_inform_not_gate(campaign_result):
    data = json.loads(json.dumps(campaign_result.to_dict()))
    data["points"] = data["points"][:1]  # drop the lookups=60 point
    fewer = CampaignResult.from_dict(data)
    comparison = compare_campaigns({"unit": campaign_result},
                                   {"unit": fewer, "extra": fewer})
    assert comparison.ok
    assert len(comparison.unpaired_points) == 1
    assert "only in OLD" in comparison.unpaired_points[0]
    assert comparison.only_new == ["extra"]
    assert compare_campaigns({"unit": campaign_result}, {}).only_old == \
        ["unit"]


# ---------------------------------------------------------------------- CLI

def _write_spec(tmp_path, name="cli"):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC_TOML.replace('"unit"', f'"{name}"'))
    return str(path)


def test_cli_campaign_run_writes_aggregate(tmp_path, capsys):
    spec = _write_spec(tmp_path)
    out = tmp_path / "out"
    rc = main(["campaign", "run", spec, "--smoke", "--quiet",
               "--out", str(out)])
    assert rc == 0
    assert (out / "campaign_cli.smoke.json").exists()
    stdout = capsys.readouterr().out
    assert "2 param point(s) × 2 seed(s) = 4 repetition(s)" in stdout
    assert "[4/4]" in stdout


def test_cli_bare_spec_implies_run(tmp_path):
    # the acceptance-path sugar: `campaign SPEC --workers N`
    spec = _write_spec(tmp_path, name="sugar")
    rc = main(["campaign", spec, "--smoke", "--quiet", "--no-write"])
    assert rc == 0


def test_cli_campaign_run_exit_codes(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text("[campaign]\nname = \"x\"\n")
    with pytest.raises(SystemExit, match="cannot load campaign spec"):
        main(["campaign", "run", str(bad), "--no-write"])
    spec = _write_spec(tmp_path)
    with pytest.raises(SystemExit, match="--workers"):
        main(["campaign", "run", spec, "--workers", "0", "--no-write"])
    # a failing check gates unless --no-checks (seed 44 fails core's
    # success-rate floor at smoke params)
    failing = tmp_path / "failing.toml"
    failing.write_text(SPEC_TOML.replace("[42, 43]", "[42, 44]")
                       .replace('"unit"', '"failing"'))
    args = ["campaign", "run", str(failing), "--smoke", "--quiet",
            "--no-write"]
    assert main(args) == 1
    assert main(args + ["--no-checks"]) == 0


def test_cli_campaign_report_and_plots(tmp_path, capsys):
    spec = _write_spec(tmp_path)
    out = tmp_path / "out"
    assert main(["campaign", "run", spec, "--smoke", "--quiet",
                 "--out", str(out)]) == 0
    capsys.readouterr()
    plots = tmp_path / "plots"
    rc = main(["campaign", "report", str(out), "--plots", str(plots)])
    assert rc == 0
    stdout = capsys.readouterr().out
    assert "### campaign `cli`" in stdout
    assert "#### point 0: `lookups=40, n=256`" in stdout
    # matplotlib is a soft dependency: either plots were written or the
    # report says why not — never a crash
    if "plots skipped" in stdout:
        assert "matplotlib" in stdout
    else:
        assert list(plots.glob("campaign_cli_*.png"))


def test_cli_campaign_compare_exit_codes(tmp_path, capsys, campaign_result):
    old, new = tmp_path / "old", tmp_path / "new"
    old.mkdir(), new.mkdir()
    campaign_result.write(str(old))
    metric, direction = _directional_metric(campaign_result)
    bad = 1e6 if direction == "lower" else -1e6
    _shifted(campaign_result, metric, bad).write(str(new))
    assert main(["campaign", "compare", str(old), str(old)]) == 0
    assert main(["campaign", "compare", str(old), str(new)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # comparing nothing must not report a pass
    data = json.loads(json.dumps(campaign_result.to_dict()))
    data["campaign"] = "other"
    disjoint = tmp_path / "disjoint"
    disjoint.mkdir()
    CampaignResult.from_dict(data).write(str(disjoint))
    assert main(["campaign", "compare", str(old), str(disjoint)]) == 2
    assert "zero metrics" in capsys.readouterr().out


def test_cli_compare_routes_campaign_aggregates(tmp_path, capsys,
                                                campaign_result):
    """Satellite: plain `compare OLD NEW` recognises campaign_*.json and
    gates mean ± CI per param point instead of skipping the pair."""
    old, new = tmp_path / "old", tmp_path / "new"
    old.mkdir(), new.mkdir()
    campaign_result.write(str(old))
    campaign_result.write(str(new))
    assert main(["compare", str(old), str(new)]) == 0
    assert "compared by CI overlap" in capsys.readouterr().out
    # single campaign file, not a directory, routes the same way
    path = old / "campaign_unit.smoke.json"
    assert main(["compare", str(path), str(path)]) == 0
    # an injected disjoint regression gates the combined exit code
    metric, direction = _directional_metric(campaign_result)
    bad = 1e6 if direction == "lower" else -1e6
    _shifted(campaign_result, metric, bad).write(str(new))
    capsys.readouterr()
    assert main(["compare", str(old), str(new)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
