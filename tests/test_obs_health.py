"""Health scoring: robust z-scores, straggler/error/hot detection on
synthetic span populations, the overlay subtree rollup, and the
end-to-end reader + CLI path."""

import numpy as np

from repro.bench.runner import run_scenario
from repro.cluster import Cluster
from repro.obs import (STATUS_FAIL, STATUS_TIMEOUT, ObsHub, TraceReader,
                       node_health, robust_z, subtree_health, write_store)
from repro.obs.health import SICK_SCORE, health_from_reader
from repro.obs.store import StreamView


def _view(hub, run="run-000"):
    hub.finalize()
    return StreamView(hub.export_streams()["spans"], hub.strings.strings,
                      run, "spans")


# ----------------------------------------------------------------- robust z
def test_robust_z_flags_the_outlier_not_the_population():
    values = np.array([1.0, 1.1, 0.9, 1.0, 1.05, 10.0])
    z = robust_z(values)
    assert z[-1] > 3.5               # the outlier stands out
    assert np.abs(z[:-1]).max() < 3.5  # the healthy population does not


def test_robust_z_degenerate_populations():
    assert robust_z(np.array([])).size == 0
    assert (robust_z(np.array([2.0, 2.0, 2.0])) == 0.0).all()
    # MAD = 0 (majority identical) falls back to mean/std, still flagging
    z = robust_z(np.array([1.0] * 9 + [100.0]))
    assert z[-1] == z.max() > 0


# ------------------------------------------------------------- node scoring
def test_straggler_is_flagged_and_scored_down():
    hub = ObsHub()
    for node in range(8):
        for i in range(10):
            # healthy nodes jitter around 0.1; node 3 drags at 5.0
            lat = 5.0 if node == 3 else 0.1 + 0.01 * node
            hub.span("lookup", node, float(i), float(i) + lat)
    rows = node_health(_view(hub))
    sickest = rows[0]
    assert sickest.node == 3
    assert "straggler" in sickest.flags
    assert sickest.score < 100.0
    assert all("straggler" not in h.flags for h in rows[1:])


def test_error_rate_dominates_the_score():
    hub = ObsHub()
    for i in range(10):
        hub.span("lookup", 1, float(i), float(i) + 0.1)
        hub.span("lookup", 2, float(i), float(i) + 0.1,
                 status=STATUS_FAIL if i < 6 else STATUS_TIMEOUT)
    rows = {h.node: h for h in node_health(_view(hub))}
    bad = rows[2]
    assert bad.fail == 6 and bad.timeout == 4 and bad.error_rate == 1.0
    assert bad.sick and bad.score <= 100.0 - 60.0 + 1e-9
    assert "errors" in bad.flags
    assert rows[1].score == 100.0 and not rows[1].sick


def test_hot_replica_flagged_by_load_skew():
    hub = ObsHub()
    for node in range(10):
        # balanced replicas jitter around 10-19 spans; node 0 takes 200
        n = 200 if node == 0 else 10 + node
        for i in range(n):
            hub.span("storage.put", node, float(i), float(i) + 0.1)
    rows = node_health(_view(hub))
    hot = next(h for h in rows if h.node == 0)
    assert "hot" in hot.flags and hot.load_z > 3.5


def test_min_spans_filters_noise_nodes():
    hub = ObsHub()
    hub.span("lookup", 99, 0.0, 50.0)  # one huge span, no evidence
    for i in range(20):
        hub.span("lookup", 1, float(i), float(i) + 0.1)
    rows = node_health(_view(hub), min_spans=5)
    assert [h.node for h in rows] == [1]


# ------------------------------------------------------------ subtree rollup
def test_subtree_rollup_surfaces_the_sick_branch():
    #        1
    #      /   \
    #     2     3
    #    / \   / \
    #   4   5 6   7     (6 and 7 are failing)
    topology = {2: 1, 3: 1, 4: 2, 5: 2, 6: 3, 7: 3, 1: -1}
    hub = ObsHub()
    for node in (1, 2, 3, 4, 5, 6, 7):
        for i in range(10):
            bad = node in (6, 7)
            hub.span("lookup", node, float(i), float(i) + 0.1,
                     status=STATUS_FAIL if bad else 1)
    nodes = node_health(_view(hub))
    subtrees = {s.root: s for s in subtree_health(nodes, topology)}
    assert set(subtrees) == {1, 2, 3}  # leaves are not reported
    assert subtrees[3].sick and subtrees[3].score < SICK_SCORE
    assert not subtrees[2].sick
    assert subtrees[3].worst_node in (6, 7)
    assert subtrees[1].members == 7
    assert subtrees[1].spans == 70
    # the whole tree is dragged down by its sick branch, but less than it
    assert subtrees[3].score < subtrees[1].score < subtrees[2].score


def test_subtree_rollup_tolerates_cycles_and_unknown_parents():
    topology = {1: 2, 2: 1, 3: 999}  # 1<->2 cycle; 3's parent unrecorded
    hub = ObsHub()
    for node in (1, 2, 3):
        hub.span("lookup", node, 0.0, 0.1)
    rollup = subtree_health(node_health(_view(hub)), topology)
    assert isinstance(rollup, list)  # no hang, no crash


# ------------------------------------------------------------- reader + CLI
def test_health_from_reader_with_recorded_topology(tmp_path):
    c = Cluster(seed=11).build(32).with_observability().with_storage()
    for i in range(15):
        c.storage.put(f"k{i}", i)
    path = str(tmp_path / "h.npz")
    c.observability.write(path)
    with TraceReader(path) as reader:
        assert reader.run_topology("run-000"), "service must record topology"
        nodes, subtrees = health_from_reader(reader, "run-000")
    assert nodes and all(0.0 <= h.score <= 100.0 for h in nodes)
    assert subtrees, "a recorded topology must produce a subtree rollup"
    total_spans = sum(h.spans for h in nodes)
    assert max(s.spans for s in subtrees) <= total_spans


def test_health_from_reader_without_topology(tmp_path):
    hub = ObsHub()
    hub.span("lookup", 1, 0.0, 0.1)
    path = str(tmp_path / "no_topo.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        assert reader.run_topology("run-000") is None
        nodes, subtrees = health_from_reader(reader, "run-000")
    assert len(nodes) == 1 and subtrees == []


def test_ambient_capture_records_topology(tmp_path):
    result = run_scenario("storage", smoke=True, trace_out=str(tmp_path))
    with TraceReader(result.obs["trace_file"]) as reader:
        for run in reader.runs:
            topology = reader.run_topology(run)
            assert topology and len(topology) > 1
            roots = [n for n, p in topology.items() if p < 0]
            assert roots, "the overlay has at least one root"
            # every recorded parent is itself a member of the snapshot
            for parent in topology.values():
                assert parent == -1 or parent in topology


def test_obs_cli_health_subcommand(tmp_path, capsys):
    from repro.obs.cli import main as obs_cli

    c = Cluster(seed=12).build(24).with_observability().with_storage()
    for i in range(10):
        c.storage.put(f"k{i}", i)
    path = str(tmp_path / "cli.npz")
    c.observability.write(path)
    assert obs_cli(["health", path]) == 0
    out = capsys.readouterr().out
    assert "node health" in out and "subtree rollup" in out
    assert obs_cli(["health", path, "--category", "storage.put",
                    "--limit", "3"]) == 0
