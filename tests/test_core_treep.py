"""Unit tests for the TreePNetwork orchestration API."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.capacity import uniform_capacity
from repro.core.ids import IdSpace


def test_build_returns_valid_layout():
    net = TreePNetwork(seed=1)
    layout = net.build(64)
    layout.validate(net.config)
    assert len(net.nodes) == 64
    assert net.height == layout.height


def test_build_twice_rejected():
    net = TreePNetwork(seed=1)
    net.build(16)
    with pytest.raises(RuntimeError):
        net.build(16)


def test_build_deterministic():
    a, b = TreePNetwork(seed=9), TreePNetwork(seed=9)
    a.build(64)
    b.build(64)
    assert a.ids == b.ids
    assert a.layout.levels == b.layout.levels


def test_build_from_explicit_ids():
    ids = [100, 200, 300, 400, 500, 600, 700, 800]
    caps = {i: uniform_capacity() for i in ids}
    net = TreePNetwork(config=TreePConfig.paper_case1(space=IdSpace(extent=1000)))
    layout = net.build_from(ids, caps)
    assert layout.levels[0] == ids


def test_capacities_length_checked():
    net = TreePNetwork(seed=1)
    with pytest.raises(ValueError):
        net.build(8, capacities=[uniform_capacity()] * 3)


class TestTableInstallation:
    @pytest.fixture(scope="class")
    def net(self):
        net = TreePNetwork(seed=4)
        net.build(128)
        return net

    def test_every_node_has_min_level0_connections(self, net):
        for i, node in net.nodes.items():
            assert len(node.table.level0) >= 2, f"node {i} under-connected"

    def test_level0_links_are_adjacent(self, net):
        sorted_ids = sorted(net.ids)
        for idx, i in enumerate(sorted_ids[1:-1], start=1):
            node = net.nodes[i]
            assert sorted_ids[idx - 1] in node.table.level0
            assert sorted_ids[idx + 1] in node.table.level0

    def test_every_node_has_parent_or_is_root(self, net):
        root = net.layout.levels[-1][0]
        for i, node in net.nodes.items():
            if i == root:
                continue
            assert node.table.parents.get(node.max_level + 1) is not None

    def test_children_match_layout(self, net):
        for (p, lvl), kids in net.layout.children.items():
            node = net.nodes[p]
            assert node.children_by_level.get(lvl, []) == kids
            for k in kids:
                assert k in node.table.children

    def test_superiors_are_ancestors_plus_parents_neighbours(self, net):
        for i in net.ids[:30]:
            node = net.nodes[i]
            ancestors = set(net.layout.ancestors(i))
            assert ancestors - {i} <= node.table.superiors | set(
                node.table.parents.values()
            )

    def test_bus_links_on_own_levels(self, net):
        for lvl in range(1, net.height):
            bus = net.layout.levels[lvl]
            for idx, i in enumerate(bus):
                node = net.nodes[i]
                neigh = node.table.neighbours_at(lvl)
                if idx > 0:
                    assert bus[idx - 1] in neigh
                if idx < len(bus) - 1:
                    assert bus[idx + 1] in neigh

    def test_routing_table_sizes_small(self, net):
        """§III.e: tables stay logarithmic-ish, not O(n)."""
        sizes = net.routing_table_sizes()
        assert np.mean(list(sizes.values())) < 20
        assert max(sizes.values()) < 70

    def test_level0_majority_has_few_connections(self, net):
        """Most nodes are leaf-only and maintain ~l0+1 connections (§III.e)."""
        conns = net.active_connection_counts()
        leaf_counts = [c for i, c in conns.items()
                       if net.nodes[i].max_level == 0]
        assert np.mean(leaf_counts) <= 4.0

    def test_height_estimates_installed(self, net):
        for node in net.nodes.values():
            assert node.height == net.height


class TestLookups:
    def test_lookup_sync_found(self, small_net):
        r = small_net.lookup_sync(small_net.ids[0], small_net.ids[5])
        assert r.found

    def test_unknown_origin_raises(self, small_net):
        with pytest.raises(KeyError):
            small_net.lookup(123456789, small_net.ids[0])

    def test_batch_order_preserved(self, small_net):
        pairs = [(small_net.ids[0], small_net.ids[i]) for i in range(1, 6)]
        results = small_net.run_lookup_batch(pairs, "G")
        assert [r.target for r in results] == [t for _, t in pairs]

    def test_hop_trails_recorded(self, fresh_net):
        known = set(fresh_net.nodes[fresh_net.ids[0]].table.all_known())
        target = next(i for i in fresh_net.ids[1:] if i not in known)
        fresh_net.lookup_sync(fresh_net.ids[0], target, "G")
        assert fresh_net.trails, "no trails recorded"
        assert max(t.max_ttl for t in fresh_net.trails.values()) >= 1


class TestFailureHelpers:
    def test_fail_nodes_and_alive_ids(self, fresh_net):
        victims = fresh_net.ids[:5]
        fresh_net.fail_nodes(victims)
        alive = fresh_net.alive_ids()
        assert set(alive) == set(fresh_net.ids[5:])


def test_loss_still_converges():
    """Lookups succeed (or time out cleanly) under 5% datagram loss."""
    net = TreePNetwork(config=TreePConfig.paper_case1(lookup_timeout=10.0),
                       seed=11, loss=0.05)
    net.build(64)
    rng = np.random.default_rng(0)
    results = []
    for _ in range(30):
        o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
        results.append(net.lookup_sync(o, t, "G"))
    found = sum(r.found for r in results)
    assert found >= 20  # most succeed; losses time out without hanging
