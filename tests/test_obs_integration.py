"""End-to-end observability tests: RNG-neutral tracing (traced and
untraced runs bit-identical at a fixed seed), the quorum-RW store
round-trip with exact count agreement, the bench runner's --trace-out
path, and the query CLI."""

import json

import pytest

from repro.bench.result import BenchResult
from repro.bench.runner import run_scenario
from repro.cluster import Cluster
from repro.compute.job import JobSpec
from repro.obs import TraceReader, capture
from repro.obs.cli import main as obs_cli


def _workload(with_obs: bool):
    """A deterministic mixed workload; returns its observable outcomes."""
    c = Cluster(seed=1234).build(48)
    if with_obs:
        c.with_observability()
    c = c.with_storage(anti_entropy=30.0).with_compute()
    outcomes = {}
    res = [c.lookup_sync(origin=c.ids[i], target=c.ids[-1 - i])
           for i in range(5)]
    outcomes["lookups"] = [(r.found, r.hops, r.path) for r in res]
    st = c.storage
    outcomes["puts"] = [(st.put(f"k{i}", {"v": i}).ok) for i in range(8)]
    outcomes["gets"] = [(st.get(f"k{i}").ok, st.get(f"k{i}").version)
                        for i in range(8)]
    c.anti_entropy.converge()
    grid = c.compute
    for i in range(3):
        grid.submit(JobSpec(job_id=i + 1, cpu_demand=1.0, work=4.0))
    grid.run_until_done(timeout=200.0)
    stats = grid.stats()
    outcomes["jobs"] = sorted(
        (jid, r.ok, r.attempts) for jid, r in grid.results.items())
    outcomes["sched"] = (stats.completed, stats.failed, stats.reexecutions,
                        stats.placements, stats.placement_hops,
                        stats.failovers, stats.makespan)
    outcomes["now"] = c.sim.now
    outcomes["events"] = c.sim.events_processed
    return c, outcomes


def test_traced_run_bit_identical_to_untraced():
    """Instrumentation draws no RNG and schedules no events, so enabling
    the full observability stack must not perturb a seeded run at all."""
    _, base = _workload(with_obs=False)
    traced_cluster, traced = _workload(with_obs=True)
    assert traced == base
    # ... and the hub actually recorded the workload.
    counts = traced_cluster.obs.category_counts()
    assert counts["lookup"] == 5
    assert counts["storage.put"] >= 8
    assert counts["job"] == 3


def test_ambient_capture_is_rng_neutral():
    """The --trace-out path (ambient capture + engine hook) is equally
    invisible to the simulation."""
    _, base = _workload(with_obs=False)
    with capture() as cap:
        _, ambient = _workload(with_obs=False)
    assert ambient == base
    assert len(cap.hubs) == 1
    assert cap.span_count() > 0  # the ambient hub records the full workload
    assert cap.category_counts()["lookup"] == 5
    assert sum(cap.hubs[0].sim_event_counts.values()) == base["events"]


def test_quorum_rw_roundtrip_counts_match_exactly(tmp_path):
    """A full quorum-RW run must round-trip through the columnar store with
    per-category counts matching the in-memory totals exactly."""
    c = (Cluster(seed=77).build(32).with_observability()
         .with_storage(anti_entropy=25.0))
    st = c.storage
    for i in range(20):
        assert st.put(f"key-{i}", {"payload": i}).ok
    for i in range(20):
        assert st.get(f"key-{i}").ok
    c.anti_entropy.converge()
    hub = c.obs
    path = str(tmp_path / "quorum.npz")
    c.observability.write(path)
    with TraceReader(path) as reader:
        assert reader.category_counts() == hub.category_counts()
        spans = reader.stream("run-000", "spans")
        assert spans.filter(category="storage.put").categories() == {
            "storage.put": 20}
        assert spans.filter(category="storage.get").categories() == {
            "storage.get": 20}
        # Every recorded span closed with a real duration.
        assert (spans.column("t1") >= spans.column("t0")).all()
        meta = reader.run_meta("run-000")
        assert meta["metrics"]["span.storage.put.latency.count"] == 20.0


def test_observability_detach_restores_silence():
    c = Cluster(seed=5).build(16).with_observability()
    hub = c.obs
    c.lookup_sync(origin=c.ids[0], target=c.ids[5])
    recorded = hub.category_counts().get("lookup", 0)
    assert recorded == 1
    c.observability.detach()
    assert c.net.obs is None
    c.lookup_sync(origin=c.ids[1], target=c.ids[6])
    assert hub.category_counts().get("lookup", 0) == recorded  # unchanged


def test_bench_trace_out_smoke(tmp_path):
    out = str(tmp_path)
    result = run_scenario("storage", smoke=True, out_dir=out, trace_out=out)
    assert result.obs["runs"] >= 1
    assert result.obs["spans"] > 0
    trace_file = result.obs["trace_file"]
    with TraceReader(trace_file) as reader:
        assert reader.category_counts() == result.obs["categories"]
    # The envelope round-trips with the optional obs field...
    loaded = BenchResult.read(f"{out}/bench_storage.smoke.json")
    assert loaded.obs["trace_file"] == trace_file
    # ... and untraced envelopes omit it.
    untraced = run_scenario("storage", smoke=True)
    assert "obs" not in json.loads(untraced.to_json())
    # Traced and untraced scenario metrics are bit-identical (modulo
    # wall-clock throughput rates, which depend on host speed).
    def deterministic(metrics):
        return {k: v for k, v in metrics.items()
                if not k.endswith("_per_second")}

    assert deterministic(untraced.metrics) == deterministic(result.metrics)


def test_obs_cli_summary_and_export(tmp_path, capsys):
    c = Cluster(seed=9).build(24).with_observability().with_storage()
    c.storage.put("k", 1)
    c.storage.get("k")
    path = str(tmp_path / "cli.npz")
    c.observability.write(path)
    assert obs_cli(["summary", path]) == 0
    out = capsys.readouterr().out
    assert "storage.put" in out and "storage.get" in out
    assert obs_cli(["slowest", path, "--limit", "2"]) == 0
    assert obs_cli(["timeline", path, "--limit", "5"]) == 0
    export = str(tmp_path / "rows.jsonl")
    assert obs_cli(["export", path, "--stream", "spans", "-o", export]) == 0
    capsys.readouterr()
    with open(export) as fh:
        rows = [json.loads(line) for line in fh]
    assert len(rows) == 2
    assert {r["category"] for r in rows} == {"storage.put", "storage.get"}
    with pytest.raises(SystemExit):
        obs_cli(["summary", path, "--bogus"])


def test_per_hop_latency_from_store(tmp_path):
    c = Cluster(seed=3).build(64).with_observability()
    for i in range(10):
        c.lookup_sync(origin=c.ids[i], target=c.ids[-1 - i])
    path = str(tmp_path / "hops.npz")
    c.observability.write(path)
    from repro.obs.query import per_hop_latency

    with TraceReader(path) as reader:
        hops = per_hop_latency(reader.stream("run-000", "events"))
    assert hops, "multi-hop lookups must yield a per-hop breakdown"
    for entry in hops:
        assert entry["count"] > 0
        assert entry["mean"] >= 0.0
