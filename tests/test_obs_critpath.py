"""Causal analytics: forest reconstruction from parent links, critical
paths that sum exactly to the root duration, per-category self-time,
and the >=95% attribution guarantee on real recorded job spans."""

import pytest

from repro.bench.runner import run_scenario
from repro.cluster import Cluster
from repro.compute.job import JobSpec
from repro.obs import (ObsHub, TraceReader, build_forest, critical_path,
                       self_time_by_category, span_attribution)
from repro.obs.store import StreamView


def _view(hub, run="run-000"):
    hub.finalize()
    return StreamView(hub.export_streams()["spans"], hub.strings.strings,
                      run, "spans")


def _known_tree():
    """root [0, 10] with children a [1, 4] and b [6, 9]; a has child
    aa [2, 3].  Self-times: root 4 (0-1, 4-6, 9-10), a 2, aa 1, b 3."""
    hub = ObsHub()
    root = hub.begin("job", 1, 0.0)
    a = hub.begin("rpc", 2, 1.0, parent=root)
    aa = hub.begin("disk", 2, 2.0, parent=a)
    hub.end(aa, 3.0)
    hub.end(a, 4.0)
    b = hub.begin("rpc", 3, 6.0, parent=root)
    hub.end(b, 9.0)
    hub.end(root, 10.0)
    return hub


def test_build_forest_resolves_parent_links():
    tree = build_forest(_view(_known_tree()))
    assert len(tree.by_id) == 4 and len(tree.roots) == 1
    assert tree.orphans == 0
    root = tree.roots[0]
    assert root.category == "job" and len(root.children) == 2
    assert [c.t0 for c in root.children] == [1.0, 6.0]
    assert len(root.children[0].children) == 1  # aa under a


def test_self_times_of_known_tree():
    tree = build_forest(_view(_known_tree()))
    root = tree.roots[0]
    assert root.self_time() == pytest.approx(4.0)
    a, b = root.children
    assert a.self_time() == pytest.approx(2.0)
    assert b.self_time() == pytest.approx(3.0)
    by_cat = {r["category"]: r for r in self_time_by_category(tree)}
    assert by_cat["job"]["self_time"] == pytest.approx(4.0)
    assert by_cat["rpc"]["self_time"] == pytest.approx(5.0)
    assert by_cat["disk"]["self_time"] == pytest.approx(1.0)
    assert sum(r["self_pct"] for r in by_cat.values()) == pytest.approx(100.0)


def test_critical_path_sums_exactly_to_root_duration():
    tree = build_forest(_view(_known_tree()))
    root = tree.roots[0]
    segments = critical_path(root)
    assert sum(s["duration"] for s in segments) == pytest.approx(root.duration)
    # chronological, gap-free, starting at t0 and ending at t1
    assert segments[0]["t0"] == root.t0 and segments[-1]["t1"] == root.t1
    for prev, cur in zip(segments, segments[1:]):
        assert cur["t0"] == pytest.approx(prev["t1"])
    # the walk descends into the latest-finishing overlap at each cursor
    cats = [s["category"] for s in segments]
    assert cats == ["job", "rpc", "disk", "rpc", "job", "rpc", "job"]


def test_critical_path_of_leaf_is_one_segment():
    hub = ObsHub()
    sid = hub.begin("lookup", 5, 2.0)
    hub.end(sid, 7.0)
    (root,) = build_forest(_view(hub)).roots
    (seg,) = critical_path(root)
    assert (seg["t0"], seg["t1"], seg["duration"]) == (2.0, 7.0, 5.0)


def test_overlapping_children_attribute_without_double_counting():
    hub = ObsHub()
    root = hub.begin("job", 1, 0.0)
    a = hub.begin("rpc", 1, 1.0, parent=root)
    b = hub.begin("rpc", 1, 2.0, parent=root)  # overlaps a on [2, 4]
    hub.end(a, 4.0)
    hub.end(b, 6.0)
    hub.end(root, 8.0)
    tree = build_forest(_view(hub))
    r = tree.roots[0]
    assert r.child_union() == pytest.approx(5.0)  # [1, 6], not 3 + 4
    assert r.self_time() == pytest.approx(3.0)
    segments = critical_path(r)
    assert sum(s["duration"] for s in segments) == pytest.approx(8.0)


def test_orphaned_parents_promote_to_roots():
    hub = ObsHub()
    child = hub.begin("rpc", 1, 1.0, parent=424242)  # parent never recorded
    hub.end(child, 2.0)
    tree = build_forest(_view(hub))
    assert tree.orphans == 1 and len(tree.roots) == 1


def test_span_attribution_coverage_on_recorded_jobs(tmp_path):
    """ISSUE acceptance: walking real recorded compute spans attributes
    >= 95% of each job span's duration to child execute spans + self."""
    c = Cluster(seed=21).build(32).with_observability().with_compute()
    for i in range(4):
        c.compute.submit(JobSpec(job_id=i + 1, cpu_demand=1.0, work=5.0))
    c.compute.run_until_done(timeout=300.0)
    path = str(tmp_path / "jobs.npz")
    c.observability.write(path)
    with TraceReader(path) as reader:
        tree = build_forest(reader.stream("run-000", "spans"))
        rows = span_attribution(tree, category="job")
    assert len(rows) == 4
    for row in rows:
        assert row["children"] >= 1, "job spans parent their execute spans"
        assert row["coverage"] >= 0.95
        assert row["self_time"] >= 0.0 and row["child_overflow"] == 0.0
        segments = critical_path(tree.by_id[row["span_id"]])
        assert sum(s["duration"] for s in segments) == pytest.approx(
            row["duration"])


def test_obs_cli_critpath_subcommand(tmp_path, capsys):
    from repro.obs.cli import main as obs_cli

    result = run_scenario("compute", smoke=True, trace_out=str(tmp_path))
    assert obs_cli(["critpath", result.obs["trace_file"], "--category",
                    "job", "--limit", "2"]) == 0
    out = capsys.readouterr().out
    assert "self-time attribution" in out and "critical path of job span" in out
