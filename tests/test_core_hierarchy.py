"""Unit + property tests for hierarchy construction and countdowns."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import CapacityDistribution, NodeCapacity, uniform_capacity
from repro.core.config import TreePConfig
from repro.core.hierarchy import (
    DemotionManager,
    ElectionManager,
    build_layout,
    theoretical_height,
)
from repro.core.ids import IdSpace, assign_ids


def make_population(n, seed=0, homogeneous=False):
    rng = np.random.default_rng(seed)
    ids = assign_ids(IdSpace(), n, rng)
    if homogeneous:
        caps = {i: uniform_capacity() for i in ids}
    else:
        dist = CapacityDistribution(rng)
        caps = {i: dist.sample() for i in ids}
    return ids, caps


class TestBuildLayout:
    def test_small_network(self):
        ids, caps = make_population(16)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        layout.validate(TreePConfig.paper_case1())
        assert layout.height >= 1
        assert sorted(ids) == layout.levels[0]

    def test_levels_shrink(self):
        ids, caps = make_population(256)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        sizes = [len(b) for b in layout.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))
        assert sizes[-1] == 1  # a single root

    def test_nc_respected_fixed(self):
        ids, caps = make_population(256)
        cfg = TreePConfig.paper_case1()
        layout = build_layout(ids, caps, cfg)
        for (p, lvl), kids in layout.children.items():
            assert len(kids) <= 4

    def test_nc_respected_variable(self):
        ids, caps = make_population(256)
        cfg = TreePConfig.paper_case2()
        layout = build_layout(ids, caps, cfg)
        for (p, lvl), kids in layout.children.items():
            assert len(kids) <= caps[p].max_children(cfg.nc_floor, cfg.nc_ceiling)

    def test_variable_nc_flatter_hierarchy(self):
        """Capacity-derived nc (up to 8 children) gives a flatter tree."""
        ids, caps = make_population(512)
        h_fixed = build_layout(ids, caps, TreePConfig.paper_case1()).height
        h_var = build_layout(ids, caps, TreePConfig.paper_case2()).height
        assert h_var <= h_fixed

    def test_parents_have_higher_scores(self):
        """Promotion is capacity-aware: upper levels outscore the base."""
        ids, caps = make_population(512)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        base = np.mean([caps[i].score() for i in layout.levels[0]])
        upper = np.mean([caps[i].score() for i in layout.levels[2]])
        assert upper > base

    def test_parent_map_points_one_level_up(self):
        ids, caps = make_population(128)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        for i in ids:
            p = layout.parent[i]
            m = layout.max_level[i]
            if p is not None:
                assert layout.max_level[p] >= m + 1
            else:
                assert m == layout.height  # only the root is parentless

    def test_ancestors_chain_to_root(self):
        ids, caps = make_population(128)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        root = layout.levels[-1][0]
        for i in ids[:20]:
            chain = layout.ancestors(i)
            if i != root:
                assert chain[-1] == root
                levels = [layout.max_level[a] for a in chain]
                assert levels == sorted(levels)

    def test_children_cover_every_node(self):
        ids, caps = make_population(128)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        for lvl in range(1, layout.height + 1):
            covered = set(layout.levels[lvl])
            for p in layout.levels[lvl]:
                covered |= set(layout.children.get((p, lvl), ()))
            assert covered == set(layout.levels[lvl - 1])

    def test_height_near_theory(self):
        ids, caps = make_population(1024)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        c = layout.average_children()
        expected = theoretical_height(1024, max(c, 1.5))
        assert abs(layout.height - expected) <= 2.5

    def test_deterministic(self):
        ids, caps = make_population(64)
        l1 = build_layout(ids, caps, TreePConfig.paper_case1())
        l2 = build_layout(ids, caps, TreePConfig.paper_case1())
        assert l1.levels == l2.levels

    def test_two_nodes(self):
        ids, caps = make_population(2)
        layout = build_layout(ids, caps, TreePConfig.paper_case1())
        assert layout.height == 1
        assert len(layout.levels[1]) == 1

    def test_validation_errors(self):
        ids, caps = make_population(4)
        with pytest.raises(ValueError):
            build_layout([ids[0]], caps, TreePConfig.paper_case1())
        with pytest.raises(ValueError):
            build_layout([1, 1, 2], {1: uniform_capacity(), 2: uniform_capacity()},
                         TreePConfig.paper_case1())

    def test_max_height_bound(self):
        ids, caps = make_population(256)
        cfg = TreePConfig.paper_case1(max_height=2)
        layout = build_layout(ids, caps, cfg)
        assert layout.height <= 2


def test_theoretical_height_formula():
    # h = log_c((n+1)/2): n=8191, c=4 -> log4(4096) = 6 (the paper's h).
    assert theoretical_height(8191, 4) == pytest.approx(6.0)
    with pytest.raises(ValueError):
        theoretical_height(0, 4)
    with pytest.raises(ValueError):
        theoretical_height(10, 1)


class TestElectionManager:
    def _mgr(self, score_boost=0.0):
        cap = NodeCapacity(cpu=1 + score_boost)
        return ElectionManager(1, cap, TreePConfig.paper_case1())

    def test_start_returns_countdown(self):
        m = self._mgr()
        delay = m.start(0, [1, 2, 3])
        assert delay > 0

    def test_double_start_rejected(self):
        m = self._mgr()
        m.start(0, [1, 2])
        assert m.start(0, [1, 2]) == -1.0

    def test_win_when_unclaimed(self):
        m = self._mgr()
        m.start(0, [1, 2])
        assert m.on_countdown_expired(0) is True
        assert m.active[0].winner == 1

    def test_lose_when_claimed_first(self):
        m = self._mgr()
        m.start(0, [1, 2])
        m.on_claim(0, 2)
        assert m.on_countdown_expired(0) is False
        assert m.active[0].winner == 2

    def test_stronger_node_shorter_countdown(self):
        weak = ElectionManager(1, NodeCapacity(cpu=1), TreePConfig.paper_case1())
        strong = ElectionManager(2, NodeCapacity(cpu=32, memory_gb=64,
                                                 bandwidth_mbps=1000),
                                 TreePConfig.paper_case1())
        assert strong.start(0, []) < weak.start(0, [])


class TestDemotionManager:
    def _mgr(self, policy="strict"):
        return DemotionManager(1, uniform_capacity(),
                               TreePConfig.paper_case1(demotion_policy=policy))

    def test_demote_when_underfilled(self):
        m = self._mgr()
        assert m.should_demote(1, 1)
        assert m.should_demote(2, 0)

    def test_no_demote_with_two_children(self):
        assert not self._mgr().should_demote(1, 2)

    def test_keep_upper_policy(self):
        m = self._mgr(policy="keep-upper")
        assert m.should_demote(1, 0)       # level 1 still demotes
        assert not m.should_demote(2, 0)   # upper levels keep status (§VI)

    def test_countdown_positive(self):
        assert self._mgr().countdown() > 0


@given(n=st.integers(4, 128), seed=st.integers(0, 1000),
       case=st.sampled_from(["case1", "case2"]))
@settings(max_examples=20, deadline=None)
def test_property_layout_invariants(n, seed, case):
    """Every generated layout passes full structural validation."""
    ids, caps = make_population(n, seed=seed)
    cfg = TreePConfig.paper_case1() if case == "case1" else TreePConfig.paper_case2()
    layout = build_layout(ids, caps, cfg)
    layout.validate(cfg)
    # Subset chain and coverage.
    for lvl in range(1, layout.height + 1):
        assert set(layout.levels[lvl]) <= set(layout.levels[lvl - 1])
