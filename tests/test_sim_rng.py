"""Unit tests for named RNG substreams."""

import numpy as np
import pytest

from repro.sim.rng import RngRegistry


def test_same_seed_same_streams():
    a, b = RngRegistry(42), RngRegistry(42)
    assert float(a.get("x").random()) == float(b.get("x").random())


def test_different_names_differ():
    r = RngRegistry(42)
    assert float(r.get("a").random()) != float(r.get("b").random())


def test_different_seeds_differ():
    assert float(RngRegistry(1).get("x").random()) != float(
        RngRegistry(2).get("x").random()
    )


def test_stream_is_stateful_and_cached():
    r = RngRegistry(0)
    g1 = r.get("s")
    v1 = float(g1.random())
    g2 = r.get("s")
    assert g1 is g2
    assert float(g2.random()) != v1  # sequential draws, not a reset


def test_isolation_between_streams():
    """Drawing from one stream never perturbs another."""
    r1, r2 = RngRegistry(5), RngRegistry(5)
    r1.get("noise").random(1000)  # extra draws on an unrelated stream
    assert float(r1.get("signal").random()) == float(r2.get("signal").random())


def test_spawn_children_deterministic():
    a = RngRegistry(9).spawn("node-1")
    b = RngRegistry(9).spawn("node-1")
    assert a.seed == b.seed
    assert RngRegistry(9).spawn("node-2").seed != a.seed


def test_streams_listing():
    r = RngRegistry(0)
    r.get("b")
    r.get("a")
    assert r.streams() == ["a", "b"]


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngRegistry("abc")  # type: ignore[arg-type]


def test_numpy_integer_seed_accepted():
    r = RngRegistry(np.int64(7))
    assert r.seed == 7
