"""Unit + property tests for 1-D tessellation math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import IdSpace
from repro.core.tessellation import (
    Cell,
    bus_neighbours,
    cell_owner,
    cells_of_bus,
    children_of,
    split_point,
)

SPACE = IdSpace(extent=1000)


def test_single_node_owns_everything():
    cells = cells_of_bus(SPACE, [500])
    assert len(cells) == 1
    assert cells[0].lo == 0 and cells[0].hi == 1000
    assert 0 in cells[0] and 999 in cells[0]


def test_cells_partition_space():
    cells = cells_of_bus(SPACE, [100, 300, 800])
    assert cells[0].lo == 0
    assert cells[-1].hi == 1000
    for left, right in zip(cells, cells[1:]):
        assert left.hi == right.lo


def test_boundaries_at_midpoints():
    cells = cells_of_bus(SPACE, [100, 300])
    assert cells[0].hi == 201  # midpoint 200 belongs to the left cell
    assert 200 in cells[0] and 201 in cells[1]


def test_unsorted_bus_rejected():
    with pytest.raises(ValueError, match="sorted"):
        cells_of_bus(SPACE, [300, 100])


def test_duplicate_bus_rejected():
    with pytest.raises(ValueError):
        cells_of_bus(SPACE, [100, 100])


def test_empty_bus_rejected():
    with pytest.raises(ValueError):
        cells_of_bus(SPACE, [])


def test_cell_owner_matches_cells():
    bus = [100, 300, 800]
    cells = cells_of_bus(SPACE, bus)
    for ident in range(0, 1000, 7):
        owner = cell_owner(SPACE, bus, ident)
        containing = next(c for c in cells if ident in c)
        assert owner == containing.owner


def test_cell_owner_is_nearest():
    bus = [100, 300, 800]
    assert cell_owner(SPACE, bus, 0) == 100
    assert cell_owner(SPACE, bus, 250) == 300
    assert cell_owner(SPACE, bus, 999) == 800


def test_bus_neighbours():
    bus = [10, 20, 30]
    assert bus_neighbours(bus, 10) == (None, 20)
    assert bus_neighbours(bus, 20) == (10, 30)
    assert bus_neighbours(bus, 30) == (20, None)


def test_bus_neighbours_missing_raises():
    with pytest.raises(ValueError):
        bus_neighbours([10, 20], 15)


def test_children_of_assigns_every_lower_node():
    bus = [100, 500, 900]
    lower = [50, 150, 290, 310, 490, 510, 700, 950]
    result = children_of(SPACE, bus, lower)
    assigned = [c for kids in result.values() for c in kids]
    assert sorted(assigned) == lower
    assert set(result) == set(bus)


def test_children_of_respects_cells():
    bus = [100, 500, 900]
    result = children_of(SPACE, bus, [290, 310])
    assert 290 in result[100]  # 290 <= midpoint(100,500)=300
    assert 310 in result[500]


def test_children_of_requires_sorted_lower():
    with pytest.raises(ValueError, match="sorted"):
        children_of(SPACE, [100], [5, 3])


def test_split_point():
    assert split_point([1, 2, 3, 4]) == 2
    assert split_point([1, 2, 3]) == 1
    with pytest.raises(ValueError):
        split_point([1])


def test_cell_width():
    assert Cell(owner=5, lo=10, hi=30).width() == 20


@st.composite
def bus_strategy(draw):
    n = draw(st.integers(1, 30))
    ids = draw(st.lists(st.integers(0, 999), min_size=n, max_size=n, unique=True))
    return sorted(ids)


@given(bus=bus_strategy())
@settings(max_examples=100, deadline=None)
def test_property_cells_partition_exactly(bus):
    """Cells tile [0, extent) with no gaps and no overlaps."""
    cells = cells_of_bus(SPACE, bus)
    assert cells[0].lo == 0
    assert cells[-1].hi == SPACE.extent
    for a, b in zip(cells, cells[1:]):
        assert a.hi == b.lo
    # Each owner is inside its own cell.
    for c in cells:
        assert c.owner in c


@given(bus=bus_strategy(), ident=st.integers(0, 999))
@settings(max_examples=150, deadline=None)
def test_property_owner_is_closest(bus, ident):
    """cell_owner returns a nearest bus node (ties allowed)."""
    owner = cell_owner(SPACE, bus, ident)
    best = min(abs(b - ident) for b in bus)
    assert abs(owner - ident) == best


@given(bus=bus_strategy())
@settings(max_examples=50, deadline=None)
def test_property_children_partition(bus):
    lower = list(range(0, 1000, 13))
    result = children_of(SPACE, bus, lower)
    got = sorted(c for kids in result.values() for c in kids)
    assert got == lower
