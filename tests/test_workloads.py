"""Unit tests for workload generators."""

import numpy as np
import pytest

from repro.workloads import ChurnSchedule, LookupWorkload
from repro.workloads.capacities import grid_cluster_mix, homogeneous_mix, measured_p2p_mix


class TestLookupWorkload:
    def test_uniform_pairs_distinct_endpoints(self):
        w = LookupWorkload(rng=np.random.default_rng(0))
        pairs = w.pairs(list(range(100, 200)), 500)
        assert len(pairs) == 500
        assert all(o != t for o, t in pairs)
        assert all(100 <= o < 200 and 100 <= t < 200 for o, t in pairs)

    def test_uniform_deterministic(self):
        a = LookupWorkload(rng=np.random.default_rng(7)).pairs(list(range(50)), 20)
        b = LookupWorkload(rng=np.random.default_rng(7)).pairs(list(range(50)), 20)
        assert a == b

    def test_zipf_targets_skewed(self):
        w = LookupWorkload(rng=np.random.default_rng(0), mode="zipf-targets")
        pairs = w.pairs(list(range(100)), 2000)
        targets = [t for _, t in pairs]
        counts = np.bincount(targets, minlength=100)
        # Hot head: top-10 targets take a disproportionate share.
        assert counts[np.argsort(counts)[-10:]].sum() > 0.35 * len(targets)

    def test_validation(self):
        w = LookupWorkload(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            w.pairs([1], 5)
        with pytest.raises(ValueError):
            w.pairs([1, 2], 0)

    def test_unknown_mode(self):
        w = LookupWorkload(rng=np.random.default_rng(0), mode="bogus")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            w.pairs([1, 2], 1)


class TestChurnSchedule:
    def test_sampled_sorted_and_alternating(self):
        rng = np.random.default_rng(0)
        sched = ChurnSchedule.sampled(list(range(20)), rng, duration=1000.0,
                                      mean_uptime=100.0, mean_downtime=50.0)
        times = [e.time for e in sched]
        assert times == sorted(times)
        # Per node: leave, rejoin, leave, ... strictly alternating.
        by_node = {}
        for e in sched:
            by_node.setdefault(e.node, []).append(e.kind)
        for kinds in by_node.values():
            for a, b in zip(kinds, kinds[1:]):
                assert a != b
            assert kinds[0] == "leave"

    def test_until_filters(self):
        rng = np.random.default_rng(1)
        sched = ChurnSchedule.sampled([1, 2, 3], rng, duration=500.0)
        early = sched.until(100.0)
        assert all(e.time <= 100.0 for e in early)

    def test_churn_rate_positive(self):
        rng = np.random.default_rng(2)
        sched = ChurnSchedule.sampled(list(range(10)), rng, duration=1000.0,
                                      mean_uptime=50.0)
        assert sched.churn_rate(1000.0) > 0

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ChurnSchedule.sampled([1], rng, duration=0.0)
        with pytest.raises(ValueError):
            ChurnSchedule([]).churn_rate(0.0)


class TestCapacityMixes:
    def test_homogeneous_identical(self):
        caps = homogeneous_mix(10)
        assert len(set(caps)) == 1
        with pytest.raises(ValueError):
            homogeneous_mix(0)

    def test_measured_mix_heterogeneous(self):
        caps = measured_p2p_mix(100, np.random.default_rng(0))
        scores = [c.score() for c in caps]
        assert np.std(scores) > 0.1

    def test_grid_mix_bimodal(self):
        caps = grid_cluster_mix(200, np.random.default_rng(0), server_fraction=0.2)
        big = [c for c in caps if c.cpu >= 16]
        assert 25 <= len(big) <= 80  # ~40 servers + a few lucky desktops

    def test_grid_mix_shuffled(self):
        caps = grid_cluster_mix(100, np.random.default_rng(1), server_fraction=0.5)
        first_half_servers = sum(1 for c in caps[:50] if c.cpu >= 16)
        assert 10 <= first_half_servers <= 40  # not all servers up front

    def test_grid_mix_validation(self):
        with pytest.raises(ValueError):
            grid_cluster_mix(10, np.random.default_rng(0), server_fraction=1.5)


# ----------------------------------------------------------------- storage
class TestStorageWorkload:
    def test_ops_shapes_and_determinism(self):
        import numpy as np
        from repro.workloads import StorageWorkload

        wl = StorageWorkload(rng=np.random.default_rng(3), keyspace=8,
                             read_fraction=0.5)
        ops = wl.ops(50)
        assert len(ops) == 50
        assert {o.kind for o in ops} <= {"put", "get"}
        assert all(o.key.startswith("k/") for o in ops)
        wl2 = StorageWorkload(rng=np.random.default_rng(3), keyspace=8,
                              read_fraction=0.5)
        assert wl2.ops(50) == ops

    def test_seed_ops_cover_keyspace(self):
        import numpy as np
        from repro.workloads import StorageWorkload

        wl = StorageWorkload(rng=np.random.default_rng(0), keyspace=5)
        seeds = wl.seed_ops()
        assert [o.key for o in seeds] == wl.keys()
        assert all(o.kind == "put" for o in seeds)

    def test_zipf_mode_skews_keys(self):
        import numpy as np
        from repro.workloads import StorageWorkload

        wl = StorageWorkload(rng=np.random.default_rng(1), keyspace=32,
                             key_mode="zipf", zipf_s=1.4, read_fraction=1.0)
        ops = wl.ops(400)
        from collections import Counter
        counts = Counter(o.key for o in ops)
        top = counts.most_common(1)[0][1]
        assert top > 400 / 32 * 3  # the hot key is well above uniform share

    def test_validation(self):
        import numpy as np
        import pytest
        from repro.workloads import StorageWorkload

        with pytest.raises(ValueError):
            StorageWorkload(rng=np.random.default_rng(0), keyspace=0)
        with pytest.raises(ValueError):
            StorageWorkload(rng=np.random.default_rng(0), read_fraction=1.5)
        wl = StorageWorkload(rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            wl.ops(0)
