"""Units for the job model, the grid workload generator, and the
scheduling metrics shapes."""

import numpy as np
import pytest

from repro.compute.job import ComputeConfig, JobSpec, checkpoint_key
from repro.metrics.scheduling import SchedulingStats
from repro.services.discovery import Constraint
from repro.workloads import JobWorkload


# ------------------------------------------------------------- job model
def test_job_spec_validation():
    with pytest.raises(ValueError):
        JobSpec(job_id=1, cpu_demand=0)
    with pytest.raises(ValueError):
        JobSpec(job_id=1, work=0)
    with pytest.raises(ValueError):
        JobSpec(job_id=1, deps=(1,))
    with pytest.raises(ValueError):
        JobSpec(job_id=1, submit_at=-1.0)


def test_compute_config_validation():
    with pytest.raises(ValueError):
        ComputeConfig(heartbeat_interval=0)
    with pytest.raises(ValueError):
        ComputeConfig(heartbeat_timeout=1.0, heartbeat_interval=5.0)
    with pytest.raises(ValueError):
        ComputeConfig(checkpoint_interval=0)
    with pytest.raises(ValueError):
        ComputeConfig(steal_interval=-1)
    with pytest.raises(ValueError):
        ComputeConfig(lease_timeout=1.0)
    with pytest.raises(ValueError):
        ComputeConfig(max_attempts=0)
    assert not ComputeConfig(checkpoint_interval=None).checkpointing
    assert not ComputeConfig(steal_interval=None).stealing
    assert ComputeConfig().checkpointing and ComputeConfig().stealing


def test_checkpoint_key_is_stable_and_distinct():
    assert checkpoint_key(7) == checkpoint_key(7)
    assert checkpoint_key(7) != checkpoint_key(8)


# -------------------------------------------------------------- workload
def test_workload_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        JobWorkload(rng=rng, arrival_rate=0)
    with pytest.raises(ValueError):
        JobWorkload(rng=rng, demand_classes=(1.0,), demand_weights=(0.5, 0.5))
    with pytest.raises(ValueError):
        JobWorkload(rng=rng, constrained_fraction=1.5)
    with pytest.raises(ValueError):
        JobWorkload(rng=rng, work_mean=0)
    with pytest.raises(ValueError):
        JobWorkload(rng=rng).jobs(0)
    with pytest.raises(ValueError):
        JobWorkload(rng=rng).dag_batch(())


def test_workload_arrivals_monotonic_and_ids_unique():
    wl = JobWorkload(rng=np.random.default_rng(3), arrival_rate=2.0)
    specs = wl.jobs(50)
    assert len({s.job_id for s in specs}) == 50
    times = [s.submit_at for s in specs]
    assert all(b > a for a, b in zip(times, times[1:]))
    assert all(s.work >= 1.0 and s.cpu_demand > 0 for s in specs)


def test_workload_constrained_fraction():
    wl = JobWorkload(rng=np.random.default_rng(5), constrained_fraction=1.0)
    assert all(s.constraint != Constraint() for s in wl.jobs(20))
    wl0 = JobWorkload(rng=np.random.default_rng(5), constrained_fraction=0.0)
    assert all(s.constraint == Constraint() for s in wl0.jobs(20))


def test_dag_batch_layering():
    wl = JobWorkload(rng=np.random.default_rng(7))
    specs = wl.dag_batch((3, 2, 1), submit_at=4.0, work=10.0)
    assert len(specs) == 6
    assert all(s.submit_at == 4.0 and s.work == 10.0 for s in specs)
    by_id = {s.job_id: s for s in specs}
    layer0 = [s for s in specs if not s.deps]
    assert len(layer0) == 3
    layer1 = [s for s in specs if set(s.deps) == {s.job_id for s in layer0}]
    assert len(layer1) == 2
    sink = [s for s in specs if set(s.deps) == {s.job_id for s in layer1}]
    assert len(sink) == 1
    # Acyclic by construction: deps always refer to earlier ids.
    assert all(d < s.job_id for s in specs for d in s.deps)
    assert all(d in by_id for s in specs for d in s.deps)


def test_ids_continue_across_draws():
    wl = JobWorkload(rng=np.random.default_rng(9))
    a = wl.jobs(5)
    b = wl.dag_batch((2, 1))
    assert len({s.job_id for s in a + b}) == 8


# --------------------------------------------------------------- metrics
def test_scheduling_stats_derived_quantities():
    s = SchedulingStats(submitted=10, completed=8, failed=2,
                        useful_work=80.0, executed_work=100.0,
                        placement_hops=30, placements=10)
    assert s.completion_rate == pytest.approx(0.8)
    assert s.wasted_work == pytest.approx(20.0)
    assert s.goodput == pytest.approx(0.8)
    assert s.mean_placement_hops == pytest.approx(3.0)


def test_scheduling_stats_edge_cases():
    empty = SchedulingStats(submitted=0, completed=0)
    assert empty.completion_rate == 0.0
    assert empty.wasted_work == 0.0
    assert empty.mean_placement_hops == 0.0
    done_free = SchedulingStats(submitted=1, completed=1, executed_work=0.0)
    assert done_free.goodput == 1.0
    # Accounting slack must never produce negative waste or goodput > 1.
    under = SchedulingStats(submitted=1, completed=1,
                            useful_work=10.0, executed_work=9.5)
    assert under.wasted_work == 0.0
    assert under.goodput == 1.0


def test_scheduling_stats_serialisation():
    s = SchedulingStats(submitted=4, completed=4, useful_work=40.0,
                        executed_work=44.0, reexecutions=1,
                        checkpoints_written=9, steals=2, leases_expired=1)
    d = s.to_dict()
    assert d["wasted_work"] == pytest.approx(4.0)
    assert d["completion_rate"] == 1.0
    assert {"makespan", "goodput", "steals", "leases_expired",
            "failovers"} <= set(d)
    rows = s.summary_rows()
    assert any("wasted" in name for name, _ in rows)
