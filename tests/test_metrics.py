"""Unit + property tests for series, histograms and batch stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lookup import LookupAlgorithm, LookupResult
from repro.metrics import HopHistogram, Series, summarize_batch


class TestSeries:
    def test_add_and_read(self):
        s = Series("t")
        s.add(1.0, 2.0)
        s.add(2.0, 4.0)
        assert list(s.xs()) == [1.0, 2.0]
        assert list(s.ys()) == [2.0, 4.0]
        assert len(s) == 2

    def test_x_must_not_decrease(self):
        s = Series("t")
        s.add(2.0, 1.0)
        with pytest.raises(ValueError):
            s.add(1.0, 1.0)

    def test_y_at_and_interp(self):
        s = Series("t")
        s.add(0.0, 0.0)
        s.add(10.0, 100.0)
        assert s.y_at(10.0) == 100.0
        assert s.interp(5.0) == 50.0
        with pytest.raises(KeyError):
            s.y_at(3.0)

    def test_aggregates(self):
        s = Series("t")
        for x, y in [(0, 1), (1, 5), (2, 3)]:
            s.add(x, y)
        assert s.max_y() == 5.0
        assert s.mean_y() == 3.0

    def test_monotone_check(self):
        s = Series("t")
        for x, y in [(0, 1), (1, 2), (2, 1.9)]:
            s.add(x, y)
        assert not s.monotone_increasing()
        assert s.monotone_increasing(slack=0.2)

    def test_empty_interp_raises(self):
        with pytest.raises(ValueError):
            Series("t").interp(1.0)


class TestHopHistogram:
    def test_percentages(self):
        h = HopHistogram()
        h.add_many([1, 1, 2, 3])
        assert h.percentage(1) == 50.0
        assert h.cumulative_percentage(2) == 75.0
        assert h.total == 4

    def test_mode_and_peak(self):
        h = HopHistogram()
        h.add_many([5, 5, 5, 3, 3, 8])
        assert h.mode() == 5
        assert h.peak_percentage() == pytest.approx(50.0)

    def test_mean(self):
        h = HopHistogram()
        h.add_many([2, 4])
        assert h.mean() == 3.0

    def test_empty(self):
        h = HopHistogram()
        assert h.percentage(1) == 0.0
        assert h.mode() == 0
        assert h.mean() == 0.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            HopHistogram().add(-1)

    def test_row_shape(self):
        h = HopHistogram()
        h.add_many([0, 1, 35])
        row = h.row(max_hops=30)
        assert len(row) == 31
        assert row[0] == pytest.approx(100 / 3)

    @given(hops=st.lists(st.integers(0, 40), min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_property_percentages_sum_to_100(self, hops):
        h = HopHistogram()
        h.add_many(hops)
        total = sum(h.percentage(k) for k in h.counts)
        assert total == pytest.approx(100.0)
        assert h.cumulative_percentage(max(hops)) == pytest.approx(100.0)


def _result(found, hops, timed_out=False):
    return LookupResult(request_id=1, origin=1, target=2,
                        algo=LookupAlgorithm.GREEDY, found=found, hops=hops,
                        timed_out=timed_out)


class TestSummarizeBatch:
    def test_basic_stats(self):
        results = [_result(True, 3), _result(True, 5), _result(False, 7)]
        s = summarize_batch(results)
        assert s.issued == 3 and s.found == 2 and s.failed == 1
        assert s.failure_rate == pytest.approx(1 / 3)
        assert s.success_rate == pytest.approx(2 / 3)
        assert s.hops_mean == 4.0
        assert s.failed_hops_max == 7

    def test_explicit_failed_hops(self):
        results = [_result(True, 3), _result(False, 0, timed_out=True)]
        s = summarize_batch(results, failed_hop_counts=[12])
        assert s.failed_hops_max == 12 and s.failed_hops_min == 12
        assert s.timed_out == 1

    def test_all_failed(self):
        s = summarize_batch([_result(False, 2)])
        assert s.hops_mean == 0.0 and s.failure_rate == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize_batch([])

    def test_histogram_contains_successes_only(self):
        results = [_result(True, 2), _result(True, 2), _result(False, 9)]
        s = summarize_batch(results)
        assert s.hops_histogram.total == 2
        assert s.hops_histogram.percentage(2) == 100.0
