"""Unit tests for latency models."""

import numpy as np
import pytest

from repro.sim.latency import ConstantLatency, LogNormalLatency, UniformLatency


def test_constant_returns_value():
    m = ConstantLatency(0.02)
    assert m.sample(1, 2) == 0.02
    assert m.expected() == 0.02


def test_constant_rejects_nonpositive():
    with pytest.raises(ValueError):
        ConstantLatency(0.0)


def test_uniform_within_bounds():
    m = UniformLatency(np.random.default_rng(0), low=0.01, high=0.05)
    samples = [m.sample(0, 1) for _ in range(500)]
    assert all(0.01 <= s <= 0.05 for s in samples)
    assert m.expected() == pytest.approx(0.03)


def test_uniform_rejects_bad_bounds():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        UniformLatency(rng, low=0.0, high=0.05)
    with pytest.raises(ValueError):
        UniformLatency(rng, low=0.05, high=0.01)


def test_lognormal_above_base():
    m = LogNormalLatency(np.random.default_rng(0), base=0.002)
    assert all(m.sample(0, 1) > 0.002 for _ in range(200))


def test_lognormal_mean_close_to_expected():
    m = LogNormalLatency(np.random.default_rng(0), mu=-4.0, sigma=0.5, base=0.0)
    samples = np.array([m.sample(0, 1) for _ in range(20000)])
    assert float(samples.mean()) == pytest.approx(m.expected(), rel=0.05)


def test_lognormal_rejects_bad_params():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        LogNormalLatency(rng, sigma=0.0)
    with pytest.raises(ValueError):
        LogNormalLatency(rng, base=-1.0)


def test_reprs_are_informative():
    rng = np.random.default_rng(0)
    assert "0.01" in repr(ConstantLatency(0.01))
    assert "Uniform" in repr(UniformLatency(rng))
    assert "LogNormal" in repr(LogNormalLatency(rng))
