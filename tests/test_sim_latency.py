"""Unit tests for latency models."""

import numpy as np
import pytest

from repro.sim.latency import ConstantLatency, LogNormalLatency, UniformLatency


def test_constant_returns_value():
    m = ConstantLatency(0.02)
    assert m.sample(1, 2) == 0.02
    assert m.expected() == 0.02


def test_constant_rejects_nonpositive():
    with pytest.raises(ValueError):
        ConstantLatency(0.0)


def test_uniform_within_bounds():
    m = UniformLatency(np.random.default_rng(0), low=0.01, high=0.05)
    samples = [m.sample(0, 1) for _ in range(500)]
    assert all(0.01 <= s <= 0.05 for s in samples)
    assert m.expected() == pytest.approx(0.03)


def test_uniform_rejects_bad_bounds():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        UniformLatency(rng, low=0.0, high=0.05)
    with pytest.raises(ValueError):
        UniformLatency(rng, low=0.05, high=0.01)


def test_lognormal_above_base():
    m = LogNormalLatency(np.random.default_rng(0), base=0.002)
    assert all(m.sample(0, 1) > 0.002 for _ in range(200))


def test_lognormal_mean_close_to_expected():
    m = LogNormalLatency(np.random.default_rng(0), mu=-4.0, sigma=0.5, base=0.0)
    samples = np.array([m.sample(0, 1) for _ in range(20000)])
    assert float(samples.mean()) == pytest.approx(m.expected(), rel=0.05)


def test_lognormal_rejects_bad_params():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        LogNormalLatency(rng, sigma=0.0)
    with pytest.raises(ValueError):
        LogNormalLatency(rng, base=-1.0)


def test_reprs_are_informative():
    rng = np.random.default_rng(0)
    assert "0.01" in repr(ConstantLatency(0.01))
    assert "Uniform" in repr(UniformLatency(rng))
    assert "LogNormal" in repr(LogNormalLatency(rng))


# ------------------------------------------- expected() contract (abstract)

def _latency_models():
    """Every shipped concrete LatencyModel, constructed with defaults."""
    from repro.sim.conditions import GeoLatency, StragglerLatency
    return [
        ConstantLatency(0.01),
        UniformLatency(np.random.default_rng(0)),
        LogNormalLatency(np.random.default_rng(0)),
        GeoLatency(np.random.default_rng(0)),
        StragglerLatency(ConstantLatency(0.01), {1}, 2.0),
    ]


def test_every_shipped_model_implements_expected():
    """expected() is abstract on purpose: timeout sizing calls it for
    every model, so each shipped subclass must answer with a positive
    finite scalar."""
    import repro.sim as sim_pkg
    from repro.sim.latency import LatencyModel

    models = _latency_models()
    shipped = {type(m).__name__ for m in models}
    exported = {name for name in sim_pkg.__all__
                if isinstance(getattr(sim_pkg, name), type)
                and issubclass(getattr(sim_pkg, name), LatencyModel)
                and getattr(sim_pkg, name) is not LatencyModel}
    assert exported <= shipped, f"model(s) missing from the registry: " \
        f"{sorted(exported - shipped)}"
    for m in models:
        e = m.expected()
        assert np.isfinite(e) and e > 0, f"{type(m).__name__}.expected()"


def test_expected_consistent_with_samples():
    for m in _latency_models():
        samples = [m.sample(1, 2) for _ in range(2000)]
        assert np.mean(samples) <= 5 * m.expected()


def test_latency_model_without_expected_cannot_instantiate():
    from repro.sim.latency import LatencyModel

    class Partial(LatencyModel):
        def sample(self, src, dst):
            return 0.01

    with pytest.raises(TypeError, match="expected"):
        Partial()


def test_latency_model_without_sample_cannot_instantiate():
    from repro.sim.latency import LatencyModel

    class Partial(LatencyModel):
        def expected(self):
            return 0.01

    with pytest.raises(TypeError, match="sample"):
        Partial()
