"""Unit tests for the flooding baseline and the random overlay."""

import numpy as np
import pytest

from repro.baselines.flood import FloodNetwork
from repro.baselines.random_graph import average_degree, random_overlay


class TestRandomOverlay:
    def test_symmetric(self):
        rng = np.random.default_rng(0)
        adj = random_overlay(list(range(50)), rng, degree=4)
        for a, neighbours in adj.items():
            for b in neighbours:
                assert a in adj[b]

    def test_connected(self):
        import networkx as nx
        rng = np.random.default_rng(1)
        adj = random_overlay(list(range(100)), rng, degree=3)
        g = nx.Graph((a, b) for a, ns in adj.items() for b in ns)
        assert nx.is_connected(g)

    def test_average_degree_close(self):
        rng = np.random.default_rng(2)
        adj = random_overlay(list(range(200)), rng, degree=6)
        assert 5.0 <= average_degree(adj) <= 7.0

    def test_no_self_loops(self):
        rng = np.random.default_rng(3)
        adj = random_overlay(list(range(40)), rng, degree=4)
        for a, ns in adj.items():
            assert a not in ns

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            random_overlay([1], rng)
        with pytest.raises(ValueError):
            random_overlay([1, 2], rng, degree=1)
        with pytest.raises(ValueError):
            random_overlay([1, 1, 2], rng)


class TestFloodNetwork:
    @pytest.fixture(scope="class")
    def net(self):
        net = FloodNetwork(seed=4, degree=4, default_ttl=7)
        net.build(128)
        return net

    def test_lookup_within_horizon(self, net):
        rng = np.random.default_rng(0)
        pairs = [tuple(int(x) for x in rng.choice(net.ids, 2, replace=False))
                 for _ in range(25)]
        res = net.run_lookup_batch(pairs)
        assert sum(r.found for r in res) >= 22  # TTL 7 covers ~4^7 >> n

    def test_small_ttl_misses_far_targets(self):
        net = FloodNetwork(seed=5, degree=3, default_ttl=1)
        net.build(128)
        rng = np.random.default_rng(1)
        pairs = [tuple(int(x) for x in rng.choice(net.ids, 2, replace=False))
                 for _ in range(30)]
        res = net.run_lookup_batch(pairs, ttl=1)
        assert sum(r.found for r in res) < 15  # only direct neighbours reachable

    def test_message_cost_explodes(self, net):
        before = net.messages_sent()
        rng = np.random.default_rng(2)
        o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
        net.run_lookup_batch([(o, t)])
        cost = net.messages_sent() - before
        assert cost > 50  # two orders of magnitude above TreeP's ~7

    def test_duplicate_suppression(self, net):
        """Each node forwards a given request at most once: cost is bounded
        by edges, not by paths."""
        before = net.messages_sent()
        rng = np.random.default_rng(3)
        o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
        net.run_lookup_batch([(o, t)])
        cost = net.messages_sent() - before
        edges = sum(len(n.neighbours) for n in net.nodes.values())
        assert cost <= edges + 10

    def test_lookup_to_self(self, net):
        res = net.nodes[net.ids[0]].issue_lookup(net.ids[0])
        net.sim.drain()
        assert res.result.found and res.result.hops == 0

    def test_failures_shrink_coverage(self):
        net = FloodNetwork(seed=6, degree=4, default_ttl=5)
        net.build(128)
        rng = np.random.default_rng(4)
        victims = [int(v) for v in rng.choice(net.ids, 64, replace=False)]
        net.fail_nodes(victims)
        net.repair_step()
        alive = net.alive_ids()
        pairs = [tuple(int(x) for x in rng.choice(alive, 2, replace=False))
                 for _ in range(30)]
        res = net.run_lookup_batch(pairs)
        assert sum(r.found for r in res) < 30

    def test_build_twice_rejected(self):
        net = FloodNetwork(seed=1)
        net.build(8)
        with pytest.raises(RuntimeError):
            net.build(8)
