"""Unit tests for ASCII rendering."""

import pytest

from repro.metrics.series import Series
from repro.viz.ascii import line_chart, surface_table, table


def make_series(label="s", pts=((0, 0), (50, 10), (100, 30))):
    s = Series(label)
    for x, y in pts:
        s.add(float(x), float(y))
    return s


class TestLineChart:
    def test_contains_marks_and_legend(self):
        out = line_chart([make_series("alpha")], title="T")
        assert "T" in out
        assert "*" in out
        assert "alpha" in out

    def test_multiple_series_distinct_marks(self):
        out = line_chart([make_series("a"), make_series("b", ((0, 5), (100, 5)))])
        assert "*" in out and "o" in out

    def test_axis_bounds_shown(self):
        out = line_chart([make_series()], x_label="x%")
        assert "0.0" in out and "100.0" in out and "x%" in out

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart([])
        with pytest.raises(ValueError):
            line_chart([Series("empty")])

    def test_flat_series_no_crash(self):
        out = line_chart([make_series("flat", ((0, 5), (10, 5)))])
        assert "flat" in out

    def test_single_point(self):
        out = line_chart([make_series("pt", ((5, 2),))])
        assert "pt" in out


class TestTable:
    def test_alignment_and_floats(self):
        out = table(["a", "b"], [[1, 2.5], [30, 4.25]])
        lines = out.splitlines()
        assert "a" in lines[0] and "b" in lines[0]
        assert "2.50" in out and "4.25" in out

    def test_title(self):
        assert table(["x"], [[1]], title="TT").startswith("TT")

    def test_empty_rows(self):
        out = table(["col"], [])
        assert "col" in out


class TestSurfaceTable:
    def test_rows_and_columns(self):
        out = surface_table([5.0, 10.0], [[50.0, 30.0, 20.0], [40.0, 40.0, 20.0]],
                            max_hops=2, title="S")
        assert "S" in out
        assert "dead%" in out
        assert "50" in out and "5" in out

    def test_trims_to_max_hops(self):
        row = list(range(31))
        out = surface_table([5.0], [row], max_hops=3)
        header = out.splitlines()[0]
        assert header.rstrip().endswith("3")
        assert "30" not in header
