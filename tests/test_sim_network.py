"""Unit tests for the datagram network."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Datagram, Network, Process


class Echo(Process):
    """Records everything it receives."""

    def __init__(self, address):
        super().__init__(address)
        self.inbox = []

    def on_datagram(self, dgram: Datagram) -> None:
        self.inbox.append((dgram.src, dgram.payload))


def make_net(loss=0.0):
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01), loss=loss,
                  rng=np.random.default_rng(0))
    return sim, net


def test_basic_delivery():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    a.send(2, "hello")
    sim.run()
    assert b.inbox == [(1, "hello")]
    assert net.stats.delivered == 1


def test_latency_delays_delivery():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    a.send(2, "x")
    sim.run()
    assert sim.now == pytest.approx(0.01)


def test_duplicate_address_rejected():
    _, net = make_net()
    net.register(Echo(1))
    with pytest.raises(ValueError, match="already registered"):
        net.register(Echo(1))


def test_send_to_unknown_is_dropped():
    sim, net = make_net()
    a = Echo(1)
    net.register(a)
    a.send(99, "void")
    sim.run()
    assert net.stats.dropped_unknown == 1
    assert net.stats.delivered == 0


def test_down_destination_drops():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    net.set_down(2)
    a.send(2, "x")
    sim.run()
    assert b.inbox == []
    assert net.stats.dropped_down == 1


def test_down_source_cannot_send():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    net.set_down(1)
    net.send(1, 2, "x")
    sim.run()
    assert b.inbox == []
    assert net.stats.dropped_down == 1


def test_crash_mid_flight_drops():
    """A packet in flight to a node that dies before delivery is lost."""
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    a.send(2, "x")
    sim.schedule(0.005, lambda: net.set_down(2))
    sim.run()
    assert b.inbox == []
    assert net.stats.dropped_down == 1


def test_set_up_restores_delivery():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    net.set_down(2)
    net.set_up(2)
    a.send(2, "x")
    sim.run()
    assert b.inbox == [(1, "x")]


def test_loss_drops_fraction():
    sim, net = make_net(loss=0.5)
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    for _ in range(400):
        a.send(2, "x")
    sim.run()
    assert 120 <= len(b.inbox) <= 280  # ~200 expected
    assert net.stats.dropped_loss == 400 - len(b.inbox)


def test_invalid_loss_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, loss=1.0)
    with pytest.raises(ValueError):
        Network(sim, loss=-0.1)


def test_partition_filter_blocks():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    net.partition_filter = lambda s, d: (s, d) == (1, 2)
    a.send(2, "blocked")
    b.send(1, "allowed")
    sim.run()
    assert a.inbox == [(2, "allowed")]
    assert b.inbox == []
    assert net.stats.dropped_partition == 1


def test_by_type_counter():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    a.send(2, "s")
    a.send(2, 42)
    sim.run()
    assert net.stats.by_type == {"str": 1, "int": 1}


def test_wire_size_accounting():
    class Sized:
        wire_size = 100

    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    a.send(2, Sized())
    sim.run()
    assert net.stats.bytes_sent == 100


def test_delivery_hook_observes():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    seen = []
    net.delivery_hook = lambda d: seen.append(d.payload)
    a.send(2, "observed")
    sim.run()
    assert seen == ["observed"]


def test_unregister_removes():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    net.unregister(2)
    assert 2 not in net
    a.send(2, "x")
    sim.run()
    assert net.stats.dropped_unknown == 1


def test_up_addresses_and_counts():
    _, net = make_net()
    for i in range(4):
        net.register(Echo(i))
    net.set_down(2)
    assert sorted(net.up_addresses()) == [0, 1, 3]
    assert net.down_count() == 1
    assert len(net) == 4


def test_reset_stats():
    sim, net = make_net()
    a, b = Echo(1), Echo(2)
    net.register(a)
    net.register(b)
    a.send(2, "x")
    sim.run()
    net.reset_stats()
    assert net.stats.sent == 0 and net.stats.delivered == 0


def test_drop_total():
    sim, net = make_net()
    a = Echo(1)
    net.register(a)
    a.send(99, "x")
    sim.run()
    assert net.stats.drop_total() == 1
