"""Satellite: cross-process determinism of campaign repetitions.

A campaign worker is a *spawned* fresh interpreter — no inherited RNG
state, no import-order luck.  This pins the acceptance property: the
same (scenario, seed, params) run in-process and inside a spawned
campaign worker produces **bit-identical** deterministic metrics and
checks (only wall-clock fields — wall_time_s, unix_time, git_sha and
throughput-style metrics — may differ).  ``scale_lookup --smoke`` is the
subject, per the issue; a serial same-process campaign is pinned too, so
a failure isolates to the process boundary rather than the aggregator.
"""

import pytest

import repro.bench.scenarios  # noqa: F401  (populates the registry)
from repro.bench import (
    deterministic_view,
    parse_campaign,
    run_campaign,
    run_scenario,
)

SPEC = {"campaign": {"name": "det", "scenario": "scale_lookup",
                     "seeds": [42]}}


@pytest.fixture(scope="module")
def in_process_view():
    result = run_scenario("scale_lookup", seed=42, smoke=True)
    return deterministic_view(result.to_dict())


def _campaign_repetition_view(workers):
    campaign = run_campaign(parse_campaign(SPEC), smoke=True,
                            workers=workers)
    (point,) = campaign.points
    (rep,) = point["repetitions"]
    assert rep["seed"] == 42 and rep["smoke"] is True
    return deterministic_view(rep)


def test_spawned_worker_matches_in_process_run(in_process_view):
    """The acceptance property: the per-repetition envelope coming back
    from a spawn worker is bit-identical on every deterministic field to
    a single-process ``run_scenario`` at the same seed."""
    spawned = _campaign_repetition_view(workers=2)
    assert spawned == in_process_view
    # the view kept real content — this is not a vacuous {} == {}
    assert spawned["metrics"] and spawned["checks"]
    assert spawned["scenario"] == "scale_lookup"


def test_serial_campaign_matches_in_process_run(in_process_view):
    # control arm: same property without the process boundary
    assert _campaign_repetition_view(workers=1) == in_process_view
