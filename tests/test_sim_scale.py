"""Scale-readiness regressions for the simulator hot paths (PR 5).

Four contracts the 10k-node optimization work must never break:

1. **Queue ordering/stability** — under 100k mixed schedule/cancel
   operations the heap pops strictly by ``(time, seq)`` and the live
   count stays exact.
2. **Bounded tombstones** — cancelled events may linger lazily, but the
   physical heap stays within a constant factor of the live count, even
   under the pathological ``ctx.every`` start/stop churn the service
   registry generates (the pre-PR queue grew without bound here).
3. **Determinism** — the optimizations (candidate-order caches,
   vectorised argmin, blocked latency sampling, heap compaction) must not
   change simulation semantics: a fixed-seed workload reproduces a digest
   pinned from the *pre-optimization* tree, byte for byte.
4. **Seed-pinned scenario metrics** — three representative bench
   scenarios reproduce the exact deterministic metric values recorded on
   the pre-optimization tree (wall-clock throughput metrics excluded).
"""

import hashlib

import numpy as np
import pytest

from repro.core.config import TreePConfig
from repro.core.repair import PAPER_POLICY, apply_failure_step
from repro.core.treep import TreePNetwork
from repro.sim.engine import Simulator
from repro.sim.events import EventQueue


# ------------------------------------------------------------ queue ordering

def test_ordering_and_liveness_under_100k_mixed_ops():
    """100k schedule/cancel ops: pops come out in exact (time, seq) order."""
    rng = np.random.default_rng(12345)
    q = EventQueue()
    fired = []
    live = {}  # seq -> time, for events not yet cancelled
    events = {}
    pool = []  # seqs ever pushed; may contain stale entries (O(1) pick)
    for op in range(100_000):
        roll = rng.random()
        if roll < 0.6 or not events:
            t = float(rng.uniform(0, 1000))
            ev = q.push(t, lambda: None, label=f"op{op}")
            events[ev.seq] = ev
            live[ev.seq] = t
            pool.append(ev.seq)
        elif roll < 0.9:
            # cancel a random pending event (idempotent on repeats)
            seq = pool[int(rng.integers(len(pool)))]
            if seq in events:
                events[seq].cancel()
                events[seq].cancel()  # idempotent
                live.pop(seq, None)
                del events[seq]
        else:
            ev = q.pop()
            if ev is not None:
                fired.append((ev.time, ev.seq))
                live.pop(ev.seq, None)
                events.pop(ev.seq, None)
        assert len(q) == len(live)
    while True:
        ev = q.pop()
        if ev is None:
            break
        fired.append((ev.time, ev.seq))
        live.pop(ev.seq, None)
    assert not live
    # Each drain segment pops in sorted (time, seq) order; since pushes are
    # interleaved we check the global invariant pairwise per pop run: any
    # later pop must not precede an earlier one that was poppable then.
    # The strong end-to-end check: the final full drain is totally sorted.
    tail = fired[-1000:]
    assert tail == sorted(tail)


def test_same_time_events_fire_in_scheduling_order():
    q = EventQueue()
    order = []
    for i in range(50):
        q.push(1.0, lambda i=i: order.append(i))
    while True:
        ev = q.pop()
        if ev is None:
            break
        ev.callback()
    assert order == list(range(50))


# --------------------------------------------------------- bounded tombstones

def test_heap_stays_bounded_under_schedule_cancel_churn():
    """The tombstone-compaction regression: cancel-heavy churn must not
    accumulate dead entries until their far-future fire times arrive."""
    q = EventQueue()
    keep = [q.push(10_000.0 + i, lambda: None) for i in range(10)]
    for i in range(100_000):
        ev = q.push(1_000.0 + i, lambda: None)  # far future
        ev.cancel()
        assert q.heap_size <= max(2 * len(q), 64), (
            f"heap grew to {q.heap_size} with only {len(q)} live events")
    assert len(q) == len(keep)


def test_heap_stays_bounded_under_ctx_every_timer_churn():
    """`ctx.every` churn from the service registry (cluster/registry.py):
    a service arming and stopping node-scoped periodic tasks far faster
    than their periods elapse leaves cancelled events in the heap; the
    queue must keep its physical size within a constant factor of live."""
    from repro.cluster import Cluster

    cluster = Cluster(config=TreePConfig.paper_case1(), seed=7).build(24)
    net = cluster.net
    sim = net.sim
    queue = sim._queue
    state = cluster.state
    svc_ctx = None

    from repro.cluster.service import Service

    class TimerChurner(Service):
        name = "timer-churner"

        def on_attach(self, ctx):
            nonlocal svc_ctx
            svc_ctx = ctx

    state.attach(TimerChurner())
    assert svc_ctx is not None
    for round_no in range(5_000):
        # long intervals: none of these ever fires before being stopped
        timer = svc_ctx.every(3600.0, lambda: None,
                              label=f"churn{round_no}")
        timer.stop()
        assert queue.heap_size <= max(2 * len(queue), 64), (
            f"round {round_no}: heap {queue.heap_size} vs live {len(queue)}")
    cluster.shutdown()


# --------------------------------------------------------------- determinism

#: SHA-256 of the fixed-seed workload trace below, pinned on the
#: PRE-optimization tree (PR 4 HEAD).  The hot-path work must reproduce it
#: exactly: same deliveries at the same virtual times, same lookup results,
#: same message counts.
PINNED_TRACE_DIGEST = (
    "92fc22e4cfca21176e9597270515a8e33593d491bd86afd8d3864ab468274428")


def trace_digest(n=128, seed=7, lookups=60):
    """Digest every delivered datagram + every lookup outcome of a fixed
    workload: build, three algorithm sweeps, 20% failure + repair, retry."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    net.build(n)
    h = hashlib.sha256()

    def observe(dgram):
        h.update(
            f"{net.sim.now:.9f}|{dgram.src}|{dgram.dst}|"
            f"{type(dgram.payload).__name__}".encode())

    net.network.delivery_hook = observe
    rng = np.random.default_rng(3)
    pairs = [tuple(int(x) for x in rng.choice(net.ids, 2, replace=False))
             for _ in range(lookups)]
    for algo in ("G", "NG", "NGSA"):
        for r in net.run_lookup_batch(pairs, algo):
            h.update(f"{r.request_id}|{r.found}|{r.hops}|{r.path}".encode())
    victims = [int(v) for v in rng.choice(net.ids, n // 5, replace=False)]
    net.fail_nodes(victims)
    apply_failure_step(net, victims, PAPER_POLICY)
    alive = net.alive_ids()
    pairs = [tuple(int(x) for x in rng.choice(alive, 2, replace=False))
             for _ in range(lookups)]
    for r in net.run_lookup_batch(pairs, "G"):
        h.update(f"{r.request_id}|{r.found}|{r.hops}|{r.path}".encode())
    h.update(f"{net.sim.events_processed}|{net.network.stats.sent}|"
             f"{net.network.stats.delivered}".encode())
    return h.hexdigest()


def test_trace_digest_matches_pre_optimization_pin():
    assert trace_digest() == PINNED_TRACE_DIGEST


def test_trace_digest_is_run_to_run_deterministic():
    assert trace_digest(n=64, seed=11, lookups=30) == \
        trace_digest(n=64, seed=11, lookups=30)


# ------------------------------------------------- seed-pinned scenario metrics

#: Deterministic smoke metrics of three representative scenarios, captured
#: on the PRE-optimization tree.  Wall-clock metrics (ops/sec, build
#: seconds) are excluded — they are *supposed* to move; everything else is
#: simulation semantics and must not.
WALLCLOCK_METRICS = {
    "build_seconds", "lookups_per_second",
    "put_ops_per_second", "get_ops_per_second",
}

PINNED_SMOKE_METRICS = {
    "core": {
        "connections_mean": 4.12109375,
        "leaf_entries_mean": 6.087912087912088,
        "lookup_success_rate": 1.0,
        "table_entries_max": 30.0,
        "table_entries_mean": 8.94921875,
    },
    "storage": {
        "ae_repairs_first_sweep": 61.0,
        "ae_under_replicated_first_sweep": 31.0,
        "churn_readable_fraction": 1.0,
        "min_rf_after_churn": 3.0,
        "min_rf_after_sweep": 3.0,
    },
    "ablation_fallback": {
        "fallback_off_success": 0.9125,
        "fallback_on_hops": 2.8493150684931505,
        "fallback_on_success": 0.9125,
    },
}


@pytest.mark.parametrize("name", sorted(PINNED_SMOKE_METRICS))
def test_scenario_metrics_bit_identical_at_fixed_seed(name):
    from repro.bench import run_scenario
    import repro.bench.scenarios  # noqa: F401  (populates the registry)

    result = run_scenario(name, smoke=True)
    produced = {k: v for k, v in result.metrics.items()
                if k not in WALLCLOCK_METRICS}
    assert produced == PINNED_SMOKE_METRICS[name], (
        f"{name}: deterministic metrics moved — the optimization changed "
        "simulation semantics")


# ------------------------------------------------------------ huge ID spaces

def test_greedy_lookups_work_beyond_float64_exact_extent():
    """Extents past 2**53 must keep the exact scalar loop — the vectorised
    argmin would round int64 ids in float64 and could pick a different hop
    (2**60 is int64-safe for id assignment but not float64-exact)."""
    import dataclasses

    from repro.core.ids import IdSpace

    big = dataclasses.replace(TreePConfig.paper_case1(),
                              space=IdSpace(extent=2**60))
    net = TreePNetwork(config=big, seed=5)
    net.build(96)
    rng = np.random.default_rng(2)
    pairs = [tuple(int(x) for x in rng.choice(net.ids, 2, replace=False))
             for _ in range(40)]
    results = net.run_lookup_batch(pairs, "G")
    assert sum(r.found for r in results) >= 39  # greedy allows rare dead ends


# ------------------------------------------------------------- engine sanity

def test_drain_inline_loop_matches_step_semantics():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(0.5, lambda: fired.append(0))
    ev = sim.schedule(2.0, lambda: fired.append(2))
    ev.cancel()
    assert sim.drain() == 2
    assert fired == [0, 1]
    assert sim.now == 1.0
