"""Perfetto export: valid Chrome trace-event JSON, matched and strictly
nested B/E pairs per (pid, tid), monotonic timestamps, instant events,
and lane overflow for overlapping same-node spans."""

import json

from repro.bench.runner import run_scenario
from repro.cluster import Cluster
from repro.obs import ObsHub, TraceReader, export_perfetto, trace_events, write_store


def _export(hub, tmp_path, name="t"):
    store = str(tmp_path / f"{name}.npz")
    write_store(store, {"run-000": hub})
    out = str(tmp_path / f"{name}.json")
    with TraceReader(store) as reader:
        export_perfetto(reader, out)
    with open(out, encoding="utf-8") as fh:
        return json.load(fh)


def _check_be_nesting(events):
    """Every (pid, tid) lane must be a well-formed B/E bracket sequence
    with non-decreasing timestamps — what Perfetto requires to render."""
    stacks = {}
    last_ts = None
    for ev in events:
        if ev["ph"] == "M":
            continue
        assert last_ts is None or ev["ts"] >= last_ts, "ts must be monotonic"
        last_ts = ev["ts"]
        key = (ev["pid"], ev["tid"])
        stack = stacks.setdefault(key, [])
        if ev["ph"] == "B":
            stack.append(ev["ts"])
        elif ev["ph"] == "E":
            assert stack, f"E without B on {key}"
            assert ev["ts"] >= stack[-1], "span ends before it begins"
            stack.pop()
    for key, stack in stacks.items():
        assert not stack, f"unclosed B events on {key}: {stack}"


def test_export_structure_and_metadata(tmp_path):
    hub = ObsHub()
    hub.span("lookup", 1, 0.0, 0.5)
    hub.event("lookup.hop", 2, 0.25, rid=7, value=3.0)
    doc = _export(hub, tmp_path)
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    names = {e["name"] for e in events if e["ph"] == "M"}
    assert names == {"process_name", "thread_name"}
    (begin,) = [e for e in events if e["ph"] == "B"]
    assert begin["name"] == "lookup" and begin["ts"] == 0.0
    assert begin["args"]["status"] == "ok"
    (instant,) = [e for e in events if e["ph"] == "i"]
    assert instant["name"] == "lookup.hop" and instant["s"] == "t"
    assert instant["ts"] == 0.25 * 1e6
    _check_be_nesting(events)


def test_overlapping_spans_overflow_into_lanes(tmp_path):
    hub = ObsHub()
    a = hub.begin("rpc", 1, 0.0)
    b = hub.begin("rpc", 1, 1.0)  # overlaps a without nesting: [1, 3] vs [0, 2]
    hub.end(a, 2.0)
    hub.end(b, 3.0)
    doc = _export(hub, tmp_path)
    events = doc["traceEvents"]
    _check_be_nesting(events)
    thread_names = [e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"]
    assert "node 1" in thread_names
    assert any("lane 1" in n for n in thread_names), "overlap forces a lane"
    begins = [e for e in events if e["ph"] == "B"]
    assert len({e["tid"] for e in begins}) == 2


def test_nested_and_zero_duration_spans_stay_wellformed(tmp_path):
    hub = ObsHub()
    root = hub.begin("job", 1, 0.0)
    kid = hub.begin("job.execute", 1, 0.5, parent=root)
    hub.end(kid, 0.5)   # zero-duration child at the same ts
    hub.end(root, 1.0)
    hub.span("antientropy.sweep", 1, 1.0, 1.0)  # zero-duration sibling
    doc = _export(hub, tmp_path)
    _check_be_nesting(doc["traceEvents"])
    begins = [e for e in doc["traceEvents"] if e["ph"] == "B"]
    ends = [e for e in doc["traceEvents"] if e["ph"] == "E"]
    assert len(begins) == len(ends) == 3


def test_multi_run_export_uses_one_pid_per_run(tmp_path):
    h1, h2 = ObsHub(), ObsHub()
    h1.span("lookup", 1, 0.0, 1.0)
    h2.span("lookup", 1, 0.0, 2.0)
    store = str(tmp_path / "m.npz")
    write_store(store, {"run-000": h1, "run-001": h2})
    with TraceReader(store) as reader:
        events = trace_events(reader)
        single = trace_events(reader, run="run-001")
    procs = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert procs == {"run-000", "run-001"}
    assert len({e["pid"] for e in events}) == 2
    assert {e["pid"] for e in single} == {1}
    _check_be_nesting(events)


def test_full_scenario_export_is_valid(tmp_path):
    result = run_scenario("storage", smoke=True, trace_out=str(tmp_path))
    out = str(tmp_path / "scenario.json")
    with TraceReader(result.obs["trace_file"]) as reader:
        export_perfetto(reader, out)
        span_rows = sum(len(reader.stream(r, "spans")) for r in reader.runs)
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    _check_be_nesting(events)
    begins = sum(1 for e in events if e["ph"] == "B")
    ends = sum(1 for e in events if e["ph"] == "E")
    assert begins == ends == span_rows


def test_obs_cli_export_perfetto_subcommand(tmp_path, capsys):
    from repro.obs.cli import main as obs_cli

    c = Cluster(seed=8).build(16).with_observability()
    c.lookup_sync(origin=c.ids[0], target=c.ids[-1])
    store = str(tmp_path / "cli.npz")
    c.observability.write(store)
    out = str(tmp_path / "cli.perfetto.json")
    assert obs_cli(["export-perfetto", store, "-o", out]) == 0
    assert "perfetto" in capsys.readouterr().out
    with open(out, encoding="utf-8") as fh:
        doc = json.load(fh)
    assert doc["traceEvents"]
    # default output path derives from the store name
    assert obs_cli(["export-perfetto", store]) == 0
    assert (tmp_path / "cli.perfetto.json").exists()
