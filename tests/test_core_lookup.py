"""Unit tests for the G / NG / NGSA routers (pure decision logic)."""

import pytest

from repro.core.config import TreePConfig
from repro.core.ids import IdSpace
from repro.core.lookup import (
    Decision,
    DecisionKind,
    LookupAlgorithm,
    route,
)
from repro.core.messages import LookupRequest
from repro.core.routing_table import RoutingTable


class View:
    """Minimal NodeView for router unit tests."""

    def __init__(self, ident, max_level=0, height=4, extent=2**16):
        self.ident = ident
        self.max_level = max_level
        self.height = height
        self.config = TreePConfig.paper_case1(space=IdSpace(extent=extent))
        self.table = RoutingTable(ident)


def req(target, origin=0, algo="G", ttl=0, path=(), alternates=(),
        from_parent_level=0):
    return LookupRequest(request_id=1, origin=origin, target=target,
                         algo=algo, ttl=ttl, path=tuple(path),
                         alternates=tuple(alternates),
                         from_parent_level=from_parent_level)


def test_parse_algorithms():
    assert LookupAlgorithm.parse("G") is LookupAlgorithm.GREEDY
    assert LookupAlgorithm.parse("NG") is LookupAlgorithm.NON_GREEDY
    assert LookupAlgorithm.parse("NGSA") is LookupAlgorithm.NON_GREEDY_FALLBACK
    assert LookupAlgorithm.parse("GREEDY") is LookupAlgorithm.GREEDY
    with pytest.raises(ValueError):
        LookupAlgorithm.parse("XX")


def test_self_target_found():
    v = View(100)
    d = route(v, req(100))
    assert d.kind is DecisionKind.FOUND and d.resolved == 100


def test_known_target_found():
    v = View(100)
    v.table.add_level0(200, 0.0)
    d = route(v, req(200))
    assert d.kind is DecisionKind.FOUND and d.resolved == 200


def test_ttl_exceeded_discards():
    v = View(100)
    d = route(v, req(999, ttl=256))
    assert d.kind is DecisionKind.DISCARD


def test_ttl_at_cap_not_discarded():
    v = View(100)
    v.table.add_level0(999, 0.0)
    assert route(v, req(999, ttl=255)).kind is DecisionKind.FOUND


def test_level0_forwards_to_best():
    v = View(100)
    v.table.add_level0(110, 0.0)
    v.table.add_level0(90, 0.0)
    d = route(v, req(500))
    assert d.kind is DecisionKind.FORWARD and d.next_hop == 110


def test_no_candidates_not_found():
    v = View(100)
    d = route(v, req(500))
    assert d.kind is DecisionKind.NOT_FOUND


def test_visited_nodes_excluded():
    v = View(100)
    v.table.add_level0(110, 0.0)
    d = route(v, req(500, path=(110,)))
    assert d.kind is DecisionKind.NOT_FOUND


def test_greedy_prefers_high_level_jump():
    """A level-3 entry with D=0 beats a slightly-closer level-0 entry."""
    v = View(0, max_level=1, height=4, extent=2**16)
    v.table.add_level0(100, 0.0, max_level=0)
    v.table.add_level(1, 30000, 0.0, max_level=3)  # radius 2^16/2 covers target
    d = route(v, req(60000))
    assert d.kind is DecisionKind.FORWARD and d.next_hop == 30000


def test_greedy_escalates_through_superiors():
    """Level > 0 node with no halving candidate forwards to a superior."""
    v = View(0, max_level=1, height=6, extent=2**16)
    v.table.add_level(1, 10, 0.0, max_level=1)     # tiny step, no halving
    v.table.add_superior(500, 0.0, max_level=4)    # big-radius superior
    d = route(v, req(60000))
    assert d.kind is DecisionKind.FORWARD and d.next_hop == 500


def test_greedy_descends_via_closest_child_at_root():
    """Root (D=0 to everything) must descend instead of failing."""
    v = View(32768, max_level=6, height=6, extent=2**16)
    v.table.add_child(10000, 0.0, max_level=5)
    v.table.add_child(50000, 0.0, max_level=5)
    d = route(v, req(60000))
    assert d.kind is DecisionKind.FORWARD
    assert d.next_hop == 50000  # the child nearer the target


def test_greedy_descent_from_parent_continues():
    """A request arriving from our own parent keeps descending."""
    v = View(100, max_level=1, height=4, extent=2**16)
    v.table.add_child(120, 0.0, max_level=0)
    d = route(v, req(121, from_parent_level=2))
    assert d.kind is DecisionKind.FORWARD and d.next_hop == 120


def test_ng_takes_first_improving():
    v = View(1000, extent=2**16)
    v.table.add_level0(1100, 0.0)
    v.table.add_level0(900, 0.0)
    d = route(v, req(5000, algo="NG"))
    assert d.kind is DecisionKind.FORWARD and d.next_hop == 1100
    assert d.alternates == ()


def test_ng_dead_end_not_found():
    v = View(1000, extent=2**16)
    v.table.add_level0(900, 0.0)  # moves away from target
    d = route(v, req(5000, algo="NG", path=()))
    # 900 is farther from 5000 than 1000 -> no improving candidate.
    assert d.kind is DecisionKind.NOT_FOUND


def test_ngsa_collects_alternates():
    v = View(1000, extent=2**16)
    v.table.add_level0(1100, 0.0)
    v.table.add_level0(1200, 0.0)
    v.table.add_level0(2000, 0.0)
    d = route(v, req(5000, algo="NGSA"))
    assert d.kind is DecisionKind.FORWARD
    assert d.next_hop == 2000  # candidates scanned by distance to target
    assert len(d.alternates) >= 1


def test_ngsa_dead_end_uses_alternates():
    v = View(1000, extent=2**16)
    v.table.add_level0(900, 0.0)  # no improvement
    d = route(v, req(5000, algo="NGSA", alternates=(4000, 3000)))
    assert d.kind is DecisionKind.FORWARD
    assert d.next_hop == 4000  # nearest alternate to the target
    assert d.alternates == (3000,)


def test_ngsa_exhausted_alternates_not_found():
    v = View(1000, extent=2**16)
    d = route(v, req(5000, algo="NGSA", alternates=(4000,), path=(4000,)))
    assert d.kind is DecisionKind.NOT_FOUND


def test_euclidean_fallback_activates_beyond_height():
    """Beyond the height, metric switches to Euclidean: a big-radius entry
    loses its D=0 advantage."""
    v = View(0, max_level=1, height=3, extent=2**16)
    v.table.add_level(1, 60000, 0.0, max_level=3)  # D=0 to most things
    v.table.add_level0(3000, 0.0, max_level=0)
    target = 4000
    d_normal = route(v, req(target, ttl=1))
    assert d_normal.next_hop == 60000  # tessellation metric: D=0 wins
    d_fallback = route(v, req(target, ttl=10))
    assert d_fallback.next_hop == 3000  # Euclidean: the truly closer node


def test_fallback_disabled_by_config():
    v = View(0, max_level=1, height=3, extent=2**16)
    v.config = v.config.with_(euclidean_fallback=False)
    v.table.add_level(1, 60000, 0.0, max_level=3)
    v.table.add_level0(3000, 0.0, max_level=0)
    d = route(v, req(4000, ttl=10))
    assert d.next_hop == 60000  # still the tessellation metric


def test_decision_constructors():
    assert Decision.found(5).resolved == 5
    assert Decision.forward(7).next_hop == 7
    assert Decision.not_found().kind is DecisionKind.NOT_FOUND
    assert Decision.discard().kind is DecisionKind.DISCARD
