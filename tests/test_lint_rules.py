"""Per-rule behaviour of the ``repro.lint`` invariant analyzer.

Every rule is exercised four ways against seeded fixture trees: a
negative fixture the rule must flag, a clean fixture it must pass, a
justified suppression it must honour, and a bare (justification-free)
suppression it must reject with RPR001 while keeping the original
violation.  Engine-level behaviour (baseline, select/ignore, output
formats, parse errors) rides on the same fixtures.
"""

from __future__ import annotations

import io
import json
from pathlib import Path

import pytest

from repro.lint.cli import main
from repro.lint.engine import (
    LintEngine,
    load_baseline,
    parse_suppressions,
    write_baseline,
)
from repro.lint.layers import load_layer_map
from repro.lint.rules import all_rules

# A miniature layer map mirroring the real repo's shape: a kernel (sim),
# a core that may reach obs only via its runtime hub, a storage tier, a
# cluster facade with lazy composition imports, and a bench leaf.
FIXTURE_LAYERS = """\
[package.repro]
may_import = ["core"]

[package.sim]
may_import = []

[package.core]
may_import = ["sim", "obs"]

[package.core.via]
obs = ["repro.obs.runtime"]

[package.obs]
may_import = []

[package.storage]
may_import = ["core"]

[package.cluster]
may_import = ["core"]
lazy = ["storage"]

[package.bench]
may_import = ["cluster", "core", "storage"]

[consumers]
bench = []

[determinism]
packages = ["core", "sim", "storage"]

[slots]
modules = ["repro/core/messages.py"]

[lifecycle]
registry_files = ["repro/cluster/registry.py"]

[obs_guard]
packages = ["cluster", "core"]
"""


def make_project(tmp_path: Path, files: dict) -> Path:
    (tmp_path / "pyproject.toml").write_text("[tool.repro-fixture]\n")
    layers_file = tmp_path / "layers.toml"
    layers_file.write_text(FIXTURE_LAYERS)
    for rel, source in files.items():
        p = tmp_path / rel
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_text(source)
    return layers_file


def run_lint(tmp_path: Path, files: dict, select=None, ignore=None, baseline=None):
    layers_file = make_project(tmp_path, files)
    engine = LintEngine(
        root=tmp_path,
        rules={code: r.check for code, r in all_rules().items()},
        layers=load_layer_map(layers_file),
        select=select,
        ignore=ignore,
    )
    return engine.run([tmp_path / "src"], baseline=baseline)


def codes(report):
    return [v.code for v in report.violations]


# ---------------------------------------------------------------- RPR101
class TestRPR101:
    def test_wall_clock_read_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        })
        assert codes(report) == ["RPR101"]
        assert "wall-clock" in report.violations[0].message

    def test_from_import_alias_resolved(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/sim/clock.py":
                "from time import time as now\n\n\ndef stamp():\n    return now()\n",
        })
        assert codes(report) == ["RPR101"]

    def test_global_random_flagged_seeded_instance_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/draw.py":
                "import random\n\n\ndef bad():\n    return random.random()\n",
            "src/repro/core/seeded.py":
                "import random\n\nRNG = random.Random(7)\n\n\n"
                "def good():\n    return RNG.random()\n",
        })
        assert codes(report) == ["RPR101"]
        assert report.violations[0].path == "src/repro/core/draw.py"

    def test_out_of_scope_package_ignored(self, tmp_path):
        # bench is not in [determinism] packages: measurement code may
        # read the wall clock.
        report = run_lint(tmp_path, {
            "src/repro/bench/timer.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        })
        assert report.clean

    def test_suppression_with_justification_honoured(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n"
                "    return time.time()  # repro-lint: disable=RPR101"
                " fixture exercises the suppression protocol\n",
        })
        assert report.clean
        assert report.suppressed == 1

    def test_bare_suppression_rejected(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n"
                "    return time.time()  # repro-lint: disable=RPR101\n",
        })
        assert sorted(codes(report)) == ["RPR001", "RPR101"]


# ---------------------------------------------------------------- RPR102
class TestRPR102:
    def test_set_union_iteration_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/route.py":
                "def pick(a, b):\n    for x in a | {1, 2}:\n        return x\n",
        })
        assert codes(report) == ["RPR102"]

    def test_sorted_wrapper_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/route.py":
                "def pick(a):\n    for x in sorted(a | {1, 2}):\n        return x\n",
        })
        assert report.clean


# ---------------------------------------------------------------- RPR201
class TestRPR201:
    def test_forbidden_edge_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/bad.py": "import repro.storage\n",
        })
        assert codes(report) == ["RPR201"]
        assert "may not import `storage`" in report.violations[0].message

    def test_lazy_only_package_at_module_scope_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/eager.py": "from repro.storage import store\n",
        })
        assert codes(report) == ["RPR201"]
        assert "only lazily" in report.violations[0].message

    def test_lazy_import_in_function_scope_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/facade.py":
                "def with_storage():\n"
                "    from repro.storage import store\n"
                "    return store\n",
        })
        assert report.clean

    def test_via_restriction_enforced(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/hooks.py": "from repro.obs.hub import ObsHub\n",
            "src/repro/core/ambient.py": "from repro.obs.runtime import ambient_hub\n",
        })
        assert codes(report) == ["RPR201"]
        assert report.violations[0].path == "src/repro/core/hooks.py"
        assert "only via repro.obs.runtime" in report.violations[0].message

    def test_allowed_edge_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/storage/store.py": "from repro.core import ids\n",
        })
        assert report.clean


# ---------------------------------------------------------------- RPR202
class TestRPR202:
    def test_contract_drift_flagged(self, tmp_path):
        # The prose forbids an edge the layer map allows.
        report = run_lint(tmp_path, {
            "src/repro/storage/__init__.py":
                '"""Storage tier.\n\n'
                "Layer contract: the storage tier must not import"
                ' ``repro.core``.\n"""\n',
        })
        assert codes(report) == ["RPR202"]
        assert "forbids storage -> core" in report.violations[0].message

    def test_matching_contract_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/storage/__init__.py":
                '"""Storage tier.\n\n'
                "Layer contract: the storage tier may import only"
                ' ``repro.core``.\n"""\n',
        })
        assert report.clean

    def test_docstring_without_contract_ignored(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/storage/__init__.py":
                '"""Storage tier: replicated stores and read repair."""\n',
        })
        assert report.clean


# ---------------------------------------------------------------- RPR301
class TestRPR301:
    def test_unpaired_register_handler_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/svc.py":
                "class Probe:\n"
                "    def attach(self, node):\n"
                "        node.register_handler('ping', self.on_ping)\n",
        })
        assert codes(report) == ["RPR301"]

    def test_paired_register_handler_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/svc.py":
                "class Probe:\n"
                "    def attach(self, node):\n"
                "        node.register_handler('ping', self.on_ping)\n"
                "    def detach(self, node):\n"
                "        node.unregister_handler('ping')\n",
        })
        assert report.clean

    def test_raw_sim_every_without_stop_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/beat.py":
                "class Beat:\n"
                "    def start(self, sim):\n"
                "        self.timer = sim.every(1.0, self.tick)\n",
        })
        assert codes(report) == ["RPR301"]

    def test_ctx_every_is_registry_owned(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/beat.py":
                "class Beat:\n"
                "    def start(self, ctx):\n"
                "        ctx.every(1.0, self.tick)\n",
        })
        assert report.clean

    def test_registry_file_itself_exempt(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/cluster/registry.py":
                "class Registry:\n"
                "    def attach(self, node):\n"
                "        node.register_handler('ping', self.on_ping)\n",
        })
        assert report.clean


# ---------------------------------------------------------------- RPR401
class TestRPR401:
    def test_plain_class_in_hot_module_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/messages.py":
                "class Ping:\n    def __init__(self):\n        self.seq = 0\n",
        })
        assert codes(report) == ["RPR401"]

    def test_slotted_variants_pass(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/messages.py":
                "from dataclasses import dataclass\n"
                "from typing import NamedTuple\n\n\n"
                "@dataclass(frozen=True, slots=True)\n"
                "class Ping:\n    seq: int\n\n\n"
                "class Pong(NamedTuple):\n    seq: int\n\n\n"
                "class Raw:\n    __slots__ = ('seq',)\n",
        })
        assert report.clean

    def test_other_modules_unconstrained(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/helpers.py":
                "class Scratch:\n    def __init__(self):\n        self.x = 0\n",
        })
        assert report.clean


# ---------------------------------------------------------------- RPR402
class TestRPR402:
    def test_chained_obs_use_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/instr.py":
                "class Node:\n"
                "    def send(self):\n"
                "        self.obs.record_event(1)\n",
        })
        assert codes(report) == ["RPR402"]

    def test_guard_on_attribute_chain_flagged(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/instr.py":
                "class Node:\n"
                "    def send(self, payload):\n"
                "        if self.net.obs is not None:\n"
                "            record(payload)\n",
        })
        assert codes(report) == ["RPR402"]

    def test_local_bind_pattern_passes(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/instr.py":
                "class Node:\n"
                "    def send(self, payload):\n"
                "        obs = self.obs\n"
                "        if obs is not None:\n"
                "            obs.record_event(payload)\n",
        })
        assert report.clean

    def test_out_of_scope_package_ignored(self, tmp_path):
        # bench reads `result.obs` as a plain JSON field; not flagged.
        report = run_lint(tmp_path, {
            "src/repro/bench/report.py":
                "def fields(result):\n    return result.obs.events\n",
        })
        assert report.clean


# ------------------------------------------------------------ suppressions
class TestSuppressionProtocol:
    def test_string_literal_cannot_create_phantom_suppression(self):
        sups = parse_suppressions(
            'MSG = "see # repro-lint: disable=RPR101 for details"\n'
        )
        assert sups == {}

    def test_multi_code_suppression(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/both.py":
                "import time\n\n\ndef f(s):\n"
                "    return [time.time() for x in s | {1}]"
                "  # repro-lint: disable=RPR101,RPR102"
                " fixture: one line, two invariants\n",
        })
        # The comprehension's iterable and the call sit on the same
        # line; both codes land on it and both are suppressed.
        assert report.clean
        assert report.suppressed == 2

    def test_suppression_for_other_code_does_not_apply(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n"
                "    return time.time()  # repro-lint: disable=RPR402"
                " wrong code on purpose\n",
        })
        assert "RPR101" in codes(report)


# ------------------------------------------------------------------ engine
class TestEngine:
    def test_syntax_error_reported_as_rpr000(self, tmp_path):
        report = run_lint(tmp_path, {
            "src/repro/core/broken.py": "def f(:\n",
        })
        assert codes(report) == ["RPR000"]

    def test_select_runs_only_named_rules(self, tmp_path):
        files = {
            "src/repro/core/mix.py":
                "import time\n\n\nclass Node:\n"
                "    def f(self):\n"
                "        time.time()\n"
                "        self.obs.record(1)\n",
        }
        report = run_lint(tmp_path, dict(files), select=["RPR101"])
        assert codes(report) == ["RPR101"]

    def test_ignore_drops_named_rules(self, tmp_path):
        files = {
            "src/repro/core/mix.py":
                "import time\n\n\nclass Node:\n"
                "    def f(self):\n"
                "        time.time()\n"
                "        self.obs.record(1)\n",
        }
        report = run_lint(tmp_path, dict(files), ignore=["RPR101"])
        assert codes(report) == ["RPR402"]

    def test_unknown_rule_code_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            run_lint(tmp_path, {}, select=["RPR999"])

    def test_baseline_roundtrip(self, tmp_path):
        files = {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        }
        report = run_lint(tmp_path, dict(files))
        assert len(report.violations) == 1
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.violations)
        budget = load_baseline(baseline_file)
        assert sum(budget.values()) == 1
        again = run_lint(tmp_path, dict(files), baseline=budget)
        assert again.clean
        assert again.baselined == 1

    def test_baseline_does_not_mask_new_violations(self, tmp_path):
        files = {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        }
        report = run_lint(tmp_path, dict(files))
        baseline_file = tmp_path / "baseline.json"
        write_baseline(baseline_file, report.violations)
        budget = load_baseline(baseline_file)
        files["src/repro/core/clock2.py"] = (
            "import time\n\n\ndef stamp():\n    return time.monotonic()\n"
        )
        again = run_lint(tmp_path, dict(files), baseline=budget)
        assert codes(again) == ["RPR101"]
        assert again.violations[0].path == "src/repro/core/clock2.py"


# --------------------------------------------------------------------- CLI
class TestCli:
    def _argv(self, tmp_path, *extra):
        return [
            str(tmp_path / "src"),
            "--project-root", str(tmp_path),
            "--layers", str(tmp_path / "layers.toml"),
            *extra,
        ]

    def test_exit_codes_and_text_format(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
            "src/repro/core/ok.py": "X = 1\n",
        })
        out = io.StringIO()
        assert main(self._argv(tmp_path), stream=out) == 1
        text = out.getvalue()
        assert "src/repro/core/clock.py:5:" in text
        assert "RPR101" in text
        assert "1 violation(s) in 2 file(s)" in text

    def test_json_format(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        })
        out = io.StringIO()
        assert main(self._argv(tmp_path, "--format", "json"), stream=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["summary"]["violations"] == 1
        [violation] = payload["violations"]
        assert violation["code"] == "RPR101"
        assert violation["path"] == "src/repro/core/clock.py"

    def test_github_format(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        })
        out = io.StringIO()
        assert main(self._argv(tmp_path, "--format", "github"), stream=out) == 1
        line = out.getvalue().splitlines()[0]
        assert line.startswith("::error file=src/repro/core/clock.py,line=5,")
        assert "title=RPR101::" in line

    def test_clean_tree_exits_zero(self, tmp_path):
        make_project(tmp_path, {"src/repro/core/ok.py": "X = 1\n"})
        out = io.StringIO()
        assert main(self._argv(tmp_path), stream=out) == 0

    def test_unknown_select_is_usage_error(self, tmp_path):
        make_project(tmp_path, {"src/repro/core/ok.py": "X = 1\n"})
        out = io.StringIO()
        assert main(self._argv(tmp_path, "--select", "RPR999"), stream=out) == 2

    def test_update_baseline_then_gate(self, tmp_path):
        make_project(tmp_path, {
            "src/repro/core/clock.py":
                "import time\n\n\ndef stamp():\n    return time.time()\n",
        })
        baseline = tmp_path / "lint-baseline.json"
        out = io.StringIO()
        assert main(
            self._argv(tmp_path, "--baseline", str(baseline), "--update-baseline"),
            stream=out,
        ) == 0
        assert json.loads(baseline.read_text())["version"] == 1
        out = io.StringIO()
        assert main(
            self._argv(tmp_path, "--baseline", str(baseline)), stream=out
        ) == 0

    def test_list_rules(self, tmp_path):
        make_project(tmp_path, {})
        out = io.StringIO()
        assert main(["--list-rules"], stream=out) == 0
        listing = out.getvalue()
        for code in ("RPR101", "RPR102", "RPR201", "RPR202",
                     "RPR301", "RPR401", "RPR402"):
            assert code in listing
