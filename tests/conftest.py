"""Shared fixtures: small prebuilt networks, deterministic RNG."""

from __future__ import annotations

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork


@pytest.fixture(scope="module")
def small_net() -> TreePNetwork:
    """A 64-node case-1 network shared by read-only tests."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=7)
    net.build(64)
    return net


@pytest.fixture()
def fresh_net() -> TreePNetwork:
    """A private 64-node network for tests that mutate state."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=7)
    net.build(64)
    return net


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
