"""Unit tests for failure schedules and churn."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.failures import FailureSchedule, PoissonChurn
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network, Process


class Dummy(Process):
    def on_datagram(self, dgram):
        pass


def test_schedule_covers_population_once():
    pop = list(range(100))
    sched = FailureSchedule(pop, np.random.default_rng(0))
    killed = []
    for step in sched.steps():
        killed.extend(step.newly_failed)
    assert len(killed) == len(set(killed))
    assert set(killed) <= set(pop)


def test_step_fraction_respected():
    pop = list(range(200))
    sched = FailureSchedule(pop, np.random.default_rng(0), step_fraction=0.05)
    steps = list(sched.steps())
    assert all(len(s.newly_failed) == 10 for s in steps[:-1])


def test_stop_fraction_leaves_survivors():
    pop = list(range(100))
    sched = FailureSchedule(pop, np.random.default_rng(0), stop_fraction=0.10)
    steps = list(sched.steps())
    assert len(steps[-1].surviving) >= 10


def test_cumulative_fraction_monotone():
    sched = FailureSchedule(list(range(60)), np.random.default_rng(1))
    fracs = [s.cumulative_failed_fraction for s in sched.steps()]
    assert fracs == sorted(fracs)
    assert all(0 < f <= 0.95 + 1e-9 for f in fracs)


def test_surviving_disjoint_from_failed():
    sched = FailureSchedule(list(range(50)), np.random.default_rng(2))
    failed = set()
    for step in sched.steps():
        failed |= set(step.newly_failed)
        assert failed.isdisjoint(step.surviving)
        assert failed | set(step.surviving) == set(range(50))


def test_deterministic_given_rng_seed():
    s1 = FailureSchedule(list(range(40)), np.random.default_rng(9))
    s2 = FailureSchedule(list(range(40)), np.random.default_rng(9))
    assert [s.newly_failed for s in s1.steps()] == [s.newly_failed for s in s2.steps()]


def test_apply_step_sets_down():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    for i in range(20):
        net.register(Dummy(i))
    sched = FailureSchedule(list(range(20)), np.random.default_rng(0))
    step = next(iter(sched.steps()))
    sched.apply_step(net, step)
    for v in step.newly_failed:
        assert not net.is_up(v)


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        FailureSchedule([], np.random.default_rng(0))


def test_bad_fractions_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        FailureSchedule([1, 2], rng, step_fraction=0.0)
    with pytest.raises(ValueError):
        FailureSchedule([1, 2], rng, stop_fraction=1.0)


class TestPoissonChurn:
    def _setup(self, mean_uptime=5.0, mean_downtime=2.0):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        for i in range(30):
            net.register(Dummy(i))
        churn = PoissonChurn(sim, net, list(range(30)),
                             np.random.default_rng(3),
                             mean_uptime=mean_uptime,
                             mean_downtime=mean_downtime)
        return sim, net, churn

    def test_nodes_cycle_up_and_down(self):
        sim, net, churn = self._setup()
        churn.start()
        sim.run(until=50.0)
        assert churn.leave_count > 0
        assert churn.rejoin_count > 0

    def test_hooks_called(self):
        sim, net, churn = self._setup()
        left, back = [], []
        churn.on_leave = left.append
        churn.on_rejoin = back.append
        churn.start()
        sim.run(until=30.0)
        assert len(left) == churn.leave_count
        assert len(back) == churn.rejoin_count

    def test_stop_halts_transitions(self):
        sim, net, churn = self._setup()
        churn.start()
        sim.run(until=10.0)
        churn.stop()
        count = churn.leave_count + churn.rejoin_count
        sim.run(until=100.0)
        assert churn.leave_count + churn.rejoin_count == count

    def test_invalid_params_rejected(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            PoissonChurn(sim, net, [1], np.random.default_rng(0), mean_uptime=0.0)
