"""Unit tests for failure schedules and churn."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.failures import FailureSchedule, PoissonChurn
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network, Process


class Dummy(Process):
    def on_datagram(self, dgram):
        pass


def test_schedule_covers_population_once():
    pop = list(range(100))
    sched = FailureSchedule(pop, np.random.default_rng(0))
    killed = []
    for step in sched.steps():
        killed.extend(step.newly_failed)
    assert len(killed) == len(set(killed))
    assert set(killed) <= set(pop)


def test_step_fraction_respected():
    pop = list(range(200))
    sched = FailureSchedule(pop, np.random.default_rng(0), step_fraction=0.05)
    steps = list(sched.steps())
    assert all(len(s.newly_failed) == 10 for s in steps[:-1])


def test_stop_fraction_leaves_survivors():
    pop = list(range(100))
    sched = FailureSchedule(pop, np.random.default_rng(0), stop_fraction=0.10)
    steps = list(sched.steps())
    assert len(steps[-1].surviving) >= 10


def test_cumulative_fraction_monotone():
    sched = FailureSchedule(list(range(60)), np.random.default_rng(1))
    fracs = [s.cumulative_failed_fraction for s in sched.steps()]
    assert fracs == sorted(fracs)
    assert all(0 < f <= 0.95 + 1e-9 for f in fracs)


def test_surviving_disjoint_from_failed():
    sched = FailureSchedule(list(range(50)), np.random.default_rng(2))
    failed = set()
    for step in sched.steps():
        failed |= set(step.newly_failed)
        assert failed.isdisjoint(step.surviving)
        assert failed | set(step.surviving) == set(range(50))


def test_deterministic_given_rng_seed():
    s1 = FailureSchedule(list(range(40)), np.random.default_rng(9))
    s2 = FailureSchedule(list(range(40)), np.random.default_rng(9))
    assert [s.newly_failed for s in s1.steps()] == [s.newly_failed for s in s2.steps()]


def test_apply_step_sets_down():
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    for i in range(20):
        net.register(Dummy(i))
    sched = FailureSchedule(list(range(20)), np.random.default_rng(0))
    step = next(iter(sched.steps()))
    sched.apply_step(net, step)
    for v in step.newly_failed:
        assert not net.is_up(v)


def test_empty_population_rejected():
    with pytest.raises(ValueError):
        FailureSchedule([], np.random.default_rng(0))


def test_bad_fractions_rejected():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        FailureSchedule([1, 2], rng, step_fraction=0.0)
    with pytest.raises(ValueError):
        FailureSchedule([1, 2], rng, stop_fraction=1.0)


class TestPoissonChurn:
    def _setup(self, mean_uptime=5.0, mean_downtime=2.0):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        for i in range(30):
            net.register(Dummy(i))
        churn = PoissonChurn(sim, net, list(range(30)),
                             np.random.default_rng(3),
                             mean_uptime=mean_uptime,
                             mean_downtime=mean_downtime)
        return sim, net, churn

    def test_nodes_cycle_up_and_down(self):
        sim, net, churn = self._setup()
        churn.start()
        sim.run(until=50.0)
        assert churn.leave_count > 0
        assert churn.rejoin_count > 0

    def test_hooks_called(self):
        sim, net, churn = self._setup()
        left, back = [], []
        churn.on_leave = left.append
        churn.on_rejoin = back.append
        churn.start()
        sim.run(until=30.0)
        assert len(left) == churn.leave_count
        assert len(back) == churn.rejoin_count

    def test_stop_halts_transitions(self):
        sim, net, churn = self._setup()
        churn.start()
        sim.run(until=10.0)
        churn.stop()
        count = churn.leave_count + churn.rejoin_count
        sim.run(until=100.0)
        assert churn.leave_count + churn.rejoin_count == count

    def test_invalid_params_rejected(self):
        sim = Simulator()
        net = Network(sim)
        with pytest.raises(ValueError):
            PoissonChurn(sim, net, [1], np.random.default_rng(0), mean_uptime=0.0)


# ------------------------------------------------ property/edge coverage

class TestFailureScheduleProperties:
    def test_cumulative_fractions_exact_per_step(self):
        """Step k has killed exactly min(k * per_step, max_killed) of the
        *initial* population — fractions are over the initial set, never
        the survivors."""
        n = 80
        sched = FailureSchedule(list(range(n)), np.random.default_rng(5),
                                step_fraction=0.05, stop_fraction=0.05)
        per_step = max(1, int(round(0.05 * n)))
        max_killed = int(np.floor(0.95 * n))
        killed = 0
        for k, step in enumerate(sched.steps(), start=1):
            killed += len(step.newly_failed)
            assert killed == min(k * per_step, max_killed)
            assert step.cumulative_failed_fraction == pytest.approx(
                killed / n)
            assert len(step.surviving) == n - killed

    def test_population_not_divisible_by_step(self):
        """A population where per-step rounding matters: the last step is
        short, fractions stay exact and monotone."""
        sched = FailureSchedule(list(range(37)), np.random.default_rng(6),
                                step_fraction=0.10, stop_fraction=0.10)
        steps = list(sched.steps())
        sizes = [len(s.newly_failed) for s in steps]
        assert sum(sizes) == int(np.floor(0.9 * 37))
        assert all(s == sizes[0] for s in sizes[:-1])
        assert sizes[-1] <= sizes[0]
        fracs = [s.cumulative_failed_fraction for s in steps]
        assert fracs == sorted(set(fracs))

    def test_single_node_population(self):
        sched = FailureSchedule([7], np.random.default_rng(0),
                                stop_fraction=0.0)
        steps = list(sched.steps())
        assert len(steps) == 1
        assert steps[0].newly_failed == (7,)
        assert steps[0].surviving == ()
        assert steps[0].cumulative_failed_fraction == 1.0

    def test_stop_fraction_zero_kills_everyone(self):
        pop = list(range(40))
        sched = FailureSchedule(pop, np.random.default_rng(1),
                                stop_fraction=0.0)
        killed = [v for s in sched.steps() for v in s.newly_failed]
        assert sorted(killed) == pop

    def test_steps_reiterable_and_identical(self):
        """steps() is a fresh iterator over a permutation drawn up front:
        consuming it twice yields the same schedule."""
        sched = FailureSchedule(list(range(30)), np.random.default_rng(2))
        first = [s.newly_failed for s in sched.steps()]
        second = [s.newly_failed for s in sched.steps()]
        assert first == second

    def test_apply_step_is_idempotent_on_network(self):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        for i in range(10):
            net.register(Dummy(i))
        sched = FailureSchedule(list(range(10)), np.random.default_rng(3))
        step = next(iter(sched.steps()))
        sched.apply_step(net, step)
        epoch = net.liveness_epoch
        sched.apply_step(net, step)  # re-applying changes nothing
        assert net.liveness_epoch == epoch


class TestPoissonChurnProperties:
    def _network(self, n=25):
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        for i in range(n):
            net.register(Dummy(i))
        return sim, net

    def test_never_double_kills_or_double_revives(self):
        """Every leave hits an up node and every rejoin a down node: the
        network's exactly-once liveness hooks see one transition per
        churn event, with no double-kill/double-revive in between."""
        sim, net = self._network()
        transitions = {i: [] for i in range(25)}
        net.down_hooks.append(lambda a: transitions[a].append("down"))
        net.up_hooks.append(lambda a: transitions[a].append("up"))
        churn = PoissonChurn(sim, net, list(range(25)),
                             np.random.default_rng(8),
                             mean_uptime=4.0, mean_downtime=2.0)
        churn.start()
        sim.run(until=60.0)
        for addr, seq in transitions.items():
            for prev, nxt in zip(seq, seq[1:]):
                assert prev != nxt, f"node {addr}: consecutive {prev}"
        total = sum(len(s) for s in transitions.values())
        assert total == churn.leave_count + churn.rejoin_count

    def test_leave_counts_match_down_transitions_exactly(self):
        sim, net = self._network()
        downs, ups = [], []
        net.down_hooks.append(downs.append)
        net.up_hooks.append(ups.append)
        churn = PoissonChurn(sim, net, list(range(25)),
                             np.random.default_rng(9),
                             mean_uptime=3.0, mean_downtime=3.0)
        churn.start()
        sim.run(until=40.0)
        assert len(downs) == churn.leave_count > 0
        assert len(ups) == churn.rejoin_count > 0

    def test_externally_downed_node_not_double_killed(self):
        """A node someone else crashed first: the churn leave is skipped
        (is_up guard), so no second down transition fires."""
        sim, net = self._network(n=1)
        downs = []
        net.down_hooks.append(downs.append)
        churn = PoissonChurn(sim, net, [0], np.random.default_rng(10),
                             mean_uptime=1.0, mean_downtime=1000.0)
        churn.start()
        net.set_down(0)  # external crash before the churn leave fires
        sim.run(until=20.0)
        assert churn.leave_count == 0
        assert downs == [0]

    def test_empty_address_list_is_inert(self):
        sim, net = self._network()
        churn = PoissonChurn(sim, net, [], np.random.default_rng(0))
        churn.start()
        sim.run(until=50.0)
        assert churn.leave_count == churn.rejoin_count == 0

    def test_mean_downtime_validation(self):
        sim, net = self._network()
        with pytest.raises(ValueError):
            PoissonChurn(sim, net, [0], np.random.default_rng(0),
                         mean_downtime=0.0)
