"""Tests for the §VI 2-D Voronoi extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import CapacityDistribution
from repro.core.config import TreePConfig
from repro.core.tessellation2d import (
    PlaneSpace,
    assign_points,
    build_layout_2d,
    cell_neighbour_counts,
    greedy_route_2d,
    nearest_site,
    tessellate,
)

SPACE = PlaneSpace(extent=1.0)


def population(n, seed=0):
    rng = np.random.default_rng(seed)
    pts = assign_points(SPACE, n, rng)
    dist = CapacityDistribution(rng)
    caps = {p: dist.sample() for p in pts}
    return pts, caps


class TestPlaneSpace:
    def test_distance_euclidean(self):
        assert SPACE.distance((0, 0), (0.3, 0.4)) == pytest.approx(0.5)

    def test_contains_and_validate(self):
        assert SPACE.contains((0.5, 0.5))
        assert not SPACE.contains((1.0, 0.5))
        with pytest.raises(ValueError):
            SPACE.validate((1.5, 0.0))

    def test_extent_validation(self):
        with pytest.raises(ValueError):
            PlaneSpace(extent=0)


class TestAssignment:
    def test_distinct_inside(self):
        pts = assign_points(SPACE, 200, np.random.default_rng(1))
        assert len(set(pts)) == 200
        assert all(SPACE.contains(p) for p in pts)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            assign_points(SPACE, 0, np.random.default_rng(0))


class TestNearestSite:
    def test_matches_bruteforce(self):
        rng = np.random.default_rng(2)
        sites = assign_points(SPACE, 20, rng)
        for p in assign_points(SPACE, 50, rng):
            fast = nearest_site(SPACE, sites, p)
            brute = min(sites, key=lambda s: SPACE.distance(s, p))
            assert SPACE.distance(fast, p) == pytest.approx(SPACE.distance(brute, p))

    def test_empty_sites_rejected(self):
        with pytest.raises(ValueError):
            nearest_site(SPACE, [], (0.5, 0.5))


class TestTessellate:
    def test_partition_complete(self):
        rng = np.random.default_rng(3)
        sites = assign_points(SPACE, 10, rng)
        points = assign_points(SPACE, 100, rng)
        cells = tessellate(SPACE, sites, points)
        assigned = [p for kids in cells.values() for p in kids]
        assert sorted(assigned) == sorted(points)
        assert set(cells) == set(sites)

    def test_assignment_is_nearest(self):
        rng = np.random.default_rng(4)
        sites = assign_points(SPACE, 8, rng)
        points = assign_points(SPACE, 40, rng)
        cells = tessellate(SPACE, sites, points)
        for s, kids in cells.items():
            for k in kids:
                d_own = SPACE.distance(s, k)
                assert all(SPACE.distance(o, k) >= d_own - 1e-12 for o in sites)


class TestBuild2D:
    def test_layout_valid(self):
        pts, caps = population(128)
        layout = build_layout_2d(pts, caps, TreePConfig.paper_case1())
        layout.validate(SPACE)
        assert layout.height >= 1
        sizes = [len(l) for l in layout.levels]
        assert all(a > b for a, b in zip(sizes, sizes[1:]))

    def test_nc_respected(self):
        pts, caps = population(128)
        layout = build_layout_2d(pts, caps, TreePConfig.paper_case1())
        for (s, j), kids in layout.children.items():
            assert len(kids) <= 4

    def test_parents_point_up(self):
        pts, caps = population(64)
        layout = build_layout_2d(pts, caps, TreePConfig.paper_case1())
        for p in pts:
            par = layout.parent[p]
            if par is not None:
                assert layout.max_level[par] > layout.max_level[p]

    def test_capacity_aware_promotion(self):
        pts, caps = population(256)
        layout = build_layout_2d(pts, caps, TreePConfig.paper_case1())
        base = np.mean([caps[p].score() for p in layout.levels[0]])
        upper = np.mean([caps[p].score() for p in layout.levels[1]])
        assert upper > base

    def test_validation_errors(self):
        pts, caps = population(4)
        with pytest.raises(ValueError):
            build_layout_2d(pts[:1], caps, TreePConfig.paper_case1())


class TestSection6Claims:
    def test_2d_cells_have_more_neighbours_than_1d(self):
        """§VI's reliability argument: Voronoi cells in the plane border
        more cells than a 1-D bus segment's two."""
        pts, caps = population(256, seed=9)
        layout = build_layout_2d(pts, caps, TreePConfig.paper_case1())
        counts = cell_neighbour_counts(SPACE, layout, level=1, sample=512,
                                       rng=np.random.default_rng(1))
        mean_deg = np.mean(list(counts.values()))
        assert mean_deg > 2.0  # strictly better than the 1-D bus

    def test_greedy_route_reaches_targets(self):
        pts, caps = population(128, seed=5)
        layout = build_layout_2d(pts, caps, TreePConfig.paper_case1())
        rng = np.random.default_rng(0)
        reached = 0
        hops_all = []
        for _ in range(30):
            s, t = (pts[int(i)] for i in rng.choice(len(pts), 2, replace=False))
            ok, hops, _ = greedy_route_2d(SPACE, layout, s, t)
            reached += ok
            if ok:
                hops_all.append(hops)
        assert reached >= 25
        assert np.mean(hops_all) <= 20


@given(n_sites=st.integers(2, 15), n_points=st.integers(1, 60),
       seed=st.integers(0, 100))
@settings(max_examples=25, deadline=None)
def test_property_tessellation_partitions(n_sites, n_points, seed):
    rng = np.random.default_rng(seed)
    sites = assign_points(SPACE, n_sites, rng)
    points = assign_points(SPACE, n_points, rng)
    cells = tessellate(SPACE, sites, points)
    assigned = [p for kids in cells.values() for p in kids]
    assert len(assigned) == n_points
    assert sorted(assigned) == sorted(points)
