"""Tests for the sweep driver, the cache, and every figure runner.

These run small (n=96-128) sweeps — enough to exercise every code path and
check the *shape* constraints the paper reports, while keeping the suite
fast.  The benches run the full-size versions.
"""

import numpy as np
import pytest

from repro.experiments import SweepConfig, run_failure_sweep, sweep_cached
from repro.experiments.cache import cache_clear, cache_size
from repro.experiments import (
    figure_a,
    figure_b,
    figure_c,
    figure_d,
    figure_e,
    figure_fg,
    figure_hi,
)

N = 128
LPS = 60


@pytest.fixture(scope="module")
def sweep1():
    return sweep_cached(SweepConfig(n=N, seed=3, case="case1", lookups_per_step=LPS))


@pytest.fixture(scope="module")
def sweep2():
    return sweep_cached(SweepConfig(n=N, seed=3, case="case2", lookups_per_step=LPS))


class TestSweepDriver:
    def test_steps_cover_5_to_95(self, sweep1):
        fracs = [r.failed_fraction for r in sweep1.records]
        assert fracs[0] == pytest.approx(0.05, abs=0.01)
        assert fracs[-1] >= 0.90
        assert fracs == sorted(fracs)

    def test_all_algorithms_recorded(self, sweep1):
        for r in sweep1.records:
            assert set(r.per_algo) == {"G", "NG", "NGSA"}
            for stats in r.per_algo.values():
                assert stats.issued == LPS

    def test_surviving_counts_decrease(self, sweep1):
        s = [r.surviving for r in sweep1.records]
        assert s == sorted(s, reverse=True)

    def test_deterministic(self):
        cfg = SweepConfig(n=64, seed=9, lookups_per_step=30)
        a = run_failure_sweep(cfg)
        b = run_failure_sweep(cfg)
        for ra, rb in zip(a.records, b.records):
            for algo in ("G", "NG", "NGSA"):
                assert ra.per_algo[algo].failure_rate == rb.per_algo[algo].failure_rate

    def test_height_recorded(self, sweep1):
        assert sweep1.height >= 2


class TestCache:
    def test_cache_hits(self):
        cache_clear()
        cfg = SweepConfig(n=64, seed=1, lookups_per_step=20)
        a = sweep_cached(cfg)
        b = sweep_cached(cfg)
        assert a is b
        assert cache_size() == 1
        sweep_cached(SweepConfig(n=64, seed=2, lookups_per_step=20))
        assert cache_size() == 2
        cache_clear()
        assert cache_size() == 0


class TestPaperShapes:
    """The qualitative claims of §IV, asserted on the small sweep."""

    def test_failure_curve_grows(self, sweep1):
        """Fig A: failures grow with dead fraction (allowing noise)."""
        s = sweep1.failure_series("G")
        early = np.mean([s.ys()[i] for i in range(3)])
        late = np.mean([s.ys()[i] for i in range(-4, -1)])
        assert late > early

    def test_failures_moderate_at_30pct(self, sweep1):
        """Fig A: far from total collapse at 30% dead — the headline
        robustness claim (paper: ~10%)."""
        s = sweep1.failure_series("G")
        assert s.interp(30.0) <= 35.0

    def test_algorithms_within_band(self, sweep1):
        """Fig A: G / NG / NGSA comparable (paper: ~2%; noise at n=128)."""
        at30 = [sweep1.failure_series(a).interp(30.0) for a in ("G", "NG", "NGSA")]
        assert max(at30) - min(at30) <= 25.0

    def test_ngsa_no_worse_than_ng(self, sweep1):
        """Fig A: NGSA's fallback never hurts success."""
        ng = sweep1.failure_series("NG")
        ngsa = sweep1.failure_series("NGSA")
        assert np.mean(ngsa.ys()[:10]) <= np.mean(ng.ys()[:10]) + 6.0

    def test_hops_stable_until_high_failure(self, sweep1):
        """Fig B: hop count roughly flat over the first half of the sweep."""
        s = sweep1.hops_series("G")
        first = np.mean(s.ys()[:4])
        mid = np.mean(s.ys()[5:9])
        assert abs(mid - first) <= 3.0

    def test_case2_same_family_shape(self, sweep2):
        """Fig C: variable-nc failure curves resemble case 1's."""
        s = sweep2.failure_series("G")
        assert s.interp(30.0) <= 40.0
        early = np.mean(s.ys()[:3])
        late = np.mean(s.ys()[-4:-1])
        assert late > early - 5.0

    def test_fig_d_variable_nc_flatter_at_low_failure(self, sweep1, sweep2):
        """Fig D: the flattened variable-nc hierarchy needs fewer hops
        early in the sweep."""
        fixed = sweep1.hops_series("G").interp(10.0)
        variable = sweep2.hops_series("G").interp(10.0)
        assert variable <= fixed + 0.5

    def test_fig_e_failed_hops_bounded_by_ttl(self, sweep1):
        smax, smin = sweep1.failed_hops_series("G")
        assert smax.max_y() <= 256
        assert all(a >= b for a, b in zip(smax.ys(), smin.ys()))

    def test_surfaces_ridge_near_log_n(self, sweep1):
        """Figs F/G: the hop distribution peaks at a small constant."""
        surf = sweep1.surface("G")
        early_ridge = surf.ridge_hops()[:6]
        assert all(1 <= r <= 12 for r in early_ridge)

    def test_case2_peak_sharper(self, sweep1, sweep2):
        """Figs H/I vs F/G: variable-nc concentrates the distribution
        (paper: peak ~60% vs ~50%)."""
        peak1 = sweep1.surface("G").peak()[1]
        peak2 = sweep2.surface("G").peak()[1]
        assert peak2 >= peak1 - 10.0


class TestFigureRunners:
    def test_figure_a(self):
        series = figure_a.run(n=N, seed=3, lookups_per_step=LPS)
        assert set(series) == {"G", "NG", "NGSA"}
        out = figure_a.render(n=N, seed=3, lookups_per_step=LPS)
        assert "Figure A" in out

    def test_figure_b(self):
        series = figure_b.run(n=N, seed=3, lookups_per_step=LPS)
        assert all(len(s) > 10 for s in series.values())
        assert "Figure B" in figure_b.render(n=N, seed=3, lookups_per_step=LPS)

    def test_figure_c(self):
        series = figure_c.run(n=N, seed=3, lookups_per_step=LPS)
        assert set(series) == {"G", "NG", "NGSA"}
        assert "Figure C" in figure_c.render(n=N, seed=3, lookups_per_step=LPS)

    def test_figure_d(self):
        series = figure_d.run(n=N, seed=3, lookups_per_step=LPS)
        assert set(series) == {"fixed nc=4", "variable nc"}
        assert "Figure D" in figure_d.render(n=N, seed=3, lookups_per_step=LPS)

    def test_figure_e(self):
        series = figure_e.run(n=N, seed=3, lookups_per_step=LPS)
        assert set(series) == {"max", "min"}
        assert "Figure E" in figure_e.render(n=N, seed=3, lookups_per_step=LPS)

    def test_figure_fg(self):
        surfaces = figure_fg.run(n=N, seed=3, lookups_per_step=LPS)
        assert surfaces["F"].algo == "G" and surfaces["G"].algo == "NG"
        arr = surfaces["F"].as_array()
        assert arr.shape[1] == 31
        out = figure_fg.render(n=N, seed=3, lookups_per_step=LPS)
        assert "Figure F" in out and "Figure G" in out

    def test_figure_hi(self):
        surfaces = figure_hi.run(n=N, seed=3, lookups_per_step=LPS)
        assert surfaces["H"].algo == "G" and surfaces["I"].algo == "NG"
        out = figure_hi.render(n=N, seed=3, lookups_per_step=LPS)
        assert "Figure H" in out and "Figure I" in out
