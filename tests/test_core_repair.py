"""Unit tests for the self-healing machinery (purge / relink / gossip)."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.repair import (
    FULL_POLICY,
    PAPER_POLICY,
    PURGE_ONLY_POLICY,
    apply_failure_step,
    converge,
    gossip_round,
    purge_dead,
    relink_node,
)


def built(n=64, seed=7):
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    net.build(n)
    return net


def kill(net, count, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    victims = [int(v) for v in rng.choice(net.ids, count, replace=False)]
    net.fail_nodes(victims)
    return victims


class TestPurge:
    def test_purge_removes_dead_everywhere(self):
        net = built()
        victims = kill(net, 10)
        purge_dead(net)
        for i, node in net.nodes.items():
            if net.network.is_up(i):
                for v in victims:
                    assert not node.table.knows(v)

    def test_purge_incremental_equals_full(self):
        net1, net2 = built(), built()
        victims = kill(net1, 10)
        kill(net2, 10)
        purge_dead(net1)
        purge_dead(net2, newly_dead=victims)
        for i in net1.ids:
            if net1.network.is_up(i):
                assert set(net1.nodes[i].table.all_known()) == set(
                    net2.nodes[i].table.all_known()
                )

    def test_purge_prunes_children_lists(self):
        net = built()
        victims = set(kill(net, 15))
        purge_dead(net)
        for i, node in net.nodes.items():
            if net.network.is_up(i):
                for kids in node.children_by_level.values():
                    assert victims.isdisjoint(kids)

    def test_purge_noop_without_dead(self):
        net = built()
        assert purge_dead(net) == 0


class TestRelink:
    def test_relink_restores_two_links(self):
        net = built()
        # Kill one direct neighbour of a middle node.
        mid = sorted(net.ids)[30]
        node = net.nodes[mid]
        victim = next(iter(node.table.level0))
        net.network.set_down(victim)
        purge_dead(net)
        relink_node(node, PAPER_POLICY)
        assert len(node.table.level0) >= 2
        assert victim not in node.table.level0

    def test_relink_links_nearest_known(self):
        net = built()
        mid = sorted(net.ids)[30]
        node = net.nodes[mid]
        relink_node(node, PAPER_POLICY)
        known = node.table.all_known()
        left = max((i for i in known if i < mid), default=None)
        right = min((i for i in known if i > mid), default=None)
        for expected in (left, right):
            if expected is not None:
                assert expected in node.table.level0

    def test_purge_only_policy_does_not_relink(self):
        net = built()
        mid = sorted(net.ids)[30]
        node = net.nodes[mid]
        victim = next(iter(node.table.level0))
        net.network.set_down(victim)
        purge_dead(net)
        before = set(node.table.level0)
        relink_node(node, PURGE_ONLY_POLICY)
        assert set(node.table.level0) == before

    def test_adopt_parent_when_enabled(self):
        net = built()
        # Find a node whose parent we kill.
        child = next(i for i in net.ids
                     if net.nodes[i].table.parents.get(net.nodes[i].max_level + 1))
        node = net.nodes[child]
        parent = node.table.parents[node.max_level + 1]
        net.network.set_down(parent)
        purge_dead(net)
        relink_node(node, FULL_POLICY)
        new_parent = node.table.parents.get(node.max_level + 1)
        if new_parent is not None:  # a replacement existed in its knowledge
            assert new_parent != parent
            assert net.network.is_up(new_parent)


class TestGossip:
    def test_gossip_spreads_indirect_neighbours(self):
        net = built()
        gossip_round(net, PAPER_POLICY)
        sorted_ids = sorted(net.ids)
        mid = sorted_ids[30]
        node = net.nodes[mid]
        # After one round the node knows its neighbours' neighbours.
        assert node.table.level0_indirect, "no indirect knowledge gained"

    def test_gossip_keeps_tables_bounded(self):
        net = built(n=128)
        sizes_before = [net.nodes[i].table.size() for i in net.ids]
        for _ in range(5):
            gossip_round(net, FULL_POLICY)
        sizes_after = [net.nodes[i].table.size() for i in net.ids]
        # Bounded: repeated gossip cannot blow tables up indefinitely.
        assert np.mean(sizes_after) < np.mean(sizes_before) * 4
        assert max(sizes_after) < 64

    def test_gossip_never_imports_dead(self):
        net = built()
        victims = set(kill(net, 10))
        purge_dead(net)
        for _ in range(3):
            gossip_round(net, PAPER_POLICY)
        for i, node in net.nodes.items():
            if net.network.is_up(i):
                assert victims.isdisjoint(node.table.all_known())


class TestApplyFailureStep:
    def test_survivors_keep_resolving(self):
        net = built(n=128)
        victims = kill(net, 38)  # ~30%
        apply_failure_step(net, victims, PAPER_POLICY)
        alive = net.alive_ids()
        rng = np.random.default_rng(1)
        ok = 0
        for _ in range(40):
            o, t = (int(x) for x in rng.choice(alive, 2, replace=False))
            ok += net.lookup_sync(o, t, "G").found
        assert ok >= 30  # >= 75% at 30% dead

    def test_policies_ordered_by_strength(self):
        """More healing -> no worse success rate."""
        rates = {}
        for name, policy in [("purge", PURGE_ONLY_POLICY),
                             ("paper", PAPER_POLICY),
                             ("full", FULL_POLICY)]:
            net = built(n=128)
            victims = kill(net, 38)
            apply_failure_step(net, victims, policy)
            alive = net.alive_ids()
            rng = np.random.default_rng(1)
            ok = 0
            for _ in range(40):
                o, t = (int(x) for x in rng.choice(alive, 2, replace=False))
                ok += net.lookup_sync(o, t, "G").found
            rates[name] = ok
        # Small-n batches are noisy; allow generous slack on the ordering.
        assert rates["purge"] <= rates["paper"] + 6
        assert rates["paper"] <= rates["full"] + 6
        # But the weakest policy must not beat the strongest.
        assert rates["purge"] <= rates["full"] + 4

    def test_converge_wrapper(self):
        net = built()
        victims = kill(net, 10)
        converge(net, newly_failed=victims)
        for i, node in net.nodes.items():
            if net.network.is_up(i):
                assert set(victims).isdisjoint(node.table.all_known())


class TestRepairPolicy:
    def test_paper_policy_values(self):
        assert PAPER_POLICY.relink_level0
        assert PAPER_POLICY.relink_buses
        assert not PAPER_POLICY.adopt_parents
        assert PAPER_POLICY.gossip_rounds == 1

    def test_policies_frozen(self):
        with pytest.raises(Exception):
            PAPER_POLICY.gossip_rounds = 5  # type: ignore[misc]
