"""Unit tests for TreePConfig."""

import pytest

from repro.core.config import TreePConfig


def test_defaults_are_paper_case1():
    c = TreePConfig.paper_case1()
    assert c.nc_mode == "fixed" and c.nc_fixed == 4
    assert c.ttl_max == 255
    assert c.min_level0_connections == 2


def test_case2_is_variable():
    assert TreePConfig.paper_case2().nc_mode == "variable"


def test_with_overrides():
    c = TreePConfig.paper_case1().with_(nc_fixed=6)
    assert c.nc_fixed == 6
    assert c.nc_mode == "fixed"


def test_preset_overrides():
    c = TreePConfig.paper_case1(ttl_max=100)
    assert c.ttl_max == 100


def test_frozen():
    c = TreePConfig()
    with pytest.raises(Exception):
        c.nc_fixed = 10  # type: ignore[misc]


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(nc_fixed=1),
        dict(nc_floor=1),
        dict(nc_floor=6, nc_ceiling=4),
        dict(max_height=0),
        dict(min_level0_connections=1),
        dict(ttl_max=0),
        dict(ttl_max=300),
        dict(keepalive_interval=0),
        dict(entry_ttl=-1),
        dict(election_base=0),
        dict(demotion_base=0),
        dict(lookup_timeout=0),
    ],
)
def test_validation(kwargs):
    with pytest.raises(ValueError):
        TreePConfig(**kwargs)


def test_demotion_policy_values():
    assert TreePConfig(demotion_policy="strict").demotion_policy == "strict"
    assert TreePConfig(demotion_policy="keep-upper").demotion_policy == "keep-upper"
