"""Unit tests for the event queue."""

import pytest

from repro.sim.events import Event, EventQueue, make_callback


def test_push_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, lambda: fired.append(3))
    q.push(1.0, lambda: fired.append(1))
    q.push(2.0, lambda: fired.append(2))
    while (ev := q.pop()) is not None:
        ev.callback()
    assert fired == [1, 2, 3]


def test_same_time_fifo_order():
    q = EventQueue()
    fired = []
    for i in range(10):
        q.push(5.0, make_callback(fired.append, i))
    while (ev := q.pop()) is not None:
        ev.callback()
    assert fired == list(range(10))


def test_len_counts_live_events():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    assert len(q) == 2
    e1.cancel()
    # Lazy deletion: logical length drops immediately on pop of cancelled.
    assert q.pop().time == 2.0
    assert len(q) == 0


def test_cancelled_event_skipped():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    e.cancel()
    assert q.pop() is None


def test_cancel_is_idempotent():
    q = EventQueue()
    e = q.push(1.0, lambda: None)
    e.cancel()
    e.cancel()
    assert q.pop() is None


def test_peek_time_skips_cancelled():
    q = EventQueue()
    e1 = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    e1.cancel()
    assert q.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_nan_time_rejected():
    q = EventQueue()
    with pytest.raises(ValueError, match="NaN"):
        q.push(float("nan"), lambda: None)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.clear()
    assert not q
    assert q.pop() is None


def test_bool_reflects_liveness():
    q = EventQueue()
    assert not q
    q.push(1.0, lambda: None)
    assert q


def test_event_ordering_dataclass():
    a = Event(time=1.0, seq=0, callback=lambda: None)
    b = Event(time=1.0, seq=1, callback=lambda: None)
    c = Event(time=0.5, seq=2, callback=lambda: None)
    assert c < a < b


def test_make_callback_binds_arguments():
    out = []
    cb = make_callback(out.append, 42)
    cb()
    assert out == [42]
