"""Trace-store roundtrip tests: chunk boundaries, empty runs, multi-run
string remapping, and the filter/query API."""

import numpy as np
import pytest

from repro.obs.hub import STATUS_OK, STATUS_TIMEOUT, ObsHub
from repro.obs.store import SCHEMA, TraceReader, write_store


def _hub_with_traffic(chunk=4096, n=10, offset=0):
    hub = ObsHub(chunk=chunk)
    for i in range(n):
        rid = offset + i
        hub.lookup_begin(rid, i, float(i))
        hub.lookup_hop(rid, i, float(i), 0)
        hub.lookup_hop(rid, i + 1, float(i) + 0.25, 1)
        hub.lookup_end(rid, float(i) + 0.5, found=(i % 3 != 0), hops=2)
    return hub


def test_roundtrip_across_chunk_boundaries(tmp_path):
    # chunk=3 forces several chunk retirements for 10 spans / 20 events.
    hub = _hub_with_traffic(chunk=3, n=10)
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        assert reader.runs == ["run-000"]
        spans = reader.stream("run-000", "spans")
        events = reader.stream("run-000", "events")
        assert len(spans) == 10 and len(events) == 20
        np.testing.assert_array_equal(
            np.sort(spans.column("t0")), np.arange(10, dtype=float))
        assert reader.category_counts() == hub.category_counts()
        assert reader.meta["schema"] == SCHEMA


def test_empty_run_roundtrip(tmp_path):
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": ObsHub()})
    with TraceReader(path) as reader:
        spans = reader.stream("run-000", "spans")
        assert len(spans) == 0
        assert spans.categories() == {}
        assert list(spans) == []
        assert reader.category_counts() == {}


def test_multi_run_string_table_remap(tmp_path):
    # The two hubs intern categories in different orders; the writer must
    # remap both onto one global table.
    a = ObsHub()
    a.storage_begin("put", 1, 0, 0.0)
    a.storage_end("put", 1, 1.0, ok=True, hops=2, replicas=3)
    a.lookup_begin(2, 0, 0.0)
    a.lookup_end(2, 0.5, found=True, hops=1)

    b = ObsHub()
    b.lookup_begin(9, 5, 0.0)
    b.lookup_end(9, 0.25, found=True, hops=1)
    b.storage_begin("get", 10, 5, 1.0)
    b.storage_end("get", 10, 1.5, ok=True, hops=1, replicas=0)

    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": a, "run-001": b})
    with TraceReader(path) as reader:
        assert reader.runs == ["run-000", "run-001"]
        assert reader.stream("run-000", "spans").categories() == {
            "storage.put": 1, "lookup": 1}
        assert reader.stream("run-001", "spans").categories() == {
            "lookup": 1, "storage.get": 1}
        # Aggregated counts across runs.
        assert reader.category_counts() == {
            "lookup": 2, "storage.put": 1, "storage.get": 1}
        assert reader.category_counts("run-001") == {
            "lookup": 1, "storage.get": 1}


def test_open_spans_survive_roundtrip(tmp_path):
    hub = ObsHub()
    hub.lookup_begin(1, 0, 2.0)  # never ended
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        spans = reader.stream("run-000", "spans")
        assert len(spans) == 1
        row = spans.rows()[0]
        assert row["t0"] == row["t1"] == 2.0
        assert row["category"] == "lookup"


def test_filter_api(tmp_path):
    hub = _hub_with_traffic(n=10)
    hub.storage_begin("put", 99, 0, 100.0)
    hub.storage_end("put", 99, 103.0, ok=False, timed_out=True)
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        spans = reader.stream("run-000", "spans")
        assert len(spans.filter(category="lookup")) == 10
        assert len(spans.filter(category="storage.put")) == 1
        assert len(spans.filter(category="never-recorded")) == 0
        assert len(spans.filter(node=3)) == 1
        assert len(spans.filter(min_time=5.0)) == 5 + 1
        assert len(spans.filter(min_time=2.0, max_time=4.0)) == 3
        assert len(spans.filter(status=STATUS_TIMEOUT)) == 1
        # Filters compose (view-of-view).
        sub = spans.filter(category="lookup").filter(status=STATUS_OK)
        assert all(r["status"] == STATUS_OK for r in sub)
        events = reader.events("run-000", category="lookup.hop", node=4)
        assert len(events) == 2  # node 4 appears as hop 0 of rid 4, hop 1 of rid 3


def test_iteration_decodes_categories(tmp_path):
    hub = _hub_with_traffic(n=2)
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        for row in reader.stream("run-000", "events"):
            assert row["category"] == "lookup.hop"
            assert "cat" not in row
            assert isinstance(row["t"], float)


def test_run_meta_and_metrics_snapshot(tmp_path):
    hub = _hub_with_traffic(n=4)
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub}, meta_extra={"scenario": "unit"})
    with TraceReader(path) as reader:
        meta = reader.run_meta("run-000")
        assert meta["streams"] == {"spans": 4, "events": 8}
        assert meta["metrics"]["span.lookup.latency.count"] == 4.0
        assert reader.meta["extra"] == {"scenario": "unit"}
        with pytest.raises(KeyError):
            reader.run_meta("nope")
        with pytest.raises(KeyError):
            reader.stream("run-000", "nope")


def test_write_rejects_slash_in_run_name(tmp_path):
    with pytest.raises(ValueError):
        write_store(str(tmp_path / "t.npz"), {"a/b": ObsHub()})


def test_reader_rejects_foreign_npz(tmp_path):
    path = str(tmp_path / "foreign.npz")
    np.savez(path, x=np.arange(3))
    with pytest.raises(ValueError):
        TraceReader(path)


def test_sim_event_counts_roundtrip(tmp_path):
    class Ev:
        def __init__(self, label, time):
            self.label = label
            self.time = time

    hub = ObsHub()
    for _ in range(3):
        hub.on_sim_event(Ev("dgram:LookupRequest", 1.0))
    hub.on_sim_event(Ev("keepalive", 2.0))
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        assert reader.sim_event_counts() == {
            "dgram:LookupRequest": 3, "keepalive": 1}
