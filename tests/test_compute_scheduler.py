"""End-to-end tests of the grid job-execution subsystem: dispatch,
heartbeat-loss re-placement, checkpoint resume, DAG ordering, work
stealing, and scheduler failover."""

import pytest

from repro import (
    ComputeConfig,
    JobScheduler,
    JobSpec,
    TreePConfig,
    TreePNetwork,
)
from repro.compute.job import JobState, checkpoint_key
from repro.core.repair import FULL_POLICY, apply_failure_step
from repro.services.discovery import Constraint


def make_grid(n=48, seed=7, **cfg_kwargs):
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    net.build(n)
    grid = JobScheduler(net, config=ComputeConfig(**cfg_kwargs))
    return net, grid


def kill(net, grid, victims):
    net.fail_nodes(victims)
    apply_failure_step(net, victims, FULL_POLICY)
    grid.directory.refresh()


# ----------------------------------------------------------------- basics
def test_submit_dispatch_complete():
    net, grid = make_grid()
    for i in range(5):
        grid.submit(JobSpec(job_id=i + 1, cpu_demand=1.0, work=8.0))
    assert grid.run_until_done(timeout=200.0)
    assert len(grid.results) == 5
    assert all(r.ok and r.attempts == 1 for r in grid.results.values())
    core = grid.scheduler_core()
    assert all(r.state is JobState.DONE for r in core.records.values())
    stats = grid.stats()
    assert stats.completion_rate == 1.0
    assert stats.useful_work == pytest.approx(40.0)
    assert stats.executed_work == pytest.approx(40.0, abs=1.0)
    assert stats.wasted_work == pytest.approx(0.0, abs=1.0)
    assert stats.makespan > 0


def test_submission_is_routed_protocol_traffic():
    """Submissions travel as Job* datagrams, not oracle calls."""
    net, grid = make_grid()
    # Submit from the peer furthest (in table terms) from the scheduler.
    via = next(i for i in net.ids
               if i != grid.scheduler_ident and net.network.is_up(i))
    grid.submit(JobSpec(job_id=1, work=5.0), via=via)
    assert grid.run_until_done(timeout=120.0)
    by_type = net.network.stats.by_type
    for name in ("JobSubmit", "JobAck", "JobDispatch", "JobAccepted",
                 "JobHeartbeat", "JobComplete", "JobReport"):
        assert by_type.get(name, 0) >= 1, f"no {name} on the wire"
    assert grid.client[1].acked


def test_constraint_matchmaking_respects_capabilities():
    net, grid = make_grid()
    c = Constraint(min_cpu=4.0, min_memory_gb=2.0)
    grid.submit(JobSpec(job_id=1, cpu_demand=2.0, work=6.0, constraint=c))
    assert grid.run_until_done(timeout=200.0)
    worker = grid.results[1].worker
    assert grid.results[1].ok
    assert c.admits(net.capacities[worker])


def test_unsatisfiable_constraint_fails_cleanly():
    net, grid = make_grid(max_attempts=3, monitor_interval=2.0)
    grid.submit(JobSpec(job_id=1, work=5.0,
                        constraint=Constraint(min_cpu=10_000.0)))
    assert grid.run_until_done(timeout=300.0)
    assert not grid.results[1].ok
    assert grid.stats().failed == 1


# -------------------------------------------------------------------- DAG
def test_dag_ordering_enforced():
    net, grid = make_grid()
    grid.submit(JobSpec(job_id=1, work=10.0))
    grid.submit(JobSpec(job_id=2, work=6.0, deps=(1,)))
    grid.submit(JobSpec(job_id=3, work=4.0, deps=(2,)))
    assert grid.run_until_done(timeout=400.0)
    r1, r2, r3 = (grid.results[i] for i in (1, 2, 3))
    assert r1.ok and r2.ok and r3.ok
    # A dependent cannot finish before its dependency's completion plus
    # its own work (it was only dispatched after the JobComplete).
    assert r2.completed_at >= r1.completed_at + 6.0 - 1.0
    assert r3.completed_at >= r2.completed_at + 4.0 - 1.0


def test_failed_dependency_cascades_to_dependents():
    net, grid = make_grid(max_attempts=3, monitor_interval=2.0)
    grid.submit(JobSpec(job_id=1, work=5.0,
                        constraint=Constraint(min_cpu=10_000.0)))
    grid.submit(JobSpec(job_id=2, work=5.0, deps=(1,)))
    assert grid.run_until_done(timeout=400.0)
    assert not grid.results[1].ok
    assert not grid.results[2].ok  # the dependent fails too, not waits


def test_dag_fan_in_waits_for_all_parents():
    net, grid = make_grid()
    grid.submit(JobSpec(job_id=1, work=5.0))
    grid.submit(JobSpec(job_id=2, work=25.0))
    grid.submit(JobSpec(job_id=3, work=3.0, deps=(1, 2)))
    assert grid.run_until_done(timeout=400.0)
    slowest = max(grid.results[1].completed_at, grid.results[2].completed_at)
    assert grid.results[3].completed_at >= slowest + 3.0 - 1.0


# -------------------------------------------------- failure and recovery
def test_heartbeat_loss_triggers_replacement():
    net, grid = make_grid(checkpoint_interval=None)  # restart ablation
    grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=60.0))
    net.sim.run_for(15.0)
    core = grid.scheduler_core()
    worker = core.records[1].worker
    assert worker is not None and worker != grid.scheduler_ident
    kill(net, grid, [worker])
    assert grid.run_until_done(timeout=600.0)
    assert grid.results[1].ok
    assert grid.results[1].worker != worker
    assert grid.results[1].attempts >= 2
    assert grid.stats().reexecutions >= 1


def test_checkpoint_resume_after_worker_death():
    net, grid = make_grid(checkpoint_interval=4.0)
    grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=80.0))
    net.sim.run_for(20.0)
    core = grid.scheduler_core()
    first_worker = core.records[1].worker
    assert first_worker is not None
    if first_worker == grid.scheduler_ident:
        pytest.skip("job landed on the scheduler host for this seed")
    kill(net, grid, [first_worker])

    # Step until the re-placed attempt is running, then inspect its agent.
    resumed_from = None
    for _ in range(120):
        net.sim.run_for(1.0)
        for ident, agent in grid.agents.items():
            held = agent.running.get(1)
            if (ident != first_worker and held is not None
                    and held.state == "running"):
                resumed_from = held.resume_from
                break
        if resumed_from is not None:
            break
    assert resumed_from is not None, "job was never re-placed"
    assert resumed_from > 0.0, "resume did not read the checkpoint"
    assert grid.run_until_done(timeout=800.0)
    assert grid.results[1].ok
    # Strictly less total execution than a from-scratch re-run.
    assert grid.stats().executed_work < 80.0 + resumed_from + 1.0


def test_checkpoint_ablation_wastes_more_work():
    """Same seed, checkpointing on vs off: both complete, restart wastes
    strictly more executed work."""
    wasted = {}
    for ckpt in (4.0, None):
        net, grid = make_grid(seed=19, checkpoint_interval=ckpt)
        grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=90.0))
        net.sim.run_for(25.0)
        worker = grid.scheduler_core().records[1].worker
        if worker == grid.scheduler_ident:  # pragma: no cover - seed guard
            pytest.skip("job landed on the scheduler host for this seed")
        kill(net, grid, [worker])
        assert grid.run_until_done(timeout=800.0)
        assert grid.results[1].ok
        wasted[ckpt] = grid.stats().wasted_work
    assert wasted[4.0] < wasted[None]


def test_scheduler_failover_resumes_jobs():
    net, grid = make_grid(n=64, seed=5, checkpoint_interval=5.0)
    for i in range(8):
        grid.submit(JobSpec(job_id=i + 1, cpu_demand=1.0, work=60.0))
    net.sim.run_for(20.0)
    old = grid.scheduler_ident
    kill(net, grid, [old])
    assert grid.ensure_scheduler()
    assert grid.scheduler_ident != old
    assert grid.run_until_done(timeout=1000.0)
    assert all(r.ok for r in grid.results.values())
    stats = grid.stats()
    assert stats.completion_rate == 1.0
    assert stats.failovers == 1


def test_ensure_scheduler_is_noop_while_alive():
    net, grid = make_grid()
    assert not grid.ensure_scheduler()
    assert grid.failovers == 0


def test_orphaned_attempt_fences_itself_off():
    """A worker whose scheduler died abandons the run once its lease
    lapses (after a final checkpoint) instead of computing forever."""
    net, grid = make_grid(n=64, seed=5, checkpoint_interval=5.0,
                          lease_timeout=12.0)
    for i in range(4):
        grid.submit(JobSpec(job_id=i + 1, cpu_demand=1.0, work=500.0))
    net.sim.run_for(10.0)
    old = grid.scheduler_ident
    records = grid.scheduler_core().records
    orphans = {jid: r.worker for jid, r in records.items()
               if r.worker is not None and r.worker != old}
    assert orphans, "every job landed on the scheduler host"
    kill(net, grid, [old])
    # No failover: the orphaned workers must stop on their own.
    net.sim.run_for(40.0)
    for jid, worker in orphans.items():
        assert jid not in grid.agents[worker].running
        assert grid.agents[worker].leases_expired >= 1


# ----------------------------------------------------------- work stealing
def test_work_stealing_drains_saturated_queues():
    net, grid = make_grid(n=64, seed=5, steal_interval=4.0)
    # Oversubscribe the grid so placement must queue jobs on busy peers.
    for i in range(40):
        grid.submit(JobSpec(job_id=i + 1, cpu_demand=2.0, work=60.0))
    assert grid.run_until_done(timeout=2000.0)
    assert all(r.ok for r in grid.results.values())
    stats = grid.stats()
    assert stats.steals >= 1, "saturation never triggered a steal"
    assert stats.steal_reassignments >= 1  # the scheduler re-owned them


def test_stealing_disabled_still_completes():
    net, grid = make_grid(n=64, seed=5, steal_interval=None)
    for i in range(10):
        grid.submit(JobSpec(job_id=i + 1, cpu_demand=1.0, work=30.0))
    assert grid.run_until_done(timeout=1500.0)
    assert all(r.ok for r in grid.results.values())
    assert grid.stats().steals == 0


def test_lossy_network_still_completes_every_job():
    """Datagram loss drops submissions, dispatches and heartbeats; the
    client retry + monitor re-place machinery must still land every job."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=7, loss=0.15)
    net.build(48)
    grid = JobScheduler(net, config=ComputeConfig())
    for i in range(6):
        grid.submit(JobSpec(job_id=i + 1, work=10.0))
    assert grid.run_until_done(timeout=800.0)
    assert all(r.ok for r in grid.results.values())


# -------------------------------------------------------------- lifecycle
def test_close_stops_all_timers():
    net, grid = make_grid()
    grid.submit(JobSpec(job_id=1, work=5.0))
    assert grid.run_until_done(timeout=120.0)
    grid.close()
    assert net.sim.drain() >= 0  # terminates: no timer re-arms itself


def test_duplicate_submit_rejected():
    net, grid = make_grid()
    grid.submit(JobSpec(job_id=1, work=5.0))
    with pytest.raises(ValueError):
        grid.submit(JobSpec(job_id=1, work=5.0))


def test_scheduled_submissions_fire_at_arrival_times():
    net, grid = make_grid()
    specs = [JobSpec(job_id=i + 1, work=4.0, submit_at=5.0 * i)
             for i in range(3)]
    grid.schedule_submissions(specs)
    assert set(grid.pending_jobs()) == {1, 2, 3}
    assert grid.run_until_done(timeout=300.0)
    subs = sorted(grid.results[i].submitted_at for i in (1, 2, 3))
    assert subs[1] >= subs[0] + 5.0 - 1e-9
    assert subs[2] >= subs[1] + 5.0 - 1e-9


def test_checkpoints_are_quorum_stored():
    net, grid = make_grid(checkpoint_interval=3.0)
    grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=20.0))
    net.sim.run_for(10.0)
    assert sum(a.checkpoints_written for a in grid.agents.values()) >= 1
    res = grid.store.get(checkpoint_key(1))
    assert res.found and res.value["progress"] > 0.0
    assert grid.run_until_done(timeout=300.0)
