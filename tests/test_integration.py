"""Cross-module integration tests.

The heavyweight checks: protocol-mode maintenance converges to the same
routing state the harness's converged mode produces; the full §IV pipeline
holds together end to end; services survive on a stressed overlay.
"""

import numpy as np

from repro import TreePConfig, TreePNetwork
from repro.core.repair import (
    FULL_POLICY,
    PAPER_POLICY,
    apply_failure_step,
    purge_dead,
)
from repro.experiments.ablations import (
    euclidean_fallback,
    id_assignment,
    maintenance_interval,
    repair_mechanisms,
)
from repro.sim.failures import FailureSchedule
from repro.workloads import LookupWorkload


class TestProtocolVsConvergedRepair:
    """Keep-alive expiry (protocol mode) must reach the same dead-entry-free
    state as the harness's purge (converged mode)."""

    def _nets(self):
        cfg = TreePConfig.paper_case1(keepalive_interval=1.0, entry_ttl=4.0)
        proto = TreePNetwork(config=cfg, seed=55)
        proto.build(48)
        conv = TreePNetwork(config=cfg, seed=55)
        conv.build(48)
        assert proto.ids == conv.ids
        return proto, conv

    def test_dead_entries_purged_identically(self):
        proto, conv = self._nets()
        rng = np.random.default_rng(0)
        victims = [int(v) for v in rng.choice(proto.ids, 8, replace=False)]

        proto.fail_nodes(victims)
        proto.start_maintenance()
        proto.sim.run_for(20.0)  # several TTL windows
        proto.stop_maintenance()

        conv.fail_nodes(victims)
        purge_dead(conv)

        for i in proto.ids:
            if not proto.network.is_up(i):
                continue
            proto_known = set(proto.nodes[i].table.all_known())
            assert proto_known.isdisjoint(victims), (
                f"protocol node {i} still knows dead peers"
            )
            conv_known = set(conv.nodes[i].table.all_known())
            assert conv_known.isdisjoint(victims)

    def test_lookups_agree_after_both_repairs(self):
        proto, conv = self._nets()
        rng = np.random.default_rng(1)
        victims = [int(v) for v in rng.choice(proto.ids, 8, replace=False)]
        for net in (proto, conv):
            net.fail_nodes(victims)
        proto.start_maintenance()
        proto.sim.run_for(20.0)
        proto.stop_maintenance()
        apply_failure_step(conv, victims, FULL_POLICY)

        alive = [i for i in proto.ids if proto.network.is_up(i)]
        pairs = [tuple(int(x) for x in rng.choice(alive, 2, replace=False))
                 for _ in range(25)]
        ok_proto = sum(r.found for r in proto.run_lookup_batch(pairs, "G"))
        ok_conv = sum(r.found for r in conv.run_lookup_batch(pairs, "G"))
        assert abs(ok_proto - ok_conv) <= 5


class TestEndToEndSweep:
    def test_full_pipeline_produces_consistent_records(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=77)
        net.build(96)
        rng = net.rng.get("sweep")
        schedule = FailureSchedule(net.ids, rng)
        workload = LookupWorkload(rng=net.rng.get("wl"))
        prev_alive = len(net.ids)
        for step in schedule.steps():
            schedule.apply_step(net.network, step)
            apply_failure_step(net, step.newly_failed, PAPER_POLICY)
            alive = net.alive_ids()
            assert len(alive) == len(step.surviving)
            assert len(alive) < prev_alive
            prev_alive = len(alive)
            if step.cumulative_failed_fraction >= 0.5:
                break
        results = net.run_lookup_batch(workload.pairs(net.alive_ids(), 50), "G")
        assert len(results) == 50
        found = [r for r in results if r.found]
        assert found, "nothing resolves at 50% dead"
        for r in found:
            # A found path never visits a dead node.
            for hop in r.path:
                assert net.network.is_up(hop), "path crossed a dead node"

    def test_lookup_paths_respect_ttl(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(ttl_max=16), seed=78)
        net.build(96)
        rng = np.random.default_rng(0)
        for _ in range(30):
            o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
            r = net.lookup_sync(o, t, "G")
            if r.found:
                assert r.hops <= 16


class TestServicesUnderStress:
    def test_dht_and_discovery_after_sweep(self):
        from repro.services import ResourceDirectory, TreePDht
        from repro.services.discovery import Constraint

        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=31)
        net.build(96)
        dht = TreePDht(net, replicas=3)
        for i in range(20):
            assert dht.put(f"key{i}", i).found
        rng = np.random.default_rng(3)
        victims = [int(v) for v in rng.choice(net.ids, 28, replace=False)]
        net.fail_nodes(victims)
        apply_failure_step(net, victims, FULL_POLICY)
        alive = net.alive_ids()
        hits = sum(dht.get(f"key{i}", via=alive[i % len(alive)]).found
                   for i in range(20))
        assert hits >= 14
        directory = ResourceDirectory(net)
        res = directory.query(Constraint(min_cpu=2), max_results=3)
        for m in res.matches:
            assert net.network.is_up(m)


class TestAblations:
    def test_id_assignment_shapes(self):
        out = id_assignment(n=96, seed=1, lookups=40)
        assert set(out) == {"random", "hash", "balanced"}
        # Balanced IDs give the most even cells.
        assert out["balanced"]["cell_size_std"] <= out["random"]["cell_size_std"] + 0.5
        for row in out.values():
            assert row["success_rate"] >= 0.9

    def test_euclidean_fallback_helps_or_neutral(self):
        out = euclidean_fallback(n=96, seed=1, lookups=60)
        assert out["fallback-on"]["success_rate"] >= out["fallback-off"]["success_rate"] - 0.15

    def test_repair_mechanisms_ordering(self):
        out = repair_mechanisms(n=96, seed=1, lookups=40)
        assert out["purge-only"]["success_rate"] <= out["full adoption"]["success_rate"] + 0.1

    def test_maintenance_interval_monotone_cost(self):
        out = maintenance_interval(n=32, seed=1, horizon=30.0)
        costs = [out[i]["messages_per_node_per_s"] for i in sorted(out)]
        assert costs == sorted(costs, reverse=True)  # shorter period = more traffic
