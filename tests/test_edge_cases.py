"""Edge cases and failure injection across module boundaries."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.capacity import uniform_capacity
from repro.core.config import TreePConfig as Cfg
from repro.core.ids import IdSpace
from repro.core.lookup import DecisionKind, route
from repro.core.messages import JoinRedirect, KeepAliveAck, LookupRequest, Splice
from repro.core.node import TreePNode
from repro.core.routing_table import RoutingTable
from repro.sim.engine import Simulator
from repro.sim.failures import PoissonChurn
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


class _View:
    def __init__(self, ident, max_level=0, height=4, extent=2**16):
        self.ident = ident
        self.max_level = max_level
        self.config = Cfg.paper_case1(space=IdSpace(extent=extent))
        self.table = RoutingTable(ident)
        self.height = height


def _req(target, **kw):
    defaults = dict(request_id=1, origin=0, algo="G", ttl=0)
    defaults.update(kw)
    return LookupRequest(target=target, **defaults)


class TestLookupFromParentBranch:
    def test_level0_node_from_level1_parent_searches_level_zero(self):
        """Fig. 3: a request from the level-1 parent restricts the search
        to the level-0 neighbourhood — level-table entries are ignored."""
        v = _View(1000, max_level=0)
        v.table.add_level0(1100, 0.0)
        v.table.add_superior(60000, 0.0, max_level=3)  # would win otherwise
        d = route(v, _req(1150, from_parent_level=1))
        assert d.kind is DecisionKind.FORWARD
        assert d.next_hop == 1100  # not the superior

    def test_from_parent_no_candidates_not_found(self):
        v = _View(1000, max_level=0)
        v.table.add_superior(60000, 0.0, max_level=3)
        d = route(v, _req(1150, from_parent_level=1))
        assert d.kind is DecisionKind.NOT_FOUND


class TestTinyNetworks:
    def test_two_node_network_lookup(self):
        net = TreePNetwork(seed=1)
        net.build(2)
        r = net.lookup_sync(net.ids[0], net.ids[1], "G")
        assert r.found and r.hops <= 1

    def test_three_node_all_algorithms(self):
        net = TreePNetwork(seed=2)
        net.build(3)
        for algo in ("G", "NG", "NGSA"):
            r = net.lookup_sync(net.ids[0], net.ids[2], algo)
            assert r.found

    def test_single_node_build_rejected(self):
        net = TreePNetwork(seed=1)
        with pytest.raises(ValueError):
            net.build(1)


class TestJoinEdgeCases:
    def test_join_redirect_handler_resends(self):
        cfg = TreePConfig.paper_case1()
        sim = Simulator()
        netw = Network(sim, latency=ConstantLatency(0.01))
        joiner = TreePNode(5000, uniform_capacity(), cfg)
        other = TreePNode(9000, uniform_capacity(), cfg)
        netw.register(joiner)
        netw.register(other)
        joiner._on_JoinRedirect(123, JoinRedirect(joiner=5000, closer=9000))
        sim.run()
        # The redirect resent a JoinRequest to the closer node, which
        # placed the joiner adjacent to itself.
        assert 5000 in other.table.level0

    def test_join_at_extreme_id(self):
        net = TreePNetwork(seed=6)
        net.build(32)
        lowest = 1 if 1 not in net.nodes else 2
        node = net.join_new_node(lowest)
        net.sim.drain()
        assert node.table.level0  # placed at the left end of the line

    def test_splice_updates_displaced_neighbour(self):
        cfg = TreePConfig.paper_case1()
        sim = Simulator()
        netw = Network(sim, latency=ConstantLatency(0.01))
        a = TreePNode(1000, uniform_capacity(), cfg)
        c = TreePNode(3000, uniform_capacity(), cfg)
        joiner = TreePNode(2000, uniform_capacity(), cfg)
        for n in (a, c, joiner):
            netw.register(n)
        a.table.add_level0(3000, 0.0)
        c.table.add_level0(1000, 0.0)
        # Joiner 2000 lands between 1000 and 3000; 3000 is told.
        c._on_Splice(1000, Splice(joiner=2000, left=1000, right=3000))
        sim.run()
        assert 2000 in c.table.level0
        assert 1000 not in c.table.level0  # displaced link dropped
        assert 3000 in joiner.table.all_known()  # Hello arrived


class TestKeepAliveAck:
    def test_ack_merges_delta(self):
        cfg = TreePConfig.paper_case1()
        sim = Simulator()
        netw = Network(sim, latency=ConstantLatency(0.01))
        node = TreePNode(1000, uniform_capacity(), cfg)
        netw.register(node)
        node._on_KeepAliveAck(2000, KeepAliveAck(entries=((3000, 1, 2.0, 4, 1.0),)))
        assert node.table.knows(3000)
        assert node.table.get(3000).max_level == 1


class TestChurnWithOverlay:
    def test_poisson_churn_with_maintenance(self):
        """Nodes flap while maintenance runs: the overlay must neither
        crash nor leak dead entries for long-dead peers."""
        cfg = TreePConfig.paper_case1(keepalive_interval=1.0, entry_ttl=3.0)
        net = TreePNetwork(config=cfg, seed=41)
        net.build(32)
        churn = PoissonChurn(
            net.sim, net.network, net.ids[:16], net.rng.get("churn"),
            mean_uptime=5.0, mean_downtime=50.0,  # leave and mostly stay down
        )
        net.start_maintenance()
        churn.start()
        net.sim.run_for(30.0)
        churn.stop()
        net.stop_maintenance()
        long_dead = [i for i in net.ids[:16] if not net.network.is_up(i)]
        assert churn.leave_count > 0
        for i in net.alive_ids():
            node = net.nodes[i]
            for d in long_dead:
                e = node.table.get(d)
                # Any remaining entry must be fresh (the peer flapped back
                # up recently), never stale beyond the TTL.
                if e is not None:
                    assert net.sim.now - e.last_seen <= 2 * cfg.entry_ttl


class TestExtremeConfigs:
    def test_tiny_ttl_limits_reach(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(ttl_max=1), seed=8)
        net.build(64)
        rng = np.random.default_rng(0)
        found = 0
        for _ in range(20):
            o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
            found += net.lookup_sync(o, t, "G").found
        assert found < 20  # 1-hop horizon cannot resolve everything

    def test_huge_nc_flat_tree(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(nc_fixed=32), seed=9)
        layout = net.build(64)
        assert layout.height <= 3

    def test_min_nc_tall_tree(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(nc_fixed=2), seed=9)
        layout = net.build(64)
        assert layout.height >= 4

    def test_small_space(self):
        cfg = TreePConfig.paper_case1(space=IdSpace(extent=1000))
        net = TreePNetwork(config=cfg, seed=10)
        layout = net.build(16)
        layout.validate(cfg)
        r = net.lookup_sync(net.ids[0], net.ids[10], "G")
        assert r.found


class TestDeterminismAcrossComponents:
    def test_identical_sweep_results(self):
        """Two complete pipelines from the same seed agree exactly."""
        from repro.experiments import SweepConfig, run_failure_sweep
        cfg = SweepConfig(n=48, seed=77, lookups_per_step=20)
        a, b = run_failure_sweep(cfg), run_failure_sweep(cfg)
        assert len(a.records) == len(b.records)
        for ra, rb in zip(a.records, b.records):
            assert ra.failed_fraction == rb.failed_fraction
            for algo in ("G", "NG", "NGSA"):
                sa, sb = ra.per_algo[algo], rb.per_algo[algo]
                assert sa.failure_rate == sb.failure_rate
                assert sa.hops_mean == sb.hops_mean
                assert sa.failed_hops_max == sb.failed_hops_max

    def test_tracer_does_not_change_results(self):
        """RNG isolation: enabling tracing must not perturb outcomes."""
        from repro.sim.trace import Tracer
        res = []
        for tracer in (None, Tracer()):
            kwargs = {"tracer": tracer} if tracer else {}
            net = TreePNetwork(config=TreePConfig.paper_case1(), seed=13, **kwargs)
            net.build(48)
            rng = np.random.default_rng(0)
            out = []
            for _ in range(10):
                o, t = (int(x) for x in rng.choice(net.ids, 2, replace=False))
                r = net.lookup_sync(o, t, "G")
                out.append((r.found, r.hops))
            res.append(out)
        assert res[0] == res[1]
