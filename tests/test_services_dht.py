"""Unit tests for the DHT layer."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.repair import FULL_POLICY, apply_failure_step
from repro.services import TreePDht
from repro.services.dht import hash_key


@pytest.fixture(scope="module")
def dht_net():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=21)
    net.build(96)
    return net, TreePDht(net, replicas=2)


def test_hash_key_stable_and_in_space():
    extent = 2**32
    a = hash_key("job/1", extent)
    assert a == hash_key("job/1", extent)
    assert 0 <= a < extent
    assert hash_key("job/2", extent) != a


def test_put_then_get(dht_net):
    net, dht = dht_net
    assert dht.put("alpha", 123).found
    r = dht.get("alpha")
    assert r.found and r.value == 123


def test_get_missing_key(dht_net):
    net, dht = dht_net
    assert not dht.get("never-stored").found


def test_put_replicates(dht_net):
    net, dht = dht_net
    r = dht.put("replicated", "v")
    assert len(r.stored_on) == 2
    key_id = r.key_id
    holders = [i for i in r.stored_on
               if dht.stores[i].get(key_id) is not None
               and dht.stores[i].get(key_id).value == "v"]
    assert len(holders) == 2


def test_storage_lands_near_key(dht_net):
    net, dht = dht_net
    r = dht.put("locality-check", "v")
    primary = r.stored_on[0]
    dists = sorted(abs(i - r.key_id) for i in net.ids)
    # The primary is among the closest few live nodes to the key.
    assert abs(primary - r.key_id) <= dists[4]


def test_get_via_any_origin(dht_net):
    net, dht = dht_net
    dht.put("from-anywhere", 7)
    for via in (net.ids[0], net.ids[-1], net.ids[len(net.ids) // 2]):
        assert dht.get("from-anywhere", via=via).found


def test_overwrite_updates_value(dht_net):
    net, dht = dht_net
    dht.put("counter", 1)
    dht.put("counter", 2)
    assert dht.get("counter").value == 2


def test_stored_keys_inventory(dht_net):
    net, dht = dht_net
    dht.put("inventory", "x")
    inv = dht.stored_keys()
    key_id = hash_key("inventory", net.config.space.extent)
    assert any(key_id in keys for keys in inv.values())


def test_replicas_validation():
    net = TreePNetwork(seed=1)
    net.build(8)
    with pytest.raises(ValueError):
        TreePDht(net, replicas=0)


def test_survives_failures():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=33)
    net.build(96)
    dht = TreePDht(net, replicas=3)
    keys = [f"k{i}" for i in range(40)]
    for k in keys:
        assert dht.put(k, k.upper()).found
    rng = np.random.default_rng(0)
    victims = [int(v) for v in rng.choice(net.ids, 24, replace=False)]
    net.fail_nodes(victims)
    apply_failure_step(net, victims, FULL_POLICY)
    alive = net.alive_ids()
    hits = sum(dht.get(k, via=alive[i % len(alive)]).found
               for i, k in enumerate(keys))
    assert hits >= 30  # 3-way replication holds most keys through 25% loss


def test_client_ops_return_while_maintenance_runs():
    """Regression: put/get must not drain forever into the self-re-arming
    keep-alive timers."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=13)
    net.build(32)
    dht = TreePDht(net, replicas=2)
    net.start_maintenance()
    net.sim.max_events = 500_000  # fail loudly instead of hanging
    try:
        assert dht.put("timered", 1).found
        assert dht.get("timered").value == 1
    finally:
        net.stop_maintenance()
        net.sim.max_events = None
