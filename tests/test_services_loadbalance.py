"""Unit tests for hierarchical load balancing."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.services.loadbalance import LoadBalancer, Task
from repro.workloads import grid_cluster_mix, homogeneous_mix


@pytest.fixture()
def lb_net():
    net = TreePNetwork(config=TreePConfig.paper_case2(), seed=17)
    rng = np.random.default_rng(17)
    net.build(128, capacities=grid_cluster_mix(128, rng, server_fraction=0.2))
    return net, LoadBalancer(net)


def test_task_validation():
    with pytest.raises(ValueError):
        Task(1, cpu_demand=0)


def test_requires_built_network():
    with pytest.raises(RuntimeError):
        LoadBalancer(TreePNetwork(seed=0))


def test_place_lands_on_live_node_with_headroom(lb_net):
    net, lb = lb_net
    p = lb.place(Task(1, 1.0))
    assert p.node is not None
    assert net.network.is_up(p.node)
    cap = net.capacities[p.node]
    assert cap.cpu * (1 - cap.cpu_load) >= 1.0


def test_assignment_tracked(lb_net):
    net, lb = lb_net
    p = lb.place(Task(1, 2.0))
    assert lb.assigned[p.node] == 2.0


def test_release_returns_capacity(lb_net):
    net, lb = lb_net
    t = Task(1, 2.0)
    p = lb.place(t)
    lb.release(t, p.node)
    assert lb.assigned[p.node] == 0.0


def test_placements_prefer_strong_nodes(lb_net):
    net, lb = lb_net
    placements = lb.place_many([Task(i, 2.0) for i in range(50)])
    placed = [p.node for p in placements if p.node is not None]
    assert placed
    chosen_cpu = np.mean([net.capacities[n].cpu for n in placed])
    population_cpu = np.mean([c.cpu for c in net.capacities.values()])
    assert chosen_cpu > population_cpu


def test_saturation_returns_none():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=3)
    net.build(16, capacities=homogeneous_mix(16, cpu=1.0))
    lb = LoadBalancer(net)
    results = lb.place_many([Task(i, 1.0) for i in range(40)])
    placed = [p for p in results if p.node is not None]
    unplaced = [p for p in results if p.node is None]
    assert placed and unplaced  # capacity exhausted eventually
    assert len(placed) <= 16


def test_utilisation_and_imbalance(lb_net):
    net, lb = lb_net
    lb.place_many([Task(i, 0.5) for i in range(100)])
    util = lb.utilisation()
    assert all(0 <= u <= 1.0 + 1e-9 for u in util.values())
    assert lb.imbalance() >= 0.0


def test_dead_nodes_not_used(lb_net):
    net, lb = lb_net
    victims = net.ids[:40]
    net.fail_nodes(victims)
    placements = lb.place_many([Task(i, 0.5) for i in range(40)])
    for p in placements:
        if p.node is not None:
            assert p.node not in victims


def test_hops_bounded_by_tree(lb_net):
    net, lb = lb_net
    p = lb.place(Task(1, 0.5), origin=net.ids[0])
    assert 0 <= p.hops <= 3 * (net.height + 1)


# ------------------------------------------------- cached subtree headroom
def _assert_cache_matches_reference(net, lb):
    layout = net.layout
    for i in net.layout.max_level:
        expect = lb._recompute_subtree(i, layout.max_level[i])
        assert lb._subtree[i] == pytest.approx(expect), f"node {i}"


def test_cached_totals_match_reference_after_traffic(lb_net):
    net, lb = lb_net
    tasks = [Task(i, 0.5 + (i % 4) * 0.5) for i in range(60)]
    placements = lb.place_many(tasks)
    _assert_cache_matches_reference(net, lb)
    for t, p in zip(tasks[:30], placements[:30]):
        if p.node is not None:
            lb.release(t, p.node)
    _assert_cache_matches_reference(net, lb)


def test_cache_rebuilt_after_failures(lb_net):
    net, lb = lb_net
    lb.place_many([Task(i, 0.5) for i in range(20)])
    net.fail_nodes(net.ids[:30])
    p = lb.place(Task(99, 0.5))  # triggers the lazy liveness resync
    if p.node is not None:
        assert net.network.is_up(p.node)
    _assert_cache_matches_reference(net, lb)


def test_equal_fail_and_rejoin_counts_still_resync_cache(lb_net):
    """One crash plus one revival between placements leaves node count and
    down count unchanged — the epoch key must still trigger a rebuild."""
    net, lb = lb_net
    a, b = net.ids[0], net.ids[1]
    net.fail_nodes([b])
    lb.refresh()  # cache now knows b is down
    net.fail_nodes([a])
    net.network.set_up(b)  # counts alias the refreshed state
    lb.place(Task(1, 0.5))
    _assert_cache_matches_reference(net, lb)
    assert lb._subtree[a] == pytest.approx(lb._recompute_subtree(
        a, net.layout.max_level[a]))


def test_release_overdraw_keeps_cache_consistent(lb_net):
    """Releasing more than was assigned clamps at zero; the cached totals
    must track the clamped headroom, not drift."""
    net, lb = lb_net
    t = Task(1, 2.0)
    p = lb.place(t)
    lb.release(t, p.node)
    lb.release(t, p.node)  # double release: clamped
    assert lb.assigned[p.node] == 0.0
    _assert_cache_matches_reference(net, lb)


class _CountingBalancer(LoadBalancer):
    """Counts per-node headroom evaluations during placement."""

    counting = False
    calls = 0

    def headroom(self, ident):
        if self.counting:
            self.calls += 1
        return super().headroom(ident)


def _calls_per_place(n, seed=23, tasks=20):
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    rng = np.random.default_rng(seed)
    net.build(n, capacities=grid_cluster_mix(n, rng, server_fraction=0.2))
    lb = _CountingBalancer(net)
    lb.counting = True
    lb.place_many([Task(i, 0.5) for i in range(tasks)])
    return lb.calls / tasks


def test_placement_cost_independent_of_network_size():
    """The satellite regression: placement work must not grow with the
    subtree size (it used to recompute whole subtrees per decision)."""
    small = _calls_per_place(32)
    large = _calls_per_place(256)
    # With cached totals a placement touches O(height) nodes; the old
    # recursive recompute touched O(n) and would blow these bounds.
    assert large <= 16, f"placement evaluated {large:.1f} nodes on average"
    assert large <= small * 4
