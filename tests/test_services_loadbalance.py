"""Unit tests for hierarchical load balancing."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.services.loadbalance import LoadBalancer, Placement, Task
from repro.workloads import grid_cluster_mix, homogeneous_mix


@pytest.fixture()
def lb_net():
    net = TreePNetwork(config=TreePConfig.paper_case2(), seed=17)
    rng = np.random.default_rng(17)
    net.build(128, capacities=grid_cluster_mix(128, rng, server_fraction=0.2))
    return net, LoadBalancer(net)


def test_task_validation():
    with pytest.raises(ValueError):
        Task(1, cpu_demand=0)


def test_requires_built_network():
    with pytest.raises(RuntimeError):
        LoadBalancer(TreePNetwork(seed=0))


def test_place_lands_on_live_node_with_headroom(lb_net):
    net, lb = lb_net
    p = lb.place(Task(1, 1.0))
    assert p.node is not None
    assert net.network.is_up(p.node)
    cap = net.capacities[p.node]
    assert cap.cpu * (1 - cap.cpu_load) >= 1.0


def test_assignment_tracked(lb_net):
    net, lb = lb_net
    p = lb.place(Task(1, 2.0))
    assert lb.assigned[p.node] == 2.0


def test_release_returns_capacity(lb_net):
    net, lb = lb_net
    t = Task(1, 2.0)
    p = lb.place(t)
    lb.release(t, p.node)
    assert lb.assigned[p.node] == 0.0


def test_placements_prefer_strong_nodes(lb_net):
    net, lb = lb_net
    placements = lb.place_many([Task(i, 2.0) for i in range(50)])
    placed = [p.node for p in placements if p.node is not None]
    assert placed
    chosen_cpu = np.mean([net.capacities[n].cpu for n in placed])
    population_cpu = np.mean([c.cpu for c in net.capacities.values()])
    assert chosen_cpu > population_cpu


def test_saturation_returns_none():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=3)
    net.build(16, capacities=homogeneous_mix(16, cpu=1.0))
    lb = LoadBalancer(net)
    results = lb.place_many([Task(i, 1.0) for i in range(40)])
    placed = [p for p in results if p.node is not None]
    unplaced = [p for p in results if p.node is None]
    assert placed and unplaced  # capacity exhausted eventually
    assert len(placed) <= 16


def test_utilisation_and_imbalance(lb_net):
    net, lb = lb_net
    lb.place_many([Task(i, 0.5) for i in range(100)])
    util = lb.utilisation()
    assert all(0 <= u <= 1.0 + 1e-9 for u in util.values())
    assert lb.imbalance() >= 0.0


def test_dead_nodes_not_used(lb_net):
    net, lb = lb_net
    victims = net.ids[:40]
    net.fail_nodes(victims)
    placements = lb.place_many([Task(i, 0.5) for i in range(40)])
    for p in placements:
        if p.node is not None:
            assert p.node not in victims


def test_hops_bounded_by_tree(lb_net):
    net, lb = lb_net
    p = lb.place(Task(1, 0.5), origin=net.ids[0])
    assert 0 <= p.hops <= 3 * (net.height + 1)
