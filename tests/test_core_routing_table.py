"""Unit + property tests for the six-table routing state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.routing_table import Entry, RoutingTable


@pytest.fixture()
def table():
    return RoutingTable(owner=1000)


def test_upsert_creates_and_refreshes(table):
    e = table.upsert(5, now=1.0, max_level=2, score=3.0)
    assert e.max_level == 2 and e.last_seen == 1.0
    e2 = table.upsert(5, now=2.0, score=4.0)
    assert e2 is e
    assert e.last_seen == 2.0 and e.score == 4.0 and e.max_level == 2


def test_self_entry_rejected(table):
    with pytest.raises(ValueError):
        table.upsert(1000, now=0.0)


def test_touch_never_regresses(table):
    e = table.upsert(5, now=5.0)
    table.touch(5, 3.0)
    assert e.last_seen == 5.0
    table.touch(5, 7.0)
    assert e.last_seen == 7.0


def test_roles_tracked(table):
    table.add_level0(1, 0.0)
    table.add_level0_indirect(2, 0.0)
    table.add_level(1, 3, 0.0)
    table.add_child(4, 0.0)
    table.add_neighbour_child(5, 0.0)
    table.set_parent(1, 6, 0.0)
    table.add_superior(7, 0.0)
    assert table.roles_of(1) == {"level0"}
    assert table.roles_of(2) == {"level0-indirect"}
    assert table.roles_of(3) == {"level1"}
    assert table.roles_of(4) == {"child"}
    assert table.roles_of(5) == {"neighbour-child"}
    assert table.roles_of(6) == {"parent"}
    assert table.roles_of(7) == {"superior"}


def test_multiple_roles_one_entry(table):
    table.add_level0(9, 1.0)
    table.add_superior(9, 2.0)
    assert table.size() == 1
    assert table.roles_of(9) == {"level0", "superior"}
    assert table.get(9).last_seen == 2.0


def test_add_level_zero_rejected(table):
    with pytest.raises(ValueError):
        table.add_level(0, 5, 0.0)


def test_set_parent_level_validation(table):
    with pytest.raises(ValueError):
        table.set_parent(0, 5, 0.0)


def test_forget_removes_everywhere(table):
    table.add_level0(5, 0.0)
    table.add_level(2, 5, 0.0)
    table.add_child(5, 0.0)
    table.set_parent(3, 5, 0.0)
    table.add_superior(5, 0.0)
    table.forget(5)
    assert not table.knows(5)
    assert table.roles_of(5) == set()
    assert table.parents == {}


def test_expire_drops_stale(table):
    table.add_level0(1, now=0.0)
    table.add_level0(2, now=10.0)
    stale = table.expire(now=15.0, entry_ttl=10.0)
    assert stale == [1]
    assert table.knows(2) and not table.knows(1)


def test_level1_parent(table):
    assert table.level1_parent() is None
    table.set_parent(1, 77, 0.0)
    assert table.level1_parent() == 77


def test_neighbours_at(table):
    table.add_level0(1, 0.0)
    table.add_level(2, 5, 0.0)
    assert table.neighbours_at(0) == {1}
    assert table.neighbours_at(2) == {5}
    assert table.neighbours_at(9) == set()


def test_active_connections_excludes_replicated(table):
    table.add_level0(1, 0.0)
    table.add_level(1, 2, 0.0)
    table.set_parent(2, 3, 0.0)
    table.add_child(4, 0.0)
    table.add_superior(5, 0.0)            # replicated knowledge
    table.add_neighbour_child(6, 0.0)     # replicated knowledge
    table.add_level0_indirect(7, 0.0)     # replicated knowledge
    assert table.active_connections() == {1, 2, 3, 4}


def test_trim_to_roles(table):
    table.add_level0(1, 0.0)
    table.upsert(99, 0.0)  # metadata with no role
    assert table.size() == 2
    dropped = table.trim_to_roles()
    assert dropped == 1
    assert table.knows(1) and not table.knows(99)


def test_delta_since(table):
    table.add_level0(1, now=1.0)
    table.add_level0(2, now=5.0)
    delta = table.delta_since(2.0)
    assert [t[0] for t in delta] == [2]
    assert len(table.delta_since(0.0)) == 2


def test_merge_delta_skips_self_and_stale(table):
    table.upsert(5, now=10.0, score=1.0)
    merged = table.merge_delta(
        [(1000, 0, 1.0, 4, 20.0),   # self: skipped
         (5, 0, 9.9, 4, 5.0),       # older than ours: skipped
         (6, 1, 2.0, 4, 12.0)],     # new
        now=15.0,
    )
    assert merged == 1
    assert table.get(5).score == 1.0
    assert table.get(6).max_level == 1


def test_entry_as_tuple_roundtrip():
    e = Entry(ident=3, max_level=2, score=1.5, nc=4, last_seen=9.0)
    assert e.as_tuple() == (3, 2, 1.5, 4, 9.0)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["level0", "level", "child", "superior", "forget"]),
                  st.integers(0, 50)),
        max_size=60,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_size_equals_distinct_known(ops):
    """size() always equals the number of distinct known peers, and the
    owner never appears."""
    t = RoutingTable(owner=999)
    known = set()
    for op, ident in ops:
        if ident == 999:
            continue
        if op == "forget":
            t.forget(ident)
            known.discard(ident)
        elif op == "level0":
            t.add_level0(ident, 0.0)
            known.add(ident)
        elif op == "level":
            t.add_level(1, ident, 0.0)
            known.add(ident)
        elif op == "child":
            t.add_child(ident, 0.0)
            known.add(ident)
        elif op == "superior":
            t.add_superior(ident, 0.0)
            known.add(ident)
    assert t.size() == len(known)
    assert set(t.all_known()) == known
    assert 999 not in t.all_known()
