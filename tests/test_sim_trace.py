"""Unit tests for the tracer."""

import pytest

from repro.sim.trace import NULL_TRACER, NullTracer, TraceEvent, Tracer


def test_record_and_filter():
    t = Tracer()
    t.record(1.0, "lookup", 5, "fwd")
    t.record(2.0, "election", 5)
    t.record(3.0, "lookup", 6)
    assert len(t.filter(category="lookup")) == 2
    assert len(t.filter(node=5)) == 2
    assert len(t.filter(category="lookup", node=5)) == 1


def test_category_filtering():
    t = Tracer(categories=["lookup"])
    t.record(1.0, "lookup", 1)
    t.record(1.0, "noise", 1)
    assert len(t.events) == 1
    # counts tally only recorded categories, matching events
    assert t.counts == {"lookup": 1}


def test_capacity_ring_buffer():
    t = Tracer(capacity=3)
    for i in range(5):
        t.record(float(i), "c", i)
    assert len(t.events) == 3
    assert t.dropped == 2
    assert t.events[0].node == 2  # oldest two discarded


def test_invalid_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)


def test_clear_resets():
    t = Tracer()
    t.record(1.0, "a", 1)
    t.clear()
    assert len(t.events) == 0 and t.counts == {} and t.dropped == 0


def test_dump_tail():
    t = Tracer()
    for i in range(10):
        t.record(float(i), "c", i, detail=f"e{i}")
    out = t.dump(limit=3)
    assert "e9" in out and "e0" not in out


def test_event_str():
    e = TraceEvent(1.5, "lookup", 7, "forwarded", {"ttl": 3})
    s = str(e)
    assert "lookup" in s and "node=7" in s and "ttl" in s


def test_null_tracer_records_nothing():
    NULL_TRACER.record(1.0, "x", 1)
    assert len(NULL_TRACER.events) == 0
    assert isinstance(NULL_TRACER, NullTracer)


def test_counts_match_ring_buffer_total():
    t = Tracer(capacity=2)
    for i in range(5):
        t.record(float(i), "c", i)
    # counts track everything recorded, including wrapped-out events
    assert t.counts == {"c": 5}
    assert len(t.events) == 2 and t.dropped == 3


def test_enabled_for():
    assert Tracer().enabled_for("anything")
    assert not Tracer(categories=["a"]).enabled_for("b")
