"""Query-layer satellites: span_stats' status mix keyed off the STATUS_*
constants, timeline rows at span-end time, TraceReader filter
composition, timeout-span roundtrips, and the ``runs`` subcommand."""

import pytest

from repro.obs import (STATUS_FAIL, STATUS_OK, STATUS_OPEN, STATUS_TIMEOUT,
                       ObsHub, TraceReader, write_store)
from repro.obs.cli import main as obs_cli
from repro.obs.query import slowest_spans, span_stats, timeline_rows
from repro.obs.store import StreamView


def _view(hub, run="run-000"):
    hub.finalize()
    return StreamView(hub.export_streams()["spans"], hub.strings.strings,
                      run, "spans")


def _mixed_hub():
    hub = ObsHub()
    hub.span("lookup", 1, 0.0, 0.1, status=STATUS_OK)
    hub.span("lookup", 1, 1.0, 1.4, status=STATUS_FAIL)
    hub.span("lookup", 2, 2.0, 2.9, status=STATUS_TIMEOUT)
    hub.begin("lookup", 3, 3.0)  # left open; finalize flushes STATUS_OPEN
    return hub


def test_span_stats_reports_the_full_status_mix():
    (row,) = span_stats(_view(_mixed_hub()))
    assert row["category"] == "lookup"
    assert row["count"] == 4
    assert (row["ok"], row["fail"], row["timeout"], row["open"]) == (1, 1, 1, 1)
    # durations come from the three closed spans only
    assert row["max"] == pytest.approx(0.9)
    assert row["mean"] == pytest.approx((0.1 + 0.4 + 0.9) / 3)


def test_span_stats_ok_is_status_ok_not_just_closed():
    """The pre-1.7 bug: "ok" counted ``status == 1`` by magic number but a
    fail/timeout span is also closed — the constants must partition."""
    hub = ObsHub()
    hub.span("q", 1, 0.0, 1.0, status=STATUS_FAIL)
    (row,) = span_stats(_view(hub))
    assert row["ok"] == 0 and row["fail"] == 1


def test_timeline_places_closed_spans_at_end_time():
    rows = timeline_rows(_view(_mixed_hub()),
                         _view(ObsHub(), run="e").filter(category="none"))
    span_rows = [r for r in rows if r["kind"] == "span"]
    # closed spans sort by t1; the open span by its only timestamp, t0
    assert [r["time"] for r in span_rows] == [0.1, 1.4, 2.9, 3.0]
    closed = span_rows[1]
    assert "t0=1.0000" in closed["detail"] and "dur=0.4000" in closed["detail"]
    assert "fail" in closed["detail"]


def test_timeline_interleaves_events_by_time():
    hub = _mixed_hub()
    hub.event("lookup.hop", 9, 0.5, rid=1, value=1.0)
    hub.finalize()
    streams = hub.export_streams()
    spans = StreamView(streams["spans"], hub.strings.strings, "r", "spans")
    events = StreamView(streams["events"], hub.strings.strings, "r", "events")
    rows = timeline_rows(spans, events)
    kinds = [(r["time"], r["kind"]) for r in rows]
    assert kinds.index((0.5, "event")) == 1  # between the two span ends


def test_reader_filters_compose(tmp_path):
    hub = ObsHub()
    for node in (1, 2):
        for i in range(10):
            status = STATUS_TIMEOUT if (node == 2 and i >= 7) else STATUS_OK
            hub.span("storage.put", node, float(i), float(i) + 0.2,
                     status=status)
            hub.span("storage.get", node, float(i), float(i) + 0.1)
    path = str(tmp_path / "f.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        spans = reader.stream("run-000", "spans")
        chained = (spans.filter(category="storage.put")
                   .filter(node=2)
                   .filter(min_time=5.0, max_time=9.0)
                   .filter(status=STATUS_TIMEOUT))
        assert len(chained) == 3  # i in {7, 8, 9}
        assert set(chained.column("node").tolist()) == {2}
        assert (chained.column("status") == STATUS_TIMEOUT).all()
        # kwargs form composes identically
        assert len(reader.spans("run-000", category="storage.put", node=2,
                                min_time=5.0, max_time=9.0,
                                status=STATUS_TIMEOUT)) == 3
        # unknown category yields empty, never raises
        assert len(spans.filter(category="nope")) == 0


def test_timeout_spans_roundtrip_through_summary_and_slowest(tmp_path):
    hub = ObsHub()
    hub.span("lookup", 1, 0.0, 5.0, status=STATUS_TIMEOUT)  # the slowest
    hub.span("lookup", 2, 0.0, 0.1)
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        spans = reader.stream("run-000", "spans")
        (row,) = span_stats(spans)
        assert row["timeout"] == 1 and row["ok"] == 1
        top = slowest_spans(spans, limit=1)
        assert top[0]["status"] == "timeout"
        assert top[0]["duration"] == pytest.approx(5.0)


def test_open_spans_are_excluded_from_slowest():
    hub = ObsHub()
    hub.begin("lookup", 1, 0.0)   # still open at finalize
    hub.span("lookup", 2, 0.0, 0.3)
    rows = slowest_spans(_view(hub))
    assert len(rows) == 1 and rows[0]["status"] == "ok"


def test_runs_subcommand_lists_counts_and_extras(tmp_path, capsys):
    h1, h2 = ObsHub(), ObsHub()
    h1.span("lookup", 1, 0.0, 1.0)
    h1.extras["topology"] = {"1": -1, "2": 1}
    h2.event("lookup.hop", 1, 0.5, rid=1, value=1.0)
    path = str(tmp_path / "runs.npz")
    write_store(path, {"run-000": h1, "run-001": h2},
                meta_extra={"scenario": "unit"})
    assert obs_cli(["runs", path]) == 0
    out = capsys.readouterr().out
    assert "2 run(s)" in out
    assert "topology(2 nodes)" in out
    assert "scenario=unit" in out
    lines = [l for l in out.splitlines() if l.strip().startswith("run-")]
    assert len(lines) == 2


def test_summary_table_shows_fail_and_timeout_columns(tmp_path, capsys):
    path = str(tmp_path / "s.npz")
    write_store(path, {"run-000": _mixed_hub()})
    assert obs_cli(["summary", path]) == 0
    out = capsys.readouterr().out
    assert "fail" in out and "timeout" in out


def test_status_open_spans_keep_t0_semantics():
    hub = ObsHub()
    hub.begin("lookup", 1, 7.5)
    view = _view(hub)
    assert (view.column("status") == STATUS_OPEN).all()
    rows = timeline_rows(view, view.filter(category="none"))
    assert rows[0]["time"] == 7.5  # an open span only has its begin
