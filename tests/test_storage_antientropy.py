"""Anti-entropy: under-replication detection, repair, periodic scheduling."""

import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.repair import FULL_POLICY, apply_failure_step
from repro.storage import AntiEntropy, QuorumConfig, ReplicatedStore
from repro.storage.store import VersionedValue


@pytest.fixture()
def loaded():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=21)
    net.build(96)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))
    keys = [f"k{i}" for i in range(20)]
    for k in keys:
        assert store.put(k, k.upper()).ok
    return net, store, keys


def test_clean_sweep_on_healthy_store(loaded):
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    # The first passes may relocate copies onto the global placement ideal;
    # once aligned, sweeps are clean.
    ae.converge()
    report = ae.sweep()
    assert report.clean
    assert report.keys >= len(keys)
    assert report.under_replicated == 0 and report.lost == 0


def test_relocates_replicas_onto_new_closer_nodes(loaded):
    """Regression: the sweep follows the placement ideal as the topology
    grows, so routed reads keep landing on holders after joins."""
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    ae.converge()
    key_id = store.key_id(keys[0])
    # Three new nodes join right next to the key: they become the ideal
    # replica set but hold nothing.
    space = net.config.space
    joiners = []
    for d in (1, 2, 3):
        ident = (key_id + d) % space.extent
        if ident not in net.nodes:
            net.join_new_node(ident)
            joiners.append(ident)
    net.sim.drain()
    assert joiners, "test needs at least one joiner adjacent to the key"
    ae.converge()
    holders = store.replica_map()[key_id]
    assert set(joiners) <= set(holders)


def test_detects_and_repairs_under_replication(loaded):
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    # Kill one replica of a specific key.
    key_id = store.key_id(keys[0])
    victim = store.replica_map()[key_id][-1]
    net.fail_nodes([victim])
    apply_failure_step(net, [victim], FULL_POLICY)
    assert store.live_replica_count(key_id) == 2
    report = ae.sweep()
    assert report.under_replicated >= 1 and report.repairs_sent >= 1
    net.sim.drain()
    assert store.live_replica_count(key_id) == 3
    assert ae.sweep().clean


def test_converge_restores_full_replication_after_mass_failure(loaded):
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    victims = net.ids[::7]  # ~14%, deterministic
    net.fail_nodes(victims)
    apply_failure_step(net, victims, FULL_POLICY)
    rounds = ae.converge()
    assert rounds <= 4
    rfs = store.replication_factors()
    assert min(rfs.values()) == store.quorum.n
    assert ae.tracker.latest().under_replicated == 0


def test_stale_rejoiner_overwritten(loaded):
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    key_id = store.key_id(keys[3])
    victim = store.replica_map()[key_id][-1]
    # The victim goes down, misses an overwrite, then rejoins stale.
    net.network.set_down(victim)
    apply_failure_step(net, [victim], FULL_POLICY)  # purge stale routes
    assert store.put(keys[3], "NEWER").ok
    net.network.set_up(victim)
    stale = store.agents[victim].store.get(key_id)
    fresh_version = max(
        a.store.version_of(key_id) for a in store.agents.values())
    assert stale.version < fresh_version
    ae.converge()
    assert store.agents[victim].store.get(key_id).value == "NEWER"


def test_periodic_scheduling_with_simulator(loaded):
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    ae.start()
    assert ae.running
    # A replica dies; the timer-driven sweeps repair it as sim time passes.
    key_id = store.key_id(keys[1])
    victim = store.replica_map()[key_id][-1]
    net.fail_nodes([victim])
    apply_failure_step(net, [victim], FULL_POLICY)
    net.sim.run_for(35.0)
    ae.stop()
    assert not ae.running
    assert len(ae.reports) >= 3
    assert store.live_replica_count(key_id) == 3
    # The tracker recorded the dip and the recovery.
    assert ae.tracker.min_rf.ys().min() <= 2
    assert ae.tracker.latest().under_replicated == 0


def test_interval_validation(loaded):
    net, store, _ = loaded
    with pytest.raises(ValueError):
        AntiEntropy(store, interval=0)


def test_lost_key_reported(loaded):
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    key_id = store.key_id(keys[5])
    for holder in store.replica_map()[key_id]:
        net.network.set_down(holder)
    report = ae.sweep()
    assert report.lost >= 1
    assert not ae.tracker.always_durable


def test_stale_copy_outside_target_set_reconciled(loaded):
    """A stale copy parked on a node that is *not* a placement target is
    still overwritten — otherwise a later failure burst could route reads
    onto it and resurrect the old value."""
    net, store, keys = loaded
    ae = AntiEntropy(store, interval=10.0)
    ae.converge()
    key_id = store.key_id(keys[4])
    fresh = max(
        (a.store.get(key_id) for a in store.agents.values()
         if a.store.get(key_id) is not None),
        key=VersionedValue.stamp,
    )
    targets = store.placement.repair_targets(net, key_id, store.quorum.n)
    far = max((i for i in net.alive_ids() if i not in targets),
              key=lambda i: net.config.space.distance(i, key_id))
    store.agents[far].store._data[key_id] = VersionedValue("STALE", 99, -1, 0.0)
    ae.converge()
    assert store.agents[far].store.get(key_id).value == fresh.value
