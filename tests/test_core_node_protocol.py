"""Protocol-level tests: joins, elections, demotion, keep-alives, lookups
as real datagrams on small networks."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.capacity import NodeCapacity, uniform_capacity
from repro.core.messages import Hello
from repro.core.node import TreePNode
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency
from repro.sim.network import Network


def tiny_net(n=3, **cfg_overrides):
    """n standalone nodes on a network, no hierarchy built."""
    cfg = TreePConfig.paper_case1(**cfg_overrides)
    sim = Simulator()
    net = Network(sim, latency=ConstantLatency(0.01))
    nodes = []
    for i in range(n):
        node = TreePNode(1000 * (i + 1), uniform_capacity(), cfg)
        net.register(node)
        nodes.append(node)
    return sim, net, nodes


class TestHello:
    def test_hello_exchange_populates_entries(self):
        sim, net, (a, b, _) = tiny_net()
        a.send(b.ident, Hello(a.max_level, a.score, a.nc))
        sim.run()
        assert b.table.knows(a.ident)
        assert a.table.knows(b.ident)  # via the ack

    def test_unknown_message_ignored(self):
        sim, net, (a, b, _) = tiny_net()
        a.send(b.ident, object())
        sim.run()  # no crash


class TestLookupProtocol:
    def test_lookup_on_built_network(self, fresh_net):
        ids = fresh_net.ids
        res = fresh_net.lookup_sync(ids[0], ids[-1], "G")
        assert res.found
        assert res.hops <= 2 * fresh_net.height + 4

    def test_lookup_to_self(self, fresh_net):
        res = fresh_net.lookup_sync(fresh_net.ids[0], fresh_net.ids[0], "G")
        assert res.found and res.hops == 0

    def test_lookup_timeout_on_black_hole(self):
        """Forwarding into a dead node (stale entry) times out."""
        net = TreePNetwork(config=TreePConfig.paper_case1(lookup_timeout=5.0), seed=3)
        net.build(32)
        origin = net.ids[0]
        # Kill everything except the origin but leave tables stale.
        for i in net.ids[1:]:
            net.network.set_down(i)
        known = set(net.nodes[origin].table.all_known())
        target = next(i for i in net.ids[1:] if i not in known)
        res = net.lookup_sync(origin, target, "G")
        assert not res.found
        assert res.timed_out or res.hops == 0

    def test_replies_come_back_to_origin(self, fresh_net):
        ids = fresh_net.ids
        pend = fresh_net.lookup(ids[3], ids[40], "NG")
        fresh_net.sim.drain()
        assert pend.result is not None
        assert pend.result.origin == ids[3]
        assert pend.result.target == ids[40]

    def test_on_done_callback(self, fresh_net):
        got = []
        node = fresh_net.nodes[fresh_net.ids[0]]
        node.issue_lookup(fresh_net.ids[10], "G", on_done=got.append)
        fresh_net.sim.drain()
        assert len(got) == 1 and got[0].found

    def test_results_accumulate(self, fresh_net):
        node = fresh_net.nodes[fresh_net.ids[0]]
        for t in fresh_net.ids[1:5]:
            node.issue_lookup(t, "G")
        fresh_net.sim.drain()
        assert len(node.results) == 4

    def test_all_algorithms_resolve(self, fresh_net):
        rng = np.random.default_rng(0)
        for algo in ("G", "NG", "NGSA"):
            o, t = (int(x) for x in rng.choice(fresh_net.ids, 2, replace=False))
            assert fresh_net.lookup_sync(o, t, algo).found, algo


class TestJoinProtocol:
    def test_join_places_between_neighbours(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=5)
        net.build(32)
        sorted_ids = sorted(net.ids)
        newcomer = (sorted_ids[10] + sorted_ids[11]) // 2
        assert newcomer not in net.nodes
        node = net.join_new_node(newcomer, via=sorted_ids[0])
        net.sim.drain()
        # The joiner ends up linked to its ID-space neighbours.
        links = node.table.level0
        assert links, "joiner got no level-0 links"
        assert any(abs(l - newcomer) < 2**28 for l in links)
        # And both sides know each other.
        for l in links:
            assert net.nodes[l].table.knows(newcomer)

    def test_join_gets_parent(self):
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=5)
        net.build(32)
        sorted_ids = sorted(net.ids)
        newcomer = (sorted_ids[3] + sorted_ids[4]) // 2
        node = net.join_new_node(newcomer)
        net.sim.drain()
        assert node.table.level1_parent() is not None

    def test_duplicate_join_rejected(self):
        net = TreePNetwork(seed=5)
        net.build(16)
        with pytest.raises(ValueError):
            net.join_new_node(net.ids[0])


class TestElectionProtocol:
    def test_orphan_group_elects_parent(self):
        """Three orphan level-0 nodes elect the strongest as parent."""
        cfg = TreePConfig.paper_case1(election_base=1.0)
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        caps = [NodeCapacity(cpu=1), NodeCapacity(cpu=32, memory_gb=64),
                NodeCapacity(cpu=2)]
        nodes = []
        for i, cap in enumerate(caps):
            node = TreePNode(1000 * (i + 1), cap, cfg)
            net.register(node)
            nodes.append(node)
        now = 0.0
        # Wire a line: a-b-c with mutual level-0 knowledge.
        a, b, c = nodes
        a.table.add_level0(b.ident, now)
        b.table.add_level0(a.ident, now)
        b.table.add_level0(c.ident, now)
        c.table.add_level0(b.ident, now)
        a.table.add_level0(c.ident, now)
        c.table.add_level0(a.ident, now)
        b.trigger_election(0)
        sim.run(until=30.0)
        # The strongest (b) won and the others adopted it.
        assert b.max_level == 1
        assert a.table.level1_parent() == b.ident
        assert c.table.level1_parent() == b.ident
        # Parent registered its children.
        assert a.ident in b.table.children
        assert c.ident in b.table.children

    def test_no_election_with_existing_parent(self):
        sim, net, (a, b, c) = tiny_net()
        a.table.add_level0(b.ident, 0.0)
        a.table.add_level0(c.ident, 0.0)
        a.table.set_parent(1, b.ident, 0.0)
        a.trigger_election(0)
        sim.run(until=10.0)
        assert a.max_level == 0  # nothing happened

    def test_no_election_below_min_degree(self):
        sim, net, (a, b, _) = tiny_net()
        a.table.add_level0(b.ident, 0.0)
        a.trigger_election(0)
        sim.run(until=10.0)
        assert a.max_level == 0


class TestDemotionProtocol:
    def test_underfilled_parent_abdicates(self):
        cfg = TreePConfig.paper_case1(demotion_base=1.0)
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        parent = TreePNode(5000, uniform_capacity(), cfg)
        child = TreePNode(4000, uniform_capacity(), cfg)
        net.register(parent)
        net.register(child)
        parent.max_level = 1
        parent.children_by_level[1] = [4000]
        parent.table.add_child(4000, 0.0)
        child.table.set_parent(1, 5000, 0.0)
        parent.check_demotion()
        sim.run(until=60.0)
        assert parent.max_level == 0
        assert child.table.level1_parent() is None  # child was notified

    def test_demotion_cancelled_by_new_children(self):
        cfg = TreePConfig.paper_case1(demotion_base=5.0)
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        parent = TreePNode(5000, uniform_capacity(), cfg)
        net.register(parent)
        parent.max_level = 1
        parent.children_by_level[1] = [4000]
        parent.table.add_child(4000, 0.0)
        parent.check_demotion()
        # A second child reports before the countdown fires.
        sim.schedule(0.1, lambda: parent._on_ChildReport(
            3000, __import__("repro.core.messages", fromlist=["ChildReport"]).ChildReport(3000, 1.0, 0)))
        sim.run(until=60.0)
        assert parent.max_level == 1

    def test_keep_upper_policy_retains_level(self):
        cfg = TreePConfig.paper_case1(demotion_policy="keep-upper",
                                      demotion_base=1.0)
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        node = TreePNode(5000, uniform_capacity(), cfg)
        net.register(node)
        node.max_level = 2
        node.children_by_level[2] = []
        node.check_demotion()
        sim.run(until=60.0)
        assert node.max_level == 2  # §VI variant: stays in the upper layer


class TestPromotionOnOverflow:
    def test_overfull_parent_promotes_best_child(self):
        """A parent receiving more ChildReports than nc splits its cell by
        promoting the strongest child to its own level (§III.a)."""
        from repro.core.messages import ChildReport

        cfg = TreePConfig.paper_case1(nc_fixed=2)
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        parent = TreePNode(50_000, uniform_capacity(), cfg)
        parent.max_level = 1
        net.register(parent)
        kids = []
        for i, cpu in enumerate([1, 2, 16]):
            child = TreePNode(10_000 * (i + 1), NodeCapacity(cpu=cpu), cfg)
            net.register(child)
            kids.append(child)
        for child in kids:
            child.table.set_parent(1, parent.ident, 0.0)
            child.send(parent.ident, ChildReport(child.ident, child.score, 0))
        sim.run()
        # The strongest child (16 cores) was promoted to level 1...
        strongest = kids[2]
        assert strongest.max_level == 1
        # ...and removed from the parent's children, restoring nc.
        assert len(parent.children_by_level[1]) <= 2
        assert strongest.ident not in parent.table.children
        # The old parent is now a bus neighbour at the new level.
        assert parent.ident in strongest.table.neighbours_at(1)

    def test_stale_grant_ignored(self):
        from repro.core.messages import PromoteGrant

        cfg = TreePConfig.paper_case1()
        sim = Simulator()
        net = Network(sim, latency=ConstantLatency(0.01))
        node = TreePNode(1000, uniform_capacity(), cfg)
        net.register(node)
        node.max_level = 2
        node._on_PromoteGrant(99, PromoteGrant(child=1000, to_level=1))
        assert node.max_level == 2  # downgrade attempts are ignored
        node._on_PromoteGrant(99, PromoteGrant(child=555, to_level=5))
        assert node.max_level == 2  # grants for other nodes are ignored


class TestMaintenanceProtocol:
    def test_keepalives_refresh_entries(self):
        net = TreePNetwork(
            config=TreePConfig.paper_case1(keepalive_interval=1.0, entry_ttl=10.0),
            seed=2,
        )
        net.build(16)
        net.start_maintenance()
        net.sim.run_for(5.0)
        net.stop_maintenance()
        # Entries on active connections are fresh (touched within ~1-2 periods).
        now = net.sim.now
        for node in net.nodes.values():
            for peer in node.table.active_connections():
                e = node.table.get(peer)
                assert e is not None and now - e.last_seen < 4.0

    def test_dead_neighbour_expires(self):
        net = TreePNetwork(
            config=TreePConfig.paper_case1(keepalive_interval=1.0, entry_ttl=3.0),
            seed=2,
        )
        net.build(16)
        victim = net.ids[5]
        net.network.set_down(victim)
        net.start_maintenance()
        net.sim.run_for(15.0)
        net.stop_maintenance()
        for i, node in net.nodes.items():
            if i != victim:
                assert not node.table.knows(victim), f"{i} still knows the dead node"

    def test_maintenance_traffic_counted(self):
        net = TreePNetwork(
            config=TreePConfig.paper_case1(keepalive_interval=1.0), seed=2
        )
        net.build(16)
        net.network.reset_stats()
        net.start_maintenance()
        net.sim.run_for(5.0)
        net.stop_maintenance()
        stats = net.network.stats
        assert stats.by_type.get("KeepAlive", 0) > 0
        assert stats.by_type.get("KeepAliveAck", 0) > 0
        mm = net.nodes[net.ids[0]].maintenance
        assert mm is not None and mm.stats.keepalives_sent > 0


class TestHandlerRegistry:
    """The service handler-registration API (no monkey-patching)."""

    def test_registered_handler_receives_datagrams(self):
        sim, net, (a, b, _) = tiny_net()
        seen = []
        b.register_handler(Hello, lambda src, msg: seen.append((src, msg)))
        a.send(b.ident, Hello(0, 1.0, 4))
        sim.run()
        assert seen and seen[0][0] == a.ident
        # The registered handler replaced the built-in: no HelloAck came back.
        assert not a.table.knows(b.ident)

    def test_duplicate_registration_rejected(self):
        sim, net, (a, _, _) = tiny_net()
        a.register_handler(Hello, lambda src, msg: None)
        with pytest.raises(ValueError):
            a.register_handler(Hello, lambda src, msg: None)
        a.register_handler(Hello, lambda src, msg: None, replace=True)  # ok

    def test_unregister_restores_builtin(self):
        sim, net, (a, b, _) = tiny_net()
        b.register_handler(Hello, lambda src, msg: None)
        b.unregister_handler(Hello)
        b.unregister_handler(Hello)  # idempotent
        a.send(b.ident, Hello(a.max_level, a.score, a.nc))
        sim.run()
        assert b.table.knows(a.ident)  # built-in _on_Hello ran again

    def test_node_hooks_cover_built_and_joined_nodes(self, fresh_net):
        seen = []
        fresh_net.add_node_hook(lambda node: seen.append(node.ident))
        assert sorted(seen) == sorted(fresh_net.ids)  # retroactive
        new_id = max(fresh_net.ids) + 1
        if new_id < fresh_net.config.space.extent:
            fresh_net.join_new_node(new_id)
            assert seen[-1] == new_id
