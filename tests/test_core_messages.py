"""Unit tests for message wire-size accounting and immutability."""

import dataclasses

import pytest

from repro.core.messages import (
    ChildReport,
    DhtGet,
    DhtPut,
    DhtValue,
    Demote,
    ElectionStart,
    Hello,
    HelloAck,
    JoinAccept,
    JoinRedirect,
    JoinRequest,
    KeepAlive,
    KeepAliveAck,
    LookupReply,
    LookupRequest,
    ParentAnnounce,
    ParentClaim,
    PromoteGrant,
    ResourceHit,
    ResourceQuery,
    Splice,
)


def _assert_frozen_and_slotted(m):
    """Writing any *declared field* must raise, and the instance must be
    ``__slots__``-only (no per-message ``__dict__`` on the hot path).

    Messages are frozen+slots dataclasses, except the per-hop lookup pair
    which is a ``NamedTuple`` (tuples refuse assignment with
    ``AttributeError`` instead of ``FrozenInstanceError``)."""
    if dataclasses.is_dataclass(m):
        first_field = dataclasses.fields(m)[0].name
        expected = dataclasses.FrozenInstanceError
    else:  # NamedTuple message
        first_field = m._fields[0]
        expected = AttributeError
    with pytest.raises(expected):
        setattr(m, first_field, 9)
    assert not hasattr(m, "__dict__"), type(m).__name__
    assert m.wire_size > 0


def test_all_messages_frozen():
    msgs = [
        Hello(0, 1.0, 4), HelloAck(0, 1.0, 4),
        JoinRequest(1, 1.0, 4), JoinRedirect(1, 2), JoinAccept(1, 2, 3),
        Splice(1, 2, 3), KeepAlive(), KeepAliveAck(), ChildReport(1, 1.0, 0),
        ElectionStart(0, 1), ParentClaim(1, 2, 1.0), ParentAnnounce(1, 2),
        PromoteGrant(1, 2), Demote(1, 2),
        LookupRequest(1, 2, 3, "G"), LookupReply(1, 3, True, 3, 5),
        DhtPut(1, 2, 3), DhtGet(1, 2, 3), DhtValue(1, 3, True),
        ResourceQuery(1, 2), ResourceHit(1),
    ]
    for m in msgs:
        _assert_frozen_and_slotted(m)


def test_keepalive_size_scales_with_entries():
    empty = KeepAlive()
    loaded = KeepAlive(entries=tuple((i, 0, 1.0, 4, 0.0) for i in range(10)))
    assert loaded.wire_size == empty.wire_size + 10 * 16


def test_lookup_request_size_scales_with_path():
    short = LookupRequest(1, 2, 3, "G")
    long = LookupRequest(1, 2, 3, "G", path=tuple(range(10)),
                         alternates=tuple(range(4)))
    assert long.wire_size == short.wire_size + 10 * 8 + 4 * 8


def test_parent_announce_size_scales_with_superiors():
    a = ParentAnnounce(1, 2)
    b = ParentAnnounce(1, 2, superiors=(1, 2, 3))
    assert b.wire_size == a.wire_size + 24


def test_lookup_request_defaults():
    r = LookupRequest(1, 2, 3, "NG")
    assert r.ttl == 0 and r.path == () and r.alternates == ()
    assert r.from_parent_level == 0


def test_resource_hit_size():
    assert ResourceHit(1, nodes=(1, 2)).wire_size == ResourceHit(1).wire_size + 16


def test_storage_messages_frozen_and_sized():
    from repro.core.messages import (
        DhtPutAck,
        StoreAck,
        StoreGet,
        StoreGetResult,
        StorePut,
        StorePutResult,
        StoreRead,
        StoreReadReply,
        StoreReplicate,
    )

    msgs = [
        DhtPutAck(1, 2, True), StorePut(1, 2, 3), StoreGet(1, 2, 3),
        StoreReplicate(1, 2, 3, "v", 1, 2), StoreAck(1, 3, 2, 1),
        StoreRead(1, 2, 3), StoreReadReply(1, 3, 2, True),
        StorePutResult(1, 3, True), StoreGetResult(1, 3, True),
    ]
    for m in msgs:
        _assert_frozen_and_slotted(m)


def test_compute_messages_frozen_and_sized():
    from repro.core.messages import (
        JobAccepted,
        JobAck,
        JobComplete,
        JobDispatch,
        JobHeartbeat,
        JobLease,
        JobRejected,
        JobReport,
        JobStealGrant,
        JobStealRequest,
        JobSubmit,
    )

    for m in [JobSubmit(1, 2, 3, 4), JobAck(1, 3, 4), JobReport(1, 3, True),
              JobDispatch(3, 4, 1), JobAccepted(3, 5, 1),
              JobRejected(3, 5, 1), JobHeartbeat(3, 5, 1, 2.5),
              JobComplete(3, 5, 1, 10.0), JobLease(3, 1),
              JobStealRequest(5, 2.0), JobStealGrant(3, 5, 4, 1)]:
        _assert_frozen_and_slotted(m)


def test_job_submit_size_scales_with_deps():
    from repro.core.messages import JobSubmit

    bare = JobSubmit(1, 2, 3, 4)
    dag = JobSubmit(1, 2, 3, 4, deps=(10, 11, 12))
    assert dag.wire_size == bare.wire_size + 3 * 8


def test_put_ack_distinct_from_get_reply():
    """The PUT-ack/GET-reply conflation fix: separate types, separate fields."""
    from repro.core.messages import DhtPutAck, DhtValue

    ack = DhtPutAck(1, 2, True, stored_on=(3, 4))
    hit = DhtValue(1, 2, True, value=(3, 4))
    assert type(ack) is not type(hit)
    assert ack.stored_on == (3, 4) and ack.wire_size != hit.wire_size


def test_storage_message_sizes_scale():
    from repro.core.messages import DhtPutAck, StoreGet, StorePutResult

    assert DhtPutAck(1, 2, True, stored_on=(1, 2, 3)).wire_size == \
        DhtPutAck(1, 2, True).wire_size + 24
    assert StoreGet(1, 2, 3, path=(1, 2)).wire_size == \
        StoreGet(1, 2, 3).wire_size + 16
    assert StorePutResult(1, 3, True, replicas=(1,)).wire_size == \
        StorePutResult(1, 3, True).wire_size + 8
