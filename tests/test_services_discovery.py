"""Unit tests for hierarchy-walking resource discovery."""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.services.discovery import Aggregate, Constraint, ResourceDirectory
from repro.workloads import grid_cluster_mix


@pytest.fixture(scope="module")
def grid():
    net = TreePNetwork(config=TreePConfig.paper_case2(), seed=13)
    rng = np.random.default_rng(13)
    net.build(256, capacities=grid_cluster_mix(256, rng, server_fraction=0.15))
    return net, ResourceDirectory(net)


def test_requires_built_network():
    with pytest.raises(RuntimeError):
        ResourceDirectory(TreePNetwork(seed=0))


def test_constraint_admits():
    from repro.core.capacity import NodeCapacity
    cap = NodeCapacity(cpu=8, memory_gb=16, bandwidth_mbps=100, cpu_load=0.2)
    assert Constraint(min_cpu=4, min_memory_gb=8).admits(cap)
    assert not Constraint(min_cpu=16).admits(cap)
    assert not Constraint(max_cpu_load=0.1).admits(cap)


def test_aggregate_fold():
    from repro.core.capacity import NodeCapacity
    agg = Aggregate()
    agg.fold(NodeCapacity(cpu=4, cpu_load=0.5))
    agg.fold(NodeCapacity(cpu=16, cpu_load=0.9))
    assert agg.max_cpu == 16
    assert agg.min_cpu_load == 0.5
    assert agg.might_admit(Constraint(min_cpu=10))
    assert not agg.might_admit(Constraint(min_cpu=32))


def test_matches_satisfy_constraint(grid):
    net, directory = grid
    c = Constraint(min_cpu=16, min_memory_gb=32)
    res = directory.query(c, max_results=8)
    assert res.matches, "grid mix must contain servers"
    for m in res.matches:
        assert c.admits(net.capacities[m])


def test_max_results_respected(grid):
    net, directory = grid
    res = directory.query(Constraint(min_cpu=2), max_results=3)
    assert len(res.matches) <= 3


def test_max_results_validation(grid):
    _, directory = grid
    with pytest.raises(ValueError):
        directory.query(Constraint(), max_results=0)


def test_impossible_constraint_empty(grid):
    net, directory = grid
    res = directory.query(Constraint(min_cpu=10_000))
    assert res.matches == ()
    assert res.subtrees_pruned > 0  # aggregates pruned everything


def test_hops_logarithmic(grid):
    net, directory = grid
    res = directory.query(Constraint(min_cpu=16), max_results=2)
    assert res.hops <= 6 * (net.height + 1)


def test_query_from_any_origin(grid):
    net, directory = grid
    c = Constraint(min_cpu=16)
    for origin in (net.ids[0], net.ids[-1]):
        res = directory.query(c, origin=origin, max_results=2)
        assert res.matches


def test_refresh_after_failures(grid):
    net = TreePNetwork(config=TreePConfig.paper_case2(), seed=14)
    rng = np.random.default_rng(14)
    net.build(128, capacities=grid_cluster_mix(128, rng, server_fraction=0.2))
    directory = ResourceDirectory(net)
    c = Constraint(min_cpu=16)
    before = directory.query(c, max_results=32).matches
    net.fail_nodes(before)  # kill every matching server
    directory.refresh()
    after = directory.query(c, max_results=32).matches
    assert set(after).isdisjoint(before)
    for m in after:
        assert net.network.is_up(m)


def test_aggregate_of_accessor(grid):
    net, directory = grid
    layout = net.layout
    p = layout.levels[1][0]
    agg = directory.aggregate_of(p, 1)
    assert agg is not None and agg.max_cpu >= net.capacities[p].cpu * 0 + 1
