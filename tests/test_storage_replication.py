"""Placement strategy tests: node-local and converged-view answers."""

import pytest

from repro import TreePConfig, TreePNetwork
from repro.storage.replication import (
    Level0Placement,
    SuccessorPlacement,
    make_placement,
)


@pytest.fixture(scope="module")
def net():
    n = TreePNetwork(config=TreePConfig.paper_case1(), seed=17)
    n.build(64)
    return n


def test_make_placement_resolves_names():
    assert isinstance(make_placement("level0"), Level0Placement)
    assert isinstance(make_placement("successor"), SuccessorPlacement)
    strat = SuccessorPlacement()
    assert make_placement(strat) is strat
    with pytest.raises(ValueError):
        make_placement("nope")


@pytest.mark.parametrize("strategy", [Level0Placement(), SuccessorPlacement()])
def test_replicas_distinct_and_lead_with_self(net, strategy):
    node = net.nodes[net.ids[len(net.ids) // 2]]
    key_id = 12345
    out = strategy.replicas(node, key_id, 3)
    assert out[0] == node.ident
    assert len(out) == len(set(out)) == 3


def test_successor_replicas_are_closest_known(net):
    node = net.nodes[net.ids[10]]
    key_id = node.ident + 5  # a key in the node's own neighbourhood
    out = SuccessorPlacement().replicas(node, key_id, 4)
    space = net.config.space
    chosen = set(out) - {node.ident}
    rest = {e.ident for e in node.table.candidates()} - chosen
    # Every chosen peer is at least as close to the key as every unchosen one.
    worst_chosen = max(space.distance(i, key_id) for i in chosen)
    best_rest = min(space.distance(i, key_id) for i in rest)
    assert worst_chosen <= best_rest


def test_repair_targets_all_live(net):
    space = net.config.space
    dead = net.ids[:8]
    net.fail_nodes(dead)
    try:
        for strategy in (Level0Placement(), SuccessorPlacement()):
            out = strategy.repair_targets(net, 999, 3)
            assert len(out) == len(set(out)) == 3
            assert all(net.network.is_up(i) for i in out)
        # Successor targets are exactly the closest live ids.
        live = [i for i in net.ids if net.network.is_up(i)]
        expect = sorted(live, key=lambda i: (space.distance(i, 999), i))[:3]
        assert SuccessorPlacement().repair_targets(net, 999, 3) == expect
    finally:
        for i in dead:
            net.network.set_up(i)


def test_level0_replicas_prefer_bus_neighbours(net):
    node = net.nodes[net.ids[30]]
    out = Level0Placement().replicas(node, 42, 3)
    assert set(out[1:]) <= node.table.level0 | node.table.level0_indirect
