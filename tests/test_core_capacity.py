"""Unit + property tests for the capacity model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.capacity import CapacityDistribution, NodeCapacity, uniform_capacity


def test_defaults_valid():
    c = uniform_capacity()
    assert c.score() > 0


def test_validation_rejects_nonpositive_resources():
    with pytest.raises(ValueError):
        NodeCapacity(cpu=0)
    with pytest.raises(ValueError):
        NodeCapacity(bandwidth_mbps=-1)
    with pytest.raises(ValueError):
        NodeCapacity(uptime_hours=0)


def test_validation_rejects_bad_loads():
    with pytest.raises(ValueError):
        NodeCapacity(cpu_load=1.5)
    with pytest.raises(ValueError):
        NodeCapacity(net_load=-0.1)


def test_score_monotone_in_resources():
    small = NodeCapacity(cpu=1, memory_gb=1, bandwidth_mbps=5)
    big = NodeCapacity(cpu=16, memory_gb=64, bandwidth_mbps=500)
    assert big.score() > small.score()


def test_load_reduces_score():
    idle = NodeCapacity(cpu=4)
    busy = NodeCapacity(cpu=4, cpu_load=0.9, net_load=0.9)
    assert busy.score() < idle.score()


def test_with_load_copies():
    c = NodeCapacity(cpu=4)
    c2 = c.with_load(cpu_load=0.5)
    assert c.cpu_load == 0.0 and c2.cpu_load == 0.5
    assert c2.cpu == 4


class TestMaxChildren:
    def test_bounds_respected(self):
        weak = NodeCapacity(cpu=1, memory_gb=0.5, bandwidth_mbps=1,
                            storage_gb=1, uptime_hours=1)
        strong = NodeCapacity(cpu=64, memory_gb=512, bandwidth_mbps=10000,
                              storage_gb=10000, uptime_hours=10000)
        assert 2 <= weak.max_children(2, 8) <= 8
        assert 2 <= strong.max_children(2, 8) <= 8
        assert strong.max_children(2, 8) > weak.max_children(2, 8)

    def test_invalid_bounds(self):
        c = uniform_capacity()
        with pytest.raises(ValueError):
            c.max_children(floor=1)
        with pytest.raises(ValueError):
            c.max_children(floor=4, ceiling=3)


class TestCountdowns:
    def test_promotion_shorter_for_stronger(self):
        weak = NodeCapacity(cpu=1, bandwidth_mbps=1)
        strong = NodeCapacity(cpu=32, bandwidth_mbps=1000, memory_gb=64)
        assert strong.promotion_countdown() < weak.promotion_countdown()

    def test_demotion_longer_for_stronger(self):
        weak = NodeCapacity(cpu=1, bandwidth_mbps=1)
        strong = NodeCapacity(cpu=32, bandwidth_mbps=1000, memory_gb=64)
        assert strong.demotion_countdown() > weak.demotion_countdown()

    def test_jitter_bounded(self):
        c = uniform_capacity()
        rng = np.random.default_rng(0)
        base = c.promotion_countdown()
        jittered = [c.promotion_countdown(rng=rng) for _ in range(100)]
        assert all(base <= j <= base * 1.1 + 1e-12 for j in jittered)

    def test_scaling_with_base(self):
        c = uniform_capacity()
        assert c.promotion_countdown(base=2.0) == pytest.approx(
            2 * c.promotion_countdown(base=1.0)
        )


class TestDistribution:
    def test_samples_valid(self):
        dist = CapacityDistribution(np.random.default_rng(0))
        for c in dist.sample_many(200):
            assert c.cpu in (1, 2, 4, 8, 16)
            assert 0 <= c.cpu_load <= 1

    def test_heterogeneous(self):
        dist = CapacityDistribution(np.random.default_rng(0))
        scores = [c.score() for c in dist.sample_many(200)]
        assert np.std(scores) > 0.1  # genuinely spread out

    def test_deterministic(self):
        a = CapacityDistribution(np.random.default_rng(5)).sample()
        b = CapacityDistribution(np.random.default_rng(5)).sample()
        assert a == b

    def test_count_validation(self):
        dist = CapacityDistribution(np.random.default_rng(0))
        with pytest.raises(ValueError):
            dist.sample_many(0)


@given(
    cpu=st.floats(0.5, 128), mem=st.floats(0.5, 1024), bw=st.floats(0.5, 10000),
    sto=st.floats(0.5, 10000), up=st.floats(0.5, 10000),
    l1=st.floats(0, 1), l2=st.floats(0, 1),
)
@settings(max_examples=100, deadline=None)
def test_property_score_positive_and_children_bounded(cpu, mem, bw, sto, up, l1, l2):
    c = NodeCapacity(cpu=cpu, memory_gb=mem, bandwidth_mbps=bw, storage_gb=sto,
                     uptime_hours=up, cpu_load=l1, net_load=l2)
    assert c.score() > 0
    assert 2 <= c.max_children(2, 8) <= 8
    assert c.promotion_countdown() > 0
    assert c.demotion_countdown() > 0
