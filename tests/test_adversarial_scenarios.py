"""Chaos tests for the adversarial workload plans and scenario group.

Three layers: the declarative plan builders in
:mod:`repro.workloads.adversarial` (rack disjointness, fraction
boundaries, determinism), the five registered ``adv_*`` scenarios (every
survival Check passes at smoke params; metrics are seed-deterministic),
and a standalone end-to-end regression for the durability invariant —
no acknowledged quorum write may become unreadable after an asymmetric
partition heals — independent of the bench harness, so the invariant is
enforced twice (scenario Check + pytest).
"""

import numpy as np
import pytest

import repro.bench.scenarios  # noqa: F401  (populates the registry)
from repro.bench import registry
from repro.cluster import Cluster
from repro.core.config import TreePConfig
from repro.sim.conditions import NetworkConditions
from repro.storage import QuorumConfig
from repro.workloads.adversarial import (
    PartitionPlan,
    children_map,
    rack_failure_plan,
    straggler_plan,
    subtree_in_span,
    subtree_members,
    subtree_partition_plan,
)

#          0
#        /   \
#       1     2
#      / \   / \
#     3   4 5   6
#    /|
#   7 8
TOPOLOGY = {0: -1, 1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2, 7: 3, 8: 3}

ADV_SCENARIOS = (
    "adv_partition_quorum", "adv_rack_failure_jobs", "adv_straggler_tail",
    "adv_loss_burst_lookup", "adv_heal_convergence",
)


# ------------------------------------------------------------ plan helpers

class TestTopologyHelpers:
    def test_children_map_inverts_snapshot(self):
        assert children_map(TOPOLOGY) == {
            0: [1, 2], 1: [3, 4], 2: [5, 6], 3: [7, 8]}

    def test_subtree_members_inclusive_and_sorted(self):
        assert subtree_members(TOPOLOGY, 1) == [1, 3, 4, 7, 8]
        assert subtree_members(TOPOLOGY, 7) == [7]
        assert subtree_members(TOPOLOGY, 0) == sorted(TOPOLOGY)

    def test_subtree_members_unknown_root_raises(self):
        with pytest.raises(ValueError):
            subtree_members(TOPOLOGY, 99)

    def test_subtree_in_span_lands_in_span(self):
        rng = np.random.default_rng(0)
        root = subtree_in_span(TOPOLOGY, rng, 0.3, 0.6)
        frac = len(subtree_members(TOPOLOGY, root)) / len(TOPOLOGY)
        assert 0.3 <= frac <= 0.6

    def test_subtree_in_span_nearest_miss_fallback(self):
        # No internal subtree covers >= 90%: the largest (node 1, 5/9)
        # must come back as the nearest miss.
        root = subtree_in_span(TOPOLOGY, np.random.default_rng(1), 0.9, 1.0)
        assert root == 1

    def test_subtree_in_span_rejects_bad_span_and_leaf_topology(self):
        with pytest.raises(ValueError):
            subtree_in_span(TOPOLOGY, np.random.default_rng(0), 0.6, 0.3)
        star = {0: -1, 1: 0, 2: 0}  # root's children are all leaves
        with pytest.raises(ValueError):
            subtree_in_span(star, np.random.default_rng(0), 0.1, 0.9)


class TestRackFailurePlan:
    def test_racks_are_disjoint_whole_subtrees(self):
        plan = rack_failure_plan(TOPOLOGY, np.random.default_rng(0), 0.4)
        seen = set()
        for rack in plan.racks:
            assert not seen.intersection(rack)
            seen.update(rack)
            if len(rack) > 1:  # a real rack is a whole subtree
                assert sorted(rack) == subtree_members(TOPOLOGY, min(rack))

    def test_fraction_target_met_exactly_or_overshot_by_one_rack(self):
        for seed in range(8):
            plan = rack_failure_plan(TOPOLOGY, np.random.default_rng(seed),
                                     0.4)
            assert plan.fraction >= 0.4
            assert plan.victims == tuple(
                n for rack in plan.racks for n in rack)
            assert len(set(plan.victims)) == len(plan.victims)

    def test_fraction_one_kills_everyone(self):
        plan = rack_failure_plan(TOPOLOGY, np.random.default_rng(2), 1.0)
        assert sorted(plan.victims) == sorted(TOPOLOGY)
        assert plan.fraction == 1.0

    def test_max_rack_span_caps_single_subtree(self):
        plan = rack_failure_plan(TOPOLOGY, np.random.default_rng(3), 0.5,
                                 max_rack_span=0.25)
        cap = max(1, int(0.25 * len(TOPOLOGY)))
        assert all(len(rack) <= cap for rack in plan.racks)

    def test_deterministic_for_equal_rng(self):
        p1 = rack_failure_plan(TOPOLOGY, np.random.default_rng(7), 0.5)
        p2 = rack_failure_plan(TOPOLOGY, np.random.default_rng(7), 0.5)
        assert p1 == p2

    def test_as_schedule_staggers_racks_not_members(self):
        plan = rack_failure_plan(TOPOLOGY, np.random.default_rng(0), 0.5)
        sched = plan.as_schedule(start=10.0, spacing=5.0)
        by_time = {}
        for ev in sched.events:
            assert ev.kind == "leave"
            by_time.setdefault(ev.time, []).append(ev.node)
        assert len(by_time) == len(plan.racks)
        for i, rack in enumerate(plan.racks):
            assert sorted(by_time[10.0 + 5.0 * i]) == sorted(rack)

    def test_rejects_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            rack_failure_plan({}, rng, 0.5)
        with pytest.raises(ValueError):
            rack_failure_plan(TOPOLOGY, rng, 0.0)
        with pytest.raises(ValueError):
            rack_failure_plan(TOPOLOGY, rng, 1.1)


class TestStragglerPlan:
    def test_count_is_ceil_of_fraction(self):
        plan = straggler_plan(range(10), np.random.default_rng(0), 0.25, 4.0)
        assert len(plan.victims) == 3  # ceil(2.5)
        assert plan.victim_set == frozenset(plan.victims)
        assert set(plan.victims) <= set(range(10))

    def test_zero_fraction_and_empty_population(self):
        assert straggler_plan(range(10), np.random.default_rng(0),
                              0.0, 2.0).victims == ()
        assert straggler_plan([], np.random.default_rng(0),
                              0.5, 2.0).victims == ()

    def test_full_fraction_takes_everyone(self):
        plan = straggler_plan([5, 3, 9], np.random.default_rng(1), 1.0, 2.0)
        assert plan.victims == (3, 5, 9)

    def test_deterministic_for_equal_rng(self):
        p1 = straggler_plan(range(50), np.random.default_rng(5), 0.2, 8.0)
        p2 = straggler_plan(range(50), np.random.default_rng(5), 0.2, 8.0)
        assert p1 == p2

    def test_rejects_bad_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            straggler_plan(range(5), rng, 1.5, 2.0)
        with pytest.raises(ValueError):
            straggler_plan(range(5), rng, 0.5, 0.9)


class TestPartitionPlanHelpers:
    def test_subtree_partition_plan_splits_exactly(self):
        plan = subtree_partition_plan(TOPOLOGY, 1, start=5.0, duration=10.0,
                                      bidirectional=False)
        assert plan.a == (1, 3, 4, 7, 8)
        assert plan.b == (0, 2, 5, 6)
        assert plan.heal_time == 15.0
        assert not plan.bidirectional
        assert plan.name == "subtree-1"

    def test_whole_topology_subtree_rejected(self):
        with pytest.raises(ValueError):
            subtree_partition_plan(TOPOLOGY, 0, start=0.0, duration=1.0)

    def test_plan_is_a_value(self):
        p1 = PartitionPlan(a=(1,), b=(2,), start=0.0, duration=1.0)
        p2 = PartitionPlan(a=(1,), b=(2,), start=0.0, duration=1.0)
        assert p1 == p2


# --------------------------------------------------------- scenario group

def test_adversarial_group_registered():
    names = [s.name for s in registry.by_group("adversarial")]
    assert names == sorted(ADV_SCENARIOS)
    assert len(registry) == 28


@pytest.mark.parametrize("name", ADV_SCENARIOS)
def test_scenario_survival_checks_pass_at_smoke(name):
    output = registry.get(name).execute(smoke=True)
    failed = output.failed_checks()
    assert not failed, [f"{c.name}: {c.detail}" for c in failed]
    assert output.rendered


def test_scenario_metrics_are_seed_deterministic():
    a = registry.get("adv_partition_quorum").execute(smoke=True)
    b = registry.get("adv_partition_quorum").execute(smoke=True)
    assert a.metrics == b.metrics
    assert [c.passed for c in a.checks] == [c.passed for c in b.checks]


def test_partition_quorum_smoke_pins():
    """Seed-pinned: the smoke run's deterministic metrics at seed 42."""
    m = registry.get("adv_partition_quorum").execute(smoke=True).metrics
    assert m["acked_readable_fraction"] == 1.0
    assert m["preload_readable_fraction"] == 1.0
    assert m["min_rf_after_heal"] == 3.0
    assert m["writes_acked_fraction"] == 0.5
    assert m["blocked_datagrams"] == 8.0


def test_straggler_tail_amplifies_but_keeps_results():
    m = registry.get("adv_straggler_tail").execute(smoke=True).metrics
    assert m["tail_amplification"] > 1.0
    assert m["straggler_p999_virtual_s"] > m["healthy_p999_virtual_s"]
    assert m["lookup_success_rate"] == 1.0


def test_rack_failure_full_completion():
    m = registry.get("adv_rack_failure_jobs").execute(smoke=True).metrics
    assert m["completion_rate"] == 1.0
    assert m["killed_fraction"] >= 0.30
    assert m["largest_rack"] >= 3.0


# ------------------------------------------- durability e2e regression

def test_acked_write_survives_asymmetric_partition_heal():
    """THE invariant, standalone: every quorum write acknowledged while an
    asymmetric partition is active must be quorum-readable from both
    sides once the partition heals and anti-entropy converges."""
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=11)
               .build(48)
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0))
    net, store, ae = cluster.net, cluster.storage, cluster.anti_entropy

    preloaded = [f"pre/{i}" for i in range(12)]
    for key in preloaded:
        assert store.put(key, {"k": key}).ok

    ids = sorted(net.ids)
    inside = ids[: len(ids) // 3]
    cond = NetworkConditions(net.network)
    part = cond.partition(inside, bidirectional=False, name="uplink")
    cond.cut(part)

    inside_s, outside_s = sorted(part.a), sorted(part.b)
    acked, rejected = [], 0
    for i in range(20):
        side = inside_s if i % 2 == 0 else outside_s
        key = f"cut/{i}"
        if store.put(key, {"i": i}, via=side[i % len(side)]).ok:
            acked.append(key)
        else:
            rejected += 1
    assert acked, "no write acked during the cut — scenario degenerate"
    assert rejected, "every write acked — the cut never bit"

    cond.heal(part)
    ae.converge()

    for key in acked + preloaded:
        assert store.get(key, via=inside_s[0]).found, \
            f"acked write {key} unreadable from inside after heal"
        assert store.get(key, via=outside_s[0]).found, \
            f"acked write {key} unreadable from outside after heal"
    cluster.shutdown()
