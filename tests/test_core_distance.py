"""Unit + property tests for the tessellation distance D(a, b) (§III.f)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.distance import cell_radius, halving_criterion, improves, treep_distance
from repro.core.ids import IdSpace

SPACE = IdSpace(extent=2**20)
H = 6


def test_level0_is_euclidean():
    assert treep_distance(SPACE, 100, 0, 500, H) == 400.0


def test_inside_radius_is_zero():
    # level 5 of h=6: radius = L/2.
    r = cell_radius(SPACE, H, 5)
    assert r == SPACE.extent / 2
    assert treep_distance(SPACE, 0, 5, int(r) - 1, H) == 0.0


def test_outside_radius_is_excess():
    r = cell_radius(SPACE, H, 4)  # L/4
    d = treep_distance(SPACE, 0, 4, int(r) + 1000, H)
    assert d == pytest.approx(1000.0, abs=1.0)


def test_radius_grows_with_level():
    radii = [cell_radius(SPACE, H, l) for l in range(H + 1)]
    assert radii == sorted(radii)
    assert radii[-1] == SPACE.extent  # the root sees everything at 0


def test_root_distance_zero_everywhere():
    assert treep_distance(SPACE, 0, H, SPACE.extent - 1, H) == 0.0


def test_level_above_height_clamped():
    # Defensive: level > h treated as radius = full extent.
    assert treep_distance(SPACE, 0, H + 2, SPACE.extent - 1, H) == 0.0


def test_negative_inputs_rejected():
    with pytest.raises(ValueError):
        cell_radius(SPACE, -1, 0)
    with pytest.raises(ValueError):
        cell_radius(SPACE, 5, -1)


def test_halving_criterion():
    assert halving_criterion(4.0, 10.0)
    assert halving_criterion(5.0, 10.0)
    assert not halving_criterion(5.1, 10.0)
    assert halving_criterion(0.0, 0.0)  # degenerate: only zero halves zero


def test_improves_is_strict():
    assert improves(SPACE, candidate=90, here=80, target=100)
    assert not improves(SPACE, candidate=80, here=90, target=100)
    assert not improves(SPACE, candidate=110, here=90, target=100)  # same d


@given(
    a=st.integers(0, SPACE.extent - 1),
    b=st.integers(0, SPACE.extent - 1),
    lvl=st.integers(0, H),
)
@settings(max_examples=200, deadline=None)
def test_property_D_bounds(a, b, lvl):
    """0 <= D(a,b) <= d(a,b), and D == d exactly at level 0."""
    d = SPACE.distance(a, b)
    D = treep_distance(SPACE, a, lvl, b, H)
    assert 0.0 <= D <= d
    if lvl == 0:
        assert D == d


@given(
    a=st.integers(0, SPACE.extent - 1),
    b=st.integers(0, SPACE.extent - 1),
    l1=st.integers(0, H - 1),
)
@settings(max_examples=200, deadline=None)
def test_property_D_monotone_in_level(a, b, l1):
    """Higher-level nodes are never farther: D at l+1 <= D at l."""
    assert treep_distance(SPACE, a, l1 + 1, b, H) <= treep_distance(SPACE, a, l1, b, H)
