"""ResourceDirectory.refresh() under churn: queries must never return dead
peers, and must find rejoined capacity again."""

import numpy as np

from repro import CapacityDistribution, NodeCapacity, TreePConfig, TreePNetwork
from repro.core.repair import FULL_POLICY, apply_failure_step
from repro.services.discovery import Constraint, ResourceDirectory
from repro.workloads import ChurnSchedule
from repro.workloads.churn import ChurnEvent

N_NODES = 96
SUPER = NodeCapacity(cpu=64.0, memory_gb=256.0, bandwidth_mbps=1000.0,
                     storage_gb=4000.0, uptime_hours=1000.0)
SUPER_CONSTRAINT = Constraint(min_cpu=32.0, min_memory_gb=128.0)


def build_net(seed=13):
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    rng = np.random.default_rng(seed)
    caps = CapacityDistribution(rng).sample_many(N_NODES)
    caps[0] = SUPER  # exactly one peer satisfies SUPER_CONSTRAINT
    net.build(N_NODES, capacities=caps)
    super_id = next(i for i in net.ids if net.capacities[i] is SUPER)
    return net, super_id


def replay(net, directory, events):
    """Apply one batch of churn events, then heal + refresh."""
    leaves = [e.node for e in events if e.kind == "leave"
              and net.network.is_up(e.node)]
    rejoins = [e.node for e in events if e.kind == "rejoin"
               and not net.network.is_up(e.node)]
    if leaves:
        net.fail_nodes(leaves)
        apply_failure_step(net, leaves, FULL_POLICY)
    for node in rejoins:
        net.network.set_up(node)
    directory.refresh()


def test_queries_never_return_dead_peers_across_sampled_churn():
    net, _ = build_net()
    directory = ResourceDirectory(net)
    schedule = ChurnSchedule.sampled(
        net.ids, net.rng.get("discovery-churn"), duration=300.0,
        mean_uptime=150.0, mean_downtime=60.0)
    assert len(schedule) > 0
    constraints = [Constraint(), Constraint(min_cpu=4.0),
                   Constraint(min_memory_gb=8.0),
                   Constraint(min_cpu=2.0, min_bandwidth_mbps=10.0)]
    pending = list(schedule)
    batch = 20
    while pending:
        replay(net, directory, pending[:batch])
        pending = pending[batch:]
        alive = set(net.alive_ids())
        if not alive:
            continue
        origin = sorted(alive)[0]
        for c in constraints:
            res = directory.query(c, origin=origin, max_results=8)
            assert set(res.matches) <= alive, (
                f"query returned dead peers: {set(res.matches) - alive}")
            for m in res.matches:
                assert c.admits(net.capacities[m])


def test_rejoined_capacity_is_found_again():
    net, super_id = build_net()
    directory = ResourceDirectory(net)
    origin = next(i for i in net.ids if i != super_id)

    res = directory.query(SUPER_CONSTRAINT, origin=origin)
    assert res.matches == (super_id,)

    # A scripted leave burst takes the super node (and some bystanders) out.
    rng = net.rng.get("discovery-rejoin")
    bystanders = [int(v) for v in rng.choice(
        [i for i in net.ids if i != super_id], 10, replace=False)]
    schedule = ChurnSchedule(events=[
        ChurnEvent(time=10.0, kind="leave", node=super_id),
        *[ChurnEvent(time=10.0, kind="leave", node=b) for b in bystanders],
        ChurnEvent(time=60.0, kind="rejoin", node=super_id),
    ])
    leaves = [e for e in schedule if e.kind == "leave"]
    rejoins = [e for e in schedule if e.kind == "rejoin"]

    replay(net, directory, leaves)
    origin = sorted(net.alive_ids())[0]
    res = directory.query(SUPER_CONSTRAINT, origin=origin)
    assert res.matches == (), "query found capacity that is dead"

    replay(net, directory, rejoins)
    res = directory.query(SUPER_CONSTRAINT, origin=origin)
    assert res.matches == (super_id,), "rejoined capacity not rediscovered"


def test_stale_directory_is_the_hazard_refresh_removes():
    """Without refresh() a post-churn query can return dead peers — the
    regression the refresh contract exists to prevent."""
    net, super_id = build_net()
    directory = ResourceDirectory(net)
    net.fail_nodes([super_id])
    apply_failure_step(net, [super_id], FULL_POLICY)
    # No refresh: the aggregate still admits, and the walk may surface the
    # dead node's subtree; after refresh the dead peer can never appear.
    directory.refresh()
    origin = sorted(net.alive_ids())[0]
    res = directory.query(SUPER_CONSTRAINT, origin=origin)
    assert super_id not in res.matches
    assert res.matches == ()
