"""SLO tier: spec parsing (TOML/JSON + the py<3.11 fallback parser),
offline evaluation of every rule kind, the streaming monitor's live
violation events, schedule-neutrality, and the bench ``--slo`` gate."""

import json

import pytest

from repro.bench.cli import main as bench_cli
from repro.bench.result import BenchResult
from repro.bench.runner import run_scenario
from repro.cluster import Cluster
from repro.obs import (STATUS_FAIL, STATUS_OK, STATUS_TIMEOUT, ObsHub,
                       SloSpec, TraceReader, evaluate_hub, evaluate_store,
                       load_slo, parse_slo, write_store)
from repro.obs.slo import StreamingSloMonitor, _parse_minimal_toml

SPEC_TOML = """
# latency + rates on one category, wildcard error budget
[slo.storage.put]
p99 = 0.5
max_failure_rate = 0.1
min_samples = 5

[slo."storage.get"]
p50 = 0.4
max_timeout_rate = 0.05

[slo."*"]
node_error_budget = 3
"""


def _rule_names(spec):
    return sorted(r.name for r in spec.rules)


# ------------------------------------------------------------------ parsing
def test_parse_toml_dotted_and_quoted_headers(tmp_path):
    path = tmp_path / "spec.toml"
    path.write_text(SPEC_TOML)
    spec = load_slo(str(path))
    assert _rule_names(spec) == [
        "*.node_error_budget", "storage.get.p50", "storage.get.timeout_rate",
        "storage.put.failure_rate", "storage.put.p99"]
    put_p99 = next(r for r in spec.rules if r.name == "storage.put.p99")
    assert put_p99.quantile == 0.99 and put_p99.limit == 0.5
    assert put_p99.min_samples == 5


def test_parse_json_spec(tmp_path):
    path = tmp_path / "spec.json"
    path.write_text(json.dumps(
        {"slo": {"lookup": {"p999": 1.0, "max_failure_rate": 0.2}}}))
    spec = load_slo(str(path))
    assert _rule_names(spec) == ["lookup.failure_rate", "lookup.p999"]


def test_minimal_toml_parser_agrees_with_tomllib():
    tomllib = pytest.importorskip("tomllib")
    assert _parse_minimal_toml(SPEC_TOML) == tomllib.loads(SPEC_TOML)


@pytest.mark.parametrize("data, fragment", [
    ({}, "non-empty"),
    ({"slo": {}}, "non-empty"),
    ({"slo": {"lookup": {"p98": 1.0}}}, "unknown objective"),
    ({"slo": {"lookup": {"p99": "fast"}}}, "must be numeric"),
    ({"slo": {"p99": 1.0}}, "directly under"),
    ({"slo": {"lookup": {"p99": 1.0, "min_samples": -1}}}, "min_samples"),
])
def test_parse_rejects_malformed_specs(data, fragment):
    with pytest.raises(ValueError, match=fragment):
        parse_slo(data)


# --------------------------------------------------------------- evaluation
def _hub_with_mixed_spans():
    hub = ObsHub()
    for i in range(20):  # node 1: fast, ok
        hub.span("lookup", 1, float(i), float(i) + 0.1)
    for i in range(10):  # node 2: slow + failing
        hub.span("lookup", 2, float(i), float(i) + 2.0,
                 status=STATUS_FAIL if i < 4 else STATUS_OK)
    hub.span("lookup", 2, 50.0, 51.0, status=STATUS_TIMEOUT)
    return hub


def test_offline_evaluation_every_rule_kind():
    spec = parse_slo({"slo": {"lookup": {
        "p99": 0.5, "max_failure_rate": 0.1, "max_timeout_rate": 0.5,
        "node_error_budget": 2}}})
    results = {r.name: r for r in evaluate_hub(spec, _hub_with_mixed_spans())}
    assert not results["lookup.p99"].ok            # slow tail breaches 0.5
    assert results["lookup.p99"].observed > 0.5
    assert not results["lookup.failure_rate"].ok   # 4/31 > 0.1
    assert results["lookup.timeout_rate"].ok       # 1/31 < 0.5
    budget = results["lookup.node_error_budget"]
    assert not budget.ok and budget.observed == 5.0
    assert "worst node 2" in budget.detail


def test_min_samples_skips_instead_of_failing():
    hub = ObsHub()
    hub.span("lookup", 1, 0.0, 9.0)  # one hideous sample
    spec = parse_slo({"slo": {"lookup": {"p99": 0.1, "min_samples": 10}}})
    (res,) = evaluate_hub(spec, hub)
    assert res.ok and "skipped" in res.detail and res.samples == 1


def test_wildcard_expands_over_present_categories():
    hub = ObsHub()
    hub.span("a", 1, 0.0, 1.0, status=STATUS_FAIL)
    hub.span("b", 1, 0.0, 1.0)
    spec = parse_slo({"slo": {"*": {"max_failure_rate": 0.5}}})
    names = sorted(r.name for r in evaluate_hub(spec, hub))
    assert names == ["a.failure_rate", "b.failure_rate"]


def test_evaluate_store_roundtrip(tmp_path):
    path = str(tmp_path / "t.npz")
    write_store(path, {"run-000": _hub_with_mixed_spans()})
    spec = parse_slo({"slo": {"lookup": {"max_failure_rate": 0.01}}})
    with TraceReader(path) as reader:
        report = evaluate_store(spec, reader)
    assert not report.passed
    (violation,) = report.violations()
    assert violation[0] == "run-000"
    assert violation[1].name == "lookup.failure_rate"
    d = report.to_dict()
    assert d["passed"] is False and len(d["violations"]) == 1
    assert d["violations"][0]["rule"] == "lookup.failure_rate"


# ---------------------------------------------------------------- streaming
def test_streaming_monitor_emits_one_latched_violation():
    hub = ObsHub()
    spec = parse_slo({"slo": {"lookup": {"max_failure_rate": 0.1}}})
    monitor = StreamingSloMonitor(spec, hub, check_every=4)
    for i in range(20):
        hub.span("lookup", 7, float(i), float(i) + 0.1, status=STATUS_FAIL)
    assert len(monitor.violations) == 1  # latched after the first trip
    assert hub.category_counts()["slo.violation"] == 1
    (v,) = hub.extras["slo_violations"]
    assert v["rule"] == "lookup.failure_rate" and v["observed"] > 0.1


def test_streaming_final_check_catches_tail_violations():
    hub = ObsHub()
    spec = parse_slo({"slo": {"lookup": {"p99": 0.2}}})
    monitor = StreamingSloMonitor(spec, hub, check_every=1000)
    for i in range(3):  # too few spans to hit a window before run end
        hub.span("lookup", 1, float(i), float(i) + 1.0)
    assert not monitor.violations  # ok spans never force an early check
    hub.finalize()  # hub finalize drives final_check()
    assert len(monitor.violations) == 1
    assert monitor.violations[0]["rule"] == "lookup.p99"


def test_streaming_latency_rule_uses_hub_sketch():
    hub = ObsHub()
    spec = parse_slo({"slo": {"lookup": {"p99": 0.2}}})
    StreamingSloMonitor(spec, hub, check_every=8)
    for i in range(64):
        hub.span("lookup", 1, float(i), float(i) + 1.0)
    assert hub.extras["slo_violations"][0]["rule"] == "lookup.p99"


def test_streaming_violations_survive_into_the_store(tmp_path):
    hub = ObsHub()
    spec = parse_slo({"slo": {"lookup": {"max_failure_rate": 0.01}}})
    StreamingSloMonitor(spec, hub)
    hub.span("lookup", 3, 0.0, 0.5, status=STATUS_FAIL)
    path = str(tmp_path / "v.npz")
    write_store(path, {"run-000": hub})
    with TraceReader(path) as reader:
        extras = reader.run_extras("run-000")
        assert extras["slo_violations"][0]["rule"] == "lookup.failure_rate"
        events = reader.events("run-000", category="slo.violation")
        assert len(events) == 1


def test_live_slo_monitoring_is_schedule_neutral():
    """A run with live SLO evaluation must stay bit-identical (in virtual
    time) to the same seeded run without observability at all."""
    spec = parse_slo({"slo": {"storage.put": {"p99": 0.001}}})  # fires a lot

    def workload(slo):
        c = Cluster(seed=321).build(24)
        if slo is not None:
            c.with_observability(slo=slo)
        c.with_storage()
        for i in range(12):
            c.storage.put(f"k{i}", i)
        return (c.sim.now, c.sim.events_processed), c

    base, _ = workload(None)
    monitored, cluster = workload(spec)
    assert monitored == base
    cluster.obs.finalize()  # run close drives the monitor's final check
    assert cluster.obs.extras["slo_violations"]  # the tight limit tripped


# ------------------------------------------------------------ bench plumbing
def test_bench_result_slo_field_roundtrip_and_byte_identity(tmp_path):
    plain = run_scenario("storage", smoke=True)
    assert "slo" not in json.loads(plain.to_json())

    spec_path = tmp_path / "ok.toml"
    spec_path.write_text("[slo.storage.put]\np99 = 100.0\n")
    gated = run_scenario("storage", smoke=True, slo=str(spec_path))
    assert gated.slo["passed"] is True
    assert gated.slo["spec_file"] == str(spec_path)
    assert "obs" not in json.loads(gated.to_json())  # no trace written

    loaded = BenchResult.from_dict(json.loads(gated.to_json()))
    assert loaded.slo == gated.slo


def test_bench_cli_slo_exit_codes(tmp_path, capsys):
    good = tmp_path / "good.toml"
    good.write_text("[slo.storage.put]\np99 = 100.0\n")
    assert bench_cli(["run", "storage", "--smoke", "--no-write", "--quiet",
                      "--slo", str(good)]) == 0

    bad = tmp_path / "bad.toml"
    bad.write_text("[slo.storage.put]\np99 = 0.0001\n")
    capsys.readouterr()
    assert bench_cli(["run", "storage", "--smoke", "--no-write", "--quiet",
                      "--slo", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "SLO VIOLATION" in out and "storage.put.p99" in out


def test_obs_cli_slo_subcommand(tmp_path, capsys):
    from repro.obs.cli import main as obs_cli

    run_scenario("storage", smoke=True, trace_out=str(tmp_path))
    trace = str(tmp_path / "trace_storage.smoke.npz")
    good = tmp_path / "good.toml"
    good.write_text("[slo.storage.put]\np99 = 100.0\n")
    assert obs_cli(["slo", trace, "--spec", str(good)]) == 0
    assert "all objectives met" in capsys.readouterr().out

    bad = tmp_path / "bad.toml"
    bad.write_text("[slo.storage.put]\np99 = 0.0001\n")
    assert obs_cli(["slo", trace, "--spec", str(bad)]) == 1
    assert "SLO VIOLATION" in capsys.readouterr().out


def test_committed_smoke_spec_passes_on_the_smoke_run():
    spec = load_slo("benchmarks/slo/smoke.toml")
    assert isinstance(spec, SloSpec) and len(spec) >= 5
    result = run_scenario("storage", smoke=True,
                          slo="benchmarks/slo/smoke.toml")
    assert result.slo["passed"] is True, result.slo["violations"]


def test_status_constants_still_cover_the_spec():
    # the rate rules key off these exact codes; a renumbering must not
    # silently invert ok/fail accounting
    assert (STATUS_OK, STATUS_FAIL, STATUS_TIMEOUT) == (1, 2, 3)
