"""Unit tests for the span/event hub: ordering, parents, keyed spans,
category gating, and the counts == rows invariant."""

import numpy as np
import pytest

from repro.obs.columnar import StreamBuffer, StringTable
from repro.obs.hub import (STATUS_FAIL, STATUS_OK, STATUS_OPEN,
                           STATUS_TIMEOUT, ObsHub)


# ------------------------------------------------------------- columnar base
def test_stream_buffer_chunk_boundaries():
    buf = StreamBuffer((("a", "i8"), ("b", "f8")), chunk=3)
    for i in range(8):  # crosses two chunk boundaries
        buf.append(i, i / 2)
    cols = buf.columns()
    assert list(cols["a"]) == list(range(8))
    np.testing.assert_allclose(cols["b"], np.arange(8) / 2)
    assert cols["a"].dtype == np.dtype("i8")


def test_stream_buffer_validation():
    with pytest.raises(ValueError):
        StreamBuffer((), chunk=4)
    with pytest.raises(ValueError):
        StreamBuffer((("a", "i8"),), chunk=0)


def test_string_table_interning():
    st = StringTable()
    assert st.code("x") == 0
    assert st.code("y") == 1
    assert st.code("x") == 0  # stable
    assert st.lookup(1) == "y"
    assert st.get_code("missing") == -1
    assert "x" in st and len(st) == 2


# -------------------------------------------------------------------- spans
def test_span_ids_monotonic_and_ordering():
    hub = ObsHub()
    a = hub.begin("lookup", 1, 0.0)
    b = hub.begin("lookup", 2, 1.0)
    assert 0 < a < b
    hub.end(b, 2.0, status=STATUS_OK, v0=3)
    hub.end(a, 5.0, status=STATUS_FAIL)
    cols = hub.spans.columns()
    # Rows appear in end order; every row has t1 >= t0.
    assert list(cols["id"]) == [b, a]
    assert (cols["t1"] >= cols["t0"]).all()
    assert list(cols["status"]) == [STATUS_OK, STATUS_FAIL]
    assert cols["v0"][0] == 3.0


def test_end_unknown_or_zero_span_is_noop():
    hub = ObsHub()
    hub.end(0, 1.0)
    hub.end(999, 1.0)
    sid = hub.begin("lookup", 1, 0.0)
    hub.end(sid, 1.0)
    hub.end(sid, 2.0)  # double-end ignored
    assert hub.spans.rows == 1


def test_parent_links():
    hub = ObsHub()
    hub.job_begin(7, 1, 0.0)
    job_sid = hub.keyed_id("job", 7)
    hub.job_execute_begin(7, 1, 5, 0.5)
    hub.job_execute_end(7, 1, 2.5, executed=2.0)
    hub.job_end(7, 3.0, ok=True, attempts=1)
    cols = hub.spans.columns()
    by_id = {int(i): idx for idx, i in enumerate(cols["id"])}
    exec_row = next(idx for idx in range(hub.spans.rows)
                    if cols["parent"][idx] != 0)
    assert int(cols["parent"][exec_row]) == job_sid
    assert job_sid in by_id


def test_keyed_begin_idempotent():
    hub = ObsHub()
    hub.lookup_begin(42, 1, 0.0)
    hub.lookup_begin(42, 9, 5.0)  # duplicate (e.g. a resubmission)
    assert hub.counts["lookup"] == 1
    hub.lookup_end(42, 6.0, found=True, hops=2)
    cols = hub.spans.columns()
    assert hub.spans.rows == 1
    assert cols["t0"][0] == 0.0 and cols["node"][0] == 1  # first begin wins


def test_end_keyed_unknown_is_noop():
    hub = ObsHub()
    hub.lookup_end(123, 1.0, found=True, hops=1)
    assert hub.spans.rows == 0 and hub.counts == {}


def test_status_mapping():
    hub = ObsHub()
    hub.lookup_begin(1, 0, 0.0)
    hub.lookup_end(1, 1.0, found=True, hops=1)
    hub.lookup_begin(2, 0, 0.0)
    hub.lookup_end(2, 1.0, found=False, hops=1)
    hub.lookup_begin(3, 0, 0.0)
    hub.lookup_end(3, 1.0, found=False, hops=0, timed_out=True)
    statuses = list(hub.spans.columns()["status"])
    assert statuses == [STATUS_OK, STATUS_FAIL, STATUS_TIMEOUT]


# ------------------------------------------------------------------ gating
def test_category_gating_spans_and_events():
    hub = ObsHub(categories=["lookup"])
    assert hub.begin("storage.put", 1, 0.0) == 0
    hub.event("lookup.hop", 1, 0.0, rid=1, value=0)  # not enabled
    sid = hub.begin("lookup", 1, 0.0)
    assert sid != 0
    hub.end(sid, 1.0)
    assert hub.counts == {"lookup": 1}
    assert hub.events.rows == 0


def test_sim_event_rows_are_opt_in():
    class Ev:
        label = "dgram:X"
        time = 1.0

    default = ObsHub()
    default.on_sim_event(Ev())
    assert default.sim_event_counts == {"dgram:X": 1}
    assert default.events.rows == 0  # counts always, rows only on opt-in

    opted = ObsHub(categories=["sim.event"])
    opted.on_sim_event(Ev())
    assert opted.events.rows == 1
    assert opted.counts == {"sim.event": 1}


# -------------------------------------------------------- counts invariant
def test_finalize_flushes_open_spans_and_counts_match_rows():
    hub = ObsHub()
    hub.lookup_begin(1, 0, 0.0)
    hub.lookup_end(1, 1.0, found=True, hops=2)
    hub.lookup_begin(2, 0, 5.0)        # never ends (crash)
    hub.storage_begin("put", 3, 0, 6.0)  # never ends
    hub.event("lookup.hop", 0, 0.5, rid=1, value=0)
    assert hub.open_span_count() == 2
    hub.finalize()
    assert hub.open_span_count() == 0
    cols = hub.spans.columns()
    span_rows = {}
    for idx in range(hub.spans.rows):
        name = hub.strings.lookup(int(cols["cat"][idx]))
        span_rows[name] = span_rows.get(name, 0) + 1
    event_rows = {}
    ecols = hub.events.columns()
    for idx in range(hub.events.rows):
        name = hub.strings.lookup(int(ecols["cat"][idx]))
        event_rows[name] = event_rows.get(name, 0) + 1
    total = dict(span_rows)
    for k, v in event_rows.items():
        total[k] = total.get(k, 0) + v
    assert total == hub.category_counts()
    # Flushed spans carry STATUS_OPEN and t1 == t0.
    open_mask = cols["status"] == STATUS_OPEN
    assert open_mask.sum() == 2
    np.testing.assert_array_equal(cols["t0"][open_mask], cols["t1"][open_mask])


def test_span_durations_feed_latency_histograms():
    hub = ObsHub()
    for i in range(5):
        sid = hub.begin("lookup", 0, float(i))
        hub.end(sid, float(i) + 0.5)
    snap = hub.metrics_snapshot()
    assert snap["span.lookup.latency.count"] == 5.0
    assert snap["span.lookup.latency.p50"] == pytest.approx(0.5, rel=0.05)


def test_adopted_registry_snapshot_prefixed():
    from repro.obs.metrics import MetricsRegistry

    hub = ObsHub()
    reg = MetricsRegistry()
    reg.counter("placements").inc(3)
    hub.adopt_registry("compute", reg)
    assert hub.metrics_snapshot()["compute.placements"] == 3.0
