"""Unit tests for the versioned per-node KVStore."""


from repro.storage.store import KVStore, VersionedValue, hash_key


def test_hash_key_stable_and_in_space():
    extent = 2**32
    a = hash_key("job/1", extent)
    assert a == hash_key("job/1", extent)
    assert 0 <= a < extent
    assert hash_key("job/2", extent) != a


def test_apply_and_get():
    s = KVStore(owner=1)
    assert s.apply(10, "a", version=1, writer=1)
    vv = s.get(10)
    assert vv == VersionedValue("a", 1, 1)
    assert 10 in s and len(s) == 1
    assert s.keys() == [10]


def test_lww_higher_version_wins():
    s = KVStore(owner=1)
    s.apply(10, "old", version=1, writer=9)
    assert s.apply(10, "new", version=2, writer=1)
    assert s.get(10).value == "new"
    # A lower version never regresses the copy.
    assert not s.apply(10, "stale", version=1, writer=99)
    assert s.get(10).value == "new"


def test_lww_writer_breaks_version_ties():
    a, b = KVStore(owner=1), KVStore(owner=2)
    # Two concurrent writes with the same version, applied in both orders.
    for store, order in ((a, [(5, "x"), (8, "y")]), (b, [(8, "y"), (5, "x")])):
        for writer, val in order:
            store.apply(42, val, version=3, writer=writer)
    # Both replicas converge on the higher-writer copy.
    assert a.get(42) == b.get(42) == VersionedValue("y", 3, 8)


def test_version_counters_per_key():
    s = KVStore(owner=1)
    assert s.version_of(10) == 0 and s.next_version(10) == 1
    s.apply(10, "a", version=s.next_version(10), writer=1)
    s.apply(10, "b", version=s.next_version(10), writer=1)
    s.apply(20, "c", version=s.next_version(20), writer=1)
    assert s.version_of(10) == 2
    assert s.version_of(20) == 1


def test_drop_and_clear():
    s = KVStore(owner=1)
    s.apply(10, "a", version=1)
    assert s.drop(10)
    assert not s.drop(10)
    s.apply(11, "b", version=1)
    s.clear()
    assert len(s) == 0


def test_dominates():
    assert VersionedValue("a", 2).dominates(VersionedValue("b", 1))
    assert VersionedValue("a", 1, writer=5).dominates(VersionedValue("b", 1, writer=3))
    assert VersionedValue("a", 1).dominates(None)
    assert not VersionedValue("a", 1).dominates(VersionedValue("a", 1))


def test_timestamp_leads_the_stamp():
    """A later-coordinated write dominates a stale higher-versioned copy
    (version counters restart when coordination moves; the clock doesn't)."""
    newer = VersionedValue("new", 1, writer=2, timestamp=50.0)
    stale = VersionedValue("old", 9, writer=7, timestamp=10.0)
    assert newer.dominates(stale)
    assert not stale.dominates(newer)
    s = KVStore(owner=1)
    s.apply(1, "old", version=9, writer=7, timestamp=10.0)
    assert s.apply(1, "new", version=1, writer=2, timestamp=50.0)
    assert s.get(1).value == "new"
