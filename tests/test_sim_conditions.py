"""Chaos tests for adversarial network conditions (sim layer).

Covers the four condition models and the ``NetworkConditions``
composition root: exactly-once cut/heal hooks under overlapping
partitions, asymmetric cut semantics, scheduled partitions through the
sim engine, the ``Network.loss_model`` seam, straggler stream hygiene
(control runs stay bit-identical), geography order-independence, and
seed-pinned digests so a refactor cannot silently change what any model
emits at a fixed seed.
"""

import hashlib

import numpy as np
import pytest

from repro.sim.conditions import (
    GeoLatency,
    GilbertElliott,
    NetworkConditions,
    Partition,
    StragglerLatency,
)
from repro.sim.engine import Simulator
from repro.sim.latency import ConstantLatency, UniformLatency
from repro.sim.network import Network, Process


class Sink(Process):
    def __init__(self, address):
        super().__init__(address)
        self.received = []

    def on_datagram(self, dgram):
        self.received.append(dgram)


def make_net(n=10, latency=None, loss=0.0, seed=0):
    sim = Simulator()
    net = Network(sim, latency=latency or ConstantLatency(0.01),
                  loss=loss, rng=np.random.default_rng(seed))
    for i in range(n):
        net.register(Sink(i))
    return sim, net


def digest(values, places=9):
    h = hashlib.sha256()
    for v in values:
        h.update(f"{v:.{places}f}".encode())
    return h.hexdigest()[:16]


# ----------------------------------------------------------- partitions

class TestPartition:
    def test_bidirectional_blocks_both_ways(self):
        p = Partition(a=frozenset({1, 2}), b=frozenset({3, 4}))
        assert p.blocks(1, 3) and p.blocks(3, 1)
        assert not p.blocks(1, 2) and not p.blocks(3, 4)

    def test_asymmetric_blocks_a_to_b_only(self):
        p = Partition(a=frozenset({1}), b=frozenset({2}), bidirectional=False)
        assert p.blocks(1, 2)
        assert not p.blocks(2, 1)

    def test_value_equality_is_the_same_cut(self):
        p1 = Partition(a=frozenset({1}), b=frozenset({2}), name="x")
        p2 = Partition(a=frozenset({1}), b=frozenset({2}), name="x")
        assert p1 == p2 and hash(p1) == hash(p2)


class TestNetworkConditions:
    def test_cut_blocks_and_accounts_per_name(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        p = cond.partition({0, 1}, {2, 3}, name="rack-a")
        cond.cut(p)
        net.send(0, 2, "x")   # blocked a->b
        net.send(2, 0, "x")   # blocked b->a (bidirectional)
        net.send(0, 1, "x")   # intra-side, flows
        sim.run(until=1.0)
        assert cond.blocked == {"rack-a": 2}
        assert cond.blocked_total() == 2
        assert net.stats.dropped_partition == 2
        assert len(net.get(1).received) == 1

    def test_asymmetric_cut_lets_replies_through(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        p = cond.partition({0}, {1}, bidirectional=False)
        cond.cut(p)
        net.send(0, 1, "req")
        net.send(1, 0, "reply")
        sim.run(until=1.0)
        assert len(net.get(1).received) == 0
        assert len(net.get(0).received) == 1

    def test_complement_partition_over_current_membership(self):
        sim, net = make_net(n=6)
        cond = NetworkConditions(net)
        p = cond.partition({0, 1})
        assert p.b == frozenset({2, 3, 4, 5})

    def test_overlapping_sides_rejected(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        with pytest.raises(ValueError):
            cond.partition({0, 1}, {1, 2})

    def test_hooks_exactly_once_under_overlapping_partitions(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        cut_log, heal_log = [], []
        cond.cut_hooks.append(lambda p: cut_log.append(p.name))
        cond.heal_hooks.append(lambda p: heal_log.append(p.name))
        p1 = cond.partition({0, 1}, {2, 3}, name="p1")
        p2 = cond.partition({0, 4}, {5, 6}, name="p2")  # overlaps p1's side a
        assert cond.cut(p1) and cond.cut(p2)
        assert not cond.cut(p1)          # repeat cut: no-op, no hook
        assert cond.heal(p1)
        assert not cond.heal(p1)         # repeat heal: no-op, no hook
        assert cond.heal_all() == 1      # only p2 left
        assert cut_log == ["p1", "p2"]
        assert heal_log == ["p1", "p2"]
        assert (cond.cuts, cond.heals) == (2, 2)

    def test_overlapping_cuts_block_union_and_heal_independently(self):
        sim, net = make_net(n=8)
        cond = NetworkConditions(net)
        p1 = cond.partition({0}, {1}, name="p1")
        p2 = cond.partition({0}, {2}, name="p2")
        cond.cut(p1)
        cond.cut(p2)
        net.send(0, 1, "x")
        net.send(0, 2, "x")
        cond.heal(p1)
        net.send(0, 1, "x")  # p1 healed: flows
        net.send(0, 2, "x")  # p2 still active: blocked
        sim.run(until=1.0)
        assert len(net.get(1).received) == 1
        assert len(net.get(2).received) == 0
        assert cond.blocked == {"p1": 1, "p2": 2}

    def test_scheduled_partition_cuts_and_heals_via_sim(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        counts = {"cut": 0, "heal": 0}
        cond.cut_hooks.append(lambda p: counts.__setitem__("cut", counts["cut"] + 1))
        cond.heal_hooks.append(lambda p: counts.__setitem__("heal", counts["heal"] + 1))
        p, cut_ev, heal_ev = cond.schedule(5.0, 10.0, {0, 1})
        sim.run(until=4.0)
        assert cond.active() == ()
        sim.run(until=6.0)
        assert cond.active() == (p,)
        sim.run(until=16.0)
        assert cond.active() == ()
        assert counts == {"cut": 1, "heal": 1}

    def test_manual_heal_makes_scheduled_heal_a_noop(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        heals = []
        cond.heal_hooks.append(heals.append)
        p, _, _ = cond.schedule(1.0, 10.0, {0})
        sim.run(until=2.0)
        assert cond.heal(p)          # manual heal mid-window
        sim.run(until=20.0)          # scheduled heal fires -> no-op
        assert len(heals) == 1
        assert cond.heals == 1

    def test_schedule_rejects_nonpositive_duration(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        with pytest.raises(ValueError):
            cond.schedule(1.0, 0.0, {0})

    def test_composes_with_preexisting_filter(self):
        sim, net = make_net()
        net.partition_filter = lambda s, d: d == 9  # pre-existing blackhole
        cond = NetworkConditions(net)
        cond.cut(cond.partition({0}, {1}))
        net.send(0, 9, "x")   # blocked by the previous filter
        net.send(2, 9, "x")   # also blocked by the previous filter
        net.send(2, 3, "x")   # flows
        sim.run(until=1.0)
        assert len(net.get(9).received) == 0
        assert len(net.get(3).received) == 1

    def test_detach_restores_every_seam(self):
        sim, net = make_net(latency=ConstantLatency(0.01))
        prev_filter = net.partition_filter
        base_latency = net.latency
        cond = NetworkConditions(net)
        cond.cut(cond.partition({0}, {1}))
        cond.set_loss_model(lambda s, d: True)
        cond.set_stragglers({0}, 4.0)
        cond.detach()
        assert net.partition_filter is prev_filter
        assert net.loss_model is None
        assert net.latency is base_latency
        net.send(0, 1, "x")  # nothing blocks, drops or slows any more
        sim.run(until=1.0)
        assert len(net.get(1).received) == 1
        with pytest.raises(RuntimeError):
            cond.cut(cond.partition({0}, {2}))
        cond.detach()  # idempotent

    def test_detach_leaves_foreign_filter_alone(self):
        sim, net = make_net()
        cond = NetworkConditions(net)
        foreign = lambda s, d: False  # noqa: E731 - test stand-in
        net.partition_filter = foreign
        cond.detach()
        assert net.partition_filter is foreign


# ------------------------------------------------------------- loss seam

class TestLossModelSeam:
    def test_loss_model_drops_and_counts_as_loss(self):
        sim, net = make_net()
        net.loss_model = lambda s, d: d == 1
        net.send(0, 1, "x")
        net.send(0, 2, "x")
        sim.run(until=1.0)
        assert net.stats.dropped_loss == 1
        assert len(net.get(1).received) == 0
        assert len(net.get(2).received) == 1

    def test_scalar_loss_stream_unshifted_by_model(self):
        """Installing a loss_model must not perturb the scalar loss draws
        (the model is evaluated after them)."""
        def run(with_model):
            sim, net = make_net(loss=0.3, seed=7)
            if with_model:
                net.loss_model = lambda s, d: False
            for i in range(200):
                net.send(0, 1 + (i % 9), f"m{i}")
            sim.run(until=5.0)
            return net.stats.dropped_loss

        assert run(False) == run(True)

    def test_gilbert_elliott_on_network_counts_drops(self):
        sim, net = make_net(seed=3)
        ge = GilbertElliott(np.random.default_rng(5), loss_bad=1.0,
                            p_enter_bad=0.5, p_exit_bad=0.2)
        net.loss_model = ge
        for i in range(300):
            net.send(0, 1 + (i % 9), "x")
        sim.run(until=10.0)
        assert ge.packets == 300
        assert ge.drops > 0
        assert net.stats.dropped_loss == ge.drops


# --------------------------------------------------------- GilbertElliott

class TestGilbertElliott:
    def test_rejects_out_of_range_probabilities(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GilbertElliott(rng, loss_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliott(rng, p_enter_bad=-0.1)

    def test_stationary_and_expected_loss(self):
        ge = GilbertElliott(np.random.default_rng(0), loss_good=0.01,
                            loss_bad=0.5, p_enter_bad=0.02, p_exit_bad=0.18)
        assert ge.stationary_bad() == pytest.approx(0.1)
        assert ge.expected_loss() == pytest.approx(0.1 * 0.5 + 0.9 * 0.01)

    def test_observed_loss_converges_to_stationary(self):
        ge = GilbertElliott(np.random.default_rng(1), loss_bad=0.6,
                            p_enter_bad=0.05, p_exit_bad=0.15)
        for i in range(40000):
            ge(0, i % 4)
        assert ge.observed_loss() == pytest.approx(ge.expected_loss(),
                                                   rel=0.25)

    def test_losses_are_bursty_not_iid(self):
        """Drops cluster: the mean run length of consecutive drops on one
        link must exceed the iid expectation at the same marginal rate."""
        ge = GilbertElliott(np.random.default_rng(2), loss_bad=0.9,
                            p_enter_bad=0.01, p_exit_bad=0.2)
        outcomes = [ge(0, 1) for _ in range(60000)]
        runs, current = [], 0
        for dropped in outcomes:
            if dropped:
                current += 1
            elif current:
                runs.append(current)
                current = 0
        p = sum(outcomes) / len(outcomes)
        iid_mean_run = 1.0 / (1.0 - p)
        assert np.mean(runs) > 1.5 * iid_mean_run

    def test_draw_count_is_path_independent(self):
        """Exactly two RNG draws per datagram regardless of chain state, so
        downstream consumers of a shared stream never shift."""
        rng = np.random.default_rng(3)
        ge = GilbertElliott(rng, loss_bad=1.0, p_enter_bad=0.9, p_exit_bad=0.1)
        before = rng.bit_generator.state["state"]["state"]
        for i in range(57):
            ge(i % 3, (i + 1) % 3)
        rng2 = np.random.default_rng(3)
        rng2.random(2 * 57)
        assert (rng.bit_generator.state["state"]["state"]
                == rng2.bit_generator.state["state"]["state"])
        assert before != rng.bit_generator.state["state"]["state"]

    def test_per_link_chains_are_independent(self):
        ge = GilbertElliott(np.random.default_rng(4), loss_bad=1.0,
                            p_enter_bad=1.0, p_exit_bad=0.0)
        ge(1, 2)  # link (1,2) enters bad and stays
        assert ge._bad[(1, 2)] is True
        assert (2, 1) not in ge._bad  # the reverse link has its own chain

    def test_seed_pinned_drop_sequence(self):
        ge = GilbertElliott(np.random.default_rng(42), loss_bad=0.7,
                            p_enter_bad=0.1, p_exit_bad=0.3)
        bits = "".join(str(int(ge(0, 1))) for _ in range(256))
        assert hashlib.sha256(bits.encode()).hexdigest()[:16] == \
            "1ef78966a85ea732"


# ------------------------------------------------------------ GeoLatency

class TestGeoLatency:
    def test_coordinates_are_visit_order_independent(self):
        g1 = GeoLatency(np.random.default_rng(11), jitter=0.0)
        g2 = GeoLatency(np.random.default_rng(11), jitter=0.0)
        order1 = [5, 9, 2, 7]
        for a in order1:
            g1.coordinate(a)
        for a in reversed(order1):
            g2.coordinate(a)
        for a in order1:
            assert np.allclose(g1.coordinate(a), g2.coordinate(a))
        assert g1.sample(5, 9) == g2.sample(5, 9)

    def test_intra_site_closer_than_cross_site(self):
        g = GeoLatency(np.random.default_rng(13), sites=3, spread=0.02,
                       jitter=0.0)
        by_site = {}
        for a in range(120):
            by_site.setdefault(g.site_of(a), []).append(a)
        sites = [v for v in by_site.values() if len(v) >= 2]
        assert len(sites) >= 2
        intra = np.mean([g.distance(s[0], s[1]) for s in sites])
        cross = np.mean([g.distance(sites[0][0], other[0])
                         for other in sites[1:]])
        assert intra < cross

    def test_sample_is_symmetric_without_jitter(self):
        g = GeoLatency(np.random.default_rng(17), jitter=0.0)
        assert g.sample(3, 8) == g.sample(8, 3)
        assert g.sample(3, 8) >= g.base

    def test_expected_tracks_cached_population(self):
        g = GeoLatency(np.random.default_rng(19), jitter=0.0)
        prior = g.expected()
        for a in range(20):
            g.coordinate(a)
        posterior = g.expected()
        assert prior > 0 and posterior > 0
        # The prior uses the analytic unit-square mean distance.
        assert prior == pytest.approx(
            g.base + g.per_unit * 0.5214)

    def test_rejects_bad_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            GeoLatency(rng, base=-0.1)
        with pytest.raises(ValueError):
            GeoLatency(rng, sites=0)
        with pytest.raises(ValueError):
            GeoLatency(rng, jitter=-0.5)

    def test_seed_pinned_sample_digest(self):
        g = GeoLatency(np.random.default_rng(42))
        samples = [g.sample(i % 7, (i * 3) % 11) for i in range(64)]
        assert digest(samples) == "98e0cf89a9ebeda2"


# ------------------------------------------------------- StragglerLatency

class TestStragglerLatency:
    def test_victim_links_slowed_exactly_by_factor(self):
        s = StragglerLatency(ConstantLatency(0.01), {3}, 10.0)
        assert s.sample(3, 5) == pytest.approx(0.1)
        assert s.sample(5, 3) == pytest.approx(0.1)
        assert s.sample(4, 5) == pytest.approx(0.01)
        assert s.slowed == 2

    def test_factor_one_is_bit_identical_to_base(self):
        r1, r2 = np.random.default_rng(21), np.random.default_rng(21)
        base = UniformLatency(r1)
        wrapped = StragglerLatency(UniformLatency(r2), {0, 1, 2}, 1.0)
        assert [base.sample(0, 1) for _ in range(100)] == \
            [wrapped.sample(0, 1) for _ in range(100)]

    def test_empty_victims_is_bit_identical_to_base(self):
        r1, r2 = np.random.default_rng(23), np.random.default_rng(23)
        base = UniformLatency(r1)
        wrapped = StragglerLatency(UniformLatency(r2), set(), 50.0)
        assert [base.sample(i, i + 1) for i in range(100)] == \
            [wrapped.sample(i, i + 1) for i in range(100)]
        assert wrapped.slowed == 0

    def test_base_stream_advances_identically_for_victims(self):
        """The base model is sampled exactly once per call whether or not
        the link is slowed, so non-victim draws downstream stay aligned."""
        r1, r2 = np.random.default_rng(25), np.random.default_rng(25)
        plain = UniformLatency(r1)
        slow = StragglerLatency(UniformLatency(r2), {0}, 8.0)
        plain.sample(0, 1)          # victim link on the wrapped model
        slow.sample(0, 1)
        assert plain.sample(5, 6) == slow.sample(5, 6)  # next draw aligned

    def test_rejects_sub_one_factor(self):
        with pytest.raises(ValueError):
            StragglerLatency(ConstantLatency(0.01), {1}, 0.5)

    def test_expected_keeps_healthy_budget(self):
        s = StragglerLatency(ConstantLatency(0.02), {1}, 10.0)
        assert s.expected() == 0.02

    def test_set_stragglers_rewrap_keeps_original_base(self):
        sim, net = make_net(latency=ConstantLatency(0.01))
        base = net.latency
        cond = NetworkConditions(net)
        cond.set_stragglers({0}, 4.0)
        cond.set_stragglers({1}, 8.0)   # re-call replaces, not re-wraps
        assert isinstance(net.latency, StragglerLatency)
        assert net.latency.base is base
        cond.clear_stragglers()
        assert net.latency is base

    def test_straggler_network_run_slows_only_victim_links(self):
        def run(victims):
            sim, net = make_net(latency=ConstantLatency(0.01))
            arrivals = {}
            net.delivery_hook = lambda d: arrivals.__setitem__(d.dst, sim.now)
            cond = NetworkConditions(net)
            cond.set_stragglers(victims, 5.0)
            net.send(0, 1, "x")
            net.send(2, 3, "x")
            sim.run(until=5.0)
            return arrivals

        control = run(set())
        slowed = run({0})
        assert slowed[1] == pytest.approx(5.0 * control[1])  # victim link
        assert slowed[3] == control[3]                       # untouched link


# ------------------------------------------------- end-to-end digest pin

class TestConditionDigests:
    def test_partitioned_network_delivery_digest(self):
        """Seed-pinned end-to-end: a partitioned, lossy, slowed network
        delivers exactly the same set of datagrams at the same times."""
        sim, net = make_net(n=8, latency=ConstantLatency(0.05), seed=31)
        cond = NetworkConditions(net)
        cond.cut(cond.partition({0, 1}, {2, 3}, name="d"))
        cond.set_loss_model(GilbertElliott(
            np.random.default_rng(33), loss_bad=0.8, p_enter_bad=0.2,
            p_exit_bad=0.2))
        cond.set_stragglers({4}, 6.0)
        k = 0
        for i in range(120):
            net.send(i % 8, (i * 5 + 1) % 8, k)
            k += 1
        sim.run(until=10.0)
        rows = []
        for p in range(8):
            for d in net.get(p).received:
                rows.append(f"{p}:{d.src}:{d.payload}:{d.send_time:.6f}")
        h = hashlib.sha256("|".join(sorted(rows)).encode()).hexdigest()[:16]
        assert h == "842ca8070bc8fc48"
