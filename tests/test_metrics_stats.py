"""Tier-1 coverage for the campaign statistics in repro.metrics.stats.

The Student-t quantile is computed in-repo (incomplete beta + bisection,
no SciPy) — these tests pin it against closed-form table values, and
against scipy when it happens to be installed.  The degenerate-sample
contract (n=1 → no CI, zero variance → zero-width CI) is what the
campaign aggregator and the CI-overlap compare gate rely on, so it is
pinned explicitly, as is the SampleSummary JSON round-trip the campaign
envelope embeds.
"""

import json
import math

import pytest

from repro.metrics.stats import (
    CI_METHODS,
    SampleSummary,
    bootstrap_interval,
    student_t_cdf,
    student_t_ppf,
    summarize_samples,
    t_interval,
)

#: Two-sided 95% critical values (p = 0.975) from the standard t table.
T_TABLE_975 = {
    1: 12.706204736432095,
    2: 4.302652729911275,
    4: 2.7764451051977987,
    10: 2.2281388519862735,
    30: 2.0422724563012373,
}


# ------------------------------------------------------------- t quantile

def test_t_ppf_matches_table_values():
    for df, expected in T_TABLE_975.items():
        assert student_t_ppf(0.975, df) == pytest.approx(expected, abs=1e-8)


def test_t_ppf_is_symmetric_and_centred():
    assert student_t_ppf(0.5, 7) == 0.0
    assert student_t_ppf(0.025, 4) == pytest.approx(
        -student_t_ppf(0.975, 4), abs=1e-10)


def test_t_cdf_inverts_ppf():
    for df in (1, 2, 5, 30, 2.5):
        for p in (0.6, 0.9, 0.975, 0.999):
            assert student_t_cdf(student_t_ppf(p, df), df) == pytest.approx(
                p, abs=1e-9)


def test_t_ppf_approaches_normal_at_large_df():
    # z_{0.975} = 1.959964...; df=10^8 routes through the erf branch.
    assert student_t_ppf(0.975, 1e8) == pytest.approx(1.959964, abs=1e-4)


def test_t_ppf_rejects_bad_arguments():
    with pytest.raises(ValueError, match="p must be"):
        student_t_ppf(0.0, 5)
    with pytest.raises(ValueError, match="df must be"):
        student_t_ppf(0.9, 0)
    with pytest.raises(ValueError, match="df must be"):
        student_t_cdf(1.0, -1)


def test_t_ppf_cross_checks_scipy_when_available():
    stats = pytest.importorskip("scipy.stats")
    for df in (1, 3, 10, 120, 2.5):
        for p in (0.6, 0.95, 0.975, 0.9995):
            assert student_t_ppf(p, df) == pytest.approx(
                float(stats.t.ppf(p, df)), abs=1e-7)


# ------------------------------------------------------------ t interval

def test_t_interval_matches_closed_form():
    # mean=3, std=sqrt(2.5), half = t_{.975,4} * std / sqrt(5)
    xs = [1.0, 2.0, 3.0, 4.0, 5.0]
    std = math.sqrt(2.5)
    half = T_TABLE_975[4] * std / math.sqrt(5)
    lo, hi = t_interval(xs)
    assert lo == pytest.approx(3.0 - half, abs=1e-9)
    assert hi == pytest.approx(3.0 + half, abs=1e-9)
    assert (lo, hi) == pytest.approx(
        (1.0367568385222716, 4.963243161477728), abs=1e-9)


def test_t_interval_degenerate_contract():
    assert t_interval([3.0]) is None                # n=1: no honest interval
    assert t_interval([3.0, 3.0, 3.0, 3.0]) == (3.0, 3.0)  # zero variance
    with pytest.raises(ValueError, match="at least one sample"):
        t_interval([])
    with pytest.raises(ValueError, match="confidence"):
        t_interval([1.0, 2.0], confidence=1.0)


def test_t_interval_narrows_with_lower_confidence():
    xs = [1.0, 2.0, 3.0, 4.0, 5.0]
    lo95, hi95 = t_interval(xs, 0.95)
    lo80, hi80 = t_interval(xs, 0.80)
    assert lo95 < lo80 < hi80 < hi95


# ------------------------------------------------------------- bootstrap

def test_bootstrap_interval_is_deterministic_given_seed():
    xs = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert bootstrap_interval(xs, seed=1) == bootstrap_interval(xs, seed=1)
    assert bootstrap_interval(xs, seed=1) == pytest.approx((1.8, 4.2))
    # the generator seed really drives the resampling (visible at low
    # resample counts; at 2000 the percentile estimates converge)
    assert (bootstrap_interval(xs, resamples=50, seed=1)
            != bootstrap_interval(xs, resamples=50, seed=2))


def test_bootstrap_interval_brackets_the_mean():
    xs = [10.0, 12.0, 9.0, 11.0, 13.0, 10.5]
    lo, hi = bootstrap_interval(xs, resamples=4000, seed=0)
    mean = sum(xs) / len(xs)
    assert lo < mean < hi


def test_bootstrap_interval_degenerate_contract():
    assert bootstrap_interval([3.0]) is None
    assert bootstrap_interval([3.0, 3.0, 3.0]) == (3.0, 3.0)
    with pytest.raises(ValueError, match="resamples"):
        bootstrap_interval([1.0, 2.0], resamples=0)
    with pytest.raises(ValueError, match="at least one sample"):
        bootstrap_interval([])


# --------------------------------------------------------- SampleSummary

def test_summarize_samples_t_method():
    s = summarize_samples([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.n == 5
    assert s.mean == pytest.approx(3.0)
    assert s.std == pytest.approx(1.5811388300841898)
    assert (s.ci_lo, s.ci_hi) == pytest.approx(t_interval([1, 2, 3, 4, 5]))
    assert s.method == "t"
    assert s.half_width == pytest.approx(0.5 * (s.ci_hi - s.ci_lo))


def test_summarize_samples_n1_has_no_interval():
    s = summarize_samples([7.25])
    assert (s.n, s.mean, s.std) == (1, 7.25, 0.0)
    assert s.ci_lo is None and s.ci_hi is None
    assert s.half_width is None


def test_summarize_samples_bootstrap_method_uses_seed():
    a = summarize_samples([1.0, 2.0, 3.0], method="bootstrap", seed=9)
    b = summarize_samples([1.0, 2.0, 3.0], method="bootstrap", seed=9)
    assert a == b
    assert a.method == "bootstrap"
    assert (a.ci_lo, a.ci_hi) == bootstrap_interval([1.0, 2.0, 3.0], seed=9)


def test_summarize_samples_rejects_unknown_method():
    with pytest.raises(ValueError, match="unknown CI method"):
        summarize_samples([1.0, 2.0], method="magic")
    assert CI_METHODS == ("t", "bootstrap")


def test_sample_summary_json_roundtrip():
    for samples in ([1.0, 2.0, 3.0, 4.0, 5.0], [7.25]):
        s = summarize_samples(samples)
        # through real JSON, as the campaign envelope stores it: n=1's
        # missing interval must survive as null, not crash or become 0
        back = SampleSummary.from_dict(json.loads(json.dumps(s.to_dict())))
        assert back == s
