"""The analyzer against the real tree: ``src/repro`` must be clean and
the three views of the layer architecture — import graph, layers.toml,
and the prose contracts in package ``__init__`` docstrings — must agree,
so none of them can drift without a test failing.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lint.engine import LintEngine
from repro.lint.layers import (
    _parse_toml_fallback,
    contract_drift,
    default_layers_path,
    load_layer_map,
    parse_contract,
)
from repro.lint.rules import all_rules

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"


@pytest.fixture(scope="module")
def layer_map():
    return load_layer_map()


@pytest.fixture(scope="module")
def repo_report(layer_map):
    engine = LintEngine(
        root=REPO_ROOT,
        rules={code: r.check for code, r in all_rules().items()},
        layers=layer_map,
    )
    return engine.run([SRC])


class TestRepoIsClean:
    def test_src_has_no_violations(self, repo_report):
        details = "\n".join(
            f"{v.path}:{v.line}:{v.col} {v.code} {v.message}"
            for v in repo_report.violations
        )
        assert repo_report.clean, f"repro.lint found violations:\n{details}"

    def test_scan_actually_covered_the_tree(self, repo_report):
        # Guard against a silently-empty run masquerading as clean.
        assert repo_report.files >= 100

    def test_every_suppression_is_justified(self):
        # RPR001 in the repo would show up as a violation above; this
        # pins the *count* of justified suppressions so a new one is a
        # conscious, reviewed decision.
        from repro.lint.engine import parse_suppressions

        total = 0
        for path in sorted(SRC.rglob("*.py")):
            for sup in parse_suppressions(path.read_text()).values():
                assert sup.justification, f"bare suppression in {path}"
                total += 1
        assert total == 3

    def test_cli_default_invocation_exits_zero(self):
        env = dict(os.environ, PYTHONPATH=str(SRC))
        proc = subprocess.run(
            [sys.executable, "-m", "repro.lint", "--format=github"],
            cwd=REPO_ROOT, env=env, capture_output=True, text=True,
            timeout=300,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "::error" not in proc.stdout


class TestContractsMatchLayerMap:
    """RPR202 in test form: the prose contracts cannot drift from the map."""

    def _contract_packages(self, layer_map):
        import ast

        out = []
        for init in sorted(SRC.glob("repro/*/__init__.py")):
            package = init.parent.name
            doc = ast.get_docstring(ast.parse(init.read_text()), clean=False)
            contract = parse_contract(doc, set(layer_map.packages))
            if not contract.empty:
                out.append((package, contract))
        return out

    def test_documented_contracts_exist(self, layer_map):
        packages = {p for p, _ in self._contract_packages(layer_map)}
        # The load-bearing contracts named by the issue must be present
        # as parseable prose, not just as TOML.
        assert {"core", "obs", "cluster", "compute", "bench", "storage"} <= packages

    def test_no_drift_between_prose_and_toml(self, layer_map):
        for package, contract in self._contract_packages(layer_map):
            drift = contract_drift(layer_map, package, contract)
            assert drift == [], f"{package}: " + "; ".join(drift)


class TestIssueInvariantsPinned:
    """The specific architecture facts the analyzer exists to defend."""

    def test_core_sees_only_the_kernel_and_the_hub(self, layer_map):
        core = layer_map.packages["core"]
        assert core.reachable == {"sim", "obs"}
        for forbidden in ("cluster", "services", "storage", "compute"):
            assert forbidden not in core.reachable

    def test_core_reaches_obs_only_via_runtime_hub(self, layer_map):
        assert layer_map.packages["core"].via["obs"] == ("repro.obs.runtime",)

    def test_sim_imports_nothing(self, layer_map):
        assert layer_map.packages["sim"].reachable == frozenset()

    def test_nothing_below_cluster_imports_bench(self, layer_map):
        assert layer_map.consumers["bench"] == frozenset()
        assert layer_map.actual_consumers("bench") == frozenset()

    def test_nothing_imports_the_linter(self, layer_map):
        assert layer_map.consumers["lint"] == frozenset()
        assert layer_map.actual_consumers("lint") == frozenset()

    def test_cluster_composes_subsystems_lazily(self, layer_map):
        cluster = layer_map.packages["cluster"]
        assert cluster.may_import == {"core", "sim"}
        assert {"compute", "obs", "services", "storage"} <= cluster.lazy

    def test_determinism_scope_covers_simulation_tiers(self, layer_map):
        assert set(layer_map.config["determinism"]["packages"]) == {
            "compute", "core", "obs", "services", "sim", "storage",
        }

    def test_every_package_directory_is_mapped(self, layer_map):
        on_disk = {
            p.parent.name for p in SRC.glob("repro/*/__init__.py")
        }
        assert on_disk <= set(layer_map.packages)


class TestTomlParserEquivalence:
    """The 3.10 CI leg has no tomllib; the fallback must read the real
    layer map identically."""

    def test_fallback_matches_tomllib_on_layers_toml(self):
        tomllib = pytest.importorskip("tomllib")
        text = default_layers_path().read_text()
        assert _parse_toml_fallback(text) == tomllib.loads(text)

    def test_fallback_alone_yields_a_valid_map(self, monkeypatch):
        import repro.lint.layers as layers_mod

        monkeypatch.setattr(layers_mod, "parse_toml", _parse_toml_fallback)
        layer_map = layers_mod.load_layer_map()
        assert "core" in layer_map.packages
        assert layer_map.packages["core"].via["obs"] == ("repro.obs.runtime",)


class TestDocsCoverRules:
    def test_static_analysis_doc_lists_every_rule(self):
        doc = (REPO_ROOT / "docs" / "static-analysis.md").read_text()
        for code in sorted(all_rules()):
            assert code in doc, f"{code} missing from docs/static-analysis.md"
        # engine-owned diagnostics are part of the contract too
        assert "RPR000" in doc
        assert "RPR001" in doc
