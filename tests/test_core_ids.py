"""Unit + property tests for the ID space and assignment strategies."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ids import DEFAULT_EXTENT, IdSpace, assign_ids


def test_default_extent():
    assert IdSpace().extent == DEFAULT_EXTENT == 2**32


def test_extent_validation():
    with pytest.raises(ValueError):
        IdSpace(extent=2)


def test_contains():
    s = IdSpace(extent=100)
    assert s.contains(0) and s.contains(99)
    assert not s.contains(100) and not s.contains(-1)


def test_distance_is_line_metric():
    s = IdSpace(extent=1000)
    assert s.distance(10, 990) == 980  # no wraparound: a line, not a ring
    assert s.distance(5, 5) == 0
    assert s.distance(3, 7) == s.distance(7, 3) == 4


def test_midpoint():
    s = IdSpace(extent=100)
    assert s.midpoint(10, 20) == 15
    assert s.midpoint(10, 11) == 10  # floor


def test_validate_raises_outside():
    s = IdSpace(extent=10)
    assert s.validate(5) == 5
    with pytest.raises(ValueError):
        s.validate(10)


class TestAssignment:
    def test_random_distinct(self):
        s = IdSpace()
        ids = assign_ids(s, 500, np.random.default_rng(0))
        assert len(set(ids)) == 500
        assert all(s.contains(i) for i in ids)

    def test_random_deterministic(self):
        s = IdSpace()
        a = assign_ids(s, 50, np.random.default_rng(5))
        b = assign_ids(s, 50, np.random.default_rng(5))
        assert a == b

    def test_hash_requires_hosts(self):
        with pytest.raises(ValueError, match="ip, port"):
            assign_ids(IdSpace(), 3, np.random.default_rng(0), strategy="hash")

    def test_hash_stable_and_distinct(self):
        s = IdSpace()
        hosts = [(f"10.0.0.{i}", 4000 + i) for i in range(20)]
        a = assign_ids(s, 20, np.random.default_rng(0), strategy="hash", hosts=hosts)
        b = assign_ids(s, 20, np.random.default_rng(99), strategy="hash", hosts=hosts)
        assert a == b  # independent of the rng: stable across reconnects
        assert len(set(a)) == 20

    def test_hash_collision_probing(self):
        s = IdSpace(extent=8)
        hosts = [("h", 1), ("h", 1), ("h", 1)]  # identical -> forced collisions
        ids = assign_ids(s, 3, np.random.default_rng(0), strategy="hash", hosts=hosts)
        assert len(set(ids)) == 3

    def test_balanced_stratified(self):
        s = IdSpace(extent=1000)
        ids = assign_ids(s, 10, np.random.default_rng(0), strategy="balanced")
        assert len(set(ids)) == 10
        # One ID per stratum of width 100.
        strata = sorted(i // 100 for i in ids)
        assert strata == list(range(10))

    def test_balanced_more_even_than_random(self):
        s = IdSpace()
        rng = np.random.default_rng(3)
        bal = sorted(assign_ids(s, 64, rng, strategy="balanced"))
        rnd = sorted(assign_ids(s, 64, np.random.default_rng(3)))
        gaps_b = np.diff(bal)
        gaps_r = np.diff(rnd)
        assert np.std(gaps_b) < np.std(gaps_r)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            assign_ids(IdSpace(), 0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            assign_ids(IdSpace(extent=8), 5, np.random.default_rng(0))

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            assign_ids(IdSpace(), 4, np.random.default_rng(0), strategy="bogus")  # type: ignore[arg-type]


@given(seed=st.integers(0, 2**31), count=st.integers(2, 200))
@settings(max_examples=25, deadline=None)
def test_property_assignment_distinct_and_inside(seed, count):
    s = IdSpace()
    ids = assign_ids(s, count, np.random.default_rng(seed))
    assert len(set(ids)) == count
    assert all(0 <= i < s.extent for i in ids)


@given(a=st.integers(0, 2**32 - 1), b=st.integers(0, 2**32 - 1),
       c=st.integers(0, 2**32 - 1))
@settings(max_examples=100, deadline=None)
def test_property_distance_triangle_inequality(a, b, c):
    s = IdSpace()
    assert s.distance(a, c) <= s.distance(a, b) + s.distance(b, c)
    assert s.distance(a, b) == s.distance(b, a)
    assert (s.distance(a, b) == 0) == (a == b)
