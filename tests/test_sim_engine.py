"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.engine import PeriodicTimer, SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_custom_start_time():
    assert Simulator(start_time=100.0).now == 100.0


def test_schedule_and_run():
    sim = Simulator()
    fired = []
    sim.schedule(5.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [5.0]
    assert sim.now == 5.0


def test_run_until_stops_before_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(10))
    sim.run(until=5.0)
    assert fired == [1]
    assert sim.now == 5.0  # clock advanced to the horizon
    sim.run()
    assert fired == [1, 10]


def test_run_for_advances_relative():
    sim = Simulator()
    sim.run_for(3.0)
    sim.run_for(2.0)
    assert sim.now == 5.0


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError, match="negative delay"):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError, match="before now"):
        sim.schedule_at(0.5, lambda: None)


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    times = []
    sim.schedule(2.0, lambda: sim.call_soon(lambda: times.append(sim.now)))
    sim.run()
    assert times == [2.0]


def test_events_cascade():
    sim = Simulator()
    fired = []

    def first():
        fired.append("first")
        sim.schedule(1.0, lambda: fired.append("second"))

    sim.schedule(1.0, first)
    sim.run()
    assert fired == ["first", "second"]
    assert sim.now == 2.0


def test_step_returns_false_when_empty():
    assert Simulator().step() is False


def test_drain_returns_event_count():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    assert sim.drain() == 5


def test_drain_enforces_budget():
    sim = Simulator()

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="drain exceeded"):
        sim.drain(max_events=100)


def test_max_events_guard():
    sim = Simulator()
    sim.max_events = 10

    def rearm():
        sim.schedule(1.0, rearm)

    sim.schedule(1.0, rearm)
    with pytest.raises(SimulationError, match="max_events"):
        sim.run()


def test_events_processed_counter():
    sim = Simulator()
    for i in range(3):
        sim.schedule(float(i + 1), lambda: None)
    sim.run()
    assert sim.events_processed == 3


def test_pending_counts_live():
    sim = Simulator()
    e = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    assert sim.pending == 2
    e.cancel()
    sim.run()
    assert sim.pending == 0


class TestPeriodicTimer:
    def test_fires_repeatedly(self):
        sim = Simulator()
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now))
        sim.run(until=5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_timer(self):
        sim = Simulator()
        fired = []
        timer = sim.every(1.0, lambda: fired.append(sim.now))
        sim.schedule(2.5, timer.stop)
        sim.run(until=10.0)
        assert fired == [1.0, 2.0]

    def test_stop_from_callback(self):
        sim = Simulator()
        fired = []
        timer = PeriodicTimer(sim, 1.0, lambda: (fired.append(sim.now), timer.stop()))
        timer.start()
        sim.run(until=10.0)
        assert fired == [1.0]

    def test_jitter_applied(self):
        sim = Simulator()
        fired = []
        sim.every(1.0, lambda: fired.append(sim.now), jitter=lambda: 0.5)
        sim.run(until=4.0)
        assert fired == [1.5, 3.0]

    def test_zero_interval_rejected(self):
        with pytest.raises(SimulationError, match="interval"):
            PeriodicTimer(Simulator(), 0.0, lambda: None)

    def test_start_is_idempotent(self):
        sim = Simulator()
        fired = []
        timer = sim.every(1.0, lambda: fired.append(1))
        timer.start()
        sim.run(until=1.5)
        assert fired == [1]


def test_not_reentrant():
    sim = Simulator()
    err = []

    def nested():
        try:
            sim.run()
        except SimulationError as e:
            err.append(str(e))

    sim.schedule(1.0, nested)
    sim.run()
    assert err and "reentrant" in err[0]
