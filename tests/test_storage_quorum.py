"""Quorum math, PUT/GET end-to-end, and stale-read repair."""

from itertools import combinations

import pytest

from repro import TreePConfig, TreePNetwork
from repro.storage import QuorumConfig, ReplicatedStore
from repro.storage.store import VersionedValue


@pytest.fixture()
def store_net():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=21)
    net.build(96)
    return net, ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))


# ------------------------------------------------------------- quorum math
def test_quorum_validation():
    with pytest.raises(ValueError):
        QuorumConfig(n=0)
    with pytest.raises(ValueError):
        QuorumConfig(n=3, w=4)
    with pytest.raises(ValueError):
        QuorumConfig(n=3, r=0)
    with pytest.raises(ValueError):
        QuorumConfig(timeout=0)
    with pytest.raises(ValueError):
        QuorumConfig(read_fallback=-1)


def test_overlap_guarantee_brute_force():
    """W+R>N ⇒ every write quorum intersects every read quorum (and the
    guaranteed overlap is exactly w + r - n); W+R<=N admits disjoint pairs."""
    for n in range(1, 6):
        replicas = range(n)
        for w in range(1, n + 1):
            for r in range(1, n + 1):
                cfg = QuorumConfig(n=n, w=w, r=r)
                min_overlap = min(
                    len(set(ws) & set(rs))
                    for ws in combinations(replicas, w)
                    for rs in combinations(replicas, r)
                )
                assert min_overlap == max(0, cfg.overlap)
                assert cfg.strict == (min_overlap >= 1)


# ----------------------------------------------------------------- PUT/GET
def test_put_get_roundtrip(store_net):
    net, store = store_net
    r = store.put("alpha", {"v": 1})
    assert r.ok and r.quorum_met
    assert r.version == 1
    assert len(r.replicas) >= store.quorum.w
    g = store.get("alpha")
    assert g.found and g.value == {"v": 1} and g.quorum_met


def test_get_missing_key(store_net):
    net, store = store_net
    r = store.get("never-stored")
    assert not r.found and r.value is None


def test_overwrite_bumps_version(store_net):
    net, store = store_net
    assert store.put("counter", 1).version == 1
    assert store.put("counter", 2).version == 2
    g = store.get("counter")
    assert g.value == 2 and g.version == 2


def test_get_via_any_origin(store_net):
    net, store = store_net
    store.put("from-anywhere", 7)
    for via in (net.ids[0], net.ids[-1], net.ids[len(net.ids) // 2]):
        assert store.get("from-anywhere", via=via).found


def test_replicas_land_on_n_nodes(store_net):
    net, store = store_net
    r = store.put("replicated", "v")
    assert r.ok
    assert store.live_replica_count(r.key_id) == store.quorum.n


def test_tracked_keys_record_acknowledged_writes(store_net):
    net, store = store_net
    r = store.put("tracked", 1)
    assert r.key_id in store.tracked_keys
    rfs = store.replication_factors()
    assert rfs[r.key_id] == store.quorum.n


# -------------------------------------------------------------- read repair
def test_stale_replica_repaired_on_read(store_net):
    net, store = store_net
    r = store.put("repair-me", "fresh")
    key_id = r.key_id
    holders = store.replica_map()[key_id]
    assert len(holders) == 3
    # Regress one replica to a stale version behind the others' backs.
    victim = holders[-1]
    store.agents[victim].store._data[key_id] = VersionedValue("stale", 0, -1)
    g = store.get("repair-me")
    assert g.found and g.value == "fresh"
    net.sim.drain()  # let the repair replicate land
    repaired = store.agents[victim].store.get(key_id)
    assert repaired.value == "fresh" and repaired.version == g.version


def test_read_sees_latest_acknowledged_write_with_overlap(store_net):
    """The W+R>N overlap in practice: every read after an acked write
    returns that write, from any origin."""
    net, store = store_net
    for i in range(10):
        assert store.put("hot", i).ok
        g = store.get("hot", via=net.ids[i % len(net.ids)])
        assert g.found and g.value == i


# ------------------------------------------------------- degraded operation
def test_write_times_out_sloppily_when_replicas_dead():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(32)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=3, r=1))
    r0 = store.put("seed-key", 0)  # discover the placement
    assert r0.ok
    holders = store.replica_map()[r0.key_id]
    space = net.config.space
    coordinator = min(holders, key=lambda i: space.distance(i, r0.key_id))
    # Kill every holder except the coordinator: W=3 can no longer be met
    # (the coordinator's table still lists the dead peers as targets).
    for h in holders:
        if h != coordinator:
            net.network.set_down(h)
    r = store.put("seed-key", 1, via=coordinator)
    assert not r.ok  # quorum failed...
    assert len(r.replicas) >= 1  # ...but the achieved copies are reported
    g = store.get("seed-key", via=coordinator)
    assert g.found and g.value == 1  # sloppy: the write wasn't rolled back


def test_read_fallback_zero_disables_exploration():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(32)
    store = ReplicatedStore(net, QuorumConfig(n=2, w=1, r=1, read_fallback=0))
    assert store.put("k", "v").ok
    assert store.get("k").found


def test_client_ops_return_while_periodic_antientropy_runs():
    """Regression: put/get must not drain forever into the self-re-arming
    anti-entropy timer schedule."""
    from repro.storage import AntiEntropy

    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=11)
    net.build(48)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))
    ae = AntiEntropy(store, interval=5.0)
    ae.start()
    net.sim.max_events = 500_000  # fail loudly instead of hanging
    try:
        assert store.put("timered", 1).ok
        g = store.get("timered")
        assert g.found and g.value == 1
    finally:
        ae.stop()
        net.sim.max_events = None


def test_acknowledged_write_survives_version_restart():
    """Regression: a fresh coordinator (all prior replicas dead) restarts
    the per-key version counter; its acknowledged write must not lose LWW
    to a stale higher-versioned copy carried by a rejoining replica."""
    from repro.core.repair import FULL_POLICY, apply_failure_step
    from repro.storage import AntiEntropy

    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=21)
    net.build(96)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))
    for v in range(5):  # drive the version counter to 5
        assert store.put("restart", f"old-{v}").ok
    holders = store.replica_map()[store.key_id("restart")]
    net.fail_nodes(holders)  # the whole replica set dies at version 5
    apply_failure_step(net, holders, FULL_POLICY)
    r = store.put("restart", "NEW")  # fresh coordinator, counter restarted
    assert r.ok
    # One stale holder rejoins carrying the old value at version 5.
    back = holders[0]
    net.network.set_up(back)
    assert store.agents[back].store.get(store.key_id("restart")).version == 5
    AntiEntropy(store, interval=10.0).converge()
    g = store.get("restart")
    assert g.found and g.value == "NEW"  # no resurrection
    # The stale copy was overwritten everywhere, timestamps deciding LWW.
    assert store.agents[back].store.get(store.key_id("restart")).value == "NEW"


def test_later_write_dominates_regressed_replica():
    """The coordination timestamp leads the LWW stamp, so a new write wins
    even when a replica (here: the coordinator itself) carries a mangled
    higher-looking version counter."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(32)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))
    r0 = store.put("bump", "a")
    key_id = r0.key_id
    holders = store.replica_map()[key_id]
    space = net.config.space
    coordinator = min(holders, key=lambda i: space.distance(i, key_id))
    # Regress the coordinator's own copy behind the replicas' backs.
    store.agents[coordinator].store._data[key_id] = VersionedValue("a", 0, -1)
    r = store.put("bump", "b", via=coordinator)
    assert r.ok
    net.sim.drain()
    for h in store.replica_map()[key_id]:
        assert store.agents[h].store.get(key_id).value == "b"


def test_close_detaches_node_hook():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(32)
    store = ReplicatedStore(net, QuorumConfig(n=2, w=1, r=1))
    before = len(net.node_hooks)
    store.close()
    assert len(net.node_hooks) == before - 1
    store.close()  # idempotent
    new_id = max(net.ids) + 1
    net.join_new_node(new_id)
    assert new_id not in store.agents  # no longer covering new nodes


def test_write_finishes_immediately_when_targets_below_w():
    """A coordinator that cannot name w targets must not idle out the full
    quorum timeout waiting for acks that can never arrive."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(2)  # placement can name at most 2 targets
    store = ReplicatedStore(net, QuorumConfig(n=4, w=4, r=1, timeout=5.0))
    t0 = net.sim.now
    r = store.put("thin", 1)
    assert not r.ok  # w=4 unattainable with 2 nodes...
    assert len(r.replicas) == 2  # ...but both available copies were made
    assert net.sim.now - t0 < 5.0  # and no 5s timeout was burned


def test_pump_honours_max_events():
    """The client pump trips the simulator's max_events guard instead of
    spinning forever on a same-time event cycle."""
    from repro.sim.engine import SimulationError

    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(8)

    def perpetual():
        net.sim.call_soon(perpetual)  # same-time cycle: clock never advances

    net.sim.call_soon(perpetual)
    net.sim.max_events = 10_000
    try:
        with pytest.raises(SimulationError):
            net.pump_until_reply({}, {}, rid=1, timeout=30.0)
    finally:
        net.sim.max_events = None


def test_live_origin_rejects_down_via():
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(16)
    store = ReplicatedStore(net, QuorumConfig(n=2, w=1, r=1))
    net.network.set_down(net.ids[3])
    with pytest.raises(ValueError):
        store.put("x", 1, via=net.ids[3])
    with pytest.raises(ValueError):
        store.get("x", via=net.ids[3])


def test_r1_read_waits_for_real_holders_not_self_miss():
    """A coordinator that doesn't hold the key must not satisfy r=1 with
    its own instantaneous miss while the holders' replies are in flight."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=21)
    net.build(96)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=1, read_fallback=0))
    r = store.put("selfmiss", "v")
    assert r.ok
    key_id = r.key_id
    # Remove the responsible coordinator's own copy; the other replicas
    # still hold it, and they are in its placement set.
    holders = store.replica_map()[key_id]
    space = net.config.space
    coordinator = min(holders, key=lambda i: space.distance(i, key_id))
    store.agents[coordinator].store.drop(key_id)
    g = store.get("selfmiss", via=coordinator)
    assert g.found and g.value == "v"


def test_equal_stamp_replicate_counts_as_ack():
    """A replica that already holds the exact incoming stamp (a repair of
    the same write raced the fanout) must ack success, not rejection —
    otherwise the write spuriously times out with every copy in place."""
    from repro.core.messages import StoreReplicate
    from repro.storage.quorum import _PendingWrite

    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=9)
    net.build(32)
    store = ReplicatedStore(net, QuorumConfig(n=2, w=2, r=1))
    c, x = net.ids[0], net.ids[1]
    key_id, stamp = 12345, (7.0, 3, 9)
    # The replica already holds the exact stamp the fanout will carry.
    store.agents[x].store.apply(key_id, "v", 3, writer=9, timestamp=7.0)
    rid = 999_001
    store.agents[c]._writes[rid] = _PendingWrite(
        request_id=rid, origin=c, key_id=key_id, version=3,
        targets=(c, x), acks={c}, hops=0)
    net.nodes[c].send(x, StoreReplicate(rid, c, key_id, "v", 3, 9, 7.0))
    net.sim.drain()
    result = store.agents[c].replies.pop(rid)
    assert result.ok  # the equal-stamp ack completed the W=2 quorum


# ----------------------------------------------------------- async client
def test_put_async_and_get_async_deliver_via_callback(store_net):
    """The in-sim async API: callbacks fire with the coordinator results,
    nothing accretes in the reply sink (the compute checkpoint path)."""
    net, store = store_net
    seen = []
    store.put_async("async/a", {"p": 1.0}, on_done=seen.append)
    net.sim.run_for(5.0)
    assert len(seen) == 1 and seen[0].ok

    got = []
    store.get_async("async/a", on_done=got.append)
    net.sim.run_for(5.0)
    assert len(got) == 1 and got[0].found
    assert got[0].value == {"p": 1.0}


def test_fire_and_forget_put_does_not_accrete_replies(store_net):
    net, store = store_net
    origin = net.live_origin()
    agent = store.agents[origin.ident]
    before = len(agent.replies)
    for i in range(10):
        store.put_async(f"faf/{i}", i, via=origin.ident)
    net.sim.run_for(5.0)
    assert len(agent.replies) == before  # results were pre-abandoned
    assert store.get(f"faf/3").value == 3  # but the writes landed
