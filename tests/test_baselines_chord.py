"""Unit tests for the Chord baseline."""

import numpy as np
import pytest

from repro.baselines.chord import ChordNetwork, ChordNode


@pytest.fixture(scope="module")
def chord():
    net = ChordNetwork(seed=5)
    net.build(128)
    return net


def test_build_distinct_sorted_ids(chord):
    assert chord.ids == sorted(chord.ids)
    assert len(set(chord.ids)) == 128


def test_build_twice_rejected():
    net = ChordNetwork(seed=1)
    net.build(8)
    with pytest.raises(RuntimeError):
        net.build(8)


def test_m_bits_validation():
    with pytest.raises(ValueError):
        ChordNetwork(m_bits=2)


def test_ring_structure(chord):
    """Successor/predecessor pointers form the sorted ring."""
    ids = chord.ids
    n = len(ids)
    for idx, i in enumerate(ids):
        node = chord.nodes[i]
        assert node.successors[0] == ids[(idx + 1) % n]
        assert node.predecessor == ids[(idx - 1) % n]


def test_fingers_point_at_ring_successors(chord):
    node = chord.nodes[chord.ids[0]]
    for f in node.fingers:
        assert f in chord.nodes


def test_lookup_resolves(chord):
    rng = np.random.default_rng(0)
    for _ in range(30):
        o, t = (int(x) for x in rng.choice(chord.ids, 2, replace=False))
        res = chord.run_lookup_batch([(o, t)])[0]
        assert res.found, (o, t)


def test_lookup_logarithmic_hops(chord):
    rng = np.random.default_rng(1)
    pairs = [tuple(int(x) for x in rng.choice(chord.ids, 2, replace=False))
             for _ in range(60)]
    res = chord.run_lookup_batch(pairs)
    hops = [r.hops for r in res if r.found]
    assert np.mean(hops) <= 2 * np.log2(len(chord.ids))


def test_owns_semantics():
    node = ChordNode(100, m_bits=8)
    node.predecessor = 50
    assert node.owns(75) and node.owns(100)
    assert not node.owns(50) and not node.owns(101)
    # Wraparound segment.
    node2 = ChordNode(10, m_bits=8)
    node2.predecessor = 200
    assert node2.owns(250) and node2.owns(5)
    assert not node2.owns(100)


def test_failures_with_repair():
    net = ChordNetwork(seed=8)
    net.build(128)
    rng = np.random.default_rng(2)
    victims = [int(v) for v in rng.choice(net.ids, 38, replace=False)]
    net.fail_nodes(victims)
    net.repair_step()
    alive = net.alive_ids()
    pairs = [tuple(int(x) for x in rng.choice(alive, 2, replace=False))
             for _ in range(40)]
    res = net.run_lookup_batch(pairs)
    assert sum(r.found for r in res) == 40  # converged stabilisation: all resolve


def test_failures_purge_only_degrades():
    net = ChordNetwork(seed=8)
    net.build(128)
    rng = np.random.default_rng(2)
    victims = [int(v) for v in rng.choice(net.ids, 64, replace=False)]
    net.fail_nodes(victims)
    net.purge_only()
    alive = net.alive_ids()
    pairs = [tuple(int(x) for x in rng.choice(alive, 2, replace=False))
             for _ in range(40)]
    res = net.run_lookup_batch(pairs)
    found = sum(r.found for r in res)
    assert found < 40  # without stabilisation the ring degrades


def test_lookup_timeout_counts_failed():
    net = ChordNetwork(seed=8)
    net.build(32)
    origin = net.ids[0]
    for i in net.ids[1:]:
        net.network.set_down(i)
    # Stale pointers, dead ring: the lookup black-holes and times out.
    target = net.ids[10]
    res = net.run_lookup_batch([(origin, target)])[0]
    assert not res.found
