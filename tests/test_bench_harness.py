"""Tier-1 coverage for the repro.bench harness.

Covers the acceptance surface: the registry lists all 19 legacy
scenarios plus the four ``scale_*`` sweeps, a smoke scenario round-trips
through the BenchResult JSON envelope, and ``compare`` flags an injected
regression while passing identical runs.  CLI subcommands are exercised
through ``main`` so the exit-code contract CI relies on is pinned.
"""

import json

import pytest

import repro.bench.scenarios  # noqa: F401  (populates the registry)
from repro.bench import (
    SCHEMA,
    BenchResult,
    Metric,
    Scenario,
    ScenarioOutput,
    compare_results,
    load_results,
    registry,
    run_scenario,
)
from repro.bench.cli import main
from repro.bench.result import validate_result_dict

#: Every legacy bench_*.py as a registered scenario, plus the PR-5
#: ``scale`` group (10k-node sweeps — see docs/performance.md) and the
#: ``adversarial`` chaos group (partitions, rack failures, stragglers,
#: loss bursts — see docs/benchmarks.md).
EXPECTED_SCENARIOS = {
    "figure_a", "figure_b", "figure_c", "figure_d", "figure_e",
    "figure_f", "figure_g", "figure_h", "figure_i",
    "ablation_ids", "ablation_demotion", "ablation_fallback",
    "ablation_maintenance",
    "core", "table_sizes", "ngsa_cost", "baselines", "storage", "compute",
    "scale_lookup", "scale_churn", "scale_quorum_rw", "scale_jobs",
    "adv_partition_quorum", "adv_rack_failure_jobs", "adv_straggler_tail",
    "adv_loss_burst_lookup", "adv_heal_convergence",
}


# ------------------------------------------------------------------ registry

def test_registry_lists_all_legacy_scenarios():
    assert set(registry.names()) == EXPECTED_SCENARIOS
    assert len(registry) == 28


def test_every_scenario_declares_a_metrics_schema():
    for scenario in registry.all():
        assert scenario.metrics, f"{scenario.name} declares no metrics"
        assert scenario.description
        directional = [m for m in scenario.metrics if m.direction != "neutral"]
        assert directional, (
            f"{scenario.name} has no directional metric for compare to gate")


def test_every_scenario_has_reduced_smoke_params():
    for scenario in registry.all():
        assert scenario.smoke_params, f"{scenario.name} has no smoke variant"
        full = scenario.effective_params(smoke=False)
        smoke = scenario.effective_params(smoke=True)
        assert set(smoke) == set(full)
        assert smoke != full


def test_param_overrides_are_validated():
    scenario = registry.get("core")
    assert scenario.effective_params(overrides={"n": 64})["n"] == 64
    with pytest.raises(KeyError, match="no parameter"):
        scenario.effective_params(overrides={"bogus": 1})


def test_param_overrides_coerce_numeric_types():
    """`--set lookups=1e2` parses as float; the int param gets an int back,
    and a lossy float is rejected up front instead of crashing mid-run."""
    scenario = registry.get("core")
    coerced = scenario.effective_params(overrides={"lookups": 1e2})
    assert coerced["lookups"] == 100 and isinstance(coerced["lookups"], int)
    with pytest.raises(ValueError, match="expects an int"):
        scenario.effective_params(overrides={"lookups": 99.5})


def test_metrics_schema_is_enforced_at_execution():
    rogue = Scenario(
        name="rogue", group="core", description="declares a, emits b",
        runner=lambda params, seed, smoke: ScenarioOutput({"b": 1.0}),
        params={"n": 1}, metrics=(Metric("a", direction="lower"),))
    with pytest.raises(ValueError, match="violated its metrics schema"):
        rogue.execute()


def test_metric_rejects_unknown_direction():
    with pytest.raises(ValueError, match="direction"):
        Metric("m", direction="sideways")


# ------------------------------------------------- BenchResult round-trip

def test_smoke_scenario_roundtrips_through_benchresult_json(tmp_path):
    result = run_scenario("core", smoke=True, out_dir=str(tmp_path))
    path = tmp_path / "bench_core.smoke.json"  # smoke never clobbers full
    assert path.exists()

    raw = json.loads(path.read_text())
    validate_result_dict(raw)  # schema-valid envelope
    assert raw["schema"] == SCHEMA
    assert raw["scenario"] == "core"
    assert raw["smoke"] is True
    assert raw["params"]["n"] == 256
    assert raw["wall_time_s"] > 0

    loaded = BenchResult.read(str(path))
    assert loaded.to_dict() == result.to_dict()
    assert loaded.metrics == result.metrics
    assert all(c["passed"] for c in loaded.checks)
    # and the directory loader finds it under its scenario name
    assert set(load_results(str(tmp_path))) == {"core"}


def test_validate_rejects_malformed_envelopes():
    result = run_scenario("core", smoke=True)
    good = result.to_dict()
    for mutate in (
        lambda d: d.pop("git_sha"),
        lambda d: d.update(schema="repro.bench/999"),
        lambda d: d.update(metrics={}),
        lambda d: d.update(metrics={"x": "fast"}),
        lambda d: d.update(checks=[{"nope": 1}]),
    ):
        bad = json.loads(json.dumps(good))
        mutate(bad)
        with pytest.raises(ValueError):
            validate_result_dict(bad)


# ------------------------------------------------------------------ compare

def _result(metrics, scenario="compute", **kwargs):
    s = registry.get(scenario)
    fields = dict(
        scenario=s.name, group=s.group, git_sha="deadbeef", seed=42,
        smoke=True, params=dict(s.effective_params(smoke=True)),
        wall_time_s=1.0, metrics=metrics, checks=[], unix_time=0.0,
    )
    fields.update(kwargs)
    return BenchResult(**fields)


def test_compare_passes_identical_runs():
    base = _result({"checkpoint_wasted_work": 100.0,
                    "checkpoint_goodput": 0.9})
    comparison = compare_results({"compute": base}, {"compute": base})
    assert comparison.ok
    assert not comparison.regressions()


def test_compare_flags_injected_20pct_regression():
    # checkpoint_wasted_work is declared lower-is-better: +20% regresses.
    old = _result({"checkpoint_wasted_work": 100.0})
    new = _result({"checkpoint_wasted_work": 120.0})
    comparison = compare_results({"compute": old}, {"compute": new},
                                 threshold=0.10)
    assert not comparison.ok
    (reg,) = comparison.regressions()
    assert reg.metric == "checkpoint_wasted_work"
    assert reg.rel_change == pytest.approx(0.20)


def test_compare_direction_and_threshold_semantics():
    # higher-is-better metric dropping 20% regresses...
    old = _result({"checkpoint_goodput": 1.0})
    new = _result({"checkpoint_goodput": 0.8})
    assert not compare_results({"compute": old}, {"compute": new}).ok
    # ...the same drop within a 30% threshold passes...
    assert compare_results({"compute": old}, {"compute": new},
                           threshold=0.3).ok
    # ...moving the good way is an improvement, not a regression.
    comparison = compare_results({"compute": new}, {"compute": old})
    assert comparison.ok
    assert len(comparison.improvements()) == 1
    # neutral metrics are reported but never flagged.
    old_n = _result({"restart_wasted_work": 100.0})
    new_n = _result({"restart_wasted_work": 500.0})
    assert compare_results({"compute": old_n}, {"compute": new_n}).ok


def test_compare_reports_scenario_set_drift():
    a = _result({"checkpoint_goodput": 1.0})
    comparison = compare_results({"compute": a}, {})
    assert comparison.only_old == ["compute"]
    assert comparison.ok  # missing scenarios inform, they don't gate


def test_compare_refuses_mismatched_experiments():
    """A smoke run vs a full run is a different experiment — reported as
    mismatched, never gated (would otherwise manufacture regressions)."""
    smoke = _result({"checkpoint_goodput": 1.0})
    full = _result({"checkpoint_goodput": 0.5}, smoke=False,
                   params=dict(registry.get("compute").params))
    comparison = compare_results({"compute": smoke}, {"compute": full})
    assert comparison.mismatched == ["compute"]
    assert not comparison.deltas
    assert comparison.ok
    # differing seeds are equally incomparable
    reseeded = _result({"checkpoint_goodput": 0.5}, seed=7)
    assert compare_results({"compute": smoke},
                           {"compute": reseeded}).mismatched == ["compute"]


# ---------------------------------------------------------------------- CLI

def test_cli_list_shows_every_scenario(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in EXPECTED_SCENARIOS:
        assert name in out


def test_cli_run_writes_envelope_and_exits_zero(tmp_path, capsys):
    rc = main(["run", "core", "--smoke", "--quiet",
               "--out", str(tmp_path)])
    assert rc == 0
    assert (tmp_path / "bench_core.smoke.json").exists()
    assert "[core] ok" in capsys.readouterr().out


def test_cli_compare_exit_codes(tmp_path, capsys):
    old = _result({"checkpoint_wasted_work": 100.0})
    new = _result({"checkpoint_wasted_work": 130.0})
    old_dir, new_dir = tmp_path / "old", tmp_path / "new"
    for d, r in ((old_dir, old), (new_dir, new)):
        d.mkdir()
        r.write(str(d))
    assert main(["compare", str(old_dir), str(old_dir)]) == 0
    assert main(["compare", str(old_dir), str(new_dir)]) == 1
    assert "REGRESSION" in capsys.readouterr().out
    # a gate that compared nothing must not exit 0 (e.g. typo'd --scenario)
    rc = main(["compare", str(old_dir), str(new_dir), "--scenario", "storge"])
    assert rc == 2
    assert "zero metrics" in capsys.readouterr().out


def test_load_results_prefers_full_over_smoke_twin(tmp_path):
    smoke = _result({"checkpoint_goodput": 0.5})
    full = _result({"checkpoint_goodput": 1.0}, smoke=False,
                   params=dict(registry.get("compute").params))
    assert smoke.write(str(tmp_path)).endswith(".smoke.json")
    assert full.write(str(tmp_path)).endswith("bench_compute.json")
    loaded = load_results(str(tmp_path))
    assert loaded["compute"].smoke is False  # the full point wins


def test_cli_report_renders_catalogue(capsys):
    assert main(["report", "--scenarios-only"]) == 0
    out = capsys.readouterr().out
    assert "| scenario |" in out
    for name in EXPECTED_SCENARIOS:
        assert f"`{name}`" in out


def test_cli_run_rejects_inapplicable_overrides():
    """--set across all scenarios must fail fast, not traceback mid-run."""
    with pytest.raises(SystemExit, match="does not apply"):
        main(["run", "--set", "n=512", "--no-write", "--quiet"])


def test_docs_catalogue_matches_generated_table():
    """docs/benchmarks.md embeds the generated catalogue verbatim; this
    pins it against drift when scenarios change."""
    import os

    from repro.bench.report import scenario_table
    repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    with open(os.path.join(repo, "docs", "benchmarks.md")) as fh:
        doc = fh.read()
    assert scenario_table() in doc, (
        "docs/benchmarks.md catalogue is stale — regenerate with "
        "`python -m repro.bench report --scenarios-only` and paste it in")
