"""Durability under churn: the subsystem's acceptance scenario.

A loaded N=3/W=2/R=2 store is subjected to a seeded :class:`ChurnSchedule`
that progressively kills 30% of the population; between bursts the overlay
heals its tables and the anti-entropy task re-replicates.  The invariants:

* zero key loss while every key keeps >= 1 live replica,
* after convergence every key is fully replicated again (rf == N),
* and 100% of keys remain quorum-readable.
"""

import numpy as np
import pytest

from repro import TreePConfig, TreePNetwork
from repro.core.repair import FULL_POLICY, apply_failure_step
from repro.storage import AntiEntropy, QuorumConfig, ReplicatedStore
from repro.workloads import ChurnSchedule, StorageWorkload, run_storage_ops
from repro.workloads.churn import ChurnEvent

N_NODES = 96
N_KEYS = 40
KILL_FRACTION = 0.30
BURST = 5


def burst_kill_schedule(ids, rng, kill_fraction=KILL_FRACTION, burst=BURST):
    """A seeded schedule of timed leave events killing *kill_fraction*."""
    order = [int(v) for v in rng.permutation(ids)]
    total = int(round(kill_fraction * len(ids)))
    events = [
        ChurnEvent(time=10.0 * (1 + i // burst), kind="leave", node=order[i])
        for i in range(total)
    ]
    return ChurnSchedule(events=events)


@pytest.fixture(scope="module")
def churned():
    """Build, load, churn 30% away with AE between bursts; keep the history."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=21)
    net.build(N_NODES)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))
    keys = [f"key/{i:03d}" for i in range(N_KEYS)]
    for k in keys:
        assert store.put(k, f"value-{k}").ok
    ae = AntiEntropy(store, interval=10.0)
    # First passes may relocate copies from write-time (node-local)
    # placement onto the global ideal; after that the store is clean.
    ae.converge()
    assert ae.sweep().clean

    schedule = burst_kill_schedule(net.ids, net.rng.get("churn-test"))
    min_rf_seen = store.quorum.n
    # Replay the schedule burst by burst (events are time-sorted).
    pending = list(schedule)
    while pending:
        t = pending[0].time
        burst = [e for e in pending if e.time == t]
        pending = pending[len(burst):]
        victims = [e.node for e in burst if e.kind == "leave"]
        net.fail_nodes(victims)
        apply_failure_step(net, victims, FULL_POLICY)
        ae.sweep()  # records the post-burst dip before repair lands
        min_rf_seen = min(min_rf_seen, ae.tracker.latest().min_rf)
        net.sim.drain()
        ae.converge()
    return net, store, ae, keys, schedule, min_rf_seen


def test_schedule_killed_30_percent(churned):
    net, store, ae, keys, schedule, _ = churned
    dead = {e.node for e in schedule if e.kind == "leave"}
    assert len(dead) == int(round(KILL_FRACTION * N_NODES))
    assert len(net.alive_ids()) == N_NODES - len(dead)


def test_zero_key_loss_throughout(churned):
    """No sweep ever saw a key without a live replica."""
    net, store, ae, keys, schedule, min_rf_seen = churned
    assert ae.tracker.always_durable
    assert all(r.lost == 0 for r in ae.reports)
    assert min_rf_seen >= 1


def test_full_replication_restored(churned):
    net, store, ae, keys, schedule, _ = churned
    rfs = store.replication_factors()
    assert len(rfs) == N_KEYS
    assert min(rfs.values()) == store.quorum.n


def test_all_keys_quorum_readable_after_convergence(churned):
    """The acceptance criterion: 100% of keys readable at N=3, W=2, R=2."""
    net, store, ae, keys, schedule, _ = churned
    alive = net.alive_ids()
    results = [store.get(k, via=alive[i % len(alive)])
               for i, k in enumerate(keys)]
    readable = sum(r.found for r in results)
    assert readable == N_KEYS
    assert all(r.value == f"value-{k}" for r, k in zip(results, keys))
    assert all(r.quorum_met for r in results)


def test_mixed_workload_durability_accounting(churned):
    """A post-churn read/write stream sees every acknowledged write."""
    net, store, ae, keys, schedule, _ = churned
    wl = StorageWorkload(rng=np.random.default_rng(77), keyspace=16,
                         read_fraction=0.6, key_mode="zipf",
                         key_prefix="wl")
    stats = run_storage_ops(store, wl.seed_ops() + wl.ops(120),
                            via_pool=net.alive_ids())
    assert stats.puts >= 16 and stats.gets > 0
    assert stats.put_ok == stats.puts
    assert stats.misses - stats.misses_unwritten == 0
    assert stats.stale_reads == 0
    assert stats.durability == 1.0


def test_rejoin_after_churn_is_reconciled():
    """Nodes that come back stale are overwritten by the next sweeps."""
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=5)
    net.build(64)
    store = ReplicatedStore(net, QuorumConfig(n=3, w=2, r=2))
    for i in range(12):
        assert store.put(f"r{i}", i).ok
    ae = AntiEntropy(store, interval=10.0)
    rng = net.rng.get("rejoin-test")
    down = [int(v) for v in rng.choice(net.ids, 12, replace=False)]
    net.fail_nodes(down)
    apply_failure_step(net, down, FULL_POLICY)
    ae.converge()
    for i in range(12):  # overwrite everything while they are away
        assert store.put(f"r{i}", i + 100).ok
    for v in down:  # everyone comes back, carrying stale copies
        net.network.set_up(v)
    ae.converge()
    for i in range(12):
        g = store.get(f"r{i}", via=down[i % len(down)])
        assert g.found and g.value == i + 100
