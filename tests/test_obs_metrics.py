"""Unit tests for the metrics registry and the quantile histogram."""

import numpy as np
import pytest

from repro.obs.metrics import Counter, Gauge, MetricsRegistry, QuantileHistogram


def test_counter_inc_and_snapshot():
    c = Counter("hops")
    c.inc()
    c.inc(3)
    assert c.value == 4
    assert c.snapshot() == {"hops": 4.0}
    c.reset()
    assert c.value == 0


def test_gauge_last_write_wins():
    g = Gauge("depth")
    g.set(5)
    g.set(2)
    assert g.snapshot() == {"depth": 2.0}


def test_histogram_empty():
    h = QuantileHistogram("lat")
    assert h.quantile(0.5) == 0.0
    assert h.mean == 0.0 and h.max == 0.0
    snap = h.snapshot()
    assert snap["lat.count"] == 0.0


def test_histogram_invalid_params():
    with pytest.raises(ValueError):
        QuantileHistogram(growth=1.0)
    with pytest.raises(ValueError):
        QuantileHistogram(min_value=0.0)
    with pytest.raises(ValueError):
        QuantileHistogram().quantile(1.5)


def test_histogram_single_value():
    h = QuantileHistogram("lat")
    h.observe(0.25)
    # With one value, every quantile is clamped into [min, max] = {0.25}.
    assert h.quantile(0.5) == pytest.approx(0.25)
    assert h.quantile(0.999) == pytest.approx(0.25)
    assert h.mean == pytest.approx(0.25)


@pytest.mark.parametrize("dist", ["uniform", "lognormal", "exponential"])
def test_histogram_accuracy_bounds(dist):
    """p50/p99 estimates stay within the documented relative-error bound
    (sqrt(growth) - 1 per bucket; we allow 5% headroom for rank effects)."""
    rng = np.random.default_rng(42)
    if dist == "uniform":
        values = rng.uniform(0.01, 2.0, size=20_000)
    elif dist == "lognormal":
        values = rng.lognormal(mean=-2.0, sigma=0.8, size=20_000)
    else:
        values = rng.exponential(scale=0.05, size=20_000)
    h = QuantileHistogram("lat")
    for v in values:
        h.observe(float(v))
    for q in (0.50, 0.90, 0.99):
        exact = float(np.percentile(values, 100 * q))
        est = h.quantile(q)
        assert est == pytest.approx(exact, rel=0.05), (dist, q)
    assert h.mean == pytest.approx(float(values.mean()), rel=1e-9)
    assert h.max == pytest.approx(float(values.max()))


def test_histogram_underflow_bucket():
    h = QuantileHistogram("lat", min_value=1e-3)
    for _ in range(10):
        h.observe(0.0)
    h.observe(1.0)
    assert h.quantile(0.5) == 0.0  # underflow values report their true min
    assert h.quantile(1.0) == pytest.approx(1.0, rel=0.03)


def test_registry_get_or_create_same_kind():
    reg = MetricsRegistry()
    a = reg.counter("x")
    b = reg.counter("x")
    assert a is b
    a.inc()
    assert reg.snapshot() == {"x": 1.0}


def test_registry_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ValueError):
        reg.gauge("x")
    with pytest.raises(ValueError):
        reg.histogram("x")


def test_registry_snapshot_prefix_and_histogram_expansion():
    reg = MetricsRegistry()
    reg.counter("jobs").inc(2)
    reg.histogram("lat").observe(0.5)
    snap = reg.snapshot(prefix="compute.")
    assert snap["compute.jobs"] == 2.0
    assert snap["compute.lat.count"] == 1.0
    assert "compute.lat.p99" in snap


def test_registry_container_protocol_and_reset():
    reg = MetricsRegistry()
    reg.counter("a").inc()
    reg.gauge("b").set(7)
    assert "a" in reg and "c" not in reg
    assert reg.names() == ["a", "b"]
    assert len(reg) == 2
    assert len(list(iter(reg))) == 2
    reg.reset()
    assert reg.snapshot() == {"a": 0.0, "b": 0.0}
