"""The docs must render with zero broken intra-repo links.

Mirrors the CI docs job (``python tools/check_links.py README.md docs``)
so link rot fails locally before it fails in CI.
"""

import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
CHECKER = os.path.join(REPO_ROOT, "tools", "check_links.py")


def _run(*args):
    return subprocess.run([sys.executable, CHECKER, *args],
                          cwd=REPO_ROOT, capture_output=True, text=True)


def test_readme_and_docs_have_no_broken_links():
    proc = _run("README.md", "docs")
    assert proc.returncode == 0, f"broken links:\n{proc.stdout}{proc.stderr}"
    assert "0 broken link(s)" in proc.stdout


def test_docs_pages_exist():
    for page in ("architecture.md", "api.md", "benchmarks.md",
                 "performance.md"):
        assert os.path.exists(os.path.join(REPO_ROOT, "docs", page)), page


def test_benchmarks_catalogue_covers_scale_scenarios():
    """Drift pin: the generated catalogue embedded in docs/benchmarks.md
    must list the scale_* sweeps (regenerate with
    `python -m repro.bench report --scenarios-only` after changes)."""
    with open(os.path.join(REPO_ROOT, "docs", "benchmarks.md")) as fh:
        doc = fh.read()
    for name in ("scale_lookup", "scale_churn", "scale_quorum_rw",
                 "scale_jobs"):
        assert f"`{name}`" in doc, f"{name} missing from the catalogue"
    assert "performance.md" in doc  # the scale docs cross-link


def test_performance_doc_records_the_before_after_pair():
    """docs/performance.md must keep pointing at the committed PR-5
    trajectory pair, and the pair must exist."""
    with open(os.path.join(REPO_ROOT, "docs", "performance.md")) as fh:
        doc = fh.read()
    for rel in ("benchmarks/out/pre_pr5/bench_scale_lookup.json",
                "benchmarks/out/bench_scale_lookup.json"):
        assert rel in doc, f"{rel} no longer referenced"
        assert os.path.exists(os.path.join(REPO_ROOT, rel)), rel


def test_checker_catches_a_broken_link(tmp_path):
    bad = tmp_path / "bad.md"
    bad.write_text("see [missing](./nope.md) and [gone](#no-such-heading)\n")
    proc = _run(str(bad))
    assert proc.returncode == 1
    assert "missing file" in proc.stdout
    assert "missing anchor" in proc.stdout


def test_checker_ignores_link_syntax_shown_as_code(tmp_path):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "# Doc\n\nWrite links as `[text](target.md)` in docs.\n\n"
        "```markdown\n[also ignored](missing.md)\n```\n")
    proc = _run(str(doc))
    assert proc.returncode == 0, proc.stdout
