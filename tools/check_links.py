#!/usr/bin/env python3
"""Intra-repo markdown link checker (the CI docs gate).

Usage::

    python tools/check_links.py README.md docs

Scans every markdown file given (directories are walked for ``*.md``) for
inline links and validates the *intra-repo* ones:

* relative file targets must exist (resolved against the linking file);
* ``file.md#anchor`` and same-file ``#anchor`` targets must match a
  heading in the target file (GitHub-style slugs);
* external schemes (http/https/mailto) are ignored.

Exit code 1 with one line per broken link; 0 when the docs are clean.
No dependencies beyond the standard library, so the CI job needs no
installs.
"""

from __future__ import annotations

import os
import re
import sys
from typing import Iterable, List, Tuple

#: Inline markdown links, skipping images; code spans are stripped first.
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_SPAN_RE = re.compile(r"`[^`]*`")
CODE_BLOCK_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:", "ftp://")


def github_slug(heading: str) -> str:
    """GitHub's anchor slug: lowercase, drop punctuation, spaces→hyphens."""
    text = CODE_SPAN_RE.sub(lambda m: m.group(0).strip("`"), heading)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(markdown: str) -> List[str]:
    slugs: List[str] = []
    for match in HEADING_RE.finditer(CODE_BLOCK_RE.sub("", markdown)):
        slug = github_slug(match.group(1))
        # GitHub de-duplicates repeated headings with -1, -2, ...
        if slug in slugs:
            n = 1
            while f"{slug}-{n}" in slugs:
                n += 1
            slug = f"{slug}-{n}"
        slugs.append(slug)
    return slugs


def iter_markdown_files(paths: Iterable[str]) -> List[str]:
    files: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, names in os.walk(path):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        else:
            files.append(path)
    return files


def check_file(path: str) -> List[Tuple[str, str]]:
    """Return (target, problem) for every broken intra-repo link in *path*."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    base = os.path.dirname(os.path.abspath(path))
    broken: List[Tuple[str, str]] = []
    # Strip fenced blocks and inline code spans: link *syntax* shown as
    # code is documentation, not a link.
    scannable = CODE_SPAN_RE.sub("", CODE_BLOCK_RE.sub("", text))
    for target in LINK_RE.findall(scannable):
        if target.startswith(EXTERNAL):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(base, file_part))
            if not os.path.exists(resolved):
                broken.append((target, f"missing file {file_part!r}"))
                continue
            anchor_source = resolved
        else:
            anchor_source = os.path.abspath(path)
        if anchor:
            if not anchor_source.endswith(".md"):
                continue  # anchors into non-markdown files: not checkable
            with open(anchor_source, encoding="utf-8") as fh:
                slugs = heading_slugs(fh.read())
            if anchor not in slugs:
                broken.append((target, f"missing anchor #{anchor} in "
                                       f"{os.path.relpath(anchor_source)}"))
    return broken


def main(argv: List[str]) -> int:
    paths = argv or ["README.md", "docs"]
    files = iter_markdown_files(paths)
    if not files:
        print(f"check_links: no markdown files under {paths}", file=sys.stderr)
        return 1
    total_broken = 0
    for path in files:
        for target, problem in check_file(path):
            print(f"{path}: broken link ({target}): {problem}")
            total_broken += 1
    print(f"check_links: {len(files)} file(s), {total_broken} broken link(s)")
    return 1 if total_broken else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
