"""Figure B — average hops vs % failed nodes, case 1 (``nc = 4``).

Paper finding (§IV.a): "the average number of hops to reach the destination
is independent of the rate of failed nodes" (~5 hops) until, above ~70%
disconnected, the network is mostly isolated sub-networks.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import ALGORITHMS, SweepConfig
from repro.metrics.series import Series
from repro.viz.ascii import line_chart


def run(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> Dict[str, Series]:
    """Regenerate Figure B's series: average hop count per algorithm."""
    sweep = sweep_cached(SweepConfig(n=n, seed=seed, case="case1",
                                     lookups_per_step=lookups_per_step))
    return {algo: sweep.hops_series(algo) for algo in ALGORITHMS}


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    series = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    return line_chart(
        list(series.values()),
        title=f"Figure B — average hops vs failed nodes (case 1, nc=4, n={n})",
        x_label="% failed nodes",
        y_label="average hops (successful lookups)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
