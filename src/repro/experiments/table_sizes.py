"""§III.e — routing-table sizes and active-connection counts vs theory.

The paper's only analytical "table": for a network of ``n`` nodes with
``l0`` level-0 connections, hierarchy height ``h`` and per-node child/
neighbour counts ``ca``/``da``,

* a **level-0-only node** stores ``l0 + h`` entries and maintains
  ``l0 + 1`` active connections;
* a **level-i node** (``i > 0``) stores
  ``l0 + li + Li + ci + ca + da + h - i`` entries;
* **level-1 nodes** maintain ``l0 + ca + da`` connections, upper nodes
  ``l0 + ca + da + 2``.

This experiment measures both quantities on a built network and reports
them next to the paper's bounds — the "efficient use of the heterogeneity"
argument, made checkable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from repro.core.config import TreePConfig
from repro.core.treep import TreePNetwork
from repro.viz.ascii import table


@dataclass(frozen=True)
class SizeRow:
    """Measured vs theoretical bound for one node class."""

    node_class: str
    count: int
    entries_mean: float
    entries_max: int
    entries_bound: float
    connections_mean: float
    connections_bound: float

    def within_bounds(self, slack: float = 2.0) -> bool:
        """Means within `slack`x the paper's figure (the formulas are
        per-node with their own li/Li/ci terms; we compare class means to
        the bound evaluated at class-typical values)."""
        return (self.entries_mean <= slack * self.entries_bound
                and self.connections_mean <= slack * self.connections_bound)


def run(n: int = 1024, seed: int = 42, case: str = "case1") -> List[SizeRow]:
    """Measure table/connection sizes per node class on a fresh network."""
    cfg = TreePConfig.paper_case1() if case == "case1" else TreePConfig.paper_case2()
    net = TreePNetwork(config=cfg, seed=seed)
    layout = net.build(n)
    h = layout.height
    l0 = 2.0

    sizes = net.routing_table_sizes()
    conns = net.active_connection_counts()

    rows: List[SizeRow] = []
    by_class: Dict[str, List[int]] = {}
    for ident, node in net.nodes.items():
        if node.max_level == 0:
            key = "level-0 only"
        elif node.max_level == 1:
            key = "level 1"
        else:
            key = "level >= 2"
        by_class.setdefault(key, []).append(ident)

    for key in ("level-0 only", "level 1", "level >= 2"):
        members = by_class.get(key, [])
        if not members:
            continue
        ca = float(np.mean([
            sum(len(k) for k in net.nodes[i].children_by_level.values())
            for i in members
        ]))
        da = 2.0
        li, indirect = 2.0, 2.0
        if key == "level-0 only":
            entries_bound = l0 + h
            conn_bound = l0 + 1
        elif key == "level 1":
            # l0 + li + Li + ci + ca + da + h - i, with the replicated
            # terms at their class-typical values.
            entries_bound = l0 + li + indirect + ca + ca + da + h - 1
            conn_bound = l0 + ca + da
        else:
            lvl = float(np.mean([net.nodes[i].max_level for i in members]))
            entries_bound = l0 + li + indirect + ca + ca + da + h - lvl
            conn_bound = l0 + ca + da + 2
        rows.append(SizeRow(
            node_class=key,
            count=len(members),
            entries_mean=float(np.mean([sizes[i] for i in members])),
            entries_max=int(max(sizes[i] for i in members)),
            entries_bound=float(entries_bound),
            connections_mean=float(np.mean([conns[i] for i in members])),
            connections_bound=float(conn_bound),
        ))
    return rows


def render(n: int = 1024, seed: int = 42, case: str = "case1") -> str:
    rows = run(n=n, seed=seed, case=case)
    return table(
        ["node class", "count", "entries mean", "entries max",
         "paper bound", "connections mean", "paper bound"],
        [[r.node_class, r.count, r.entries_mean, r.entries_max,
          r.entries_bound, r.connections_mean, r.connections_bound]
         for r in rows],
        title=f"§III.e routing-table sizes, measured vs paper ({case}, n={n})",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
