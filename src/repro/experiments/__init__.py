"""Experiment drivers — one module per figure of the paper's §IV.

All figures derive from the same protocol (build a TreeP network, reach
steady state, disconnect 5% of the initial population per step with no
repopulation, measure a lookup batch per step), so everything funnels
through :func:`repro.experiments.common.run_failure_sweep`.  Results are
memoised per configuration (see :mod:`repro.experiments.cache`) so the nine
figure benches share the two underlying sweeps (case 1 fixed ``nc``, case 2
variable ``nc``).
"""

from repro.experiments.common import (
    StepRecord,
    SweepConfig,
    SweepResult,
    run_failure_sweep,
)
from repro.experiments.cache import sweep_cached

__all__ = [
    "StepRecord",
    "SweepConfig",
    "SweepResult",
    "run_failure_sweep",
    "sweep_cached",
]
