"""The shared failure-sweep driver behind every figure.

Protocol (§IV): the TreeP network is built and taken to steady state; nodes
are then randomly disconnected at a rate of 5% of the initial topology per
step, with no repopulation, "until the number of the remaining nodes reaches
a threshold of 5% of the initial topology".  After each step the surviving
nodes run one maintenance window (see :mod:`repro.core.repair`) and a batch
of random lookups per routing algorithm is measured.

Both experimental cases are supported:

* **case 1** — ``nc = 4`` fixed (paper §IV.a, ``h = 6`` at n ≈ 1024);
* **case 2** — ``nc`` derived from node capacity (paper §IV.b).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Literal, Sequence, Tuple

import numpy as np

from repro.cluster import Cluster
from repro.core.config import TreePConfig
from repro.core.lookup import LookupResult
from repro.core.repair import PAPER_POLICY, RepairPolicy, apply_failure_step
from repro.core.treep import TreePNetwork
from repro.metrics.series import Series
from repro.metrics.stats import LookupBatchStats, summarize_batch
from repro.sim.failures import FailureSchedule
from repro.workloads.lookups import LookupWorkload

Case = Literal["case1", "case2"]

#: The three algorithms of §IV, in the paper's order.
ALGORITHMS: Tuple[str, ...] = ("G", "NG", "NGSA")


@dataclass(frozen=True)
class SweepConfig:
    """One sweep = one network + one failure schedule + per-step batches."""

    n: int = 1024
    seed: int = 42
    case: Case = "case1"
    algorithms: Tuple[str, ...] = ALGORITHMS
    lookups_per_step: int = 200
    step_fraction: float = 0.05
    stop_fraction: float = 0.05
    policy: RepairPolicy = PAPER_POLICY

    def treep_config(self) -> TreePConfig:
        if self.case == "case1":
            return TreePConfig.paper_case1()
        return TreePConfig.paper_case2()


@dataclass
class StepRecord:
    """Measurements at one failure level."""

    failed_fraction: float
    surviving: int
    per_algo: Dict[str, LookupBatchStats]


@dataclass
class SweepResult:
    """The full sweep: per-step, per-algorithm batch statistics."""

    config: SweepConfig
    height: int
    initial_n: int
    records: List[StepRecord] = field(default_factory=list)

    # ------------------------------------------------------- series views
    def failure_series(self, algo: str) -> Series:
        """% failed lookups vs % failed nodes (Figures A / C)."""
        s = Series(label=f"{algo} failed lookups %")
        for r in self.records:
            s.add(100.0 * r.failed_fraction, 100.0 * r.per_algo[algo].failure_rate)
        return s

    def hops_series(self, algo: str) -> Series:
        """Average hops of successful lookups vs % failed nodes (B / D)."""
        s = Series(label=f"{algo} avg hops")
        for r in self.records:
            s.add(100.0 * r.failed_fraction, r.per_algo[algo].hops_mean)
        return s

    def failed_hops_series(self, algo: str) -> Tuple[Series, Series]:
        """(max, min) hops travelled by *failed* lookups (Figure E)."""
        smax = Series(label=f"{algo} max failed hops")
        smin = Series(label=f"{algo} min failed hops")
        for r in self.records:
            st = r.per_algo[algo]
            smax.add(100.0 * r.failed_fraction, st.failed_hops_max)
            smin.add(100.0 * r.failed_fraction, st.failed_hops_min)
        return smax, smin

    def surface(self, algo: str, max_hops: int = 30) -> "HopSurface":
        """The 3-D data of Figures F-I for one algorithm."""
        fracs = [100.0 * r.failed_fraction for r in self.records]
        rows = [r.per_algo[algo].hops_histogram.row(max_hops) for r in self.records]
        return HopSurface(algo=algo, failed_percent=fracs, max_hops=max_hops,
                          percent_rows=rows)


@dataclass
class HopSurface:
    """% of requests (z) resolved in y hops at x% failed nodes."""

    algo: str
    failed_percent: List[float]
    max_hops: int
    percent_rows: List[List[float]]  # indexed [step][hops]

    def as_array(self) -> np.ndarray:
        return np.array(self.percent_rows)

    def peak(self) -> Tuple[int, float]:
        """(hop count, %) of the tallest ridge across the whole surface."""
        arr = self.as_array()
        if arr.size == 0:
            return (0, 0.0)
        step, hops = np.unravel_index(int(np.argmax(arr)), arr.shape)
        return int(hops), float(arr[step, hops])

    def ridge_hops(self) -> List[int]:
        """Per-step modal hop count — flatness of this list is Figure B's
        'the number of hops is constant' claim in surface form."""
        return [int(np.argmax(np.array(row))) for row in self.percent_rows]


def _failed_hop_counts(net: TreePNetwork, failed: Sequence[LookupResult]) -> List[int]:
    """Hops travelled by failed lookups, via the harness request trails."""
    out: List[int] = []
    for r in failed:
        if r.timed_out:
            trail = net.trails.get(r.request_id)
            out.append(trail.max_ttl if trail is not None else 0)
        else:
            out.append(r.hops)
    return out


def run_failure_sweep(config: SweepConfig) -> SweepResult:
    """Execute one full sweep (the engine behind Figures A-I)."""
    cluster = Cluster(config=config.treep_config(), seed=config.seed).build(config.n)
    net = cluster.net
    layout = cluster.layout
    result = SweepResult(config=config, height=layout.height, initial_n=config.n)

    rng = net.rng.get("sweep")
    schedule = FailureSchedule(
        net.ids, rng,
        step_fraction=config.step_fraction,
        stop_fraction=config.stop_fraction,
    )
    workload = LookupWorkload(rng=net.rng.get("workload"))

    for step in schedule.steps():
        schedule.apply_step(net.network, step)
        apply_failure_step(net, step.newly_failed, config.policy)
        if len(step.surviving) < 2:
            break
        per_algo: Dict[str, LookupBatchStats] = {}
        for algo in config.algorithms:
            pairs = workload.pairs(step.surviving, config.lookups_per_step)
            results = net.run_lookup_batch(pairs, algo)
            failed = [r for r in results if not r.found]
            per_algo[algo] = summarize_batch(
                results, failed_hop_counts=_failed_hop_counts(net, failed)
            )
            net.trails.clear()
        result.records.append(
            StepRecord(
                failed_fraction=step.cumulative_failed_fraction,
                surviving=len(step.surviving),
                per_algo=per_algo,
            )
        )
    return result
