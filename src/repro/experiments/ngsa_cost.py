"""§IV.a's bandwidth verdict on NGSA, measured.

"The NGSA algorithm is not performing much better than the NG or the Greedy
algorithm […] The gain obtained by the NGSA algorithm compared to its cost
in terms of bandwidth makes it less attractive to be used with this
topology."

NGSA carries alternate-path candidates inside every request ("at the
expense of adding data to the request"), so its cost shows up as bytes on
the wire, not as extra messages.  This experiment runs the same lookup
batch under each algorithm at a configurable failure level and reports
success rate, messages and bytes per lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.core.config import TreePConfig
from repro.core.repair import PAPER_POLICY, apply_failure_step
from repro.core.treep import TreePNetwork
from repro.sim.failures import FailureSchedule
from repro.viz.ascii import table
from repro.workloads.lookups import LookupWorkload


@dataclass(frozen=True)
class AlgoCost:
    algorithm: str
    success_rate: float
    avg_hops: float
    messages_per_lookup: float
    bytes_per_lookup: float


def run(
    n: int = 1024,
    seed: int = 42,
    lookups: int = 300,
    dead_fraction: float = 0.30,
) -> Dict[str, AlgoCost]:
    """Measure per-algorithm lookup cost at *dead_fraction* failed nodes."""
    if not 0.0 <= dead_fraction < 0.95:
        raise ValueError(f"dead_fraction must be in [0, 0.95), got {dead_fraction}")
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    net.build(n)
    rng = net.rng.get("sweep")
    surviving = list(net.ids)
    if dead_fraction > 0:
        schedule = FailureSchedule(net.ids, rng)
        for step in schedule.steps():
            schedule.apply_step(net.network, step)
            apply_failure_step(net, step.newly_failed, PAPER_POLICY)
            surviving = list(step.surviving)
            if step.cumulative_failed_fraction >= dead_fraction:
                break

    workload = LookupWorkload(rng=net.rng.get("workload"))
    pairs = workload.pairs(surviving, lookups)

    out: Dict[str, AlgoCost] = {}
    for algo in ("G", "NG", "NGSA"):
        before = net.network.stats
        sent0, bytes0 = before.sent, before.bytes_sent
        results = net.run_lookup_batch(pairs, algo)
        stats = net.network.stats
        found = [r for r in results if r.found]
        out[algo] = AlgoCost(
            algorithm=algo,
            success_rate=len(found) / len(results),
            avg_hops=float(np.mean([r.hops for r in found])) if found else 0.0,
            messages_per_lookup=(stats.sent - sent0) / len(results),
            bytes_per_lookup=(stats.bytes_sent - bytes0) / len(results),
        )
    return out


def render(
    n: int = 1024, seed: int = 42, lookups: int = 300, dead_fraction: float = 0.30
) -> str:
    out = run(n=n, seed=seed, lookups=lookups, dead_fraction=dead_fraction)
    return table(
        ["algorithm", "success", "avg hops", "msgs/lookup", "bytes/lookup"],
        [[c.algorithm, c.success_rate, c.avg_hops, c.messages_per_lookup,
          c.bytes_per_lookup] for c in out.values()],
        title=(f"NGSA cost-benefit (§IV.a), n={n}, "
               f"{dead_fraction:.0%} dead nodes, {lookups} lookups"),
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
