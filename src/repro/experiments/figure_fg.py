"""Figures F and G — hop-distribution surfaces, case 1 (``nc = 4``).

The paper plots, per failure fraction (x, 0-80%), the percentage of
requests (z, 0-50%) resolved in a given number of hops (y, 0-30):
Figure F for the greedy algorithm, Figure G for NG (NGSA's surface was
"almost identical to the NG algorithm graph" and is omitted there too).

Findings: the ridge sits at ~5 hops at every failure level ("the routing
technique is stable and efficient"); G resolves slightly more requests in
<= 4 hops than NG (~50% vs ~45%).
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import HopSurface, SweepConfig
from repro.viz.ascii import surface_table


def run(
    n: int = 1024,
    seed: int = 42,
    lookups_per_step: int = 200,
    max_hops: int = 30,
) -> Dict[str, HopSurface]:
    """Regenerate both surfaces: ``{"F": greedy, "G": non-greedy}``."""
    sweep = sweep_cached(SweepConfig(n=n, seed=seed, case="case1",
                                     lookups_per_step=lookups_per_step))
    return {
        "F": sweep.surface("G", max_hops=max_hops),
        "G": sweep.surface("NG", max_hops=max_hops),
    }


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    surfaces = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    parts = []
    for fig, surf in surfaces.items():
        parts.append(
            surface_table(
                surf.failed_percent,
                surf.percent_rows,
                title=(f"Figure {fig} — % of requests resolved in k hops "
                       f"(case 1, algorithm {surf.algo}, n={n})"),
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(render())
