"""Per-process memoisation of sweep results.

Nine figure benches derive from two sweeps (case 1 and case 2); running the
sweep nine times would dominate bench time for no information.  The cache
key is the full :class:`~repro.experiments.common.SweepConfig`, which is
frozen/hashable, so any parameter change re-runs honestly.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.common import SweepConfig, SweepResult, run_failure_sweep

_CACHE: Dict[SweepConfig, SweepResult] = {}


def sweep_cached(config: SweepConfig) -> SweepResult:
    """Return the memoised sweep for *config*, computing it on first use."""
    result = _CACHE.get(config)
    if result is None:
        result = run_failure_sweep(config)
        _CACHE[config] = result
    return result


def cache_clear() -> None:
    _CACHE.clear()


def cache_size() -> int:
    return len(_CACHE)
