"""Ablation experiments for the design choices DESIGN.md calls out.

Each function isolates one mechanism and returns comparable series/rows:

* :func:`id_assignment` — random vs hash vs balanced IDs (§III + §VI):
  effect on tree balance and hop counts.
* :func:`demotion_policy` — strict demotion vs the §VI "keep stable nodes
  in the upper layers" variant, measured under churn-like failures.
* :func:`euclidean_fallback` — §III.f's TTL-triggered fallback on/off under
  heavy failure.
* :func:`repair_mechanisms` — which healing mechanism buys how much
  resilience (purge-only vs lateral relink vs full adoption).
* :func:`maintenance_interval` — protocol-mode keep-alive period vs
  control-message cost.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.config import TreePConfig
from repro.core.repair import (
    FULL_POLICY,
    PAPER_POLICY,
    PURGE_ONLY_POLICY,
    apply_failure_step,
)
from repro.core.treep import TreePNetwork
from repro.sim.failures import FailureSchedule
from repro.workloads.lookups import LookupWorkload


def id_assignment(
    n: int = 512, seed: int = 42, lookups: int = 200
) -> Dict[str, Dict[str, float]]:
    """Tree balance and lookup cost per ID-assignment strategy."""
    out: Dict[str, Dict[str, float]] = {}
    for strategy in ("random", "hash", "balanced"):
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
        layout = net.build(n, strategy=strategy)  # type: ignore[arg-type]
        cell_sizes = [len(v) for v in layout.children.values()]
        workload = LookupWorkload(rng=net.rng.get("ablation"))
        results = net.run_lookup_batch(workload.pairs(net.ids, lookups), "G")
        found = [r for r in results if r.found]
        out[strategy] = {
            "height": float(layout.height),
            "avg_children": layout.average_children(),
            "cell_size_std": float(np.std(cell_sizes)) if cell_sizes else 0.0,
            "avg_hops": float(np.mean([r.hops for r in found])) if found else 0.0,
            "success_rate": len(found) / len(results),
        }
    return out


def demotion_policy(
    n: int = 256, seed: int = 42
) -> Dict[str, Dict[str, float]]:
    """Strict vs keep-upper demotion under protocol-mode child loss.

    Kills every level-1 node's children except one, runs the maintenance
    loop, and counts how many parents abdicated under each policy.
    """
    out: Dict[str, Dict[str, float]] = {}
    for policy in ("strict", "keep-upper"):
        cfg = TreePConfig.paper_case1(
            demotion_policy=policy, keepalive_interval=1.0, entry_ttl=3.0,
            demotion_base=2.0,
        )
        net = TreePNetwork(config=cfg, seed=seed)
        layout = net.build(n)
        # Starve parents: kill all but one child of every level-2 parent's
        # children (level-1 nodes keep their own children intact).
        victims: List[int] = []
        for (p, lvl), kids in layout.children.items():
            if lvl == 2 and len(kids) > 1:
                victims.extend(kids[1:])
        for v in victims:
            net.network.set_down(v)
        before = sum(1 for node in net.nodes.values() if node.max_level >= 2)
        net.start_maintenance()
        net.sim.run_for(30.0)
        net.stop_maintenance()
        after = sum(
            1
            for i, node in net.nodes.items()
            if net.network.is_up(i) and node.max_level >= 2
        )
        out[policy] = {
            "upper_nodes_before": float(before),
            "upper_nodes_after": float(after),
            "victims": float(len(victims)),
        }
    return out


def euclidean_fallback(
    n: int = 512, seed: int = 42, lookups: int = 200
) -> Dict[str, Dict[str, float]]:
    """§III.f TTL fallback on/off at a heavy-failure operating point."""
    out: Dict[str, Dict[str, float]] = {}
    for enabled in (True, False):
        cfg = TreePConfig.paper_case1(euclidean_fallback=enabled)
        net = TreePNetwork(config=cfg, seed=seed)
        net.build(n)
        rng = net.rng.get("sweep")
        schedule = FailureSchedule(net.ids, rng)
        surviving: Tuple[int, ...] = ()
        for step in schedule.steps():
            schedule.apply_step(net.network, step)
            apply_failure_step(net, step.newly_failed, PAPER_POLICY)
            surviving = step.surviving
            if step.cumulative_failed_fraction >= 0.5:
                break
        workload = LookupWorkload(rng=net.rng.get("ablation"))
        results = net.run_lookup_batch(workload.pairs(surviving, lookups), "G")
        found = [r for r in results if r.found]
        out["fallback-on" if enabled else "fallback-off"] = {
            "success_rate": len(found) / len(results),
            "avg_hops": float(np.mean([r.hops for r in found])) if found else 0.0,
        }
    return out


def repair_mechanisms(
    n: int = 512, seed: int = 42, lookups: int = 150
) -> Dict[str, Dict[str, float]]:
    """How much resilience each healing mechanism buys (at 30% dead)."""
    policies = {
        "purge-only": PURGE_ONLY_POLICY,
        "lateral (paper)": PAPER_POLICY,
        "full adoption": FULL_POLICY,
    }
    out: Dict[str, Dict[str, float]] = {}
    for name, policy in policies.items():
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
        net.build(n)
        rng = net.rng.get("sweep")
        schedule = FailureSchedule(net.ids, rng)
        surviving = ()
        for step in schedule.steps():
            schedule.apply_step(net.network, step)
            apply_failure_step(net, step.newly_failed, policy)
            surviving = step.surviving
            if step.cumulative_failed_fraction >= 0.3:
                break
        workload = LookupWorkload(rng=net.rng.get("ablation"))
        results = net.run_lookup_batch(workload.pairs(surviving, lookups), "G")
        found = [r for r in results if r.found]
        out[name] = {
            "success_rate": len(found) / len(results),
            "avg_hops": float(np.mean([r.hops for r in found])) if found else 0.0,
        }
    return out


def maintenance_interval(
    n: int = 128, seed: int = 42, horizon: float = 60.0
) -> Dict[float, Dict[str, float]]:
    """Protocol-mode control-traffic cost per keep-alive interval."""
    out: Dict[float, Dict[str, float]] = {}
    for interval in (2.0, 5.0, 10.0, 20.0):
        cfg = TreePConfig.paper_case1(
            keepalive_interval=interval, entry_ttl=interval * 4
        )
        net = TreePNetwork(config=cfg, seed=seed)
        net.build(n)
        net.network.reset_stats()
        net.start_maintenance()
        net.sim.run_for(horizon)
        net.stop_maintenance()
        stats = net.network.stats
        out[interval] = {
            "messages_per_node_per_s": stats.sent / n / horizon,
            "bytes_per_node_per_s": stats.bytes_sent / n / horizon,
        }
    return out
