"""Figures H and I — hop-distribution surfaces, case 2 (variable ``nc``).

Paper findings (§IV.b): with a capacity-derived children bound the curves
are "much steeper", peaking at 5 hops with ~60% of requests — the flattened
hierarchy concentrates the hop distribution; performance degrades once
>= 40% of the nodes are disconnected, as in case 1.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import HopSurface, SweepConfig
from repro.viz.ascii import surface_table


def run(
    n: int = 1024,
    seed: int = 42,
    lookups_per_step: int = 200,
    max_hops: int = 30,
) -> Dict[str, HopSurface]:
    """Regenerate both surfaces: ``{"H": greedy, "I": non-greedy}``."""
    sweep = sweep_cached(SweepConfig(n=n, seed=seed, case="case2",
                                     lookups_per_step=lookups_per_step))
    return {
        "H": sweep.surface("G", max_hops=max_hops),
        "I": sweep.surface("NG", max_hops=max_hops),
    }


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    surfaces = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    parts = []
    for fig, surf in surfaces.items():
        parts.append(
            surface_table(
                surf.failed_percent,
                surf.percent_rows,
                title=(f"Figure {fig} — % of requests resolved in k hops "
                       f"(case 2, variable nc, algorithm {surf.algo}, n={n})"),
            )
        )
    return "\n\n".join(parts)


if __name__ == "__main__":  # pragma: no cover
    print(render())
