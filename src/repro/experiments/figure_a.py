"""Figure A — % failed lookups vs % failed nodes, case 1 (``nc = 4``).

Paper findings (§IV.a): all three algorithms are robust against random
disruption; ~10% of lookups fail at 30% dead nodes, 25-30% at 50%; the
three algorithms stay within a ~2% band of each other, and NGSA's extra
bandwidth buys no meaningful gain.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import ALGORITHMS, SweepConfig
from repro.metrics.series import Series
from repro.viz.ascii import line_chart


def run(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> Dict[str, Series]:
    """Regenerate Figure A's series: one failure curve per algorithm."""
    sweep = sweep_cached(SweepConfig(n=n, seed=seed, case="case1",
                                     lookups_per_step=lookups_per_step))
    return {algo: sweep.failure_series(algo) for algo in ALGORITHMS}


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    series = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    return line_chart(
        list(series.values()),
        title=f"Figure A — failed lookups vs failed nodes (case 1, nc=4, n={n})",
        x_label="% failed nodes",
        y_label="% failed lookups",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
