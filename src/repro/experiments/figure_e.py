"""Figure E — maximum and minimum hops of *failed* lookups, case 1.

Paper finding (§IV.a): the maximum number of failed hops "increases
dramatically" when ~35% of the nodes are disconnected — the point where the
network partitions into two isolated sub-networks and doomed requests
wander until the TTL backstop.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import SweepConfig
from repro.metrics.series import Series
from repro.viz.ascii import line_chart


def run(
    n: int = 1024,
    seed: int = 42,
    lookups_per_step: int = 200,
    algo: str = "G",
) -> Dict[str, Series]:
    """Regenerate Figure E: max/min hops travelled by failed lookups."""
    sweep = sweep_cached(SweepConfig(n=n, seed=seed, case="case1",
                                     lookups_per_step=lookups_per_step))
    smax, smin = sweep.failed_hops_series(algo)
    return {"max": smax, "min": smin}


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    series = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    return line_chart(
        [series["max"], series["min"]],
        title=f"Figure E — max/min failed-lookup hops (case 1, n={n})",
        x_label="% failed nodes",
        y_label="hops travelled by failed lookups",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
