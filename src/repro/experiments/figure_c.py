"""Figure C — % failed lookups vs % failed nodes, case 2 (variable ``nc``).

Paper finding (§IV.b): "the behaviour of the algorithms is similar to the
first case" — the failure curves keep the same family shape with
capacity-derived children bounds.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import ALGORITHMS, SweepConfig
from repro.metrics.series import Series
from repro.viz.ascii import line_chart


def run(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> Dict[str, Series]:
    """Regenerate Figure C's series (variable-``nc`` failure curves)."""
    sweep = sweep_cached(SweepConfig(n=n, seed=seed, case="case2",
                                     lookups_per_step=lookups_per_step))
    return {algo: sweep.failure_series(algo) for algo in ALGORITHMS}


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    series = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    return line_chart(
        list(series.values()),
        title=f"Figure C — failed lookups vs failed nodes (case 2, variable nc, n={n})",
        x_label="% failed nodes",
        y_label="% failed lookups",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
