"""Figure D — average hops, fixed vs variable ``nc``.

Paper findings (§IV.b): with variable ``nc`` the average hop count *does*
depend on the failure rate, the divergence becoming important beyond ~30%
dead nodes; the two configurations otherwise differ little, and the
flattened hierarchy of the variable case "greatly reduces the number of
hops per request" at low failure rates.
"""

from __future__ import annotations

from typing import Dict

from repro.experiments.cache import sweep_cached
from repro.experiments.common import SweepConfig
from repro.metrics.series import Series
from repro.viz.ascii import line_chart


def run(
    n: int = 1024,
    seed: int = 42,
    lookups_per_step: int = 200,
    algo: str = "G",
) -> Dict[str, Series]:
    """Regenerate Figure D: one hops-vs-failure series per configuration."""
    out: Dict[str, Series] = {}
    for label, case in (("fixed nc=4", "case1"), ("variable nc", "case2")):
        sweep = sweep_cached(SweepConfig(n=n, seed=seed, case=case,  # type: ignore[arg-type]
                                         lookups_per_step=lookups_per_step))
        s = sweep.hops_series(algo)
        s.label = f"{label} ({algo})"
        out[label] = s
    return out


def render(n: int = 1024, seed: int = 42, lookups_per_step: int = 200) -> str:
    series = run(n=n, seed=seed, lookups_per_step=lookups_per_step)
    return line_chart(
        list(series.values()),
        title=f"Figure D — average hops, fixed vs variable nc (n={n})",
        x_label="% failed nodes",
        y_label="average hops (successful lookups)",
    )


if __name__ == "__main__":  # pragma: no cover
    print(render())
