"""ASCII rendering: line charts for Figures A-E, tables for the surfaces.

No plotting dependency — every bench prints the same rows/series the paper's
figures show, directly into the terminal / bench log.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.metrics.series import Series

_MARKS = "*o+x#@%&"


def line_chart(
    series_list: Sequence[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render several series on one chart, one glyph per series."""
    if not series_list:
        raise ValueError("need at least one series")
    xs_all = np.concatenate([s.xs() for s in series_list if len(s)])
    ys_all = np.concatenate([s.ys() for s in series_list if len(s)])
    if xs_all.size == 0:
        raise ValueError("all series empty")
    x_lo, x_hi = float(xs_all.min()), float(xs_all.max())
    y_lo, y_hi = float(min(0.0, ys_all.min())), float(ys_all.max())
    if x_hi == x_lo:
        x_hi = x_lo + 1.0
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for si, s in enumerate(series_list):
        mark = _MARKS[si % len(_MARKS)]
        for x, y in s.points:
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((y - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = mark

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_val = y_hi - i * (y_hi - y_lo) / (height - 1)
        lines.append(f"{y_val:8.1f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<10.1f}{x_label:^{max(0, width - 20)}}{x_hi:>10.1f}")
    legend = "   ".join(
        f"{_MARKS[i % len(_MARKS)]} {s.label}" for i, s in enumerate(series_list)
    )
    lines.append(f"{'':9}{legend}")
    if y_label:
        lines.append(f"{'':9}(y: {y_label})")
    return "\n".join(lines)


def table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Fixed-width table with numeric formatting."""
    def fmt(v: object) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    cells = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(str(h).rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def surface_table(
    failed_percent: Sequence[float],
    percent_rows: Sequence[Sequence[float]],
    max_hops: int = 14,
    title: str = "",
) -> str:
    """Figures F-I as a table: rows = % failed nodes, cols = hop count.

    Cell = % of requests resolved in that many hops.  ``max_hops`` trims
    the tail (the paper plots 0..30 but mass sits below ~10).
    """
    headers = ["dead%"] + [str(h) for h in range(max_hops + 1)]
    rows: List[List[object]] = []
    for frac, row in zip(failed_percent, percent_rows):
        rows.append([f"{frac:.0f}"] + [round(v, 1) for v in row[: max_hops + 1]])
    return table(headers, rows, title=title)
