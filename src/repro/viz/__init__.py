"""Terminal rendering of the paper's figures."""

from repro.viz.ascii import line_chart, surface_table, table

__all__ = ["line_chart", "surface_table", "table"]
