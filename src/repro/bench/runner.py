"""Scenario execution: run one registered scenario, envelope the result.

This is the seam everything shares — the CLI's ``run`` subcommand, the
pytest-benchmark glue in :mod:`repro.bench.testing`, and the harness
tests all call :func:`run_scenario`, so every execution path emits the
same :class:`~repro.bench.result.BenchResult` and (optionally) writes the
same ``benchmarks/out/bench_<name>.json`` trajectory file.
"""

from __future__ import annotations

import os
import time
from typing import Any, Mapping, Optional

from repro.bench.result import BenchResult
from repro.bench.scenario import registry


def run_scenario(name: str, *, seed: Optional[int] = None, smoke: bool = False,
                 overrides: Optional[Mapping[str, Any]] = None,
                 out_dir: Optional[str] = None,
                 trace_out: Optional[str] = None,
                 slo: Optional[str] = None) -> BenchResult:
    """Execute scenario *name* and return its envelope.

    When *out_dir* is given the envelope is also written there as
    ``bench_<name>.json`` — ``bench_<name>.smoke.json`` for smoke runs —
    the perf-trajectory file ``compare`` diffs.

    When *trace_out* is given the scenario executes under an ambient
    observability capture (:func:`repro.obs.runtime.capture`): every
    network the scenario builds records spans/events into its own run of
    ``trace_<name>.npz`` (``trace_<name>.smoke.npz`` for smoke) under that
    directory, queryable with ``python -m repro.obs``.  The envelope's
    optional ``obs`` field records the trace path and totals.  The
    scenario's deterministic metrics are unaffected — instrumentation
    draws no randomness and schedules no events.

    When *slo* names a spec file (TOML/JSON, see :mod:`repro.obs.slo`)
    the scenario also runs under capture (no store is written unless
    *trace_out* asks for one), objectives are monitored live and
    evaluated exactly post-run, and the report lands in the envelope's
    optional ``slo`` field — absent without ``--slo``, so existing
    trajectories stay byte-identical.
    """
    scenario = registry.get(name)
    effective_seed = scenario.seed if seed is None else seed
    params = scenario.effective_params(smoke=smoke, overrides=overrides)
    slo_spec = None
    if slo is not None:
        from repro.obs.slo import load_slo
        slo_spec = load_slo(slo)  # fail fast, before the run burns time
    if trace_out is None and slo_spec is None:
        t0 = time.perf_counter()
        output = scenario.execute(seed=effective_seed, smoke=smoke,
                                  overrides=overrides)
        wall = time.perf_counter() - t0
        obs_info = {}
        slo_info = {}
    else:
        from repro.obs.runtime import capture

        with capture(slo=slo_spec) as cap:
            t0 = time.perf_counter()
            output = scenario.execute(seed=effective_seed, smoke=smoke,
                                      overrides=overrides)
            wall = time.perf_counter() - t0
        obs_info = {}
        if trace_out is not None:
            suffix = ".smoke.npz" if smoke else ".npz"
            trace_file = os.path.join(trace_out, f"trace_{name}{suffix}")
            cap.write(trace_file, meta_extra={
                "scenario": name, "seed": effective_seed, "smoke": smoke})
            obs_info = {
                "trace_file": trace_file,
                "runs": len(cap.hubs),
                "spans": cap.span_count(),
                "events": cap.event_count(),
                "categories": cap.category_counts(),
                "metrics": cap.metrics_snapshot(),
            }
        slo_info = {}
        if slo_spec is not None:
            from repro.obs.slo import SloReport, evaluate_hub

            report = SloReport(source=slo_spec.source, runs={
                run: evaluate_hub(slo_spec, hub)
                for run, hub in cap.runs().items()})
            slo_info = report.to_dict()
            slo_info["spec_file"] = slo
    result = BenchResult.from_output(
        scenario, output, seed=effective_seed, smoke=smoke, params=params,
        wall_time_s=wall)
    result.obs = obs_info
    result.slo = slo_info
    if out_dir is not None:
        result.write(out_dir)
    return result
