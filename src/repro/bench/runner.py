"""Scenario execution: run one registered scenario, envelope the result.

This is the seam everything shares — the CLI's ``run`` subcommand, the
pytest-benchmark glue in :mod:`repro.bench.testing`, and the harness
tests all call :func:`run_scenario`, so every execution path emits the
same :class:`~repro.bench.result.BenchResult` and (optionally) writes the
same ``benchmarks/out/bench_<name>.json`` trajectory file.
"""

from __future__ import annotations

import time
from typing import Any, Mapping, Optional

from repro.bench.result import BenchResult
from repro.bench.scenario import registry


def run_scenario(name: str, *, seed: Optional[int] = None, smoke: bool = False,
                 overrides: Optional[Mapping[str, Any]] = None,
                 out_dir: Optional[str] = None) -> BenchResult:
    """Execute scenario *name* and return its envelope.

    When *out_dir* is given the envelope is also written there as
    ``bench_<name>.json`` — ``bench_<name>.smoke.json`` for smoke runs —
    the perf-trajectory file ``compare`` diffs.
    """
    scenario = registry.get(name)
    effective_seed = scenario.seed if seed is None else seed
    params = scenario.effective_params(smoke=smoke, overrides=overrides)
    t0 = time.perf_counter()
    output = scenario.execute(seed=effective_seed, smoke=smoke,
                              overrides=overrides)
    wall = time.perf_counter() - t0
    result = BenchResult.from_output(
        scenario, output, seed=effective_seed, smoke=smoke, params=params,
        wall_time_s=wall)
    if out_dir is not None:
        result.write(out_dir)
    return result
