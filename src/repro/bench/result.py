"""The ``BenchResult`` JSON envelope — the unit of the perf trajectory.

Every harness execution of a scenario (CLI ``run`` or the pytest-benchmark
glue) produces one :class:`BenchResult` and writes it to
``benchmarks/out/bench_<scenario>.json`` (``.smoke.json`` for ``--smoke``
runs, so the two parameterisations never clobber each other).  The envelope is deliberately
flat and versioned (:data:`SCHEMA`): successive PRs emit files that
``python -m repro.bench compare`` can diff, so "did this hot-path change
move the needle" has a machine-checkable answer instead of a bench log.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.bench.scenario import Check, Scenario, ScenarioOutput

#: Envelope schema identifier; bump on breaking field changes.
SCHEMA = "repro.bench/1"

#: Fields every envelope must carry (validation + forward-compat contract).
REQUIRED_FIELDS = (
    "schema", "scenario", "group", "git_sha", "seed", "smoke", "params",
    "wall_time_s", "metrics", "checks", "unix_time",
)


def git_sha(cwd: Optional[str] = None) -> str:
    """Current commit sha, or ``"unknown"`` outside a git checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=10)
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


@dataclass
class BenchResult:
    """One scenario execution, fully described."""

    scenario: str
    group: str
    git_sha: str
    seed: int
    smoke: bool
    params: Dict[str, Any]
    wall_time_s: float
    metrics: Dict[str, float]
    checks: List[Dict[str, Any]] = field(default_factory=list)
    unix_time: float = 0.0
    schema: str = SCHEMA
    rendered: str = ""  # not serialised; kept for the caller
    #: Observability sidecar (``--trace-out`` runs only): trace-file path,
    #: span/event counts, per-category totals, metrics snapshot.  Optional —
    #: absent from untraced envelopes, so trajectories stay diffable.
    obs: Dict[str, Any] = field(default_factory=dict)
    #: SLO evaluation report (``--slo`` runs only): the serialised
    #: :class:`~repro.obs.slo.SloReport` — spec source, per-run rule
    #: results, pass/fail verdict.  Optional — absent without ``--slo``,
    #: so pre-1.7 envelopes stay byte-identical.
    slo: Dict[str, Any] = field(default_factory=dict)

    # --------------------------------------------------------- construction
    @classmethod
    def from_output(cls, scenario: Scenario, output: ScenarioOutput, *,
                    seed: int, smoke: bool, params: Mapping[str, Any],
                    wall_time_s: float, sha: Optional[str] = None,
                    ) -> "BenchResult":
        return cls(
            scenario=scenario.name,
            group=scenario.group,
            git_sha=git_sha() if sha is None else sha,
            seed=seed,
            smoke=smoke,
            params=dict(params),
            wall_time_s=round(wall_time_s, 6),
            metrics={k: float(v) for k, v in output.metrics.items()},
            # bool()/str() strip numpy scalar types that break json.dumps
            checks=[{"name": c.name, "passed": bool(c.passed),
                     "detail": str(c.detail)} for c in output.checks],
            unix_time=time.time(),
            rendered=output.rendered,
        )

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        out = {
            "schema": self.schema,
            "scenario": self.scenario,
            "group": self.group,
            "git_sha": self.git_sha,
            "seed": self.seed,
            "smoke": self.smoke,
            "params": self.params,
            "wall_time_s": self.wall_time_s,
            "metrics": self.metrics,
            "checks": self.checks,
            "unix_time": self.unix_time,
        }
        if self.obs:
            out["obs"] = self.obs
        if self.slo:
            out["slo"] = self.slo
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BenchResult":
        validate_result_dict(data)
        kwargs = {k: data[k] for k in REQUIRED_FIELDS}
        kwargs["obs"] = dict(data.get("obs", {}))
        kwargs["slo"] = dict(data.get("slo", {}))
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, out_dir: str) -> str:
        """Write this envelope under *out_dir*; return the path.

        Smoke runs get their own ``bench_<scenario>.smoke.json`` name so a
        CI smoke pass and a local full run never clobber each other's
        trajectory point in a shared out dir.
        """
        os.makedirs(out_dir, exist_ok=True)
        suffix = ".smoke.json" if self.smoke else ".json"
        path = os.path.join(out_dir, f"bench_{self.scenario}{suffix}")
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def read(cls, path: str) -> "BenchResult":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -------------------------------------------------------------- queries
    def failed_checks(self) -> List[Dict[str, Any]]:
        return [c for c in self.checks if not c.get("passed")]

    def check_objects(self) -> List[Check]:
        return [Check(name=c["name"], passed=bool(c["passed"]),
                      detail=c.get("detail", "")) for c in self.checks]


def validate_result_dict(data: Mapping[str, Any]) -> None:
    """Schema-validate one envelope dict; raise ``ValueError`` on violation."""
    missing = [k for k in REQUIRED_FIELDS if k not in data]
    if missing:
        raise ValueError(f"BenchResult missing fields: {missing}")
    if data["schema"] != SCHEMA:
        raise ValueError(
            f"unsupported BenchResult schema {data['schema']!r} "
            f"(expected {SCHEMA!r})")
    if not isinstance(data["metrics"], dict) or not data["metrics"]:
        raise ValueError("BenchResult.metrics must be a non-empty object")
    for key, value in data["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"metric {key!r} is not numeric: {value!r}")
    if not isinstance(data["checks"], list):
        raise ValueError("BenchResult.checks must be a list")
    for check in data["checks"]:
        if not isinstance(check, dict) or "name" not in check or "passed" not in check:
            raise ValueError(f"malformed check entry: {check!r}")
    if not isinstance(data["params"], dict):
        raise ValueError("BenchResult.params must be an object")
    if "obs" in data and not isinstance(data["obs"], dict):
        raise ValueError("BenchResult.obs must be an object when present")
    if "slo" in data and not isinstance(data["slo"], dict):
        raise ValueError("BenchResult.slo must be an object when present")


def load_results(path: str) -> Dict[str, BenchResult]:
    """Load one result file or every ``bench_*.json`` in a directory."""
    if os.path.isdir(path):
        out: Dict[str, BenchResult] = {}
        for name in sorted(os.listdir(path)):
            if name.startswith("bench_") and name.endswith(".json"):
                full = os.path.join(path, name)
                try:
                    result = BenchResult.read(full)
                except (ValueError, KeyError, json.JSONDecodeError) as exc:
                    # Foreign/legacy json is tolerated, but loudly: a
                    # corrupt baseline must not look like a clean compare.
                    print(f"load_results: skipping invalid {full}: {exc}",
                          file=sys.stderr)
                    continue
                existing = out.get(result.scenario)
                if existing is not None and existing.smoke != result.smoke:
                    if result.smoke:
                        continue  # a full-params point outranks its smoke twin
                out[result.scenario] = result
        if not out:
            raise ValueError(f"no valid bench_*.json results under {path!r}")
        return out
    result = BenchResult.read(path)
    return {result.scenario: result}
