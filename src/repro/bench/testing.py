"""pytest-benchmark glue: one thin wrapper per ``benchmarks/bench_*.py``.

Each legacy bench file is now a single line binding a registered scenario
to pytest-benchmark, via the ``scenario_bench`` helper in
``benchmarks/conftest.py`` (which partially applies this module's
:func:`pytest_scenario` with the shared out dir)::

    from conftest import scenario_bench
    test_figure_a = scenario_bench("figure_a")

The wrapper runs the scenario through :func:`repro.bench.runner.run_scenario`
(so a pytest bench run writes the same ``benchmarks/out/bench_<name>.json``
trajectory file as the CLI), prints the rendered figure/table the old bench
printed, and asserts every check the old bench asserted.
"""

from __future__ import annotations

from typing import Callable, Optional

import repro.bench.scenarios  # noqa: F401  (populates the registry)
from repro.bench.runner import run_scenario
from repro.bench.scenario import registry


def pytest_scenario(name: str, out_dir: Optional[str] = None,
                    smoke: bool = False) -> Callable:
    """Build a pytest-benchmark test function for scenario *name*."""
    scenario = registry.get(name)  # fail at collection, not at run time

    def test(benchmark):
        holder = {}

        def execute():
            holder["result"] = run_scenario(name, smoke=smoke,
                                            out_dir=out_dir)
            return holder["result"]

        benchmark.pedantic(execute, rounds=1, iterations=1)
        result = holder["result"]
        print()
        if result.rendered:
            print(result.rendered)
        failed = result.failed_checks()
        assert not failed, (
            f"scenario {name!r} failed checks: "
            + "; ".join(f"{c['name']} ({c.get('detail', '')})" for c in failed))

    test.__name__ = f"test_{name}"
    test.__doc__ = scenario.description
    return test
