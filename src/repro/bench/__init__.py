"""repro.bench — the unified benchmark harness and perf trajectory.

Layer contract: this package *owns* how the repo measures itself — the
declarative :class:`Scenario` registry wrapping every legacy
``benchmarks/bench_*.py``, the ``python -m repro.bench`` CLI
(``run | list | compare | report``), and the versioned
:class:`BenchResult` JSON envelope written to ``benchmarks/out/`` so
successive PRs accumulate a comparable perf trajectory.  It may import
anything below it (experiments, cluster, subsystems, core, sim); nothing
in ``src/repro`` outside this package may import it.

Entry points:

* ``python -m repro.bench list`` — the catalogue (28 scenarios,
  including the ``scale_*`` 10k-node sweeps and the ``adv_*`` chaos
  suite).
* ``python -m repro.bench run --smoke`` — CI's smoke pass: every
  scenario at reduced parameters, schema-valid JSON out.
* ``python -m repro.bench compare benchmarks/out old/`` — regression
  gate between two trajectory points (campaign aggregates are gated on
  CI overlap).
* ``python -m repro.bench report`` — the markdown ``docs/benchmarks.md``
  embeds.
* ``python -m repro.bench campaign SPEC --workers N`` — a
  scenario × params × seeds matrix fanned across spawn workers,
  aggregated to mean/std/confidence-interval per metric
  (:mod:`repro.bench.campaign`; ``campaign report`` and ``campaign
  compare`` render and gate the aggregates).

Scenario definitions live in :mod:`repro.bench.scenarios`; importing
that package (done lazily by the CLI and the pytest glue, eagerly by
``import repro.bench.scenarios``) populates :data:`registry`.
"""

from repro.bench.compare import Comparison, MetricDelta, compare_results
from repro.bench.result import SCHEMA, BenchResult, git_sha, load_results
from repro.bench.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignResult,
    CampaignSpec,
    compare_campaigns,
    deterministic_view,
    load_campaign,
    load_campaigns,
    parse_campaign,
    run_campaign,
)
from repro.bench.runner import run_scenario
from repro.bench.scenario import (
    Check,
    Metric,
    Scenario,
    ScenarioOutput,
    ScenarioRegistry,
    registry,
)
from repro.bench.testing import pytest_scenario

__all__ = [
    "BenchResult",
    "CAMPAIGN_SCHEMA",
    "CampaignResult",
    "CampaignSpec",
    "Check",
    "Comparison",
    "Metric",
    "MetricDelta",
    "SCHEMA",
    "Scenario",
    "ScenarioOutput",
    "ScenarioRegistry",
    "compare_campaigns",
    "compare_results",
    "deterministic_view",
    "git_sha",
    "load_campaign",
    "load_campaigns",
    "load_results",
    "parse_campaign",
    "pytest_scenario",
    "registry",
    "run_campaign",
    "run_scenario",
]
