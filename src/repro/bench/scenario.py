"""Scenario model: the declarative unit the benchmark harness executes.

A :class:`Scenario` is what a ``benchmarks/bench_*.py`` file used to be,
made machine-readable: a name, a parameter grid (full and ``--smoke``
variants), a seed policy, a declared metrics schema
(:class:`Metric` with a regression *direction* so ``compare`` knows which
way is worse), and a runner returning a :class:`ScenarioOutput` — scalar
metrics plus pass/fail :class:`Check` verdicts (the invariants the old
bench files ``assert``-ed) plus the rendered ASCII figure/table.

The module-level :data:`registry` is the single :class:`ScenarioRegistry`
everything (CLI, pytest glue, tests) shares; scenario definitions live in
:mod:`repro.bench.scenarios` and register themselves on import.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

#: Regression directions a metric may declare.
DIRECTIONS = ("higher", "lower", "neutral")

#: Scenario groups, in catalogue order.
GROUPS = ("figures", "ablations", "core", "baselines", "storage", "compute",
          "scale", "adversarial")


@dataclass(frozen=True)
class Metric:
    """One entry of a scenario's metrics schema.

    ``direction`` declares which way is *better*: ``"higher"`` (e.g.
    success rate), ``"lower"`` (e.g. wasted work), or ``"neutral"`` for
    informational values ``compare`` must not flag (e.g. tree height).
    """

    name: str
    unit: str = ""
    direction: str = "neutral"
    description: str = ""

    def __post_init__(self) -> None:
        if self.direction not in DIRECTIONS:
            raise ValueError(
                f"metric {self.name!r}: direction must be one of "
                f"{DIRECTIONS}, got {self.direction!r}")


@dataclass(frozen=True)
class Check:
    """One invariant verdict — a bench-file ``assert``, recorded not raised."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ScenarioOutput:
    """What a scenario runner returns."""

    metrics: Dict[str, float]
    checks: List[Check] = field(default_factory=list)
    rendered: str = ""

    def failed_checks(self) -> List[Check]:
        return [c for c in self.checks if not c.passed]


#: Runner signature: ``runner(params, seed, smoke) -> ScenarioOutput``.
Runner = Callable[[Mapping[str, Any], int, bool], ScenarioOutput]


@dataclass(frozen=True)
class Scenario:
    """A registered benchmark scenario."""

    name: str
    group: str
    description: str
    runner: Runner
    params: Mapping[str, Any] = field(default_factory=dict)
    smoke_params: Mapping[str, Any] = field(default_factory=dict)
    metrics: Tuple[Metric, ...] = ()
    seed: int = 42

    def __post_init__(self) -> None:
        if self.group not in GROUPS:
            raise ValueError(
                f"scenario {self.name!r}: group must be one of {GROUPS}, "
                f"got {self.group!r}")
        unknown = set(self.smoke_params) - set(self.params)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r}: smoke_params not in params: "
                f"{sorted(unknown)}")

    # ------------------------------------------------------------- helpers
    def metric_schema(self) -> Dict[str, Metric]:
        return {m.name: m for m in self.metrics}

    def effective_params(self, smoke: bool = False,
                         overrides: Optional[Mapping[str, Any]] = None,
                         ) -> Dict[str, Any]:
        """Full params, overlaid with smoke variants then CLI overrides."""
        out = dict(self.params)
        if smoke:
            out.update(self.smoke_params)
        for key, value in (overrides or {}).items():
            if key not in out:
                raise KeyError(
                    f"scenario {self.name!r} has no parameter {key!r} "
                    f"(known: {sorted(out)})")
            out[key] = self._coerce_param(key, out[key], value)
        return out

    def _coerce_param(self, name: str, default: Any, value: Any) -> Any:
        """Align an override's numeric type with the default's (the CLI
        parses ``--set lookups=1e2`` as a float, but ``range(lookups)``
        needs the int back) — rejecting lossy float→int up front."""
        if isinstance(default, bool) or isinstance(value, bool):
            return value
        if isinstance(default, int) and isinstance(value, float):
            if value.is_integer():
                return int(value)
            raise ValueError(
                f"scenario {self.name!r}: parameter {name!r} expects an "
                f"int, got {value!r}")
        if isinstance(default, float) and isinstance(value, int):
            return float(value)
        return value

    def execute(self, seed: Optional[int] = None, smoke: bool = False,
                overrides: Optional[Mapping[str, Any]] = None,
                ) -> ScenarioOutput:
        """Run the scenario and enforce its declared metrics schema."""
        params = self.effective_params(smoke=smoke, overrides=overrides)
        output = self.runner(params, self.seed if seed is None else seed, smoke)
        declared = set(self.metric_schema())
        produced = set(output.metrics)
        if produced != declared:
            missing, extra = declared - produced, produced - declared
            raise ValueError(
                f"scenario {self.name!r} violated its metrics schema: "
                f"missing={sorted(missing)} extra={sorted(extra)}")
        return output


class ScenarioRegistry:
    """Name → :class:`Scenario`, with a decorator-style ``register``."""

    def __init__(self) -> None:
        self._scenarios: Dict[str, Scenario] = {}

    def register(self, scenario: Scenario) -> Scenario:
        if scenario.name in self._scenarios:
            raise ValueError(f"duplicate scenario name {scenario.name!r}")
        self._scenarios[scenario.name] = scenario
        return scenario

    def get(self, name: str) -> Scenario:
        try:
            return self._scenarios[name]
        except KeyError:
            raise KeyError(
                f"unknown scenario {name!r}; known: {self.names()}") from None

    def names(self) -> List[str]:
        return sorted(self._scenarios)

    def all(self) -> List[Scenario]:
        """Catalogue order: by group, then name."""
        return sorted(self._scenarios.values(),
                      key=lambda s: (GROUPS.index(s.group), s.name))

    def by_group(self, group: str) -> List[Scenario]:
        if group not in GROUPS:
            raise KeyError(f"unknown group {group!r}; known: {list(GROUPS)}")
        return [s for s in self.all() if s.group == group]

    def __len__(self) -> int:
        return len(self._scenarios)

    def __contains__(self, name: str) -> bool:
        return name in self._scenarios


#: The process-wide registry (populated by importing repro.bench.scenarios).
registry = ScenarioRegistry()
