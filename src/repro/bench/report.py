"""Markdown rendering: the scenario catalogue and result tables.

``python -m repro.bench report`` prints GitHub-flavoured markdown —
``docs/benchmarks.md`` embeds the catalogue table this module generates,
and the results table turns a ``benchmarks/out/`` directory into a
human-readable trajectory point.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.bench.compare import Comparison
from repro.bench.result import BenchResult
from repro.bench.scenario import Scenario, registry


def _md_table(header: List[str], rows: Iterable[List[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "| " + " | ".join("---" for _ in header) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _params_str(scenario: Scenario) -> str:
    full = ", ".join(f"{k}={v}" for k, v in scenario.params.items())
    if scenario.smoke_params:
        smoke = ", ".join(f"{k}={v}" for k, v in scenario.smoke_params.items())
        return f"{full} (smoke: {smoke})"
    return full


def scenario_table() -> str:
    """The catalogue: every registered scenario, in group order."""
    rows = []
    for s in registry.all():
        directional = sum(1 for m in s.metrics if m.direction != "neutral")
        rows.append([
            f"`{s.name}`", s.group, s.description,
            f"`{_params_str(s)}`",
            f"{len(s.metrics)} ({directional} gated)",
        ])
    return _md_table(
        ["scenario", "group", "what it measures", "params", "metrics"], rows)


def results_table(results: Dict[str, BenchResult]) -> str:
    """One markdown block per result: metrics + check verdicts."""
    parts: List[str] = []
    for name in sorted(results):
        r = results[name]
        failed = r.failed_checks()
        verdict = ("all checks passed" if not failed else
                   f"**{len(failed)} check(s) FAILED**: "
                   + ", ".join(c["name"] for c in failed))
        parts.append(f"### `{name}`\n")
        parts.append(
            f"seed {r.seed} · {'smoke' if r.smoke else 'full'} params · "
            f"{r.wall_time_s:.2f}s wall · git `{r.git_sha[:12]}` · {verdict}\n")
        parts.append(_md_table(
            ["metric", "value"],
            [[f"`{k}`", f"{v:.6g}"] for k, v in sorted(r.metrics.items())]))
        parts.append("")
    return "\n".join(parts)


def comparison_table(comparison: Comparison) -> str:
    """Markdown diff table for ``compare`` output."""
    rows = []
    for d in comparison.deltas:
        flag = {"regression": "🔴 regression", "improvement": "🟢 improvement",
                "ok": "ok", "neutral": "·"}[d.status]
        rows.append([f"`{d.scenario}`", f"`{d.metric}`", d.direction,
                     f"{d.old:.6g}", f"{d.new:.6g}",
                     f"{100 * d.rel_change:+.1f}%", flag])
    out = [_md_table(
        ["scenario", "metric", "better", "old", "new", "change", "status"],
        rows)]
    if comparison.mismatched:
        out.append("\nNot comparable (seed/params/smoke differ): "
                   + ", ".join(comparison.mismatched))
    if comparison.metric_drift:
        out.append("\nMetric drift (present in only one run): "
                   + ", ".join(comparison.metric_drift))
    if comparison.only_old:
        out.append("\nOnly in OLD: " + ", ".join(comparison.only_old))
    if comparison.only_new:
        out.append("\nOnly in NEW: " + ", ".join(comparison.only_new))
    return "\n".join(out)
