"""Markdown rendering: the scenario catalogue and result tables.

``python -m repro.bench report`` prints GitHub-flavoured markdown —
``docs/benchmarks.md`` embeds the catalogue table this module generates,
and the results table turns a ``benchmarks/out/`` directory into a
human-readable trajectory point.  ``python -m repro.bench campaign
report`` renders the per-point mean ± CI tables (and, behind a soft
matplotlib import, error-bar plots) for a campaign aggregate.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.bench.campaign import CampaignComparison, CampaignResult
from repro.bench.compare import Comparison
from repro.bench.result import BenchResult
from repro.bench.scenario import Scenario, registry
from repro.metrics.stats import SampleSummary


def _md_table(header: List[str], rows: Iterable[List[str]]) -> str:
    lines = ["| " + " | ".join(header) + " |",
             "| " + " | ".join("---" for _ in header) + " |"]
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def _params_str(scenario: Scenario) -> str:
    full = ", ".join(f"{k}={v}" for k, v in scenario.params.items())
    if scenario.smoke_params:
        smoke = ", ".join(f"{k}={v}" for k, v in scenario.smoke_params.items())
        return f"{full} (smoke: {smoke})"
    return full


def scenario_table() -> str:
    """The catalogue: every registered scenario, in group order."""
    rows = []
    for s in registry.all():
        directional = sum(1 for m in s.metrics if m.direction != "neutral")
        rows.append([
            f"`{s.name}`", s.group, s.description,
            f"`{_params_str(s)}`",
            f"{len(s.metrics)} ({directional} gated)",
        ])
    return _md_table(
        ["scenario", "group", "what it measures", "params", "metrics"], rows)


def results_table(results: Dict[str, BenchResult]) -> str:
    """One markdown block per result: metrics + check verdicts."""
    parts: List[str] = []
    for name in sorted(results):
        r = results[name]
        failed = r.failed_checks()
        verdict = ("all checks passed" if not failed else
                   f"**{len(failed)} check(s) FAILED**: "
                   + ", ".join(c["name"] for c in failed))
        parts.append(f"### `{name}`\n")
        parts.append(
            f"seed {r.seed} · {'smoke' if r.smoke else 'full'} params · "
            f"{r.wall_time_s:.2f}s wall · git `{r.git_sha[:12]}` · {verdict}\n")
        parts.append(_md_table(
            ["metric", "value"],
            [[f"`{k}`", f"{v:.6g}"] for k, v in sorted(r.metrics.items())]))
        parts.append("")
    return "\n".join(parts)


def _summary_cells(s: SampleSummary) -> List[str]:
    if s.ci_lo is None or s.ci_hi is None:
        ci = "— (n=1)"
    else:
        ci = f"[{s.ci_lo:.6g}, {s.ci_hi:.6g}]"
    return [f"{s.mean:.6g}", f"{s.std:.6g}", ci, f"{s.n}"]


def campaign_table(result: CampaignResult) -> str:
    """One markdown block per param point: mean / std / CI per metric."""
    pct = 100.0 * result.confidence
    parts: List[str] = [
        f"### campaign `{result.campaign}` — scenario `{result.scenario}`\n",
        f"seeds {result.seeds} · {'smoke' if result.smoke else 'full'} params "
        f"· {result.workers} worker(s) · {result.ci_method} CIs at {pct:g}% · "
        f"{result.wall_time_s:.2f}s wall · git `{result.git_sha[:12]}`\n",
    ]
    for i, point in enumerate(result.points):
        params = ", ".join(f"{k}={v}"
                           for k, v in sorted(point["params"].items()))
        failed = [c for c in point["checks"] if not c.get("passed")]
        verdict = ("all checks passed in every repetition" if not failed else
                   f"**{len(failed)} check(s) FAILED**: "
                   + ", ".join(f"{c['name']} (seeds {c['failed_seeds']})"
                               for c in failed))
        parts.append(f"#### point {i}: `{params}`\n")
        parts.append(verdict + "\n")
        rows = [[f"`{name}`", *_summary_cells(SampleSummary.from_dict(entry))]
                for name, entry in sorted(point["metrics"].items())]
        parts.append(_md_table(
            ["metric", "mean", "std", f"{pct:g}% CI", "n"], rows))
        parts.append("")
    return "\n".join(parts)


def campaign_comparison_table(comparison: CampaignComparison) -> str:
    """Markdown diff table for CI-overlap campaign comparison."""
    rows = []
    for d in comparison.deltas:
        flag = {"regression": "🔴 regression", "improvement": "🟢 improvement",
                "ok": "ok (CIs overlap)", "neutral": "·"}[d.status]
        point = ", ".join(f"{k}={v}" for k, v in sorted(d.params.items()))
        old_ci = ("—" if d.old.ci_lo is None
                  else f"[{d.old.ci_lo:.6g}, {d.old.ci_hi:.6g}]")
        new_ci = ("—" if d.new.ci_lo is None
                  else f"[{d.new.ci_lo:.6g}, {d.new.ci_hi:.6g}]")
        rows.append([f"`{d.campaign}`", f"`{point}`", f"`{d.metric}`",
                     d.direction, f"{d.old.mean:.6g} {old_ci}",
                     f"{d.new.mean:.6g} {new_ci}", flag])
    out = [_md_table(
        ["campaign", "point", "metric", "better", "old mean [CI]",
         "new mean [CI]", "status"], rows)]
    if comparison.mismatched:
        out.append("\nNot comparable (scenario/smoke differ): "
                   + ", ".join(comparison.mismatched))
    if comparison.unpaired_points:
        out.append("\nUnpaired param points: "
                   + "; ".join(comparison.unpaired_points))
    if comparison.only_old:
        out.append("\nOnly in OLD: " + ", ".join(comparison.only_old))
    if comparison.only_new:
        out.append("\nOnly in NEW: " + ", ".join(comparison.only_new))
    return "\n".join(out)


def campaign_plots(result: CampaignResult, out_dir: str,
                   ) -> Tuple[List[str], Optional[str]]:
    """Write one error-bar PNG per metric (x = param point, y = mean ± CI).

    matplotlib is a soft dependency: when it is not installed this
    returns ``([], reason)`` instead of raising, so ``campaign report
    --plots`` degrades to the tables alone.  Each figure carries a single
    series on a single axis (the title names it — no legend needed),
    with a recessive grid.
    """
    try:
        import matplotlib
        matplotlib.use("Agg")  # headless: never require a display
        import matplotlib.pyplot as plt
    except ImportError:
        return [], ("matplotlib is not installed — tables only "
                    "(pip install matplotlib to enable plots)")
    os.makedirs(out_dir, exist_ok=True)
    # Label x ticks with the swept axes only — fixed params are noise.
    swept = {k for p in result.points for k, v in p["params"].items()
             if any(p2["params"].get(k) != v for p2 in result.points)}
    labels = []
    for i, p in enumerate(result.points):
        lab = ", ".join(f"{k}={p['params'][k]}" for k in sorted(swept)
                        if k in p["params"])
        labels.append(lab or f"point {i}")
    metric_names = sorted(result.points[0]["metrics"])
    written: List[str] = []
    for name in metric_names:
        means, halves = [], []
        for point in result.points:
            s = SampleSummary.from_dict(point["metrics"][name])
            means.append(s.mean)
            halves.append(s.half_width or 0.0)
        fig, ax = plt.subplots(figsize=(6.4, 4.0))
        x = range(len(means))
        ax.errorbar(x, means, yerr=halves, fmt="o-", color="#4063d8",
                    ecolor="#9aa7c7", elinewidth=2, capsize=4, linewidth=2,
                    markersize=6)
        ax.set_xticks(list(x), labels, rotation=20, ha="right", fontsize=8)
        ax.set_title(f"{result.campaign}: {name} "
                     f"(mean ± {100 * result.confidence:g}% CI, "
                     f"n={len(result.seeds)} seeds)", fontsize=10)
        ax.grid(True, axis="y", alpha=0.25, linewidth=0.5)
        ax.spines[["top", "right"]].set_visible(False)
        fig.tight_layout()
        path = os.path.join(out_dir,
                            f"campaign_{result.campaign}_{name}.png")
        fig.savefig(path, dpi=120)
        plt.close(fig)
        written.append(path)
    return written, None


def comparison_table(comparison: Comparison) -> str:
    """Markdown diff table for ``compare`` output."""
    rows = []
    for d in comparison.deltas:
        flag = {"regression": "🔴 regression", "improvement": "🟢 improvement",
                "ok": "ok", "neutral": "·"}[d.status]
        rows.append([f"`{d.scenario}`", f"`{d.metric}`", d.direction,
                     f"{d.old:.6g}", f"{d.new:.6g}",
                     f"{100 * d.rel_change:+.1f}%", flag])
    out = [_md_table(
        ["scenario", "metric", "better", "old", "new", "change", "status"],
        rows)]
    if comparison.mismatched:
        out.append("\nNot comparable (seed/params/smoke differ): "
                   + ", ".join(comparison.mismatched))
    if comparison.metric_drift:
        out.append("\nMetric drift (present in only one run): "
                   + ", ".join(comparison.metric_drift))
    if comparison.only_old:
        out.append("\nOnly in OLD: " + ", ".join(comparison.only_old))
    if comparison.only_new:
        out.append("\nOnly in NEW: " + ", ".join(comparison.only_new))
    return "\n".join(out)
