"""The harness CLI: ``python -m repro.bench run|list|compare|report|campaign``.

* ``list`` — the scenario catalogue (name, group, params, metric count).
* ``run [NAMES] [--group G] [--smoke] [--seed S] [--set k=v] [--out DIR]``
  — execute scenarios through the Cluster-facade-backed runners, print
  each rendered figure/table, write one ``bench_<name>.json``
  :class:`~repro.bench.result.BenchResult` per scenario.  Exit 1 if any
  scenario check fails (``--no-checks`` downgrades that to a report).
* ``compare OLD NEW [--threshold T] [--scenario NAME]`` — diff two result
  files/directories; exit 1 on any regression beyond the threshold.
  Campaign aggregates (``campaign_*.json``) are recognised and gated on
  **CI overlap** of each param point instead of point deltas.
* ``report [--results DIR] [--scenarios-only]`` — markdown for the docs.
* ``campaign SPEC [--workers N] [--smoke] [--out DIR]`` — run a
  scenario × params × seeds matrix across processes and aggregate
  mean/std/CI per metric (``campaign report`` / ``campaign compare``
  render and gate the aggregates; see :mod:`repro.bench.campaign`).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

import repro.bench.scenarios  # noqa: F401  (populates the registry)
from repro.bench.campaign import (
    CAMPAIGN_SCHEMA,
    CampaignResult,
    compare_campaigns,
    load_campaign,
    load_campaigns,
    run_campaign,
)
from repro.bench.compare import DEFAULT_THRESHOLD, compare_results
from repro.bench.report import (
    campaign_comparison_table,
    campaign_plots,
    campaign_table,
    comparison_table,
    results_table,
    scenario_table,
)
from repro.bench.result import load_results
from repro.bench.runner import run_scenario
from repro.bench.scenario import GROUPS, registry
from repro.viz.ascii import table

DEFAULT_OUT = "benchmarks/out"

#: ``campaign`` sub-actions; a bare spec path implies ``run``.
CAMPAIGN_ACTIONS = ("run", "report", "compare")


def _parse_override(text: str) -> Any:
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Unified benchmark harness: run scenarios, track the "
                    "perf trajectory, compare runs, render reports.")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the scenario catalogue")

    run_p = sub.add_parser("run", help="execute scenarios, write BenchResult JSON")
    run_p.add_argument("names", nargs="*",
                       help="scenario names (default: every scenario)")
    run_p.add_argument("--group", choices=GROUPS,
                       help="run every scenario in one group")
    run_p.add_argument("--smoke", action="store_true",
                       help="reduced parameters (CI-speed, same code paths)")
    run_p.add_argument("--seed", type=int, default=None,
                       help="override every scenario's seed")
    run_p.add_argument("--set", dest="overrides", action="append", default=[],
                       metavar="KEY=VALUE", help="override one parameter")
    run_p.add_argument("--out", default=DEFAULT_OUT,
                       help=f"result directory (default: {DEFAULT_OUT})")
    run_p.add_argument("--no-write", action="store_true",
                       help="do not write result files")
    run_p.add_argument("--no-checks", action="store_true",
                       help="report failed checks without failing the run")
    run_p.add_argument("--quiet", action="store_true",
                       help="suppress the rendered figures/tables")
    run_p.add_argument("--trace-out", default=None, metavar="DIR",
                       help="record an observability trace per scenario to "
                            "DIR/trace_<name>.npz (query with "
                            "`python -m repro.obs summary`)")
    run_p.add_argument("--slo", default=None, metavar="FILE",
                       help="evaluate this SLO spec (.toml/.json) against "
                            "every scenario's recorded spans; exit 1 and "
                            "name the violated rules when any objective "
                            "breaks")

    cmp_p = sub.add_parser("compare", help="diff two results, flag regressions")
    cmp_p.add_argument("old", help="baseline: a bench_*.json file or directory")
    cmp_p.add_argument("new", help="candidate: a bench_*.json file or directory")
    cmp_p.add_argument("--threshold", type=float, default=DEFAULT_THRESHOLD,
                       help="relative regression gate (default 0.10 = 10%%)")
    cmp_p.add_argument("--scenario", default=None,
                       help="restrict the diff to one scenario")

    rep_p = sub.add_parser("report", help="render markdown for the docs")
    rep_p.add_argument("--results", default=None,
                       help="also render results from this file/directory")
    rep_p.add_argument("--scenarios-only", action="store_true",
                       help="only the scenario catalogue table")

    camp_p = sub.add_parser(
        "campaign",
        help="scenario × params × seeds matrix across processes, with CIs")
    camp_sub = camp_p.add_subparsers(dest="action", required=True)
    crun = camp_sub.add_parser(
        "run", help="execute a campaign spec (a bare SPEC path implies run)")
    crun.add_argument("spec", help="campaign spec file (.toml or .json)")
    crun.add_argument("--workers", type=int, default=1, metavar="N",
                      help="spawn N worker processes (default 1 = in-process)")
    crun.add_argument("--smoke", action="store_true",
                      help="reduced parameters (CI-speed, same code paths)")
    crun.add_argument("--out", default=DEFAULT_OUT,
                      help=f"result directory (default: {DEFAULT_OUT})")
    crun.add_argument("--no-write", action="store_true",
                      help="do not write the aggregate envelope")
    crun.add_argument("--no-checks", action="store_true",
                      help="report failed checks without failing the run")
    crun.add_argument("--quiet", action="store_true",
                      help="suppress the per-point markdown tables")
    crep = camp_sub.add_parser(
        "report", help="render a campaign aggregate as markdown (+ plots)")
    crep.add_argument("result", help="a campaign_*.json file or directory")
    crep.add_argument("--plots", default=None, metavar="DIR",
                      help="also write per-metric error-bar PNGs to DIR "
                           "(soft matplotlib dependency)")
    ccmp = camp_sub.add_parser(
        "compare", help="CI-overlap gate between two campaign aggregates")
    ccmp.add_argument("old", help="baseline campaign_*.json file or directory")
    ccmp.add_argument("new", help="candidate campaign_*.json file or directory")
    return parser


def _select(names: List[str], group: Optional[str]) -> List[str]:
    if names and group:
        raise SystemExit("give scenario names or --group, not both")
    if group:
        return [s.name for s in registry.by_group(group)]
    if names:
        for name in names:
            registry.get(name)  # raises with the known-name list
        return names
    return [s.name for s in registry.all()]


def _cmd_list() -> int:
    rows = [[s.name, s.group, f"{len(s.metrics)}",
             s.description] for s in registry.all()]
    print(table(["scenario", "group", "metrics", "what it measures"], rows,
                title=f"repro.bench — {len(registry)} registered scenarios"))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    overrides: Dict[str, Any] = {}
    for item in args.overrides:
        if "=" not in item:
            raise SystemExit(f"--set expects KEY=VALUE, got {item!r}")
        key, _, value = item.partition("=")
        overrides[key] = _parse_override(value)

    names = _select(args.names, args.group)
    if overrides:
        # Validate --set against every selected scenario up front — a
        # KeyError after minutes of completed scenarios helps nobody.
        bad = []
        for name in names:
            try:
                registry.get(name).effective_params(smoke=args.smoke,
                                                    overrides=overrides)
            except (KeyError, ValueError) as exc:
                bad.append(f"  {name}: {exc.args[0]}")
        if bad:
            raise SystemExit(
                "--set does not apply to every selected scenario:\n"
                + "\n".join(bad)
                + "\nname the scenarios explicitly to use these overrides")
    out_dir = None if args.no_write else args.out
    failed_scenarios: List[str] = []
    slo_violated: List[str] = []
    for name in names:
        result = run_scenario(name, seed=args.seed, smoke=args.smoke,
                              overrides=overrides or None, out_dir=out_dir,
                              trace_out=args.trace_out, slo=args.slo)
        failed = result.failed_checks()
        status = "ok" if not failed else f"{len(failed)} CHECK(S) FAILED"
        suffix = ".smoke.json" if args.smoke else ".json"
        print(f"[{result.scenario}] {status} — {result.wall_time_s:.2f}s, "
              f"{len(result.metrics)} metrics"
              + (f" -> {out_dir}/bench_{name}{suffix}" if out_dir else ""))
        if result.obs:
            print(f"  trace: {result.obs['trace_file']} "
                  f"({result.obs['runs']} run(s), {result.obs['spans']} "
                  f"spans, {result.obs['events']} events)")
        if result.slo:
            if result.slo["passed"]:
                print(f"  slo: {result.slo['rules']} objective(s) met "
                      f"({result.slo['spec']})")
            else:
                for v in result.slo["violations"]:
                    print(f"  SLO VIOLATION [{v['run']}] rule={v['rule']} "
                          f"observed={v['observed']:.6g} limit={v['limit']:g}"
                          + (f" ({v['detail']})" if v.get("detail") else ""))
                slo_violated.append(name)
        if not args.quiet and result.rendered:
            print(result.rendered)
            print()
        for check in failed:
            print(f"  FAILED {check['name']}: {check.get('detail', '')}")
        if failed:
            failed_scenarios.append(name)
    exit_code = 0
    if failed_scenarios:
        print(f"\nchecks failed in: {', '.join(failed_scenarios)}")
        if not args.no_checks:
            exit_code = 1
    if slo_violated:
        print(f"\nSLO violations in: {', '.join(slo_violated)}")
        exit_code = 1
    return exit_code


def _load_both_kinds(path: str) -> Tuple[Optional[Dict[str, Any]],
                                         Optional[Dict[str, CampaignResult]]]:
    """Load whatever *path* holds: plain ``bench_*.json`` results,
    ``campaign_*.json`` aggregates, or (for a directory) both."""
    if os.path.isfile(path):
        with open(path) as fh:
            schema = json.load(fh).get("schema")
        if schema == CAMPAIGN_SCHEMA:
            return None, load_campaigns(path)
        return load_results(path), None
    results = campaigns = None
    try:
        results = load_results(path)
    except ValueError:
        pass
    try:
        campaigns = load_campaigns(path)
    except ValueError:
        pass
    if results is None and campaigns is None:
        raise SystemExit(
            f"no bench_*.json or campaign_*.json results under {path!r}")
    return results, campaigns


def _compare_campaign_sets(old: Dict[str, CampaignResult],
                           new: Dict[str, CampaignResult]) -> Tuple[int, int]:
    """Print the CI-overlap diff; return (metrics compared, regressions)."""
    comparison = compare_campaigns(old, new)
    print(campaign_comparison_table(comparison))
    regressions = comparison.regressions()
    print(f"\n{len(comparison.deltas)} aggregated metrics compared by CI "
          f"overlap: {len(regressions)} regression(s), "
          f"{len(comparison.improvements())} improvement(s)")
    for d in regressions:
        print(f"  REGRESSION {d.describe()}")
    return len(comparison.deltas), len(regressions)


def _cmd_compare(args: argparse.Namespace) -> int:
    old_results, old_campaigns = _load_both_kinds(args.old)
    new_results, new_campaigns = _load_both_kinds(args.new)
    compared = regressions_n = 0
    if old_results is not None and new_results is not None:
        comparison = compare_results(
            old_results, new_results,
            threshold=args.threshold, scenario=args.scenario)
        print(comparison_table(comparison))
        for name in comparison.mismatched:
            print(f"  WARNING {name}: seed/params/smoke differ between the "
                  f"two runs — not compared (measure like with like; for "
                  f"cross-seed comparisons record a campaign aggregate "
                  f"instead — `python -m repro.bench campaign`)")
        for drift in comparison.metric_drift:
            print(f"  WARNING metric drift: {drift}")
        regressions = comparison.regressions()
        improvements = comparison.improvements()
        print(f"\n{len(comparison.deltas)} metrics compared at "
              f"±{100 * comparison.threshold:.0f}%: "
              f"{len(regressions)} regression(s), "
              f"{len(improvements)} improvement(s)")
        for d in regressions:
            print(f"  REGRESSION {d.describe()}")
        compared += len(comparison.deltas)
        regressions_n += len(regressions)
    if old_campaigns is not None and new_campaigns is not None:
        # Campaign aggregates carry distributions, not points: the pair is
        # gated on CI overlap per param point, so differing seed lists
        # compare like-for-like instead of being skipped.
        n_deltas, n_reg = _compare_campaign_sets(old_campaigns, new_campaigns)
        compared += n_deltas
        regressions_n += n_reg
    if not compared:
        # A gate that measured nothing must not report a pass: typo'd
        # --scenario, disjoint result sets, or all pairs mismatched.
        print("ERROR: zero metrics were compared — nothing was gated")
        return 2
    return 1 if regressions_n else 0


def _cmd_report(args: argparse.Namespace) -> int:
    print("## Scenario catalogue\n")
    print(scenario_table())
    if not args.scenarios_only and args.results:
        print("\n## Results\n")
        print(results_table(load_results(args.results)))
    return 0


def _cmd_campaign_run(args: argparse.Namespace) -> int:
    try:
        spec = load_campaign(args.spec)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load campaign spec: {exc}")
    if args.workers < 1:
        raise SystemExit(f"--workers must be >= 1, got {args.workers}")
    points = len(spec.points())
    print(f"[campaign {spec.name}] {spec.scenario}: {points} param point(s) "
          f"× {len(spec.seeds)} seed(s) = {len(spec)} repetition(s), "
          f"{args.workers} worker(s)")

    def progress(done: int, total: int, rep: Dict[str, Any]) -> None:
        failed = sum(1 for c in rep["checks"] if not c.get("passed"))
        status = "ok" if not failed else f"{failed} CHECK(S) FAILED"
        print(f"  [{done}/{total}] seed={rep['seed']} {status} "
              f"({rep['wall_time_s']:.2f}s)")

    try:
        result = run_campaign(spec, smoke=args.smoke, workers=args.workers,
                              progress=progress)
    except KeyError as exc:
        raise SystemExit(exc.args[0])
    if not args.no_write:
        path = result.write(args.out)
        print(f"[campaign {spec.name}] aggregate -> {path}")
    if not args.quiet:
        print()
        print(campaign_table(result))
    failed = result.failed_checks()
    if failed:
        for check in failed:
            print(f"  FAILED {check['name']} at seeds {check['failed_seeds']}")
        if not args.no_checks:
            return 1
    return 0


def _cmd_campaign_report(args: argparse.Namespace) -> int:
    campaigns = load_campaigns(args.result)
    for name in sorted(campaigns):
        result = campaigns[name]
        print(campaign_table(result))
        if args.plots:
            written, skipped = campaign_plots(result, args.plots)
            if skipped:
                print(f"plots skipped: {skipped}")
            for path in written:
                print(f"plot: {path}")
    return 0


def _cmd_campaign_compare(args: argparse.Namespace) -> int:
    compared, regressions = _compare_campaign_sets(
        load_campaigns(args.old), load_campaigns(args.new))
    if not compared:
        print("ERROR: zero metrics were compared — nothing was gated")
        return 2
    return 1 if regressions else 0


def _normalize_argv(argv: List[str]) -> List[str]:
    """``campaign SPEC …`` is sugar for ``campaign run SPEC …`` — the
    acceptance-path spelling ``python -m repro.bench campaign spec.toml
    --workers 2`` works without naming the action."""
    if not argv or argv[0] != "campaign":
        return argv
    rest = argv[1:]
    if rest and rest[0] not in (*CAMPAIGN_ACTIONS, "-h", "--help"):
        return ["campaign", "run", *rest]
    return argv


def main(argv: Optional[List[str]] = None) -> int:
    argv = _normalize_argv(sys.argv[1:] if argv is None else list(argv))
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "campaign":
        if args.action == "run":
            return _cmd_campaign_run(args)
        if args.action == "report":
            return _cmd_campaign_report(args)
        return _cmd_campaign_compare(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
