"""Result comparison: diff two trajectory points, flag regressions.

``python -m repro.bench compare OLD NEW`` loads two results (single
``bench_*.json`` files or whole ``benchmarks/out/`` directories), pairs
them by scenario, and evaluates every *directional* metric (declared
``"higher"`` or ``"lower"`` in the scenario's schema; ``"neutral"``
metrics are reported but never flagged).  A metric regresses when it
moves in its bad direction by more than ``threshold`` (relative, default
10%).  Identical runs therefore compare clean, and a synthetic 20%
slowdown on a lower-is-better metric trips the gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bench.result import BenchResult
from repro.bench.scenario import Metric, registry

#: Default relative-change gate.
DEFAULT_THRESHOLD = 0.10

#: Ignore absolute drifts below this on near-zero baselines (a metric
#: moving 0.001 -> 0.002 is noise, not a 2x regression).  Every declared
#: metric lives in units (fractions, %, hops, ops/s, work) where a move
#: this small is meaningless.
ABS_NOISE_FLOOR = 1e-3


@dataclass(frozen=True)
class MetricDelta:
    """One metric's movement between two runs of the same scenario."""

    scenario: str
    metric: str
    direction: str
    old: float
    new: float
    rel_change: float  # signed (new - old) / |old|
    status: str  # "ok" | "regression" | "improvement" | "neutral"

    def describe(self) -> str:
        pct = 100.0 * self.rel_change
        return (f"{self.scenario}.{self.metric}: {self.old:.6g} -> "
                f"{self.new:.6g} ({pct:+.1f}%, {self.direction} is better)"
                if self.direction != "neutral"
                else f"{self.scenario}.{self.metric}: {self.old:.6g} -> "
                     f"{self.new:.6g} ({pct:+.1f}%)")


@dataclass
class Comparison:
    """Full diff of two result sets."""

    deltas: List[MetricDelta]
    only_old: List[str]
    only_new: List[str]
    threshold: float
    #: Scenario pairs whose seed/params/smoke flag differ — values from
    #: different experiments are not compared, only reported here.
    mismatched: List[str] = field(default_factory=list)
    #: Metric-level drift within paired scenarios, e.g.
    #: ``"compute: -checkpoint_wasted_work"`` (a gated metric vanishing
    #: from the candidate must not pass invisibly).
    metric_drift: List[str] = field(default_factory=list)

    def regressions(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    def improvements(self) -> List[MetricDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions()


def _metric_direction(scenario: str, metric: str) -> str:
    """Direction from the live registry; neutral for unknown metrics, so
    old result files stay comparable after a scenario reshapes."""
    if scenario in registry:
        schema: Dict[str, Metric] = registry.get(scenario).metric_schema()
        if metric in schema:
            return schema[metric].direction
    return "neutral"


def compare_results(old: Dict[str, BenchResult], new: Dict[str, BenchResult],
                    threshold: float = DEFAULT_THRESHOLD,
                    scenario: Optional[str] = None) -> Comparison:
    """Diff two result sets keyed by scenario name."""
    if scenario is not None:
        old = {k: v for k, v in old.items() if k == scenario}
        new = {k: v for k, v in new.items() if k == scenario}
    deltas: List[MetricDelta] = []
    mismatched: List[str] = []
    metric_drift: List[str] = []
    for name in sorted(set(old) & set(new)):
        before, after = old[name], new[name]
        if (before.smoke != after.smoke or before.seed != after.seed
                or before.params != after.params):
            # A smoke run vs a full run (or different seeds/params) is a
            # different experiment — gating on it would manufacture
            # regressions, so the pair is reported, not compared.
            mismatched.append(name)
            continue
        for gone in sorted(set(before.metrics) - set(after.metrics)):
            metric_drift.append(f"{name}: -{gone}")
        for fresh in sorted(set(after.metrics) - set(before.metrics)):
            metric_drift.append(f"{name}: +{fresh}")
        for metric in sorted(set(before.metrics) & set(after.metrics)):
            ov, nv = before.metrics[metric], after.metrics[metric]
            diff = nv - ov
            rel = diff / abs(ov) if abs(ov) > 0 else (0.0 if diff == 0 else float("inf"))
            direction = _metric_direction(name, metric)
            if direction == "neutral":
                status = "neutral"
            elif abs(diff) <= ABS_NOISE_FLOOR:
                status = "ok"
            else:
                worse = rel > threshold if direction == "lower" else rel < -threshold
                better = rel < -threshold if direction == "lower" else rel > threshold
                status = ("regression" if worse
                          else "improvement" if better else "ok")
            deltas.append(MetricDelta(
                scenario=name, metric=metric, direction=direction,
                old=ov, new=nv, rel_change=rel, status=status))
    return Comparison(
        deltas=deltas,
        only_old=sorted(set(old) - set(new)),
        only_new=sorted(set(new) - set(old)),
        threshold=threshold,
        mismatched=mismatched,
        metric_drift=metric_drift,
    )
