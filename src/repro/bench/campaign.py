"""Process-parallel experiment campaigns: scenario × params × seeds.

A **campaign** turns one scenario into a distribution: a declarative
spec (TOML or JSON, the same loading discipline as :mod:`repro.obs.slo`)
names a registered scenario, a seed list, and a parameter grid; the
runner executes exactly one repetition per (param point, seed) — fanned
across ``multiprocessing`` *spawn* workers — and aggregates each metric
across seeds into mean / sample stddev / confidence interval
(Student-t by default, percentile bootstrap on request; the math lives
in :mod:`repro.metrics.stats`).

The spec::

    [campaign]
    name = "lookup_sweep"
    scenario = "scale_lookup"
    seeds = [101, 202, 303]
    confidence = 0.95        # optional (default 0.95)
    ci = "t"                 # optional: "t" | "bootstrap"

    [campaign.params]        # list => swept axis, scalar => fixed override
    lookups = [150, 300]

Every repetition runs through the single :func:`repro.bench.runner.run_scenario`
seam — the same entry point the CLI ``run`` subcommand and the pytest
glue use — so a campaign repetition at seed *s* is **bit-identical** on
its deterministic fields to ``python -m repro.bench run <scenario>
--seed s`` in one process (``tests/test_campaign_determinism.py`` pins
this across a spawned worker).  The aggregate envelope
(:data:`CAMPAIGN_SCHEMA`) embeds the full per-repetition
:class:`~repro.bench.result.BenchResult` dicts, and is written to
``benchmarks/out/campaign_<name>.json`` (``.smoke.json`` for smoke
runs), where ``python -m repro.bench compare`` recognises it and gates
on **CI overlap** instead of point deltas.
"""

from __future__ import annotations

import itertools
import json
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bench.result import validate_result_dict
from repro.bench.runner import run_scenario
from repro.bench.scenario import registry
from repro.metrics.stats import CI_METHODS, SampleSummary, summarize_samples

#: Aggregate envelope schema identifier; bump on breaking field changes.
CAMPAIGN_SCHEMA = "repro.bench/campaign-1"

#: Fields every campaign envelope must carry.
CAMPAIGN_REQUIRED_FIELDS = (
    "schema", "campaign", "scenario", "group", "git_sha", "seeds", "smoke",
    "workers", "confidence", "ci_method", "wall_time_s", "metrics_aggregated",
    "unix_time", "points",
)

#: Envelope fields that record *when/where* a run happened, not *what* it
#: computed — stripped by :func:`deterministic_view`.
WALLCLOCK_ENVELOPE_FIELDS = ("wall_time_s", "unix_time", "git_sha")

#: Substrings marking a metric as wall-clock-derived (events/sec, build
#: seconds, …) — such metrics legitimately move between identical-seed
#: runs and are excluded from determinism comparisons (the same taxonomy
#: ``tests/test_sim_scale.py`` uses for its pinned smoke metrics).
WALLCLOCK_METRIC_MARKERS = ("_per_second", "_seconds", "per_sec", "wall")


def is_wallclock_metric(name: str) -> bool:
    """True when metric *name* measures wall-clock speed, not simulation
    semantics (``events_per_second_mid_n``, ``build_seconds``, …)."""
    return any(marker in name for marker in WALLCLOCK_METRIC_MARKERS)


def deterministic_view(data: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of a result envelope with every wall-clock field removed.

    Works on both envelope kinds — a :class:`~repro.bench.result.BenchResult`
    dict (``repro.bench/1``) and a campaign aggregate
    (:data:`CAMPAIGN_SCHEMA`), recursing into the aggregate's embedded
    repetitions.  Two runs of the same (scenario, seed, params) must
    produce equal views; anything that differs is a determinism bug.
    """
    out = {k: v for k, v in data.items()
           if k not in WALLCLOCK_ENVELOPE_FIELDS}
    if out.get("schema") == CAMPAIGN_SCHEMA:
        points = []
        for point in out.get("points", []):
            p = dict(point)
            p["metrics"] = {k: v for k, v in p.get("metrics", {}).items()
                            if not is_wallclock_metric(k)}
            p["repetitions"] = [deterministic_view(rep)
                                for rep in p.get("repetitions", [])]
            points.append(p)
        out["points"] = points
    else:
        out["metrics"] = {k: v for k, v in out.get("metrics", {}).items()
                          if not is_wallclock_metric(k)}
    return out


# ------------------------------------------------------------------ the spec
@dataclass(frozen=True)
class CampaignSpec:
    """A parsed, validated campaign declaration."""

    name: str
    scenario: str
    seeds: Tuple[int, ...]
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()  # sorted by axis name
    fixed: Mapping[str, Any] = field(default_factory=dict)
    confidence: float = 0.95
    ci_method: str = "t"
    resamples: int = 2000
    source: str = "<dict>"

    def points(self) -> List[Dict[str, Any]]:
        """Every param point of the grid, in deterministic (sorted-axis,
        row-major) order; each is an overrides dict for ``run_scenario``."""
        if not self.axes:
            return [dict(self.fixed)]
        names = [a for a, _ in self.axes]
        out = []
        for combo in itertools.product(*(vals for _, vals in self.axes)):
            point = dict(self.fixed)
            point.update(zip(names, combo))
            out.append(point)
        return out

    def __len__(self) -> int:
        """Total repetitions: |grid| × |seeds|."""
        return len(self.points()) * len(self.seeds)


# ---------------------------------------------------------------- spec loading
def _parse_array(text: str, lineno: int) -> List[Any]:
    body = text[1:-1].strip()
    if not body:
        return []
    return [_parse_scalar(part.strip(), lineno)
            for part in body.split(",") if part.strip()]


def _parse_scalar(text: str, lineno: int) -> Any:
    if text.startswith('"'):
        end = text.find('"', 1)
        if end < 0:
            raise ValueError(f"line {lineno}: unterminated string {text!r}")
        return text[1:end]
    text = text.split("#", 1)[0].strip()
    if text in ("true", "false"):
        return text == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    raise ValueError(f"line {lineno}: unsupported TOML value {text!r}")


def _parse_minimal_toml(text: str) -> Dict[str, Any]:
    """Parse the TOML subset campaign specs use: ``[dotted]`` table
    headers, ``key = scalar`` pairs and inline ``[v1, v2]`` scalar arrays.

    Only reached on Python < 3.11 (no :mod:`tomllib`); output agrees with
    tomllib on every valid spec (pinned by ``tests/test_bench_campaign.py``).
    """
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(
                    f"line {lineno}: malformed table header {line!r}")
            current = root
            for part in line[1:-1].strip().split("."):
                part = part.strip()
                if not part:
                    raise ValueError(
                        f"line {lineno}: malformed table header {line!r}")
                nxt = current.setdefault(part, {})
                if not isinstance(nxt, dict):
                    raise ValueError(
                        f"line {lineno}: {part!r} is both a value and a table")
                current = nxt
        else:
            if "=" not in line:
                raise ValueError(
                    f"line {lineno}: expected key = value, got {line!r}")
            key, _, value = line.partition("=")
            key, value = key.strip(), value.strip()
            if not key:
                raise ValueError(f"line {lineno}: empty key")
            if value.startswith("["):
                if not value.split("#", 1)[0].strip().endswith("]"):
                    raise ValueError(
                        f"line {lineno}: unterminated array {value!r}")
                current[key] = _parse_array(
                    value.split("#", 1)[0].strip(), lineno)
            else:
                current[key] = _parse_scalar(value, lineno)
    return root


def load_campaign(path: str) -> CampaignSpec:
    """Load a campaign spec from a ``.toml`` or ``.json`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".json"):
        data = json.loads(text)
    else:
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11
            data = _parse_minimal_toml(text)
        else:
            data = tomllib.loads(text)
    return parse_campaign(data, source=path)


def parse_campaign(data: Mapping[str, Any],
                   source: str = "<dict>") -> CampaignSpec:
    """Build a :class:`CampaignSpec` from a parsed ``{"campaign": …}``
    mapping; every malformation raises ``ValueError`` naming *source*."""
    raw = data.get("campaign")
    if not isinstance(raw, Mapping) or not raw:
        raise ValueError(f"{source}: spec needs a non-empty [campaign] table")
    known = {"name", "scenario", "seeds", "confidence", "ci", "resamples",
             "params"}
    unknown = sorted(set(raw) - known)
    if unknown:
        raise ValueError(
            f"{source}: unknown [campaign] keys {unknown} "
            f"(known: {sorted(known)})")
    name = raw.get("name")
    if not isinstance(name, str) or not name or not all(
            c.isalnum() or c in "_-" for c in name):
        raise ValueError(
            f"{source}: campaign name must be a [A-Za-z0-9_-]+ string, "
            f"got {name!r}")
    scenario = raw.get("scenario")
    if not isinstance(scenario, str) or not scenario:
        raise ValueError(f"{source}: campaign needs a scenario name")
    seeds = raw.get("seeds")
    if (not isinstance(seeds, Sequence) or isinstance(seeds, (str, bytes))
            or not seeds
            or not all(isinstance(s, int) and not isinstance(s, bool)
                       for s in seeds)):
        raise ValueError(
            f"{source}: seeds must be a non-empty list of ints, got {seeds!r}")
    if len(set(seeds)) != len(seeds):
        raise ValueError(f"{source}: seeds must be distinct, got {list(seeds)}")
    confidence = raw.get("confidence", 0.95)
    if (not isinstance(confidence, (int, float)) or isinstance(confidence, bool)
            or not 0.0 < confidence < 1.0):
        raise ValueError(
            f"{source}: confidence must be in (0, 1), got {confidence!r}")
    ci_method = raw.get("ci", "t")
    if ci_method not in CI_METHODS:
        raise ValueError(
            f"{source}: ci must be one of {CI_METHODS}, got {ci_method!r}")
    resamples = raw.get("resamples", 2000)
    if not isinstance(resamples, int) or isinstance(resamples, bool) \
            or resamples < 1:
        raise ValueError(
            f"{source}: resamples must be an int >= 1, got {resamples!r}")
    params = raw.get("params", {})
    if not isinstance(params, Mapping):
        raise ValueError(f"{source}: [campaign.params] must be a table")
    axes: List[Tuple[str, Tuple[Any, ...]]] = []
    fixed: Dict[str, Any] = {}
    for key in sorted(params):
        value = params[key]
        if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
            if not value:
                raise ValueError(
                    f"{source}: [campaign.params] {key} sweeps no values")
            axes.append((key, tuple(value)))
        else:
            fixed[key] = value
    return CampaignSpec(
        name=name, scenario=scenario, seeds=tuple(seeds), axes=tuple(axes),
        fixed=fixed, confidence=float(confidence), ci_method=ci_method,
        resamples=resamples, source=source)


# ----------------------------------------------------------------- execution
def _run_repetition(payload: Tuple[str, int, bool, Dict[str, Any]],
                    ) -> Dict[str, Any]:
    """One (scenario, seed, smoke, overrides) repetition → BenchResult dict.

    Module-top-level so ``multiprocessing`` *spawn* workers can import it
    by reference; the scenario registry is (re-)populated inside, because
    a spawned child starts from a fresh interpreter.
    """
    name, seed, smoke, overrides = payload
    import repro.bench.scenarios  # noqa: F401  (populates the registry)

    result = run_scenario(name, seed=seed, smoke=smoke,
                          overrides=overrides or None)
    return result.to_dict()


@dataclass
class CampaignResult:
    """One campaign execution: per-point aggregates + embedded repetitions."""

    campaign: str
    scenario: str
    group: str
    git_sha: str
    seeds: List[int]
    smoke: bool
    workers: int
    confidence: float
    ci_method: str
    wall_time_s: float
    metrics_aggregated: int
    points: List[Dict[str, Any]]
    unix_time: float = 0.0
    schema: str = CAMPAIGN_SCHEMA

    # -------------------------------------------------------- serialisation
    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": self.schema,
            "campaign": self.campaign,
            "scenario": self.scenario,
            "group": self.group,
            "git_sha": self.git_sha,
            "seeds": list(self.seeds),
            "smoke": self.smoke,
            "workers": self.workers,
            "confidence": self.confidence,
            "ci_method": self.ci_method,
            "wall_time_s": self.wall_time_s,
            "metrics_aggregated": self.metrics_aggregated,
            "unix_time": self.unix_time,
            "points": self.points,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignResult":
        validate_campaign_dict(data)
        kwargs = {k: data[k] for k in CAMPAIGN_REQUIRED_FIELDS}
        return cls(**kwargs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, out_dir: str) -> str:
        """Write under *out_dir* as ``campaign_<name>.json``
        (``.smoke.json`` for smoke runs — same never-clobber discipline
        as :meth:`repro.bench.result.BenchResult.write`)."""
        os.makedirs(out_dir, exist_ok=True)
        suffix = ".smoke.json" if self.smoke else ".json"
        path = os.path.join(out_dir, f"campaign_{self.campaign}{suffix}")
        with open(path, "w") as fh:
            fh.write(self.to_json() + "\n")
        return path

    @classmethod
    def read(cls, path: str) -> "CampaignResult":
        with open(path) as fh:
            return cls.from_dict(json.load(fh))

    # -------------------------------------------------------------- queries
    def failed_checks(self) -> List[Dict[str, Any]]:
        """Aggregated checks that failed in at least one repetition."""
        return [c for point in self.points for c in point["checks"]
                if not c.get("passed")]

    def point_summaries(self, index: int) -> Dict[str, SampleSummary]:
        return {name: SampleSummary.from_dict(entry)
                for name, entry in self.points[index]["metrics"].items()}


def validate_campaign_dict(data: Mapping[str, Any]) -> None:
    """Schema-validate a campaign envelope; ``ValueError`` on violation."""
    missing = [k for k in CAMPAIGN_REQUIRED_FIELDS if k not in data]
    if missing:
        raise ValueError(f"campaign envelope missing fields: {missing}")
    if data["schema"] != CAMPAIGN_SCHEMA:
        raise ValueError(
            f"unsupported campaign schema {data['schema']!r} "
            f"(expected {CAMPAIGN_SCHEMA!r})")
    if not isinstance(data["seeds"], list) or not data["seeds"]:
        raise ValueError("campaign seeds must be a non-empty list")
    if not isinstance(data["points"], list) or not data["points"]:
        raise ValueError("campaign points must be a non-empty list")
    for i, point in enumerate(data["points"]):
        if not isinstance(point, Mapping):
            raise ValueError(f"point {i} is not an object")
        for key in ("params", "metrics", "checks", "repetitions"):
            if key not in point:
                raise ValueError(f"point {i} missing {key!r}")
        if not isinstance(point["metrics"], Mapping) or not point["metrics"]:
            raise ValueError(f"point {i} metrics must be a non-empty object")
        for name, entry in point["metrics"].items():
            if not isinstance(entry, Mapping):
                raise ValueError(f"point {i} metric {name!r} is not an object")
            needed = {"n", "mean", "std", "ci_lo", "ci_hi"}
            if not needed <= set(entry):
                raise ValueError(
                    f"point {i} metric {name!r} missing "
                    f"{sorted(needed - set(entry))}")
        reps = point["repetitions"]
        if not isinstance(reps, list) or len(reps) != len(data["seeds"]):
            raise ValueError(
                f"point {i} must embed exactly one repetition per seed "
                f"({len(data['seeds'])}), got "
                f"{len(reps) if isinstance(reps, list) else type(reps)}")
        for rep in reps:
            validate_result_dict(rep)


def _aggregate_point(reps: List[Dict[str, Any]], seeds: Sequence[int],
                     spec: CampaignSpec) -> Dict[str, Any]:
    """Fold one param point's per-seed repetitions into the aggregate."""
    metric_names = set(reps[0]["metrics"])
    for rep in reps[1:]:
        if set(rep["metrics"]) != metric_names:
            raise ValueError(
                f"campaign {spec.name!r}: repetitions disagree on metric "
                f"names — {sorted(metric_names ^ set(rep['metrics']))}")
    metrics = {}
    for name in sorted(metric_names):
        samples = [rep["metrics"][name] for rep in reps]
        metrics[name] = summarize_samples(
            samples, confidence=spec.confidence, method=spec.ci_method,
            resamples=spec.resamples).to_dict()
    checks = []
    for j, check in enumerate(reps[0]["checks"]):
        failed_seeds = [seed for seed, rep in zip(seeds, reps)
                        if not rep["checks"][j].get("passed")]
        checks.append({"name": check["name"],
                       "passed": not failed_seeds,
                       "failed_seeds": failed_seeds})
    return {
        "params": dict(reps[0]["params"]),
        "metrics": metrics,
        "checks": checks,
        "repetitions": reps,
    }


def run_campaign(spec: CampaignSpec, *, smoke: bool = False,
                 workers: int = 1,
                 progress: Optional[Any] = None) -> CampaignResult:
    """Execute *spec*: one repetition per (param point, seed).

    ``workers <= 1`` runs serially in-process; ``workers > 1`` fans the
    repetitions across a *spawn* ``multiprocessing`` pool (spawn, not
    fork, so every worker owns a fresh interpreter with no inherited RNG
    or import-order state — the property the determinism test pins).
    Either way each repetition goes through the same
    :func:`_run_repetition` seam and results are assembled in submission
    order, so the envelope is independent of worker scheduling.

    *progress* is an optional callable ``(done, total, rep_dict)`` for
    CLI feedback.
    """
    scenario = registry.get(spec.scenario)  # fail fast on unknown names
    points = spec.points()
    for point in points:  # validate the whole grid before burning time
        scenario.effective_params(smoke=smoke, overrides=point or None)
    payloads = [(spec.scenario, seed, smoke, point)
                for point in points for seed in spec.seeds]
    t0 = time.perf_counter()
    reps: List[Dict[str, Any]] = []
    if workers <= 1:
        for i, payload in enumerate(payloads):
            rep = _run_repetition(payload)
            reps.append(rep)
            if progress is not None:
                progress(i + 1, len(payloads), rep)
    else:
        ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=min(workers, len(payloads))) as pool:
            for i, rep in enumerate(
                    pool.imap(_run_repetition, payloads, chunksize=1)):
                reps.append(rep)
                if progress is not None:
                    progress(i + 1, len(payloads), rep)
    wall = time.perf_counter() - t0
    n_seeds = len(spec.seeds)
    out_points = [
        _aggregate_point(reps[i * n_seeds:(i + 1) * n_seeds], spec.seeds, spec)
        for i in range(len(points))
    ]
    return CampaignResult(
        campaign=spec.name,
        scenario=spec.scenario,
        group=scenario.group,
        git_sha=reps[0]["git_sha"],
        seeds=list(spec.seeds),
        smoke=smoke,
        workers=workers,
        confidence=spec.confidence,
        ci_method=spec.ci_method,
        wall_time_s=round(wall, 6),
        metrics_aggregated=sum(len(p["metrics"]) for p in out_points),
        unix_time=time.time(),
        points=out_points,
    )


def load_campaigns(path: str) -> Dict[str, CampaignResult]:
    """Load one campaign file or every ``campaign_*.json`` in a directory,
    keyed by campaign name (a full-params point outranks its smoke twin,
    mirroring :func:`repro.bench.result.load_results`)."""
    if os.path.isdir(path):
        out: Dict[str, CampaignResult] = {}
        for name in sorted(os.listdir(path)):
            if name.startswith("campaign_") and name.endswith(".json"):
                full = os.path.join(path, name)
                try:
                    result = CampaignResult.read(full)
                except (ValueError, KeyError, json.JSONDecodeError) as exc:
                    print(f"load_campaigns: skipping invalid {full}: {exc}",
                          file=sys.stderr)
                    continue
                existing = out.get(result.campaign)
                if existing is not None and existing.smoke != result.smoke:
                    if result.smoke:
                        continue
                out[result.campaign] = result
        if not out:
            raise ValueError(f"no valid campaign_*.json results under {path!r}")
        return out
    result = CampaignResult.read(path)
    return {result.campaign: result}


# ---------------------------------------------------------------- comparison
@dataclass(frozen=True)
class CampaignDelta:
    """One aggregated metric's movement between two campaigns, at one
    param point, judged by CI overlap rather than a point threshold."""

    campaign: str
    metric: str
    direction: str
    params: Dict[str, Any]
    old: SampleSummary
    new: SampleSummary
    status: str  # "ok" | "regression" | "improvement" | "neutral"

    def describe(self) -> str:
        point = ", ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        return (f"{self.campaign}[{point}].{self.metric}: "
                f"{_ci_str(self.old)} -> {_ci_str(self.new)} "
                f"({self.direction} is better)")


def _ci_str(s: SampleSummary) -> str:
    if s.ci_lo is None:
        return f"{s.mean:.6g} (n={s.n}, no CI)"
    return f"{s.mean:.6g} [{s.ci_lo:.6g}, {s.ci_hi:.6g}]"


@dataclass
class CampaignComparison:
    """Full CI-overlap diff of two campaign-result sets."""

    deltas: List[CampaignDelta]
    only_old: List[str]
    only_new: List[str]
    mismatched: List[str] = field(default_factory=list)  # scenario/smoke drift
    unpaired_points: List[str] = field(default_factory=list)

    def regressions(self) -> List[CampaignDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    def improvements(self) -> List[CampaignDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions()


def _interval(summary: SampleSummary) -> Tuple[float, float]:
    """The gating interval: the CI, or the zero-width point at the mean
    for n=1 aggregates (no spread information — gate on the mean)."""
    if summary.ci_lo is None or summary.ci_hi is None:
        return (summary.mean, summary.mean)
    return (summary.ci_lo, summary.ci_hi)


def _params_key(params: Mapping[str, Any]) -> str:
    return json.dumps({k: params[k] for k in sorted(params)}, sort_keys=True,
                      default=str)


def compare_campaigns(old: Mapping[str, CampaignResult],
                      new: Mapping[str, CampaignResult]) -> CampaignComparison:
    """Diff two campaign-result sets keyed by campaign name.

    Points are paired by their **effective params**; differing *seed
    lists* are deliberately comparable — each side is a distribution, and
    the whole point of the aggregate is that mean ± CI of the same param
    point compares across seed choices.  A directional metric regresses
    only when its intervals are disjoint **and** the mean moved in the
    bad direction; overlapping intervals are statistically
    indistinguishable and report ``ok``.
    """
    from repro.bench.compare import _metric_direction

    deltas: List[CampaignDelta] = []
    mismatched: List[str] = []
    unpaired: List[str] = []
    for name in sorted(set(old) & set(new)):
        before, after = old[name], new[name]
        if (before.scenario != after.scenario
                or before.smoke != after.smoke):
            mismatched.append(name)
            continue
        old_points = {_params_key(p["params"]): p for p in before.points}
        new_points = {_params_key(p["params"]): p for p in after.points}
        for key in sorted(set(old_points) ^ set(new_points)):
            side = "OLD" if key in old_points else "NEW"
            unpaired.append(f"{name}: point {key} only in {side}")
        for key in sorted(set(old_points) & set(new_points)):
            op, np_ = old_points[key], new_points[key]
            shared = sorted(set(op["metrics"]) & set(np_["metrics"]))
            for metric in shared:
                o = SampleSummary.from_dict(op["metrics"][metric])
                n = SampleSummary.from_dict(np_["metrics"][metric])
                direction = _metric_direction(before.scenario, metric)
                if direction == "neutral":
                    status = "neutral"
                else:
                    o_lo, o_hi = _interval(o)
                    n_lo, n_hi = _interval(n)
                    overlap = n_lo <= o_hi and o_lo <= n_hi
                    if overlap:
                        status = "ok"
                    else:
                        worse = (n.mean > o.mean if direction == "lower"
                                 else n.mean < o.mean)
                        status = "regression" if worse else "improvement"
                deltas.append(CampaignDelta(
                    campaign=name, metric=metric, direction=direction,
                    params=dict(op["params"]), old=o, new=n, status=status))
    return CampaignComparison(
        deltas=deltas,
        only_old=sorted(set(old) - set(new)),
        only_new=sorted(set(new) - set(old)),
        mismatched=mismatched,
        unpaired_points=unpaired,
    )
