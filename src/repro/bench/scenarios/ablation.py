"""Ablation scenarios — the §VI design-space probes as registry entries.

Ports of the four ``benchmarks/bench_ablation_*.py`` files: ID assignment,
demotion policy, the TTL-triggered Euclidean fallback, and maintenance
cost (keep-alive interval sweep + repair-mechanism value), with their
asserted expectations recorded as :class:`~repro.bench.scenario.Check`
verdicts.
"""

from __future__ import annotations

from repro.bench.scenario import Check, Metric, Scenario, ScenarioOutput, registry
from repro.experiments.ablations import (
    demotion_policy,
    euclidean_fallback,
    id_assignment,
    maintenance_interval,
    repair_mechanisms,
)
from repro.viz.ascii import table


def _ablation_ids(params, seed, smoke):
    out = id_assignment(n=params["n"], seed=seed, lookups=params["lookups"])
    rendered = table(
        ["strategy", "height", "avg children", "cell-size std", "avg hops",
         "success"],
        [[k, v["height"], v["avg_children"], v["cell_size_std"],
          v["avg_hops"], v["success_rate"]] for k, v in out.items()],
        title=f"ID assignment ablation (n={params['n']}, case 1)",
    )
    metrics = {
        "balanced_cell_size_std": out["balanced"]["cell_size_std"],
        "random_cell_size_std": out["random"]["cell_size_std"],
        "hash_height": out["hash"]["height"],
        "random_height": out["random"]["height"],
        "min_success_rate": min(v["success_rate"] for v in out.values()),
    }
    checks = [
        Check("balanced_most_even",
              out["balanced"]["cell_size_std"]
              <= out["random"]["cell_size_std"] + 0.25,
              f"balanced std {out['balanced']['cell_size_std']:.2f} vs "
              f"random {out['random']['cell_size_std']:.2f}"),
        Check("hash_statistically_random",
              abs(out["hash"]["height"] - out["random"]["height"]) <= 1,
              f"hash height {out['hash']['height']:.0f} vs "
              f"random {out['random']['height']:.0f}"),
        Check("all_strategies_route",
              all(v["success_rate"] >= 0.95 for v in out.values()),
              f"min success {metrics['min_success_rate']:.2f} (>= 0.95)"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


def _ablation_demotion(params, seed, smoke):
    out = demotion_policy(n=params["n"], seed=seed)
    rendered = table(
        ["policy", "upper nodes before", "after starvation", "victims"],
        [[k, v["upper_nodes_before"], v["upper_nodes_after"], v["victims"]]
         for k, v in out.items()],
        title=f"Demotion policy ablation (protocol mode, n={params['n']})",
    )
    metrics = {
        "strict_upper_after": out["strict"]["upper_nodes_after"],
        "keep_upper_after": out["keep-upper"]["upper_nodes_after"],
        "victims": out["strict"]["victims"],
    }
    checks = [
        Check("keep_upper_retains_more",
              out["keep-upper"]["upper_nodes_after"]
              >= out["strict"]["upper_nodes_after"],
              f"keep-upper {out['keep-upper']['upper_nodes_after']:.0f} vs "
              f"strict {out['strict']['upper_nodes_after']:.0f}"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


def _ablation_fallback(params, seed, smoke):
    out = euclidean_fallback(n=params["n"], seed=seed,
                             lookups=params["lookups"])
    rendered = table(
        ["mode", "success rate", "avg hops"],
        [[k, v["success_rate"], v["avg_hops"]] for k, v in out.items()],
        title=(f"Euclidean-fallback ablation at 50% dead "
               f"(n={params['n']}, case 1)"),
    )
    metrics = {
        "fallback_on_success": out["fallback-on"]["success_rate"],
        "fallback_off_success": out["fallback-off"]["success_rate"],
        "fallback_on_hops": out["fallback-on"]["avg_hops"],
    }
    checks = [
        Check("fallback_never_hurts",
              out["fallback-on"]["success_rate"]
              >= out["fallback-off"]["success_rate"] - 0.05,
              f"on {out['fallback-on']['success_rate']:.2f} vs "
              f"off {out['fallback-off']['success_rate']:.2f} (-0.05 slack)"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


def _ablation_maintenance(params, seed, smoke):
    cost = maintenance_interval(n=params["n_maintenance"], seed=seed,
                                horizon=params["horizon"])
    repair = repair_mechanisms(n=params["n_repair"], seed=seed,
                               lookups=params["lookups"])
    rendered = "\n\n".join([
        table(
            ["keepalive interval (s)", "msgs/node/s", "bytes/node/s"],
            [[k, v["messages_per_node_per_s"], v["bytes_per_node_per_s"]]
             for k, v in sorted(cost.items())],
            title=(f"Maintenance overhead vs keep-alive interval "
                   f"(protocol mode, n={params['n_maintenance']})"),
        ),
        table(
            ["policy", "success rate @30% dead", "avg hops"],
            [[k, v["success_rate"], v["avg_hops"]] for k, v in repair.items()],
            title=(f"Repair-mechanism ablation at 30% dead "
                   f"(n={params['n_repair']}, case 1)"),
        ),
    ])
    costs = [cost[i]["messages_per_node_per_s"] for i in sorted(cost)]
    metrics = {
        "msgs_per_node_s_fastest_keepalive": costs[0],
        "msgs_per_node_s_slowest_keepalive": costs[-1],
        "purge_only_success": repair["purge-only"]["success_rate"],
        "full_adoption_success": repair["full adoption"]["success_rate"],
    }
    checks = [
        Check("cost_monotone_in_interval", costs == sorted(costs, reverse=True),
              f"msgs/node/s by interval: {[round(c, 3) for c in costs]}"),
        Check("low_overhead_claim", costs[0] < 10.0,
              f"2s keep-alive costs {costs[0]:.2f} msgs/node/s (< 10)"),
        Check("adoption_at_least_purge_only",
              repair["purge-only"]["success_rate"]
              <= repair["full adoption"]["success_rate"] + 0.05,
              f"purge-only {repair['purge-only']['success_rate']:.2f} vs "
              f"full adoption {repair['full adoption']['success_rate']:.2f}"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


registry.register(Scenario(
    name="ablation_ids", group="ablations",
    description="ID assignment strategy: random vs hash vs balanced (§III, §VI)",
    runner=_ablation_ids,
    params={"n": 512, "lookups": 200},
    smoke_params={"n": 192, "lookups": 80},
    metrics=(
        Metric("balanced_cell_size_std", "nodes", "lower",
               "cell-size spread under balanced IDs"),
        Metric("random_cell_size_std", "nodes", "neutral"),
        Metric("hash_height", "levels", "neutral"),
        Metric("random_height", "levels", "neutral"),
        Metric("min_success_rate", "fraction", "higher",
               "worst lookup success across strategies"),
    )))

registry.register(Scenario(
    name="ablation_demotion", group="ablations",
    description="demotion policy: strict vs §VI keep-upper under child starvation",
    runner=_ablation_demotion,
    params={"n": 256},
    smoke_params={"n": 128},
    metrics=(
        Metric("strict_upper_after", "nodes", "neutral"),
        Metric("keep_upper_after", "nodes", "higher",
               "upper-layer nodes surviving starvation (keep-upper)"),
        Metric("victims", "nodes", "neutral"),
    )))

registry.register(Scenario(
    name="ablation_fallback", group="ablations",
    description="§III.f TTL-triggered Euclidean fallback on/off at 50% dead",
    runner=_ablation_fallback,
    params={"n": 512, "lookups": 200},
    smoke_params={"n": 192, "lookups": 80},
    metrics=(
        Metric("fallback_on_success", "fraction", "higher"),
        Metric("fallback_off_success", "fraction", "neutral"),
        Metric("fallback_on_hops", "hops", "lower"),
    )))

registry.register(Scenario(
    name="ablation_maintenance", group="ablations",
    description=("maintenance cost per keep-alive interval + resilience "
                 "value of each repair mechanism (§III.d)"),
    runner=_ablation_maintenance,
    params={"n_maintenance": 128, "horizon": 60.0, "n_repair": 512,
            "lookups": 150},
    smoke_params={"n_maintenance": 64, "horizon": 30.0, "n_repair": 192,
                  "lookups": 80},
    metrics=(
        Metric("msgs_per_node_s_fastest_keepalive", "msgs/node/s", "lower",
               "control traffic at the 2s keep-alive"),
        Metric("msgs_per_node_s_slowest_keepalive", "msgs/node/s", "lower"),
        Metric("purge_only_success", "fraction", "neutral"),
        Metric("full_adoption_success", "fraction", "higher"),
    )))
