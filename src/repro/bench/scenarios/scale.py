"""Scale scenarios — the 10k-node proof of TreeP's hierarchical scalability.

Every pre-existing scenario tops out at ~1k nodes; this family sweeps the
same workloads across N ∈ {1 000, 5 000, 10 000} (``--smoke``: {200, 500})
and reports **simulator throughput** (events/sec) alongside the overlay
metrics, so the perf trajectory in ``benchmarks/out/`` records how fast the
simulation itself runs — the quantity the sim/core hot-path work optimises.
``docs/performance.md`` documents the methodology and the before/after.

Metric naming: a sweep emits ``*_min_n`` / ``*_mid_n`` / ``*_max_n`` values
for the smallest, middle and largest N (the schema must not depend on the
sweep's length — on the two-point smoke sweep, *mid* coincides with *max*).
On the full sweep ``events_per_second_mid_n`` is the N=5 000 number the
PR-5 acceptance criterion gates on.

Checks are scale-relaxed where physics demands it (a 200-node overlay
fragments harder under 30% churn than a 10k one), mirroring the smoke
thresholds of :mod:`repro.bench.scenarios.systems`.
"""

from __future__ import annotations

import gc
import math
import time
from contextlib import contextmanager
from typing import Dict, List, Tuple

import numpy as np

from repro.bench.scenario import Check, Metric, Scenario, ScenarioOutput, registry
from repro.cluster import Cluster
from repro.core.config import TreePConfig
from repro.core.repair import PAPER_POLICY, apply_failure_step
from repro.core.treep import TreePNetwork
from repro.storage import QuorumConfig
from repro.viz.ascii import table
from repro.workloads.jobs import JobWorkload


def _mmm(sizes: Tuple[int, ...]) -> Tuple[int, int, int]:
    """(min, mid, max) indices of a sweep; mid == max on two-point sweeps."""
    return 0, len(sizes) // 2, len(sizes) - 1


@contextmanager
def _gc_paused():
    """Benchmark hygiene: defer garbage collection during a measured phase.

    The same discipline pytest-benchmark applies by default — at 10k nodes
    a generational collection walks millions of live simulator objects, so
    leaving GC enabled measures arbitrary pause placement, not the
    simulator.  Both the pre- and post-optimization trajectory points in
    ``benchmarks/out/`` were recorded through this scenario code, so the
    before/after events/sec numbers are like-for-like (see
    ``docs/performance.md``).
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _pairs(rng, population, count) -> List[Tuple[int, int]]:
    pop = list(population)
    return [tuple(int(x) for x in rng.choice(pop, 2, replace=False))
            for _ in range(count)]


def _sweep_metrics(prefix: str, sizes, values) -> Dict[str, float]:
    i_min, i_mid, i_max = _mmm(tuple(sizes))
    return {
        f"{prefix}_min_n": float(values[i_min]),
        f"{prefix}_mid_n": float(values[i_mid]),
        f"{prefix}_max_n": float(values[i_max]),
    }


# ------------------------------------------------------------- scale_lookup

def _scale_lookup(params, seed, smoke):
    sizes = tuple(params["sizes"])
    lookups = params["lookups"]
    rows, evps, hops_by_n, success_by_n = [], [], [], []
    build_max = lookup_wall_max = 0.0
    for n in sizes:
        t0 = time.perf_counter()
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
        net.build(n)
        build_s = time.perf_counter() - t0
        rng = np.random.default_rng(0)
        pairs = _pairs(rng, net.ids, lookups)
        e0 = net.sim.events_processed
        with _gc_paused():
            t0 = time.perf_counter()
            results = net.run_lookup_batch(pairs, "G")
            wall = time.perf_counter() - t0
        events = net.sim.events_processed - e0
        found = [r for r in results if r.found]
        success = len(found) / lookups
        hops = float(np.mean([r.hops for r in found])) if found else 0.0
        rate = events / wall if wall > 0 else 0.0
        evps.append(rate)
        hops_by_n.append(hops)
        success_by_n.append(success)
        if n == sizes[-1]:
            build_max, lookup_wall_max = build_s, wall
        rows.append([n, f"{build_s:.2f}", f"{wall:.2f}", events, f"{rate:.0f}",
                     f"{hops:.2f}", f"{hops / math.log2(n):.2f}",
                     f"{100 * success:.1f}"])
    rendered = table(
        ["n", "build s", "lookup s", "events", "ev/s", "hops", "hops/log2n",
         "success%"],
        rows, title=f"scale_lookup: greedy lookups at N={sizes}")
    i_min, _, i_max = _mmm(sizes)
    hops_ratio = (hops_by_n[i_max] / hops_by_n[i_min]
                  if hops_by_n[i_min] > 0 else 0.0)
    logn_ratio = math.log2(sizes[i_max]) / math.log2(sizes[i_min])
    metrics = {
        **_sweep_metrics("events_per_second", sizes, evps),
        "build_seconds_max_n": build_max,
        "lookup_wall_s_max_n": lookup_wall_max,
        "mean_hops_max_n": hops_by_n[i_max],
        "hops_over_log2n_max_n": hops_by_n[i_max] / math.log2(sizes[i_max]),
        "success_rate_min": min(success_by_n),
    }
    # Hop growth slack: small smoke overlays (200 nodes) have too few
    # hierarchy levels for the log-ratio to be tight.
    slack = 2.5 if smoke else 1.75
    checks = [
        Check("lookups_succeed_at_every_n", min(success_by_n) >= 0.98,
              f"min success {min(success_by_n):.3f} across N={sizes}"),
        Check("hops_stay_logarithmic",
              hops_by_n[i_max] <= 2.0 * math.log2(sizes[i_max]),
              f"{hops_by_n[i_max]:.2f} hops at N={sizes[i_max]} "
              f"(<= 2 log2 N = {2 * math.log2(sizes[i_max]):.2f})"),
        Check("hop_growth_tracks_logn", hops_ratio <= slack * logn_ratio,
              f"hops x{hops_ratio:.2f} vs log2N x{logn_ratio:.2f} "
              f"(slack {slack:g}) from N={sizes[i_min]} to {sizes[i_max]}"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# -------------------------------------------------------------- scale_churn

def _scale_churn(params, seed, smoke):
    sizes = tuple(params["sizes"])
    lookups, dead_fraction, bursts = (params["lookups"],
                                      params["dead_fraction"],
                                      params["bursts"])
    rows, evps, success_by_n = [], [], []
    churn_wall_max = 0.0
    for n in sizes:
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
        net.build(n)
        rng = np.random.default_rng(1)
        order = [int(v) for v in rng.permutation(net.ids)]
        total = int(dead_fraction * n)
        per_burst = max(total // bursts, 1)
        e0 = net.sim.events_processed
        with _gc_paused():
            t0 = time.perf_counter()
            killed = 0
            while killed < total:
                step = order[killed:killed + min(per_burst, total - killed)]
                killed += len(step)
                net.fail_nodes(step)
                apply_failure_step(net, step, PAPER_POLICY)
            results = net.run_lookup_batch(
                _pairs(rng, net.alive_ids(), lookups), "G")
            wall = time.perf_counter() - t0
        events = net.sim.events_processed - e0
        success = sum(r.found for r in results) / lookups
        rate = events / wall if wall > 0 else 0.0
        evps.append(rate)
        success_by_n.append(success)
        if n == sizes[-1]:
            churn_wall_max = wall
        rows.append([n, total, events, f"{rate:.0f}", f"{100 * success:.1f}"])
    rendered = table(
        ["n", "killed", "events", "ev/s", "success%@churn"],
        rows,
        title=f"scale_churn: {100 * dead_fraction:.0f}% burst churn + repair "
              f"at N={sizes}")
    i_min, _, i_max = _mmm(sizes)
    metrics = {
        **_sweep_metrics("events_per_second", sizes, evps),
        "churn_wall_s_max_n": churn_wall_max,
        "success_after_churn_max_n": success_by_n[i_max],
        "success_after_churn_min": min(success_by_n),
    }
    # Same physics as the baselines scenario: the resilience floor only
    # reaches 70% once the overlay is big enough to stay connected.
    floors = [0.70 if n >= 1024 else 0.45 for n in sizes]
    checks = [
        Check("survives_churn_at_every_n",
              all(s >= f for s, f in zip(success_by_n, floors)),
              "; ".join(f"N={n}: {100 * s:.1f}% (floor {100 * f:.0f}%)"
                        for n, s, f in zip(sizes, success_by_n, floors))),
        Check("repair_converges_largest_n", success_by_n[i_max] >= 0.70,
              f"{100 * success_by_n[i_max]:.1f}% success at N={sizes[i_max]} "
              f"after {100 * dead_fraction:.0f}% churn"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# ---------------------------------------------------------- scale_quorum_rw

def _scale_quorum_rw(params, seed, smoke):
    sizes = tuple(params["sizes"])
    ops = params["ops"]
    quorum = QuorumConfig(n=3, w=2, r=2)
    rows, evps, put_rates, get_rates = [], [], [], []
    acked_by_n, hit_by_n = [], []
    for n in sizes:
        cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
                   .build(n).with_storage(quorum))
        store, sim = cluster.storage, cluster.net.sim
        e0 = sim.events_processed
        with _gc_paused():
            t0 = time.perf_counter()
            acked = sum(store.put(f"scale/{i:05d}", {"i": i}).ok
                        for i in range(ops))
            put_wall = time.perf_counter() - t0
            rng = np.random.default_rng(0)
            t0 = time.perf_counter()
            hits = sum(store.get(f"scale/{int(i):05d}").found
                       for i in rng.integers(0, ops, size=ops))
            get_wall = time.perf_counter() - t0
        events = sim.events_processed - e0
        wall = put_wall + get_wall
        rate = events / wall if wall > 0 else 0.0
        evps.append(rate)
        put_rates.append(ops / put_wall if put_wall > 0 else 0.0)
        get_rates.append(ops / get_wall if get_wall > 0 else 0.0)
        acked_by_n.append(acked / ops)
        hit_by_n.append(hits / ops)
        rows.append([n, f"{put_rates[-1]:.0f}", f"{get_rates[-1]:.0f}",
                     f"{rate:.0f}", f"{acked}/{ops}", f"{hits}/{ops}"])
        cluster.shutdown()
    rendered = table(
        ["n", "put/s", "get/s", "ev/s", "acked", "hits"],
        rows, title=f"scale_quorum_rw: N=3 W=2 R=2 at N={sizes}")
    metrics = {
        **_sweep_metrics("events_per_second", sizes, evps),
        "put_ops_per_second_max_n": put_rates[-1],
        "get_ops_per_second_max_n": get_rates[-1],
        "put_ack_rate_min": min(acked_by_n),
        "get_hit_rate_min": min(hit_by_n),
    }
    checks = [
        Check("every_put_quorum_acked", min(acked_by_n) == 1.0,
              f"min ack rate {min(acked_by_n):.3f} across N={sizes}"),
        Check("every_get_quorum_hit", min(hit_by_n) == 1.0,
              f"min hit rate {min(hit_by_n):.3f} across N={sizes}"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# --------------------------------------------------------------- scale_jobs

def _scale_jobs(params, seed, smoke):
    sizes = tuple(params["sizes"])
    jobs, deadline = params["jobs"], params["deadline"]
    rows, evps, completion_by_n, goodput_by_n = [], [], [], []
    dones = []
    makespan_max = 0.0
    for n in sizes:
        cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
                   .build(n).with_compute())
        net, grid = cluster.net, cluster.compute
        wl = JobWorkload(rng=net.rng.get("scale-jobs"), arrival_rate=2.0,
                         work_mean=15.0, constrained_fraction=0.25)
        grid.schedule_submissions(wl.jobs(jobs, start=net.sim.now))
        e0 = net.sim.events_processed
        with _gc_paused():
            t0 = time.perf_counter()
            done = grid.run_until_done(timeout=deadline)
            wall = time.perf_counter() - t0
        events = net.sim.events_processed - e0
        stats = grid.stats()
        rate = events / wall if wall > 0 else 0.0
        evps.append(rate)
        dones.append(bool(done))
        completion_by_n.append(stats.completion_rate)
        goodput_by_n.append(stats.goodput)
        if n == sizes[-1]:
            makespan_max = stats.makespan
        rows.append([n, jobs, events, f"{rate:.0f}",
                     f"{100 * stats.completion_rate:.0f}",
                     f"{stats.goodput:.3f}", f"{stats.makespan:.0f}"])
        cluster.shutdown()
    rendered = table(
        ["n", "jobs", "events", "ev/s", "done%", "goodput", "makespan"],
        rows, title=f"scale_jobs: steady-state grid scheduling at N={sizes}")
    metrics = {
        **_sweep_metrics("events_per_second", sizes, evps),
        "completion_rate_min": min(completion_by_n),
        "goodput_min": min(goodput_by_n),
        "makespan_max_n": makespan_max,
    }
    checks = [
        Check("every_run_finishes_before_deadline", all(dones),
              f"run_until_done verdicts {dones} (deadline {deadline:g}s)"),
        Check("every_job_completes_at_every_n", min(completion_by_n) == 1.0,
              f"min completion {min(completion_by_n):.3f} across N={sizes}"),
        Check("no_rework_without_churn", min(goodput_by_n) > 0.99,
              f"min goodput {min(goodput_by_n):.3f} (nothing re-run)"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# ------------------------------------------------------------- registration

def _SWEEP_METRICS(desc_mid: str) -> Tuple[Metric, ...]:
    """The events/sec metric triple every scale sweep emits."""
    return (
        Metric("events_per_second_min_n", "ev/s", "higher",
               "simulator throughput at the smallest N"),
        Metric("events_per_second_mid_n", "ev/s", "higher", desc_mid),
        Metric("events_per_second_max_n", "ev/s", "higher",
               "simulator throughput at the largest N"),
    )

registry.register(Scenario(
    name="scale_lookup", group="scale",
    description=("greedy lookups at N up to 10k: events/sec, wall time, "
                 "hops vs log N (the PR-5 hot-path acceptance gate)"),
    runner=_scale_lookup,
    params={"sizes": (1000, 5000, 10000), "lookups": 1500},
    smoke_params={"sizes": (200, 500), "lookups": 300},
    metrics=(
        *_SWEEP_METRICS("simulator throughput at the middle N "
                        "(N=5k on the full sweep — the ≥3x gate)"),
        Metric("build_seconds_max_n", "s", "lower",
               "steady-state assembly at the largest N"),
        Metric("lookup_wall_s_max_n", "s", "lower"),
        Metric("mean_hops_max_n", "hops", "lower"),
        Metric("hops_over_log2n_max_n", "ratio", "lower",
               "hierarchical-scalability headline: hops / log2 N"),
        Metric("success_rate_min", "fraction", "higher"),
    )))

registry.register(Scenario(
    name="scale_churn", group="scale",
    description=("30% burst churn + converged repair at N up to 10k: "
                 "events/sec and post-churn lookup success"),
    runner=_scale_churn,
    params={"sizes": (1000, 5000, 10000), "lookups": 800,
            "dead_fraction": 0.30, "bursts": 5},
    smoke_params={"sizes": (200, 500), "lookups": 200},
    metrics=(
        *_SWEEP_METRICS("simulator throughput at the middle N"),
        Metric("churn_wall_s_max_n", "s", "lower"),
        Metric("success_after_churn_max_n", "fraction", "higher"),
        Metric("success_after_churn_min", "fraction", "higher"),
    )))

registry.register(Scenario(
    name="scale_quorum_rw", group="scale",
    description=("replicated-store quorum PUT/GET at N up to 10k: "
                 "ops/sec, events/sec, zero quorum misses"),
    runner=_scale_quorum_rw,
    params={"sizes": (1000, 5000, 10000), "ops": 60},
    smoke_params={"sizes": (200, 500), "ops": 30},
    metrics=(
        *_SWEEP_METRICS("simulator throughput at the middle N"),
        Metric("put_ops_per_second_max_n", "ops/s", "higher"),
        Metric("get_ops_per_second_max_n", "ops/s", "higher"),
        Metric("put_ack_rate_min", "fraction", "higher"),
        Metric("get_hit_rate_min", "fraction", "higher"),
    )))

registry.register(Scenario(
    name="scale_jobs", group="scale",
    description=("steady-state grid scheduling at N up to 10k: "
                 "100% completion, events/sec, makespan"),
    runner=_scale_jobs,
    params={"sizes": (1000, 5000, 10000), "jobs": 24, "deadline": 600.0},
    smoke_params={"sizes": (200, 500), "jobs": 12},
    metrics=(
        *_SWEEP_METRICS("simulator throughput at the middle N"),
        Metric("completion_rate_min", "fraction", "higher"),
        Metric("goodput_min", "fraction", "higher"),
        Metric("makespan_max_n", "sim s", "lower"),
    )))
