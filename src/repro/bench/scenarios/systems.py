"""System scenarios — engineering benches as registry entries.

Ports of ``bench_core.py`` (build/lookup/table micro-benches),
``bench_table_sizes.py`` (§III.e bounds), ``bench_ngsa_cost.py`` (§IV.a
bandwidth verdict), ``bench_baselines.py`` (TreeP vs Chord vs flooding),
``bench_storage.py`` (quorum throughput, anti-entropy cost, durability
under 30% churn) and ``bench_compute.py`` (scheduling under burst churn,
checkpointing vs restart).  Wall-clock throughput numbers are measured
here with ``time.perf_counter`` so the CLI needs no pytest-benchmark;
the pytest glue still wraps each scenario for timing parity.
"""

from __future__ import annotations

import time
from typing import Dict, List, Tuple

import numpy as np

from repro.baselines import ChordNetwork, FloodNetwork
from repro.bench.scenario import Check, Metric, Scenario, ScenarioOutput, registry
from repro.cluster import Cluster
from repro.compute.job import ComputeConfig
from repro.core.config import TreePConfig
from repro.core.repair import PAPER_POLICY, apply_failure_step
from repro.core.treep import TreePNetwork
from repro.experiments import ngsa_cost, table_sizes
from repro.storage import QuorumConfig
from repro.viz.ascii import table
from repro.workloads.churn import ChurnEvent, ChurnSchedule
from repro.workloads.jobs import JobWorkload


# --------------------------------------------------------------------- core

def _core(params, seed, smoke):
    n, lookups = params["n"], params["lookups"]
    t0 = time.perf_counter()
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    net.build(n)
    build_s = time.perf_counter() - t0

    rng = np.random.default_rng(0)
    pairs = [tuple(int(x) for x in rng.choice(net.ids, 2, replace=False))
             for _ in range(lookups)]
    t0 = time.perf_counter()
    results = net.run_lookup_batch(pairs, "G")
    lookup_s = time.perf_counter() - t0
    found = sum(r.found for r in results)

    sizes = net.routing_table_sizes()
    conns = net.active_connection_counts()
    leaf_sizes = [sizes[i] for i, nd in net.nodes.items() if nd.max_level == 0]
    metrics = {
        "build_seconds": build_s,
        "lookups_per_second": lookups / lookup_s if lookup_s > 0 else 0.0,
        "lookup_success_rate": found / lookups,
        "table_entries_mean": float(np.mean(list(sizes.values()))),
        "table_entries_max": float(max(sizes.values())),
        "leaf_entries_mean": float(np.mean(leaf_sizes)),
        "connections_mean": float(np.mean(list(conns.values()))),
    }
    rendered = table(
        ["metric", "mean", "max"],
        [
            ["routing table entries (all)", metrics["table_entries_mean"],
             int(metrics["table_entries_max"])],
            ["routing table entries (leaves)", metrics["leaf_entries_mean"],
             max(leaf_sizes)],
            ["active connections", metrics["connections_mean"],
             max(conns.values())],
        ],
        title=f"§III.e table-size check (n={n})",
    )
    checks = [
        # Greedy is not guaranteed loop-free/complete (paper Fig. 4);
        # allow the occasional dead end.
        Check("healthy_lookups_succeed", found >= lookups * 0.98,
              f"{found}/{lookups} lookups found"),
        Check("leaf_tables_tiny", np.mean(leaf_sizes) < 15,
              f"leaf mean entries = {np.mean(leaf_sizes):.1f} (< 15)"),
        # §III.e's far-from-O(n) claim only bites at scale; the floor keeps
        # small --set n=... overrides from tripping a meaningless bound.
        Check("no_table_near_o_n", max(sizes.values()) < max(n // 8, 32),
              f"max entries = {max(sizes.values())} "
              f"(< max(n/8, 32) = {max(n // 8, 32)})"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# -------------------------------------------------------------- table sizes

def _table_sizes(params, seed, smoke):
    n = params["n"]
    rows1 = table_sizes.run(n=n, seed=seed, case="case1")
    rows2 = table_sizes.run(n=n, seed=seed, case="case2")
    rendered = "\n\n".join([table_sizes.render(n=n, seed=seed, case="case1"),
                            table_sizes.render(n=n, seed=seed, case="case2")])
    classes = {r.node_class: r for r in rows1}
    leaf = classes["level-0 only"]
    metrics = {
        "case1_leaf_fraction": leaf.count / n,
        "case1_leaf_connections_mean": leaf.connections_mean,
        "case1_max_entries_mean": max(r.entries_mean for r in rows1),
        "case2_max_entries_mean": max(r.entries_mean for r in rows2),
    }
    checks = [
        Check("leaves_are_the_majority", leaf.count > n * 0.5,
              f"{leaf.count}/{n} nodes are level-0 only"),
        Check("leaf_connections_near_bound",
              leaf.connections_mean <= leaf.connections_bound + 1.0,
              f"{leaf.connections_mean:.1f} vs bound "
              f"{leaf.connections_bound:.1f} (+1)"),
        Check("case1_within_2x_bounds",
              all(r.within_bounds(slack=2.0) for r in rows1),
              "every case-1 class mean within 2x the paper formula"),
        Check("case2_within_bounds",
              all(r.within_bounds(slack=2.5) for r in rows2),
              "every case-2 class mean within 2.5x the paper formula"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# ---------------------------------------------------------------- ngsa cost

def _ngsa_cost(params, seed, smoke):
    kw = dict(n=params["n"], seed=seed, lookups=params["lookups"],
              dead_fraction=params["dead_fraction"])
    out = ngsa_cost.run(**kw)
    g, ng, ngsa = out["G"], out["NG"], out["NGSA"]
    ngsa_bpm = ngsa.bytes_per_lookup / max(ngsa.messages_per_lookup, 1e-9)
    ng_bpm = ng.bytes_per_lookup / max(ng.messages_per_lookup, 1e-9)
    metrics = {
        "g_success": g.success_rate,
        "ng_success": ng.success_rate,
        "ngsa_success": ngsa.success_rate,
        "ng_bytes_per_msg": ng_bpm,
        "ngsa_bytes_per_msg": ngsa_bpm,
    }
    checks = [
        Check("ngsa_gain_marginal", ngsa.success_rate <= ng.success_rate + 0.05,
              f"NGSA {ngsa.success_rate:.2f} vs NG {ng.success_rate:.2f}"),
        Check("ngsa_costs_more_bytes", ngsa_bpm > ng_bpm,
              f"bytes/msg NGSA {ngsa_bpm:.1f} > NG {ng_bpm:.1f}"),
        Check("all_resolve_majority",
              all(c.success_rate >= 0.7 for c in out.values()),
              f"min success {min(c.success_rate for c in out.values()):.2f}"),
    ]
    return ScenarioOutput(metrics, checks, ngsa_cost.render(**kw))


# ---------------------------------------------------------------- baselines

def _pairs(rng, population, count) -> List[Tuple[int, int]]:
    pop = list(population)
    out = []
    while len(out) < count:
        o, t = (int(x) for x in rng.choice(pop, 2, replace=False))
        out.append((o, t))
    return out


def _baselines(params, seed, smoke):
    n, lookups = params["n"], params["lookups"]
    flood_lookups = max(lookups // 4, 20)
    # A 256-node overlay fragments harder at 30% dead than the paper-scale
    # one; the resilience floor only reaches 70% at n >= 1024.
    survive_floor = 45.0 if smoke else 70.0
    rng = np.random.default_rng(seed)
    rows = []

    treep = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    treep.build(n)
    m0 = treep.network.stats.sent
    healthy = treep.run_lookup_batch(_pairs(rng, treep.ids, lookups), "G")
    msgs = (treep.network.stats.sent - m0) / lookups
    victims = [int(v) for v in rng.choice(treep.ids, int(0.3 * n), replace=False)]
    treep.fail_nodes(victims)
    apply_failure_step(treep, victims, PAPER_POLICY)
    failed = treep.run_lookup_batch(_pairs(rng, treep.alive_ids(), lookups), "G")
    rows.append(("TreeP (G)", healthy, failed, msgs))

    chord = ChordNetwork(seed=seed)
    chord.build(n)
    m0 = chord.network.stats.sent
    healthy = chord.run_lookup_batch(_pairs(rng, chord.ids, lookups))
    msgs = (chord.network.stats.sent - m0) / lookups
    victims = [int(v) for v in rng.choice(chord.ids, int(0.3 * n), replace=False)]
    chord.fail_nodes(victims)
    chord.repair_step()
    failed = chord.run_lookup_batch(_pairs(rng, chord.alive_ids(), lookups))
    rows.append(("Chord", healthy, failed, msgs))

    flood = FloodNetwork(seed=seed, degree=4, default_ttl=7)
    flood.build(n)
    m0 = flood.network.stats.sent
    healthy = flood.run_lookup_batch(_pairs(rng, flood.ids, flood_lookups))
    msgs = (flood.network.stats.sent - m0) / flood_lookups
    victims = [int(v) for v in rng.choice(flood.ids, int(0.3 * n), replace=False)]
    flood.fail_nodes(victims)
    flood.repair_step()
    failed = flood.run_lookup_batch(
        _pairs(rng, flood.alive_ids(), flood_lookups))
    rows.append(("Flooding", healthy, failed, msgs))

    out: Dict[str, Dict[str, float]] = {}
    for name, healthy_batch, failed_batch, msg_rate in rows:
        ok = [r for r in healthy_batch if r.found]
        okf = [r for r in failed_batch if r.found]
        out[name] = dict(
            success=100 * len(ok) / len(healthy_batch),
            hops=float(np.mean([r.hops for r in ok])) if ok else 0.0,
            msgs_per_lookup=float(msg_rate),
            success_30pct_dead=100 * len(okf) / len(failed_batch),
        )
    rendered = table(
        ["overlay", "success%", "hops", "msgs/lookup", "success%@30%dead"],
        [[k, v["success"], v["hops"], v["msgs_per_lookup"],
          v["success_30pct_dead"]] for k, v in out.items()],
        title=f"TreeP vs baselines (n={n})",
    )
    metrics = {
        "treep_success_pct": out["TreeP (G)"]["success"],
        "treep_hops": out["TreeP (G)"]["hops"],
        "treep_msgs_per_lookup": out["TreeP (G)"]["msgs_per_lookup"],
        "treep_success_pct_30_dead": out["TreeP (G)"]["success_30pct_dead"],
        "chord_hops": out["Chord"]["hops"],
        "flood_msgs_per_lookup": out["Flooding"]["msgs_per_lookup"],
    }
    checks = [
        Check("treep_healthy", out["TreeP (G)"]["success"] >= 99.0,
              f"TreeP success {out['TreeP (G)']['success']:.1f}%"),
        Check("chord_healthy", out["Chord"]["success"] >= 99.0,
              f"Chord success {out['Chord']['success']:.1f}%"),
        Check("flooding_pays_messages",
              out["Flooding"]["msgs_per_lookup"]
              > 20 * out["TreeP (G)"]["msgs_per_lookup"],
              f"flooding {out['Flooding']['msgs_per_lookup']:.0f} vs TreeP "
              f"{out['TreeP (G)']['msgs_per_lookup']:.1f} msgs/lookup"),
        Check("structured_overlays_log_n",
              out["TreeP (G)"]["hops"] <= 2 * np.log2(n)
              and out["Chord"]["hops"] <= 2 * np.log2(n),
              f"TreeP {out['TreeP (G)']['hops']:.1f} / Chord "
              f"{out['Chord']['hops']:.1f} hops (<= 2 log2 n)"),
        Check("treep_survives_failures",
              out["TreeP (G)"]["success_30pct_dead"] >= survive_floor,
              f"TreeP at 30% dead: "
              f"{out['TreeP (G)']['success_30pct_dead']:.1f}% "
              f"(>= {survive_floor:g}%)"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# ------------------------------------------------------------------ storage

def _storage(params, seed, smoke):
    n, n_keys = params["n"], params["keys"]
    quorum = QuorumConfig(n=3, w=2, r=2)

    def loaded_cluster(run_seed, anti_entropy=30.0):
        cluster = (Cluster(config=TreePConfig.paper_case1(), seed=run_seed)
                   .build(n)
                   .with_storage(quorum, anti_entropy=anti_entropy))
        for i in range(n_keys):
            if not cluster.storage.put(f"bench/{i:04d}", {"i": i}).ok:
                raise RuntimeError(f"seed load failed at bench/{i:04d}")
        return cluster

    # -- quorum throughput ------------------------------------------------
    cluster = loaded_cluster(seed)
    store = cluster.storage
    t0 = time.perf_counter()
    put_acks = sum(store.put(f"put/{i:06d}", i).ok for i in range(50))
    put_s = time.perf_counter() - t0
    rng = np.random.default_rng(0)
    t0 = time.perf_counter()
    hits = sum(store.get(f"bench/{int(i):04d}").found
               for i in rng.integers(0, n_keys, size=50))
    get_s = time.perf_counter() - t0

    # -- anti-entropy sweep cost after 20% mass failure -------------------
    net, ae = cluster.net, cluster.anti_entropy
    rng = np.random.default_rng(1)
    victims = [int(v) for v in rng.choice(net.ids, n // 5, replace=False)]
    cluster.fail_nodes(victims, heal=True)
    net.network.reset_stats()
    report = ae.sweep()
    net.sim.drain()
    min_rf_after_sweep = min(store.replication_factors().values())

    # -- durability under 30% burst churn ---------------------------------
    cluster2 = loaded_cluster(seed + 1, anti_entropy=10.0)
    net2, store2, ae2 = cluster2.net, cluster2.storage, cluster2.anti_entropy
    churn_rng = net2.rng.get("bench-churn")
    order = [int(v) for v in churn_rng.permutation(net2.ids)]
    total, burst = int(0.30 * n), max(n // 20, 1)
    killed = 0
    while killed < total:
        step = order[killed:killed + min(burst, total - killed)]
        killed += len(step)
        cluster2.fail_nodes(step, heal=True)
        ae2.converge()
    alive = net2.alive_ids()
    readable = sum(store2.get(f"bench/{i:04d}", via=alive[i % len(alive)]).found
                   for i in range(n_keys))
    min_rf_after_churn = min(store2.replication_factors().values())

    metrics = {
        "put_ops_per_second": 50 / put_s if put_s > 0 else 0.0,
        "get_ops_per_second": 50 / get_s if get_s > 0 else 0.0,
        "ae_under_replicated_first_sweep": float(report.under_replicated),
        "ae_repairs_first_sweep": float(report.repairs_sent),
        "min_rf_after_sweep": float(min_rf_after_sweep),
        "churn_readable_fraction": readable / n_keys,
        "min_rf_after_churn": float(min_rf_after_churn),
    }
    rendered = table(
        ["metric", "value"],
        [
            ["keys under-replicated (first sweep)", report.under_replicated],
            ["repair datagrams (first sweep)", report.repairs_sent],
            ["min live rf after repair", min_rf_after_sweep],
            ["population / alive after churn", f"{n} / {len(alive)}"],
            ["keys readable after churn", f"{readable}/{n_keys}"],
            ["min replication factor after churn", min_rf_after_churn],
        ],
        title=f"replicated storage (n={n}, keys={n_keys}, N=3 W=2 R=2)",
    )
    checks = [
        Check("throughput_writes_all_acked", put_acks == 50,
              f"{put_acks}/50 PUTs reached W acks"),
        Check("throughput_reads_all_hit", hits == 50, f"{hits}/50 GETs found"),
        Check("sweep_restores_full_rf", min_rf_after_sweep == quorum.n,
              f"min rf after sweep = {min_rf_after_sweep} (== N)"),
        Check("churn_keys_all_readable", readable == n_keys,
              f"{readable}/{n_keys} keys quorum-readable after 30% churn"),
        Check("churn_restores_full_rf", min_rf_after_churn == quorum.n,
              f"min rf after churn = {min_rf_after_churn} (== N)"),
        Check("never_lost_below_quorum", ae2.tracker.always_durable,
              "no key ever dropped below quorum readability"),
    ]
    cluster.shutdown()
    cluster2.shutdown()
    return ScenarioOutput(metrics, checks, rendered)


# ------------------------------------------------------------------ compute

def _burst_churn_schedule(net, kill_fraction, burst, spacing):
    """Seeded timed leave events killing *kill_fraction* in bursts."""
    rng = net.rng.get("bench-compute-churn")
    order = [int(v) for v in rng.permutation(net.ids)]
    total = int(round(kill_fraction * len(net.ids)))
    events = [
        ChurnEvent(time=spacing * (1 + i // burst), kind="leave", node=order[i])
        for i in range(total)
    ]
    return ChurnSchedule(events=events)


def _compute_run(params, seed, checkpointing):
    """One full churn run; returns (all_done, SchedulingStats, alive)."""
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
               .build(params["nodes"])
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
               .with_compute(ComputeConfig(
                   checkpoint_interval=params["checkpoint_interval"]
                   if checkpointing else None)))
    net, grid, ae = cluster.net, cluster.compute, cluster.anti_entropy

    wl = JobWorkload(rng=net.rng.get("bench-compute-jobs"),
                     arrival_rate=1.0, work_mean=150.0, work_sigma=0.4,
                     constrained_fraction=0.25)
    specs = (wl.jobs(params["stream_jobs"])
             + wl.dag_batch(tuple(params["dag_layers"]), work=60.0))
    grid.schedule_submissions(specs)

    pending = list(_burst_churn_schedule(
        net, params["kill_fraction"], params["burst"],
        params["burst_spacing"]))
    while pending:
        t = pending[0].time
        burst = [e for e in pending if e.time == t]
        pending = pending[len(burst):]
        if net.sim.now < t:
            net.sim.run(until=t)
        victims = [e.node for e in burst if e.kind == "leave"]
        cluster.fail_nodes(victims, heal=True)
        ae.converge()
        grid.ensure_scheduler()

    done = grid.run_until_done(timeout=params["deadline"])
    stats = grid.stats()
    alive = len(net.alive_ids())
    cluster.shutdown()
    return done, stats, alive


def _steady_state_run(params, seed):
    """No churn: dispatch → heartbeat → complete for one job batch."""
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed + 7)
               .build(params["nodes"]).with_compute())
    net, grid = cluster.net, cluster.compute
    wl = JobWorkload(rng=net.rng.get("bench-steady"), arrival_rate=2.0,
                     work_mean=15.0, constrained_fraction=0.0)
    grid.schedule_submissions(wl.jobs(20, start=net.sim.now))
    done = grid.run_until_done(timeout=400.0)
    stats = grid.stats()
    cluster.shutdown()
    return done, stats


def _compute(params, seed, smoke):
    done_ck, stats_ck, alive = _compute_run(params, seed, checkpointing=True)
    done_rs, stats_rs, _ = _compute_run(params, seed, checkpointing=False)
    done_ss, stats_ss = _steady_state_run(params, seed)

    rows = [["population / alive", f"{params['nodes']} / {alive}"]]
    for label, stats in (("checkpoint", stats_ck), ("restart", stats_rs),
                         ("steady-state", stats_ss)):
        for name, value in stats.summary_rows():
            rows.append([f"{label}: {name}", value])
    rendered = table(["metric", "value"], rows,
                     title="grid jobs under 30% burst churn")
    metrics = {
        "checkpoint_completion_rate": stats_ck.completion_rate,
        "checkpoint_wasted_work": stats_ck.wasted_work,
        "restart_wasted_work": stats_rs.wasted_work,
        "checkpoint_goodput": stats_ck.goodput,
        "checkpoint_makespan": stats_ck.makespan,
        "reexecutions": float(stats_ck.reexecutions),
        "checkpoints_written": float(stats_ck.checkpoints_written),
        "steady_goodput": stats_ss.goodput,
        "steady_completion_rate": stats_ss.completion_rate,
    }
    checks = [
        Check("checkpoint_run_finished", bool(done_ck),
              "checkpointing run completed every job"),
        Check("full_completion", stats_ck.completion_rate == 1.0,
              f"completion rate {stats_ck.completion_rate:.2f}"),
        Check("churn_actually_bit", stats_ck.reexecutions > 0,
              f"{stats_ck.reexecutions} re-executions (scenario not too mild)"),
        Check("checkpoints_flowed", stats_ck.checkpoints_written > 0,
              f"{stats_ck.checkpoints_written} checkpoints written"),
        Check("checkpointing_beats_restart",
              stats_ck.wasted_work < stats_rs.wasted_work,
              f"wasted work {stats_ck.wasted_work:.1f} < "
              f"{stats_rs.wasted_work:.1f}"),
        Check("steady_state_completes",
              bool(done_ss) and stats_ss.completion_rate == 1.0,
              f"no-churn completion rate {stats_ss.completion_rate:.2f}"),
        Check("steady_state_no_rework", stats_ss.goodput > 0.99,
              f"no-churn goodput {stats_ss.goodput:.3f} "
              "(nothing re-run without churn)"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# ------------------------------------------------------------- registration

registry.register(Scenario(
    name="core", group="core",
    description="overlay micro-benches: build throughput, lookup rate, §III.e tables",
    runner=_core,
    params={"n": 1024, "lookups": 100},
    smoke_params={"n": 256, "lookups": 60},
    metrics=(
        Metric("build_seconds", "s", "lower", "steady-state overlay assembly"),
        Metric("lookups_per_second", "ops/s", "higher"),
        Metric("lookup_success_rate", "fraction", "higher"),
        Metric("table_entries_mean", "entries", "lower"),
        Metric("table_entries_max", "entries", "lower"),
        Metric("leaf_entries_mean", "entries", "lower"),
        Metric("connections_mean", "conns", "lower"),
    )))

registry.register(Scenario(
    name="table_sizes", group="core",
    description="§III.e routing-table sizes vs the paper's formulas, both cases",
    runner=_table_sizes,
    params={"n": 1024},
    smoke_params={"n": 256},
    metrics=(
        Metric("case1_leaf_fraction", "fraction", "higher",
               "share of the network that is level-0 only"),
        Metric("case1_leaf_connections_mean", "conns", "lower"),
        Metric("case1_max_entries_mean", "entries", "lower"),
        Metric("case2_max_entries_mean", "entries", "lower"),
    )))

registry.register(Scenario(
    name="ngsa_cost", group="core",
    description="§IV.a NGSA bandwidth verdict: success vs bytes at 30% dead",
    runner=_ngsa_cost,
    params={"n": 1024, "lookups": 300, "dead_fraction": 0.30},
    smoke_params={"n": 256, "lookups": 100},
    metrics=(
        Metric("g_success", "fraction", "higher"),
        Metric("ng_success", "fraction", "higher"),
        Metric("ngsa_success", "fraction", "higher"),
        Metric("ng_bytes_per_msg", "bytes", "lower"),
        Metric("ngsa_bytes_per_msg", "bytes", "neutral",
               "NGSA's state piggyback cost"),
    )))

registry.register(Scenario(
    name="baselines", group="baselines",
    description="TreeP vs Chord vs flooding on the same simulated substrate",
    runner=_baselines,
    params={"n": 1024, "lookups": 200},
    smoke_params={"n": 256, "lookups": 80},
    metrics=(
        Metric("treep_success_pct", "%", "higher"),
        Metric("treep_hops", "hops", "lower"),
        Metric("treep_msgs_per_lookup", "msgs", "lower"),
        Metric("treep_success_pct_30_dead", "%", "higher"),
        Metric("chord_hops", "hops", "neutral"),
        Metric("flood_msgs_per_lookup", "msgs", "neutral"),
    )))

registry.register(Scenario(
    name="storage", group="storage",
    description=("replicated storage: quorum throughput, anti-entropy cost, "
                 "100% durability under 30% burst churn"),
    runner=_storage,
    params={"n": 256, "keys": 120},
    smoke_params={"n": 96, "keys": 40},
    metrics=(
        Metric("put_ops_per_second", "ops/s", "higher"),
        Metric("get_ops_per_second", "ops/s", "higher"),
        Metric("ae_under_replicated_first_sweep", "keys", "neutral"),
        Metric("ae_repairs_first_sweep", "msgs", "lower",
               "repair datagrams to heal a 20% mass failure"),
        Metric("min_rf_after_sweep", "replicas", "higher"),
        Metric("churn_readable_fraction", "fraction", "higher",
               "keys quorum-readable after 30% churn"),
        Metric("min_rf_after_churn", "replicas", "higher"),
    )))

registry.register(Scenario(
    name="compute", group="compute",
    description=("grid scheduling under 30% burst churn: 100% completion, "
                 "checkpointing strictly beats restart on wasted work"),
    runner=_compute,
    params={"nodes": 96, "stream_jobs": 24, "dag_layers": (3, 4, 2, 1),
            "kill_fraction": 0.30, "burst": 6, "burst_spacing": 15.0,
            "deadline": 1500.0, "checkpoint_interval": 8.0},
    smoke_params={"nodes": 64, "stream_jobs": 12, "dag_layers": (2, 2, 1)},
    metrics=(
        Metric("checkpoint_completion_rate", "fraction", "higher"),
        Metric("checkpoint_wasted_work", "work", "lower"),
        Metric("restart_wasted_work", "work", "neutral"),
        Metric("checkpoint_goodput", "fraction", "higher"),
        Metric("checkpoint_makespan", "sim s", "lower"),
        Metric("reexecutions", "count", "neutral"),
        Metric("checkpoints_written", "count", "neutral"),
        Metric("steady_goodput", "fraction", "higher",
               "useful/executed work with zero churn"),
        Metric("steady_completion_rate", "fraction", "higher"),
    )))
