"""Scenario definitions — importing this package populates the registry.

One module per family, mirroring the old ``benchmarks/`` taxonomy:

* :mod:`repro.bench.scenarios.figures` — the nine §IV figure sweeps;
* :mod:`repro.bench.scenarios.ablation` — the four §VI design probes;
* :mod:`repro.bench.scenarios.systems` — engineering benches for the
  overlay core, table-size bounds, NGSA cost, baselines, storage and
  compute subsystems;
* :mod:`repro.bench.scenarios.scale` — the 10k-node scalability sweeps
  (events/sec, hops vs log N) behind ``docs/performance.md``;
* :mod:`repro.bench.scenarios.adversarial` — chaos benches (partitions,
  rack failures, stragglers, loss bursts) with survival-invariant
  checks.
"""

from repro.bench.scenarios import ablation as _ablation  # noqa: F401
from repro.bench.scenarios import adversarial as _adversarial  # noqa: F401
from repro.bench.scenarios import figures as _figures  # noqa: F401
from repro.bench.scenarios import scale as _scale  # noqa: F401
from repro.bench.scenarios import systems as _systems  # noqa: F401
