"""Figure scenarios — the nine §IV figure regenerations as registry entries.

Each scenario wraps the matching :mod:`repro.experiments` runner and ports
the invariants its old ``benchmarks/bench_figure_*.py`` asserted into
:class:`~repro.bench.scenario.Check` verdicts.  All nine derive from the
two memoised failure sweeps (case 1 / case 2, see
:mod:`repro.experiments.cache`), so ``python -m repro.bench run`` pays for
each sweep once per process regardless of how many figures it renders.

Scale-sensitive thresholds (wandering-hop peaks, surface peak mass) are
relaxed under ``--smoke``: the reduced population still exercises every
code path, but the paper-scale magnitudes only emerge at n ≈ 1024.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.bench.scenario import Check, Metric, Scenario, ScenarioOutput, registry
from repro.experiments import (
    figure_a,
    figure_b,
    figure_c,
    figure_d,
    figure_e,
    figure_fg,
    figure_hi,
)

FULL = {"n": 1024, "lookups_per_step": 200}
SMOKE = {"n": 256, "lookups_per_step": 60}


def _kw(params: Mapping[str, Any], seed: int) -> Mapping[str, Any]:
    return dict(n=params["n"], seed=seed,
                lookups_per_step=params["lookups_per_step"])


def _figure_a(params, seed, smoke):
    series = figure_a.run(**_kw(params, seed))
    g = series["G"]
    at30 = [series[a].interp(30.0) for a in ("G", "NG", "NGSA")]
    metrics = {
        "g_failed_pct_at_30": g.interp(30.0),
        "g_failed_pct_at_80": g.interp(80.0),
        "algo_spread_at_30": max(at30) - min(at30),
    }
    checks = [
        Check("robust_at_30pct_dead", g.interp(30.0) <= 25.0,
              f"G failed% at 30% dead = {g.interp(30.0):.1f} (<= 25)"),
        Check("failure_curve_grows", g.interp(80.0) >= g.interp(20.0),
              f"{g.interp(80.0):.1f} >= {g.interp(20.0):.1f}"),
        Check("algorithms_one_family", max(at30) - min(at30) <= 15.0,
              f"G/NG/NGSA spread at 30% dead = {max(at30) - min(at30):.1f}"),
    ]
    return ScenarioOutput(metrics, checks, figure_a.render(**_kw(params, seed)))


def _figure_b(params, seed, smoke):
    import numpy as np
    series = figure_b.run(**_kw(params, seed))
    g = series["G"]
    first_half = g.ys()[: len(g) // 2]
    spread = float(np.max(first_half) - np.min(first_half))
    metrics = {"g_hops_steady": float(g.ys()[0]),
               "g_hops_spread_first_half": spread}
    checks = [
        Check("log_scale_steady_hops", 2.0 <= g.ys()[0] <= 12.0,
              f"steady-state hops = {g.ys()[0]:.2f}"),
        Check("flat_through_first_half", spread <= 4.0,
              f"hop spread over first half = {spread:.2f} (<= 4)"),
    ]
    return ScenarioOutput(metrics, checks, figure_b.render(**_kw(params, seed)))


def _figure_c(params, seed, smoke):
    series = figure_c.run(**_kw(params, seed))
    g = series["G"]
    metrics = {"g_failed_pct_at_30": g.interp(30.0),
               "g_failed_pct_at_80": g.interp(80.0)}
    checks = [
        Check("robust_at_30pct_dead", g.interp(30.0) <= 25.0,
              f"G failed% at 30% dead = {g.interp(30.0):.1f} (<= 25)"),
        Check("failure_curve_grows", g.interp(80.0) >= g.interp(20.0),
              f"{g.interp(80.0):.1f} >= {g.interp(20.0):.1f}"),
    ]
    return ScenarioOutput(metrics, checks, figure_c.render(**_kw(params, seed)))


def _figure_d(params, seed, smoke):
    import numpy as np
    series = figure_d.run(**_kw(params, seed))
    fixed, variable = series["fixed nc=4"], series["variable nc"]
    var_spread = float(np.ptp(variable.ys()[: len(variable) * 3 // 4]))
    metrics = {
        "fixed_hops_at_10": fixed.interp(10.0),
        "variable_hops_at_10": variable.interp(10.0),
        "variable_hops_spread": var_spread,
    }
    checks = [
        Check("flatter_hierarchy_no_extra_hops",
              variable.interp(10.0) <= fixed.interp(10.0) + 1.0,
              f"variable {variable.interp(10.0):.2f} vs fixed "
              f"{fixed.interp(10.0):.2f} (+1 slack)"),
        Check("variable_nc_tracks_failures", var_spread >= 0.5,
              f"variable-nc hop spread = {var_spread:.2f} (>= 0.5)"),
    ]
    return ScenarioOutput(metrics, checks, figure_d.render(**_kw(params, seed)))


def _figure_e(params, seed, smoke):
    series = figure_e.run(**_kw(params, seed))
    smax, smin = series["max"], series["min"]
    ordered = all(a >= b for a, b in zip(smax.ys(), smin.ys()))
    wander_floor = 4.0 if smoke else 10.0
    metrics = {"max_failed_hops_peak": smax.max_y(),
               "min_failed_hops_peak": smin.max_y()}
    checks = [
        Check("ttl_backstop_holds", smax.max_y() <= 256,
              f"max failed hops = {smax.max_y():.0f} (<= TTL backstop 256)"),
        Check("max_dominates_min", ordered, "max >= min at every step"),
        Check("wandering_request_signature", smax.max_y() >= wander_floor,
              f"peak failed hops = {smax.max_y():.0f} (>= {wander_floor:g})"),
    ]
    return ScenarioOutput(metrics, checks, figure_e.render(**_kw(params, seed)))


def _figure_f(params, seed, smoke):
    surfaces = figure_fg.run(**_kw(params, seed))
    surf = surfaces["F"]
    ridge = surf.ridge_hops()
    early = ridge[: len(ridge) // 2]
    peak_hops, peak_pct = surf.peak()
    peak_floor = 10.0 if smoke else 15.0
    ridge_tol = 6 if smoke else 4  # noisier ridge at smoke population
    metrics = {"ridge_hops_start": float(ridge[0]),
               "ridge_spread_first_half": float(max(early) - min(early)),
               "peak_hops": float(peak_hops), "peak_pct": peak_pct}
    checks = [
        Check("ridge_near_constant", max(early) - min(early) <= ridge_tol,
              f"ridge spread over first half = {max(early) - min(early)} "
              f"(<= {ridge_tol})"),
        Check("ridge_log_scale", 2 <= ridge[0] <= 10,
              f"steady-state modal hops = {ridge[0]}"),
        Check("peak_mass_concentrated", peak_pct >= peak_floor,
              f"peak = {peak_pct:.1f}% at {peak_hops} hops "
              f"(>= {peak_floor:g}%)"),
    ]
    return ScenarioOutput(metrics, checks, figure_fg.render(**_kw(params, seed)))


def _figure_g(params, seed, smoke):
    surfaces = figure_fg.run(**_kw(params, seed))
    surf = surfaces["G"]
    ridge = surf.ridge_hops()
    early = ridge[: len(ridge) // 2]
    g_cum8 = float(sum(surfaces["F"].percent_rows[0][:9]))
    ng_cum8 = float(sum(surfaces["G"].percent_rows[0][:9]))
    metrics = {"ng_ridge_hops_start": float(ridge[0]),
               "g_cum_pct_within_8_hops": g_cum8,
               "ng_cum_pct_within_8_hops": ng_cum8}
    checks = [
        Check("ng_ridge_bounded", all(1 <= r <= 14 for r in early),
              f"early ridge = {early}"),
        # The paper reports G slightly more front-loaded than NG; this
        # reproduction asserts the family-level claim (see EXPERIMENTS.md).
        Check("both_front_loaded", g_cum8 >= 50.0 and ng_cum8 >= 50.0,
              f"steady-state mass within 8 hops: G {g_cum8:.1f}%, "
              f"NG {ng_cum8:.1f}% (>= 50%)"),
    ]
    return ScenarioOutput(metrics, checks, figure_fg.render(**_kw(params, seed)))


def _figure_h(params, seed, smoke):
    surfaces = figure_hi.run(**_kw(params, seed))
    surf = surfaces["H"]
    ridge = surf.ridge_hops()
    case1 = figure_fg.run(**_kw(params, seed))["F"]
    metrics = {"ridge_hops_start": float(ridge[0]),
               "peak_pct": surf.peak()[1],
               "case1_peak_pct": case1.peak()[1]}
    checks = [
        Check("ridge_log_scale", 1 <= ridge[0] <= 8,
              f"steady-state modal hops = {ridge[0]}"),
        Check("steeper_than_case1",
              surf.peak()[1] >= case1.peak()[1] - 8.0,
              f"case-2 peak {surf.peak()[1]:.1f}% vs case-1 "
              f"{case1.peak()[1]:.1f}% (-8 slack)"),
    ]
    return ScenarioOutput(metrics, checks, figure_hi.render(**_kw(params, seed)))


def _figure_i(params, seed, smoke):
    surfaces = figure_hi.run(**_kw(params, seed))
    surf = surfaces["I"]
    ridge = surf.ridge_hops()
    g_peak, ng_peak = surfaces["H"].peak(), surf.peak()
    metrics = {"ng_ridge_hops_start": float(ridge[0]),
               "g_peak_hops": float(g_peak[0]),
               "ng_peak_hops": float(ng_peak[0])}
    checks = [
        Check("ridge_log_scale", 1 <= ridge[0] <= 8,
              f"steady-state modal hops = {ridge[0]}"),
        Check("ng_mirrors_g", abs(g_peak[0] - ng_peak[0]) <= 4,
              f"peak hops G={g_peak[0]} vs NG={ng_peak[0]} (<= 4 apart)"),
    ]
    return ScenarioOutput(metrics, checks, figure_hi.render(**_kw(params, seed)))


_FIGURES = (
    ("figure_a", _figure_a,
     "% failed lookups vs % failed nodes, case 1 (paper §IV.a)",
     (Metric("g_failed_pct_at_30", "%", "lower", "G failed lookups at 30% dead"),
      Metric("g_failed_pct_at_80", "%", "neutral", "G failed lookups at 80% dead"),
      Metric("algo_spread_at_30", "%", "lower", "G/NG/NGSA spread at 30% dead"))),
    ("figure_b", _figure_b,
     "average hops vs % failed nodes, case 1 (paper §IV.a)",
     (Metric("g_hops_steady", "hops", "lower", "steady-state average hops"),
      Metric("g_hops_spread_first_half", "hops", "lower",
             "hop-count drift over the first half of the sweep"))),
    ("figure_c", _figure_c,
     "% failed lookups vs % failed nodes, case 2 / variable nc (paper §IV.b)",
     (Metric("g_failed_pct_at_30", "%", "lower", "G failed lookups at 30% dead"),
      Metric("g_failed_pct_at_80", "%", "neutral", "G failed lookups at 80% dead"))),
    ("figure_d", _figure_d,
     "average hops, fixed vs variable nc (paper §IV.b)",
     (Metric("fixed_hops_at_10", "hops", "lower", "fixed nc=4 hops at 10% dead"),
      Metric("variable_hops_at_10", "hops", "lower", "variable-nc hops at 10% dead"),
      Metric("variable_hops_spread", "hops", "neutral",
             "variable-nc hop drift across the sweep"))),
    ("figure_e", _figure_e,
     "max/min hops of failed lookups, case 1 (paper §IV.a)",
     (Metric("max_failed_hops_peak", "hops", "lower",
             "peak hops wandered by a doomed request"),
      Metric("min_failed_hops_peak", "hops", "neutral"))),
    ("figure_f", _figure_f,
     "hop-distribution surface, case 1, greedy (paper §IV.a)",
     (Metric("ridge_hops_start", "hops", "lower", "steady-state modal hops"),
      Metric("ridge_spread_first_half", "hops", "lower"),
      Metric("peak_hops", "hops", "neutral"),
      Metric("peak_pct", "%", "higher", "request mass at the tallest ridge"))),
    ("figure_g", _figure_g,
     "hop-distribution surface, case 1, NG (paper §IV.a)",
     (Metric("ng_ridge_hops_start", "hops", "lower"),
      Metric("g_cum_pct_within_8_hops", "%", "higher"),
      Metric("ng_cum_pct_within_8_hops", "%", "higher"))),
    ("figure_h", _figure_h,
     "hop-distribution surface, case 2, greedy (paper §IV.b)",
     (Metric("ridge_hops_start", "hops", "lower"),
      Metric("peak_pct", "%", "higher"),
      Metric("case1_peak_pct", "%", "neutral"))),
    ("figure_i", _figure_i,
     "hop-distribution surface, case 2, NG (paper §IV.b)",
     (Metric("ng_ridge_hops_start", "hops", "lower"),
      Metric("g_peak_hops", "hops", "neutral"),
      Metric("ng_peak_hops", "hops", "neutral"))),
)

for _name, _runner, _desc, _metrics in _FIGURES:
    registry.register(Scenario(
        name=_name, group="figures", description=_desc, runner=_runner,
        params=dict(FULL), smoke_params=dict(SMOKE), metrics=_metrics))
