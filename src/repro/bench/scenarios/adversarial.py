"""Adversarial scenarios — chaos benches proving the stack survives
partitions, correlated rack failures, stragglers and loss bursts.

Each scenario composes :class:`~repro.sim.conditions.NetworkConditions`
onto an otherwise-standard cluster and asserts a *survival invariant* as
a Check: no acknowledged quorum write unreadable after a partition
heals, 100% job completion despite whole-rack losses, p999 lookup
latency bounded under stragglers (gated through an inline
:mod:`repro.obs.slo` spec), lookups resolving through Gilbert-Elliott
loss bursts.  Every condition draws from a dedicated RNG stream
(``adv-*``), so the pre-existing scenarios stay bit-identical at a fixed
seed with this module loaded.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.bench.scenario import Check, Metric, Scenario, ScenarioOutput, registry
from repro.cluster import Cluster
from repro.compute.job import ComputeConfig
from repro.core.config import TreePConfig
from repro.core.treep import TreePNetwork
from repro.obs.hub import ObsHub
from repro.obs.slo import evaluate_hub, parse_slo
from repro.sim.conditions import GilbertElliott, NetworkConditions
from repro.storage import QuorumConfig
from repro.viz.ascii import table
from repro.workloads.adversarial import (
    rack_failure_plan,
    straggler_plan,
    subtree_in_span,
    subtree_members,
)
from repro.workloads.jobs import JobWorkload


def _ensure_hub(net: TreePNetwork) -> ObsHub:
    """The ambient hub when a capture is active (``--trace-out``/``--slo``
    runs), else a locally installed one — so scenario checks can read span
    metrics in both modes without double-recording."""
    hub = net.obs
    if hub is None:
        hub = ObsHub()
        net.obs = hub
        hub.topology_source = net.topology_snapshot
        for node in net.nodes.values():
            node.obs = hub
    return hub


def _span_hist(hub: ObsHub, category: str):
    """The hub's latency sketch for one span category (empty if none)."""
    return hub.metrics.histogram(f"span.{category}.latency")


def _hook_counters(cond: NetworkConditions) -> dict:
    counts = {"cut": 0, "heal": 0}
    cond.cut_hooks.append(lambda p: counts.__setitem__("cut", counts["cut"] + 1))
    cond.heal_hooks.append(
        lambda p: counts.__setitem__("heal", counts["heal"] + 1))
    return counts


# ------------------------------------------------- partition-heal durability

def _partition_quorum(params, seed, smoke):
    n, n_keys, writes = params["n"], params["keys"], params["writes"]
    quorum = QuorumConfig(n=3, w=2, r=2)
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
               .build(n).with_storage(quorum, anti_entropy=10.0))
    net, store, ae = cluster.net, cluster.storage, cluster.anti_entropy
    hub = _ensure_hub(net)

    preload_ok = sum(store.put(f"adv/{i:04d}", {"i": i}).ok
                     for i in range(n_keys))

    # Asymmetric cut: a subtree's uplink blackholes outbound traffic while
    # inbound still flows — the nastier half of a real partition.
    topology = net.topology_snapshot()
    root = subtree_in_span(topology, net.rng.get("adv-partition"), 0.10, 0.45)
    inside = subtree_members(topology, root)
    cond = NetworkConditions(net.network)
    counts = _hook_counters(cond)
    part = cond.partition(inside, bidirectional=False, name="uplink")
    cond.cut(part)

    inside_s, outside_s = sorted(part.a), sorted(part.b)
    acked: List[str] = []
    for i in range(writes):
        side = inside_s if i % 2 == 0 else outside_s
        via = side[(i // 2) % len(side)]
        if store.put(f"part/{i:04d}", {"w": i}, via=via).ok:
            acked.append(f"part/{i:04d}")
    blocked = cond.blocked_total()

    cond.heal(part)
    again = cond.heal(part)  # exactly-once: second heal is a no-op
    ae.converge()

    vantages = (inside_s[0], outside_s[0])
    readable = sum(all(store.get(k, via=v).found for v in vantages)
                   for k in acked)
    pre_readable = sum(
        store.get(f"adv/{i:04d}", via=outside_s[i % len(outside_s)]).found
        for i in range(n_keys))
    min_rf = min(store.replication_factors().values())
    put_hist = _span_hist(hub, "storage.put")

    metrics = {
        "writes_acked_fraction": len(acked) / writes,
        "acked_readable_fraction": readable / len(acked) if acked else 0.0,
        "preload_readable_fraction": pre_readable / n_keys,
        "blocked_datagrams": float(blocked),
        "min_rf_after_heal": float(min_rf),
        "put_p99_virtual_s": put_hist.quantile(0.99),
    }
    rendered = table(
        ["metric", "value"],
        [
            ["subtree cut (|A| / n)", f"{len(inside)} / {n}"],
            ["writes acked during cut", f"{len(acked)}/{writes}"],
            ["acked writes readable after heal", f"{readable}/{len(acked)}"],
            ["datagrams blocked by the cut", blocked],
            ["min replication factor after heal", min_rf],
        ],
        title=f"asymmetric partition + heal, quorum durability (n={n})",
    )
    checks = [
        Check("no_acked_write_lost", readable == len(acked),
              f"{readable}/{len(acked)} acked writes quorum-readable from "
              "both sides after heal"),
        Check("partition_disrupted_writes", len(acked) < writes,
              f"{writes - len(acked)} writes failed during the cut "
              "(the cut actually bit)"),
        Check("partition_blocked_datagrams", blocked > 0,
              f"{blocked} datagrams dropped at the cut"),
        Check("cut_heal_hooks_exactly_once",
              counts == {"cut": 1, "heal": 1} and not again,
              f"hooks fired {counts} (second heal was a no-op)"),
        Check("preload_survives", preload_ok == n_keys
              and pre_readable == n_keys,
              f"{pre_readable}/{n_keys} pre-cut keys readable"),
        Check("heal_restores_full_rf", min_rf == quorum.n,
              f"min rf after converge = {min_rf} (== N)"),
        Check("obs_put_spans_complete",
              put_hist.count == n_keys + writes,
              f"{put_hist.count} put spans recorded "
              f"(== {n_keys + writes} issued)"),
    ]
    cluster.shutdown()
    return ScenarioOutput(metrics, checks, rendered)


# ------------------------------------------------ rack-correlated failures

def _rack_failure_jobs(params, seed, smoke):
    nodes, jobs = params["nodes"], params["jobs"]
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
               .build(nodes)
               .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
               .with_compute(ComputeConfig(
                   checkpoint_interval=params["checkpoint_interval"])))
    net, grid, ae = cluster.net, cluster.compute, cluster.anti_entropy
    hub = _ensure_hub(net)

    wl = JobWorkload(rng=net.rng.get("adv-rack-jobs"), arrival_rate=1.0,
                     work_mean=120.0, work_sigma=0.4,
                     constrained_fraction=0.25)
    grid.schedule_submissions(wl.jobs(jobs))

    plan = rack_failure_plan(net.topology_snapshot(),
                             net.rng.get("adv-racks"),
                             params["kill_fraction"])
    pending = list(plan.as_schedule(start=params["first_failure"],
                                    spacing=params["rack_spacing"]))
    while pending:
        t = pending[0].time
        burst = [e for e in pending if e.time == t]
        pending = pending[len(burst):]
        if net.sim.now < t:
            net.sim.run(until=t)
        cluster.fail_nodes([e.node for e in burst], heal=True)
        ae.converge()
        grid.ensure_scheduler()

    done = grid.run_until_done(timeout=params["deadline"])
    stats = grid.stats()
    alive = len(net.alive_ids())
    largest_rack = max(len(r) for r in plan.racks)
    job_hist = _span_hist(hub, "job")

    metrics = {
        "completion_rate": stats.completion_rate,
        "reexecutions": float(stats.reexecutions),
        "wasted_work": stats.wasted_work,
        "goodput": stats.goodput,
        "racks_killed": float(len(plan.racks)),
        "killed_fraction": plan.fraction,
        "largest_rack": float(largest_rack),
    }
    rendered = table(
        ["metric", "value"],
        [
            ["population / alive", f"{nodes} / {alive}"],
            ["racks killed (whole subtrees)", len(plan.racks)],
            ["largest rack", largest_rack],
            ["killed fraction", f"{plan.fraction:.2f}"],
            ["jobs completed", f"{stats.completion_rate:.2f}"],
            ["re-executions", stats.reexecutions],
        ],
        title=f"grid jobs under rack-correlated failures (n={nodes})",
    )
    checks = [
        Check("all_jobs_complete_despite_racks",
              bool(done) and stats.completion_rate == 1.0,
              f"completion rate {stats.completion_rate:.2f} with "
              f"{plan.fraction:.0%} of the overlay dead"),
        Check("failures_actually_correlated", largest_rack >= 3,
              f"largest killed subtree = {largest_rack} nodes"),
        Check("target_fraction_reached",
              plan.fraction >= params["kill_fraction"],
              f"killed {plan.fraction:.2f} >= {params['kill_fraction']:.2f}"),
        Check("rack_failures_bit", stats.reexecutions > 0,
              f"{stats.reexecutions} re-executions (chaos not too mild)"),
        Check("obs_job_spans_complete", job_hist.count == jobs,
              f"{job_hist.count} job spans recorded (== {jobs} submitted)"),
    ]
    cluster.shutdown()
    return ScenarioOutput(metrics, checks, rendered)


# -------------------------------------------------------- straggler tail

def _lookup_pairs(ids, count) -> List[Tuple[int, int]]:
    rng = np.random.default_rng(0)
    return [tuple(int(x) for x in rng.choice(ids, 2, replace=False))
            for _ in range(count)]


def _straggler_tail(params, seed, smoke):
    n, lookups = params["n"], params["lookups"]
    fraction, factor = params["straggler_fraction"], params["slow_factor"]

    def one_run(inject: bool):
        net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
        net.build(n)
        hub = _ensure_hub(net)
        cond = NetworkConditions(net.network)
        wrapped = None
        if inject:
            plan = straggler_plan(net.ids, net.rng.get("adv-stragglers"),
                                  fraction, factor)
            wrapped = cond.set_stragglers(plan.victim_set, plan.factor)
        results = net.run_lookup_batch(_lookup_pairs(net.ids, lookups), "G")
        return hub, wrapped, results

    healthy_hub, _, healthy = one_run(inject=False)
    slow_hub, wrapped, slowed = one_run(inject=True)
    h_hist = _span_hist(healthy_hub, "lookup")
    s_hist = _span_hist(slow_hub, "lookup")
    h_found = sum(r.found for r in healthy)
    s_found = sum(r.found for r in slowed)
    h_p999, s_p999 = h_hist.quantile(0.999), s_hist.quantile(0.999)

    # The p999 bound, enforced through the SLO layer itself: an inline
    # spec evaluated against the straggler run's hub.
    spec = parse_slo(
        {"slo": {"lookup": {"p999": params["p999_ceiling"],
                            "min_samples": 20}}},
        source="adv_straggler_tail inline spec")
    slo_results = evaluate_hub(spec, slow_hub)
    slo_ok = bool(slo_results) and all(r.ok for r in slo_results)

    metrics = {
        "healthy_p50_virtual_s": h_hist.quantile(0.5),
        "healthy_p999_virtual_s": h_p999,
        "straggler_p999_virtual_s": s_p999,
        "tail_amplification": s_p999 / h_p999 if h_p999 > 0 else 0.0,
        "slowed_datagrams": float(wrapped.slowed),
        "victims": float(len(wrapped.victims)),
        "lookup_success_rate": s_found / lookups,
    }
    rendered = table(
        ["run", "p50 (s)", "p999 (s)", "success"],
        [
            ["healthy", h_hist.quantile(0.5), h_p999,
             f"{h_found}/{lookups}"],
            [f"{len(wrapped.victims)} stragglers x{factor:g}",
             s_hist.quantile(0.5), s_p999, f"{s_found}/{lookups}"],
        ],
        title=f"lookup tail under stragglers (n={n})",
    )
    checks = [
        Check("p999_bounded_slo", slo_ok,
              f"straggler p999 {s_p999:.3f}s within the "
              f"{params['p999_ceiling']:g}s SLO "
              f"({len(slo_results)} rule(s) evaluated)"),
        Check("stragglers_stretch_tail", s_p999 > h_p999,
              f"p999 {s_p999:.3f}s > healthy {h_p999:.3f}s"),
        Check("stragglers_do_not_break_routing", s_found == h_found,
              f"straggler run found {s_found} == healthy {h_found} "
              "(latency-only condition: same resolutions)"),
        Check("victim_links_slowed", wrapped.slowed > 0,
              f"{wrapped.slowed} datagrams paid the x{factor:g} slowdown"),
        Check("obs_lookup_spans_complete",
              h_hist.count == lookups and s_hist.count == lookups,
              f"{h_hist.count}/{s_hist.count} lookup spans (== {lookups})"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# ---------------------------------------------------------- loss bursts

def _loss_burst_lookup(params, seed, smoke):
    n, lookups = params["n"], params["lookups"]
    net = TreePNetwork(config=TreePConfig.paper_case1(), seed=seed)
    net.build(n)
    hub = _ensure_hub(net)
    cond = NetworkConditions(net.network)
    ge = GilbertElliott(net.rng.get("adv-loss-burst"),
                        loss_bad=params["loss_bad"],
                        p_enter_bad=params["p_enter_bad"],
                        p_exit_bad=params["p_exit_bad"])
    cond.set_loss_model(ge)

    results = net.run_lookup_batch(_lookup_pairs(net.ids, lookups), "G")
    found = sum(r.found for r in results)
    success = found / lookups
    hist = _span_hist(hub, "lookup")

    metrics = {
        "lookup_success_rate": success,
        "observed_loss_rate": ge.observed_loss(),
        "model_expected_loss": ge.expected_loss(),
        "burst_drops": float(ge.drops),
        "bad_state_fraction": ge.bad_packets / ge.packets if ge.packets else 0.0,
        "chain_transitions": float(ge.transitions),
    }
    rendered = table(
        ["metric", "value"],
        [
            ["datagrams through the loss model", ge.packets],
            ["dropped in bursts", ge.drops],
            ["observed / stationary loss",
             f"{ge.observed_loss():.3f} / {ge.expected_loss():.3f}"],
            ["lookups resolved", f"{found}/{lookups}"],
        ],
        title=f"lookups under Gilbert-Elliott loss bursts (n={n})",
    )
    expected = ge.expected_loss()
    checks = [
        Check("overlay_survives_bursts", success >= params["success_floor"],
              f"success {success:.2f} >= floor {params['success_floor']:g}"),
        Check("bursts_actually_dropped",
              ge.drops > 0 and ge.transitions > 0,
              f"{ge.drops} drops across {ge.transitions} chain transitions"),
        Check("loss_tracks_the_chain",
              abs(ge.observed_loss() - expected) <= 0.5 * expected + 0.01,
              f"observed {ge.observed_loss():.3f} vs stationary "
              f"{expected:.3f}"),
        Check("obs_lookup_spans_complete", hist.count == lookups,
              f"{hist.count} lookup spans recorded (== {lookups}; "
              "timeouts resolve, nothing hangs)"),
    ]
    return ScenarioOutput(metrics, checks, rendered)


# -------------------------------------------------- scheduled heal + converge

def _heal_convergence(params, seed, smoke):
    n, n_keys, writes = params["n"], params["keys"], params["writes"]
    duration = params["partition_duration"]
    quorum = QuorumConfig(n=3, w=2, r=2)
    cluster = (Cluster(config=TreePConfig.paper_case1(), seed=seed)
               .build(n).with_storage(quorum, anti_entropy=10.0))
    net, store, ae = cluster.net, cluster.storage, cluster.anti_entropy
    _ensure_hub(net)

    preload_ok = sum(store.put(f"adv/{i:04d}", {"i": i}).ok
                     for i in range(n_keys))

    topology = net.topology_snapshot()
    root = subtree_in_span(topology, net.rng.get("adv-heal"), 0.15, 0.45)
    inside = subtree_members(topology, root)
    cond = NetworkConditions(net.network)
    counts = _hook_counters(cond)

    start = net.sim.now + 1.0
    part, _cut_ev, _heal_ev = cond.schedule(start, duration, inside,
                                            name="scheduled-cut")
    net.sim.run(until=start + 0.25)
    cut_active = cond.active() == (part,)

    inside_s, outside_s = sorted(part.a), sorted(part.b)
    outcomes = {}

    def _done(key):
        def cb(reply):
            outcomes[key] = bool(reply.ok)
        return cb

    for i in range(writes):
        side = inside_s if i % 2 == 0 else outside_s
        via = side[(i // 2) % len(side)]
        store.put_async(f"cut/{i:04d}", {"w": i}, via=via,
                        on_done=_done(f"cut/{i:04d}"))
    # No client-side timeout on the async path: a coordinator reply the
    # cut swallows leaves its write unresolved — unacked, so the
    # durability invariant promises nothing about it.  Only writes whose
    # ack *reached* the client count as acknowledged.
    net.sim.run(until=start + duration + 0.5)
    resolved = len(outcomes)
    acked = sorted(k for k, ok in outcomes.items() if ok)
    blocked = cond.blocked_total()
    healed = not cond.active()
    manual_noop = not cond.heal(part)  # already healed by the schedule

    sweeps = ae.converge()
    readable = sum(all(store.get(k, via=v).found
                       for v in (inside_s[0], outside_s[0]))
                   for k in acked)
    min_rf = min(store.replication_factors().values())

    # Post-heal routing: cross-cut lookups in both directions.
    pairs = [(inside_s[i % len(inside_s)], outside_s[i % len(outside_s)])
             for i in range(params["crosscut_lookups"] // 2)]
    pairs += [(b, a) for a, b in pairs]
    cross_found = sum(cluster.lookup_sync(o, t).found for o, t in pairs)

    metrics = {
        "writes_acked_fraction": len(acked) / writes,
        "writes_resolved_fraction": resolved / writes,
        "acked_readable_fraction": readable / len(acked) if acked else 0.0,
        "blocked_datagrams": float(blocked),
        "ae_sweeps_to_converge": float(sweeps),
        "min_rf_after_heal": float(min_rf),
        "crosscut_success_post_heal": cross_found / len(pairs),
    }
    rendered = table(
        ["metric", "value"],
        [
            ["scheduled cut window (virtual s)", f"{duration:g}"],
            ["writes resolved / acked during cut",
             f"{resolved} / {len(acked)} of {writes}"],
            ["acked readable after heal", f"{readable}/{len(acked)}"],
            ["anti-entropy sweeps to converge", sweeps],
            ["cross-cut lookups after heal",
             f"{cross_found}/{len(pairs)}"],
        ],
        title=f"scheduled partition heal + convergence (n={n})",
    )
    checks = [
        Check("no_acked_write_lost", readable == len(acked),
              f"{readable}/{len(acked)} acked writes readable from both "
              "sides after the scheduled heal"),
        Check("schedule_cut_and_healed",
              cut_active and healed and counts == {"cut": 1, "heal": 1}
              and manual_noop,
              f"hooks fired {counts}; manual heal after the scheduled one "
              "was a no-op"),
        Check("cut_disrupts_acks", len(acked) < writes,
              f"{len(acked)}/{writes} writes acked, {resolved} resolved "
              "(the cut swallowed acks or replies)"),
        Check("partition_blocked_datagrams", blocked > 0,
              f"{blocked} datagrams dropped at the cut"),
        Check("heal_restores_routing",
              cross_found >= 0.9 * len(pairs),
              f"{cross_found}/{len(pairs)} cross-cut lookups after heal"),
        Check("heal_restores_full_rf",
              min_rf == quorum.n and preload_ok == n_keys,
              f"min rf {min_rf} == N after {sweeps} sweep(s)"),
    ]
    cluster.shutdown()
    return ScenarioOutput(metrics, checks, rendered)


# ------------------------------------------------------------- registration

registry.register(Scenario(
    name="adv_partition_quorum", group="adversarial",
    description=("asymmetric subtree partition + heal: no acknowledged "
                 "quorum write lost"),
    runner=_partition_quorum,
    params={"n": 96, "keys": 60, "writes": 30},
    smoke_params={"n": 64, "keys": 24, "writes": 16},
    metrics=(
        Metric("writes_acked_fraction", "fraction", "neutral",
               "writes reaching W acks while the cut is live"),
        Metric("acked_readable_fraction", "fraction", "higher",
               "the durability invariant: 1.0 or the stack is broken"),
        Metric("preload_readable_fraction", "fraction", "higher"),
        Metric("blocked_datagrams", "count", "neutral"),
        Metric("min_rf_after_heal", "replicas", "higher"),
        Metric("put_p99_virtual_s", "s", "lower",
               "includes timed-out writes at the quorum timeout"),
    )))

registry.register(Scenario(
    name="adv_rack_failure_jobs", group="adversarial",
    description=("whole-subtree (rack) correlated kills: 100% job "
                 "completion via checkpointed re-execution"),
    runner=_rack_failure_jobs,
    params={"nodes": 96, "jobs": 18, "kill_fraction": 0.30,
            "first_failure": 20.0, "rack_spacing": 12.0,
            "checkpoint_interval": 8.0, "deadline": 2000.0},
    smoke_params={"nodes": 64, "jobs": 10},
    metrics=(
        Metric("completion_rate", "fraction", "higher"),
        Metric("reexecutions", "count", "neutral"),
        Metric("wasted_work", "work", "lower"),
        Metric("goodput", "fraction", "higher"),
        Metric("racks_killed", "count", "neutral"),
        Metric("killed_fraction", "fraction", "neutral"),
        Metric("largest_rack", "nodes", "neutral"),
    )))

registry.register(Scenario(
    name="adv_straggler_tail", group="adversarial",
    description=("slow-node injection: p999 lookup latency bounded (SLO-"
                 "evaluated), routing results untouched"),
    runner=_straggler_tail,
    params={"n": 256, "lookups": 400, "straggler_fraction": 0.10,
            "slow_factor": 8.0, "p999_ceiling": 4.0},
    smoke_params={"n": 128, "lookups": 150},
    metrics=(
        Metric("healthy_p50_virtual_s", "s", "lower"),
        Metric("healthy_p999_virtual_s", "s", "lower"),
        Metric("straggler_p999_virtual_s", "s", "lower"),
        Metric("tail_amplification", "ratio", "neutral",
               "straggler p999 / healthy p999"),
        Metric("slowed_datagrams", "count", "neutral"),
        Metric("victims", "count", "neutral"),
        Metric("lookup_success_rate", "fraction", "higher"),
    )))

registry.register(Scenario(
    name="adv_loss_burst_lookup", group="adversarial",
    description=("Gilbert-Elliott burst loss on every link: lookups keep "
                 "resolving, loss tracks the chain's stationary rate"),
    runner=_loss_burst_lookup,
    params={"n": 256, "lookups": 300, "loss_bad": 0.4,
            "p_enter_bad": 0.02, "p_exit_bad": 0.3,
            "success_floor": 0.75},
    smoke_params={"n": 128, "lookups": 120},
    metrics=(
        Metric("lookup_success_rate", "fraction", "higher"),
        Metric("observed_loss_rate", "fraction", "neutral"),
        Metric("model_expected_loss", "fraction", "neutral"),
        Metric("burst_drops", "count", "neutral"),
        Metric("bad_state_fraction", "fraction", "neutral"),
        Metric("chain_transitions", "count", "neutral"),
    )))

registry.register(Scenario(
    name="adv_heal_convergence", group="adversarial",
    description=("scheduled bidirectional cut with exactly-once heal: "
                 "anti-entropy reconverges, routing and quorum recover"),
    runner=_heal_convergence,
    params={"n": 96, "keys": 40, "writes": 24, "partition_duration": 8.0,
            "crosscut_lookups": 30},
    smoke_params={"n": 64, "keys": 20, "writes": 12,
                  "crosscut_lookups": 16},
    metrics=(
        Metric("writes_acked_fraction", "fraction", "neutral"),
        Metric("writes_resolved_fraction", "fraction", "neutral",
               "async writes whose coordinator reply got through"),
        Metric("acked_readable_fraction", "fraction", "higher",
               "the durability invariant after a scheduled heal"),
        Metric("blocked_datagrams", "count", "neutral"),
        Metric("ae_sweeps_to_converge", "sweeps", "lower"),
        Metric("min_rf_after_heal", "replicas", "higher"),
        Metric("crosscut_success_post_heal", "fraction", "higher"),
    )))
