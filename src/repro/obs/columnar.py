"""Chunked typed-NumPy column buffers — the in-memory half of the trace store.

A :class:`StreamBuffer` holds one event stream as parallel typed columns.
Appends land in preallocated fixed-size NumPy chunks (no per-event Python
object survives the append, unlike a ``list[dataclass]`` trace), and
:meth:`columns` concatenates the chunks into the contiguous arrays the
on-disk store writes.  A :class:`StringTable` interns the small set of
category names into integer codes so string columns stay fixed-width ints.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = ["StringTable", "StreamBuffer"]

#: (column name, numpy dtype string) pairs; the schema of one stream.
ColumnSchema = Sequence[Tuple[str, str]]


class StringTable:
    """Bidirectional str <-> small-int interning (category names)."""

    __slots__ = ("_codes", "strings")

    def __init__(self) -> None:
        self._codes: Dict[str, int] = {}
        self.strings: List[str] = []

    def code(self, s: str) -> int:
        """The code for *s*, interning it on first sight."""
        code = self._codes.get(s)
        if code is None:
            code = len(self.strings)
            self._codes[s] = code
            self.strings.append(s)
        return code

    def lookup(self, code: int) -> str:
        return self.strings[code]

    def get_code(self, s: str) -> int:
        """The existing code for *s*, or -1 (never interns)."""
        return self._codes.get(s, -1)

    def __len__(self) -> int:
        return len(self.strings)

    def __contains__(self, s: str) -> bool:
        return s in self._codes


class StreamBuffer:
    """Append-only columnar buffer for one event stream.

    Parameters
    ----------
    schema:
        ``[(column name, dtype), ...]``; appends must supply one value per
        column, in schema order.
    chunk:
        Rows per preallocated chunk.  Memory grows in ``chunk``-row steps;
        a full chunk is retired to a list and never touched again.
    """

    __slots__ = ("schema", "names", "chunk", "_chunks", "_cur", "_fill", "rows")

    def __init__(self, schema: ColumnSchema, chunk: int = 4096) -> None:
        if chunk <= 0:
            raise ValueError(f"chunk must be > 0, got {chunk}")
        self.schema = tuple((str(n), str(d)) for n, d in schema)
        if not self.schema:
            raise ValueError("a stream needs at least one column")
        self.names = tuple(n for n, _ in self.schema)
        self.chunk = chunk
        self._chunks: List[Dict[str, np.ndarray]] = []
        self._cur: Dict[str, np.ndarray] | None = None
        self._fill = 0
        self.rows = 0

    def _new_chunk(self) -> Dict[str, np.ndarray]:
        if self._cur is not None:
            self._chunks.append(self._cur)
        self._cur = {name: np.empty(self.chunk, dtype=dtype)
                     for name, dtype in self.schema}
        self._fill = 0
        return self._cur

    def append(self, *values) -> None:
        """Append one row; *values* in schema order."""
        cur = self._cur
        if cur is None or self._fill == self.chunk:
            cur = self._new_chunk()
        i = self._fill
        for name, value in zip(self.names, values):
            cur[name][i] = value
        self._fill = i + 1
        self.rows += 1

    def __len__(self) -> int:
        return self.rows

    def columns(self) -> Dict[str, np.ndarray]:
        """Contiguous per-column arrays over every appended row."""
        out: Dict[str, np.ndarray] = {}
        for name, dtype in self.schema:
            parts = [c[name] for c in self._chunks]
            if self._cur is not None and self._fill:
                parts.append(self._cur[name][:self._fill])
            if parts:
                out[name] = np.concatenate(parts) if len(parts) > 1 else parts[0].copy()
            else:
                out[name] = np.empty(0, dtype=dtype)
        return out

    def column(self, name: str) -> np.ndarray:
        if name not in self.names:
            raise KeyError(f"no column {name!r} (have {self.names})")
        return self.columns()[name]

    def clear(self) -> None:
        self._chunks.clear()
        self._cur = None
        self._fill = 0
        self.rows = 0
