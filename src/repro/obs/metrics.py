"""The metrics registry: named counters, gauges and quantile histograms.

Subsystems register a metric **once** (``registry.counter("reexecutions")``)
and then mutate the returned handle on their hot path — registration cost
is paid at attach time, the per-increment cost is one attribute add.  The
bench runner snapshots every registry adopted by the active
:class:`~repro.obs.hub.ObsHub` into the BenchResult envelope, so the same
counters the subsystem reads for its own accounting feed the perf
trajectory without a second bookkeeping path.

The histogram is a streaming log-bucketed quantile sketch (the HDR idea):
values land in geometrically growing buckets, so p50/p99/p999 come back
with a bounded *relative* error (``growth - 1`` per bucket, ~2.5% at the
default growth of 1.05 using geometric-midpoint estimates) from O(buckets)
memory regardless of how many values were observed.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, Optional, Union

__all__ = ["Counter", "Gauge", "QuantileHistogram", "MetricsRegistry"]


class Counter:
    """Monotonic named counter (floats allowed: e.g. seconds of work)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {self.name: float(self.value)}

    def reset(self) -> None:
        self.value = 0.0


class Gauge:
    """Last-write-wins named value (queue depth, live-node count, …)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> Dict[str, float]:
        return {self.name: float(self.value)}

    def reset(self) -> None:
        self.value = 0.0


class QuantileHistogram:
    """Streaming quantile sketch over log-spaced buckets.

    Parameters
    ----------
    min_value:
        Values at or below this land in a dedicated underflow bucket and
        are reported as ``min_value`` (virtual-time latencies are positive;
        exact zeros only appear for degenerate same-callback spans).
    growth:
        Geometric bucket width; the relative quantile error is bounded by
        ``sqrt(growth) - 1`` (midpoint estimate within a bucket).
    """

    __slots__ = ("name", "min_value", "_log_growth", "_growth", "_buckets",
                 "_under", "count", "total", "_max", "_min")

    def __init__(self, name: str = "", *, min_value: float = 1e-9,
                 growth: float = 1.05) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        if min_value <= 0.0:
            raise ValueError(f"min_value must be > 0, got {min_value}")
        self.name = name
        self.min_value = float(min_value)
        self._growth = float(growth)
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._under = 0
        self.count = 0
        self.total = 0.0
        self._max = float("-inf")
        self._min = float("inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value > self._max:
            self._max = value
        if value < self._min:
            self._min = value
        if value <= self.min_value:
            self._under += 1
            return
        idx = int(math.log(value / self.min_value) / self._log_growth)
        self._buckets[idx] = self._buckets.get(idx, 0) + 1

    # ------------------------------------------------------------ quantiles
    def quantile(self, q: float) -> float:
        """Estimate the *q*-quantile (0 <= q <= 1); 0.0 when empty."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # Rank of the requested quantile, 1-based (q=1 -> the max).
        rank = max(1, math.ceil(q * self.count))
        if rank <= self._under:
            return max(self._min, 0.0) if self._min < self.min_value else self.min_value
        seen = self._under
        for idx in sorted(self._buckets):
            seen += self._buckets[idx]
            if seen >= rank:
                # Geometric midpoint of [min * g^idx, min * g^(idx+1)).
                est = self.min_value * self._growth ** (idx + 0.5)
                return min(max(est, self._min), self._max)
        return self._max  # numerical fallback: rank beyond the last bucket

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    @property
    def max(self) -> float:
        return self._max if self.count else 0.0

    @property
    def min(self) -> float:
        return self._min if self.count else 0.0

    def snapshot(self) -> Dict[str, float]:
        base = self.name
        return {
            f"{base}.count": float(self.count),
            f"{base}.mean": self.mean,
            f"{base}.p50": self.quantile(0.50),
            f"{base}.p99": self.quantile(0.99),
            f"{base}.p999": self.quantile(0.999),
            f"{base}.max": self.max,
        }

    def reset(self) -> None:
        self._buckets.clear()
        self._under = 0
        self.count = 0
        self.total = 0.0
        self._max = float("-inf")
        self._min = float("inf")


Metric = Union[Counter, Gauge, QuantileHistogram]


class MetricsRegistry:
    """Named metric store with get-or-create registration.

    Re-registering the same name with the same kind returns the existing
    handle (so a service reattached after failover keeps its totals);
    re-registering with a *different* kind is a wiring bug and raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # --------------------------------------------------------- registration
    def _get_or_create(self, name: str, kind: type, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is not None:
            if not isinstance(metric, kind):
                raise ValueError(
                    f"metric {name!r} already registered as "
                    f"{type(metric).__name__}, not {kind.__name__}")
            return metric
        metric = kind(name, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)  # type: ignore[return-value]

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)  # type: ignore[return-value]

    def histogram(self, name: str, *, min_value: float = 1e-9,
                  growth: float = 1.05) -> QuantileHistogram:
        return self._get_or_create(  # type: ignore[return-value]
            name, QuantileHistogram, min_value=min_value, growth=growth)

    # -------------------------------------------------------------- queries
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def snapshot(self, prefix: str = "") -> Dict[str, float]:
        """Flatten every metric to ``{name: value}`` (histograms expand to
        ``.count/.mean/.p50/.p99/.p999/.max``), optionally prefixed."""
        out: Dict[str, float] = {}
        for name in sorted(self._metrics):
            for key, value in self._metrics[name].snapshot().items():
                out[f"{prefix}{key}" if prefix else key] = value
        return out

    def reset(self) -> None:
        for metric in self._metrics.values():
            metric.reset()
