"""The columnar on-disk trace store (npz layout, grouped by run).

One store file holds every run of a capture (a bench scenario that sweeps
N produces one run per network).  Layout inside the ``.npz``:

* ``__meta__`` — a UTF-8 JSON blob (uint8 array) describing the schema
  version, the global string table, per-run stream row counts, per-run
  category counts and simulator event-label counts.
* ``{run}/{stream}/{column}`` — one typed 1-D array per column per stream
  per run (``spans`` and ``events``; see
  :data:`~repro.obs.hub.SPAN_SCHEMA` / :data:`~repro.obs.hub.EVENT_SCHEMA`).

Each hub interned category names independently, so the writer remaps every
``cat`` column onto one global string table (a vectorised ``take``).  The
reader (:class:`TraceReader`) exposes an iterate/filter query API over
lazily-loaded column views — no row objects are materialised until a
caller actually iterates.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Iterator, List, Mapping, Optional

import numpy as np

from repro.obs.columnar import StringTable
from repro.obs.hub import EVENT_SCHEMA, SPAN_SCHEMA, ObsHub

__all__ = ["SCHEMA", "write_store", "TraceReader", "StreamView"]

#: Store schema identifier; bump on breaking layout changes.
SCHEMA = "repro.obs/1"

_STREAM_SCHEMAS = {"spans": SPAN_SCHEMA, "events": EVENT_SCHEMA}


def write_store(path: str, runs: Mapping[str, ObsHub],
                meta_extra: Optional[Mapping[str, Any]] = None) -> str:
    """Write *runs* (``{run name: hub}``) to *path*; returns the path.

    Finalizes every hub (open spans flush with ``STATUS_OPEN``), remaps
    per-hub category codes onto one global string table, and writes a
    compressed npz.  ``meta_extra`` (e.g. the scenario name and seed) is
    embedded under ``"extra"`` in the metadata blob.
    """
    strings = StringTable()
    arrays: Dict[str, np.ndarray] = {}
    meta_runs: Dict[str, Any] = {}
    for run, hub in runs.items():
        if "/" in run:
            raise ValueError(f"run name {run!r} must not contain '/'")
        hub.finalize()
        # hub-local code -> global code, vectorised over the cat columns.
        remap = np.array([strings.code(s) for s in hub.strings.strings]
                         or [0], dtype=np.uint16)
        streams = hub.export_streams()
        stream_meta: Dict[str, int] = {}
        for stream, columns in streams.items():
            for name, arr in columns.items():
                if name == "cat" and len(arr):
                    arr = remap[arr]
                arrays[f"{run}/{stream}/{name}"] = arr
            stream_meta[stream] = int(len(next(iter(columns.values()))))
        meta_runs[run] = {
            "streams": stream_meta,
            "counts": hub.category_counts(),
            "sim_events": dict(hub.sim_event_counts),
            "metrics": hub.metrics_snapshot(),
        }
        # Hub annotations (overlay topology, SLO violations, …): JSON-safe
        # by contract; omitted when empty so pre-1.7 stores stay minimal.
        if hub.extras:
            meta_runs[run]["extras"] = dict(hub.extras)
    meta = {
        "schema": SCHEMA,
        "strings": strings.strings,
        "runs": meta_runs,
        "columns": {s: [list(c) for c in cols]
                    for s, cols in _STREAM_SCHEMAS.items()},
        "extra": dict(meta_extra) if meta_extra else {},
    }
    arrays["__meta__"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode("utf-8"), dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "wb") as fh:
        np.savez_compressed(fh, **arrays)
    return path


class StreamView:
    """One stream of one run: parallel column arrays + filter/iterate.

    ``filter`` returns a new (masked) view; iteration yields plain dicts
    with the ``cat`` code decoded to its category name.
    """

    def __init__(self, columns: Dict[str, np.ndarray], strings: List[str],
                 run: str, stream: str) -> None:
        self.columns = columns
        self._strings = strings
        self.run = run
        self.stream = stream

    def __len__(self) -> int:
        return int(len(next(iter(self.columns.values()))))

    @property
    def strings(self) -> List[str]:
        """The global string table decoding this view's ``cat`` codes."""
        return self._strings

    def column(self, name: str) -> np.ndarray:
        return self.columns[name]

    def categories(self) -> Dict[str, int]:
        """Row counts per decoded category in this view."""
        codes, counts = np.unique(self.columns["cat"], return_counts=True)
        return {self._strings[int(c)]: int(n) for c, n in zip(codes, counts)}

    def filter(self, category: Optional[str] = None,
               node: Optional[int] = None,
               min_time: Optional[float] = None,
               max_time: Optional[float] = None,
               status: Optional[int] = None) -> "StreamView":
        """A masked sub-view (time filters use ``t0`` for spans, ``t`` for
        events).  Unknown categories yield an empty view, not an error."""
        mask = np.ones(len(self), dtype=bool)
        if category is not None:
            code = self._strings.index(category) if category in self._strings else -1
            mask &= self.columns["cat"] == code
        if node is not None:
            mask &= self.columns["node"] == node
        tcol = self.columns.get("t0", self.columns.get("t"))
        if min_time is not None:
            mask &= tcol >= min_time
        if max_time is not None:
            mask &= tcol <= max_time
        if status is not None and "status" in self.columns:
            mask &= self.columns["status"] == status
        return StreamView({k: v[mask] for k, v in self.columns.items()},
                          self._strings, self.run, self.stream)

    def __iter__(self) -> Iterator[Dict[str, Any]]:
        names = list(self.columns)
        cols = [self.columns[n] for n in names]
        for i in range(len(self)):
            row = {n: c[i].item() for n, c in zip(names, cols)}
            row["category"] = self._strings[row.pop("cat")]
            yield row

    def rows(self) -> List[Dict[str, Any]]:
        return list(self)


class TraceReader:
    """Query API over one written trace store.

    >>> reader = TraceReader("benchmarks/out/trace_storage.npz")  # doctest: +SKIP
    >>> spans = reader.stream(reader.runs[0], "spans")            # doctest: +SKIP
    >>> spans.filter(category="lookup").categories()              # doctest: +SKIP
    """

    def __init__(self, path: str) -> None:
        self.path = path
        self._npz = np.load(path)
        if "__meta__" not in self._npz:
            raise ValueError(f"{path!r} is not a trace store (missing __meta__)")
        self.meta: Dict[str, Any] = json.loads(
            bytes(self._npz["__meta__"]).decode("utf-8"))
        if self.meta.get("schema") != SCHEMA:
            raise ValueError(
                f"unsupported trace-store schema {self.meta.get('schema')!r} "
                f"(expected {SCHEMA!r})")
        self.strings: List[str] = list(self.meta["strings"])
        self.runs: List[str] = sorted(self.meta["runs"])

    # ------------------------------------------------------------- queries
    def run_meta(self, run: str) -> Dict[str, Any]:
        try:
            return self.meta["runs"][run]
        except KeyError:
            raise KeyError(f"no run {run!r} (have {self.runs})") from None

    def stream(self, run: str, stream: str) -> StreamView:
        meta = self.run_meta(run)
        if stream not in meta["streams"]:
            raise KeyError(
                f"no stream {stream!r} in run {run!r} "
                f"(have {sorted(meta['streams'])})")
        columns = {name: self._npz[f"{run}/{stream}/{name}"]
                   for name, _ in _STREAM_SCHEMAS[stream]}
        return StreamView(columns, self.strings, run, stream)

    def spans(self, run: str, **filters) -> StreamView:
        return self.stream(run, "spans").filter(**filters)

    def events(self, run: str, **filters) -> StreamView:
        return self.stream(run, "events").filter(**filters)

    def category_counts(self, run: Optional[str] = None) -> Dict[str, int]:
        """Recorded per-category counts (from metadata), one run or all."""
        out: Dict[str, int] = {}
        for r in ([run] if run is not None else self.runs):
            for cat, n in self.run_meta(r)["counts"].items():
                out[cat] = out.get(cat, 0) + int(n)
        return out

    def run_extras(self, run: str) -> Dict[str, Any]:
        """Hub annotations recorded with *run* (topology, SLO violations);
        empty for pre-1.7 stores."""
        return self.run_meta(run).get("extras", {})

    def run_topology(self, run: str) -> Optional[Dict[int, int]]:
        """The ``{node: parent}`` overlay snapshot of *run* (parent ``-1``
        = root), or ``None`` when the hub was never bound to a network."""
        topology = self.run_extras(run).get("topology")
        if not topology:
            return None
        return {int(k): int(v) for k, v in topology.items()}

    def sim_event_counts(self, run: Optional[str] = None) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for r in ([run] if run is not None else self.runs):
            for label, n in self.run_meta(r)["sim_events"].items():
                out[label] = out.get(label, 0) + int(n)
        return out

    def close(self) -> None:
        self._npz.close()

    def __enter__(self) -> "TraceReader":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
