"""`Observability` — the hub as an attachable cluster service.

``Cluster(...).build(n).with_observability(...)`` attaches this service;
it owns (or adopts) one :class:`~repro.obs.hub.ObsHub`, publishes it at
``net.obs`` / ``node.obs`` (the plain attributes every instrumentation
site checks), installs the simulator event hook, and adopts the metrics
registry of every subsystem that exposes one — currently the compute
scheduler's (:attr:`~repro.compute.scheduler.JobScheduler.metrics`), the
reference pattern for migrating ad-hoc counters.

Detach (or ``cluster.shutdown()``) reverses all of it: the hub keeps its
recorded data for post-run queries, but the network records nothing more.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.cluster.service import Service, ServiceContext
from repro.obs.hub import ObsHub
from repro.obs.metrics import MetricsRegistry
from repro.obs.store import write_store

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode

__all__ = ["Observability"]


class Observability(Service):
    """Span tracing + metrics collection for one cluster.

    Parameters
    ----------
    categories:
        Span/event categories to record (``None`` = all except the opt-in
        ``sim.event`` firehose; see :class:`ObsHub`).
    hub:
        An externally owned hub to record into (e.g. shared with a test's
        assertions); one is created when omitted.
    slo:
        Optional SLO spec — a path to a ``.toml``/``.json`` file or an
        already-parsed :class:`~repro.obs.slo.SloSpec`.  Attaches a
        :class:`~repro.obs.slo.StreamingSloMonitor` to the hub so
        violations surface *during* the run as ``slo.violation`` events.
    """

    name = "observability"

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 hub: Optional[ObsHub] = None, slo=None) -> None:
        super().__init__()
        self.hub = hub if hub is not None else ObsHub(categories=categories)
        self.slo_monitor = None
        if slo is not None:
            from repro.obs.slo import SloSpec, StreamingSloMonitor, load_slo
            spec = slo if isinstance(slo, SloSpec) else load_slo(slo)
            self.slo_monitor = StreamingSloMonitor(spec, self.hub)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        self._net = ctx.net
        ctx.net.obs = self.hub
        ctx.net.sim.set_event_hook(self.hub.on_sim_event)
        self.hub.topology_source = ctx.net.topology_snapshot
        # Adopt the metrics registries of already-attached subsystems;
        # ones attached later adopt themselves when they see net.obs.
        for svc in ctx.state.services.values():
            registry = getattr(svc, "metrics", None)
            if isinstance(registry, MetricsRegistry):
                self.hub.adopt_registry(svc.name, registry)

    def setup_node(self, node: "TreePNode") -> None:
        node.obs = self.hub

    def on_detach(self) -> None:
        net = getattr(self, "_net", None)
        if net is None:
            return
        if net.obs is self.hub:
            net.obs = None
        net.sim.set_event_hook(None)
        for node in net.nodes.values():
            if getattr(node, "obs", None) is self.hub:
                node.obs = None
        self._net = None

    # -------------------------------------------------------------- export
    def write(self, path: str, run: str = "run-000") -> str:
        """Write the hub's recorded trace as a single-run store file."""
        return write_store(path, {run: self.hub})
