"""The trace-store query CLI: ``python -m repro.obs <cmd> FILE``.

* ``summary FILE [--run R]`` — per-category span counts and duration
  quantiles, the per-hop latency breakdown of lookup trails, event
  counts, adopted metrics, and the simulator event-label top list.
* ``timeline FILE [--run R] [--category C] [--limit N]`` — chronological
  span/event listing.
* ``slowest FILE [--run R] [--category C] [--limit N]`` — longest spans.
* ``export FILE --stream spans|events [--run R] [--format jsonl|csv]``
  — dump raw rows for external tooling.

Reads the npz stores written by ``python -m repro.bench run --trace-out``
or :meth:`repro.obs.service.Observability.write`.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.obs.query import (per_hop_latency, slowest_spans, span_stats,
                             timeline_rows)
from repro.obs.store import TraceReader


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]],
           title: str = "") -> str:
    """Minimal right-aligned text table (keeps repro.obs self-contained)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Query a columnar trace store written by the "
                    "observability layer (--trace-out / Observability.write).")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="trace store (.npz)")
        p.add_argument("--run", default=None,
                       help="restrict to one run (default: all)")

    sum_p = sub.add_parser("summary", help="per-category counts, span "
                           "latency quantiles, per-hop breakdown")
    common(sum_p)

    tl_p = sub.add_parser("timeline", help="chronological span/event listing")
    common(tl_p)
    tl_p.add_argument("--category", default=None)
    tl_p.add_argument("--limit", type=int, default=50)

    slow_p = sub.add_parser("slowest", help="longest spans")
    common(slow_p)
    slow_p.add_argument("--category", default=None)
    slow_p.add_argument("--limit", type=int, default=10)

    exp_p = sub.add_parser("export", help="dump raw rows (jsonl/csv)")
    common(exp_p)
    exp_p.add_argument("--stream", choices=("spans", "events"),
                       default="spans")
    exp_p.add_argument("--format", choices=("jsonl", "csv"), default="jsonl")
    exp_p.add_argument("-o", "--output", default=None,
                       help="output path (default: stdout)")
    return parser


def _runs(reader: TraceReader, run: Optional[str]) -> List[str]:
    if run is None:
        return reader.runs
    reader.run_meta(run)  # raises with the known-run list
    return [run]


def _cmd_summary(reader: TraceReader, args: argparse.Namespace) -> int:
    for run in _runs(reader, args.run):
        spans = reader.stream(run, "spans")
        events = reader.stream(run, "events")
        print(f"== run {run}: {len(spans)} spans, {len(events)} events ==")
        stats = span_stats(spans)
        if stats:
            print(_table(
                ["category", "count", "ok", "open", "mean", "p50", "p99", "max"],
                [[s["category"], s["count"], s["ok"], s["open"],
                  f"{s['mean']:.4f}", f"{s['p50']:.4f}", f"{s['p99']:.4f}",
                  f"{s['max']:.4f}"] for s in stats],
                title="spans (durations in virtual seconds)"))
        event_counts = events.categories()
        if event_counts:
            print(_table(["event category", "count"],
                         sorted(event_counts.items()), title="events"))
        hops = per_hop_latency(events)
        if hops:
            print(_table(
                ["hop", "count", "mean latency", "p99"],
                [[h["hop"], h["count"], f"{h['mean']:.4f}",
                  f"{h['p99']:.4f}"] for h in hops],
                title="per-hop lookup latency breakdown"))
        counts = reader.category_counts(run)
        if counts:
            print(_table(["category", "recorded"], sorted(counts.items()),
                         title="per-category totals (spans + events)"))
        metrics = reader.run_meta(run).get("metrics", {})
        if metrics:
            print(_table(
                ["metric", "value"],
                [[k, f"{v:.6g}"] for k, v in sorted(metrics.items())],
                title="metrics registry snapshot"))
        sim_counts = reader.sim_event_counts(run)
        if sim_counts:
            top = sorted(sim_counts.items(), key=lambda kv: -kv[1])[:12]
            total = sum(sim_counts.values())
            print(_table(["sim event label", "fired"], top,
                         title=f"simulator events ({total} total, top 12)"))
        print()
    return 0


def _cmd_timeline(reader: TraceReader, args: argparse.Namespace) -> int:
    for run in _runs(reader, args.run):
        spans = reader.stream(run, "spans")
        events = reader.stream(run, "events")
        if args.category is not None:
            spans = spans.filter(category=args.category)
            events = events.filter(category=args.category)
        rows = timeline_rows(spans, events, limit=args.limit)
        print(f"== run {run} (first {len(rows)}) ==")
        for r in rows:
            print(f"[{r['time']:10.4f}] {r['kind']:<5} "
                  f"{r['category']:<18} node={r['node']:<6} {r['detail']}")
        print()
    return 0


def _cmd_slowest(reader: TraceReader, args: argparse.Namespace) -> int:
    for run in _runs(reader, args.run):
        spans = reader.stream(run, "spans")
        if args.category is not None:
            spans = spans.filter(category=args.category)
        rows = slowest_spans(spans, limit=args.limit)
        print(_table(
            ["category", "id", "node", "t0", "duration", "status", "v0"],
            [[r["category"], r["id"], r["node"], f"{r['t0']:.4f}",
              f"{r['duration']:.4f}", r["status"], f"{r['v0']:g}"]
             for r in rows],
            title=f"run {run}: slowest {len(rows)} spans"))
        print()
    return 0


def _cmd_export(reader: TraceReader, args: argparse.Namespace) -> int:
    out = open(args.output, "w", newline="") if args.output else sys.stdout
    try:
        writer = None
        for run in _runs(reader, args.run):
            for row in reader.stream(run, args.stream):
                row["run"] = run
                if args.format == "jsonl":
                    out.write(json.dumps(row, sort_keys=True) + "\n")
                else:
                    if writer is None:
                        writer = csv.DictWriter(out, fieldnames=sorted(row))
                        writer.writeheader()
                    writer.writerow(row)
    finally:
        if args.output:
            out.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        with TraceReader(args.file) as reader:
            if args.command == "summary":
                return _cmd_summary(reader, args)
            if args.command == "timeline":
                return _cmd_timeline(reader, args)
            if args.command == "slowest":
                return _cmd_slowest(reader, args)
            if args.command == "export":
                return _cmd_export(reader, args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout mid-render;
        # detach it so the interpreter's shutdown flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
