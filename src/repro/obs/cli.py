"""The trace-store query CLI: ``python -m repro.obs <cmd> FILE``.

* ``summary FILE [--run R]`` — per-category span counts with the full
  status mix (ok/fail/timeout/open), duration quantiles, the per-hop
  latency breakdown of lookup trails, event counts, adopted metrics, and
  the simulator event-label top list.
* ``runs FILE`` — one line per run: span/event counts and meta extras
  (the way to discover run names in a multi-run store).
* ``timeline FILE [--run R] [--category C] [--limit N]`` — chronological
  span-end/event listing.
* ``slowest FILE [--run R] [--category C] [--limit N]`` — longest spans.
* ``health FILE [--run R] [--category C] [--limit N]`` — per-node health
  scores (stragglers, hot replicas, error rates) and, when the store
  carries an overlay topology, the sick-subtree rollup.
* ``slo FILE --spec SPEC [--run R]`` — evaluate a TOML/JSON SLO spec
  against the stored spans; exits 1 on any violation.
* ``critpath FILE [--run R] [--category C] [--limit N]`` — per-category
  self-time attribution and the critical path of the longest root spans.
* ``export-perfetto FILE [-o OUT] [--run R]`` — Chrome trace-event JSON
  for https://ui.perfetto.dev.
* ``export FILE --stream spans|events [--run R] [--format jsonl|csv]``
  — dump raw rows for external tooling.

Reads the npz stores written by ``python -m repro.bench run --trace-out``
or :meth:`repro.obs.service.Observability.write`.
"""

from __future__ import annotations

import argparse
import csv
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.obs.query import (per_hop_latency, slowest_spans, span_stats,
                             timeline_rows)
from repro.obs.store import TraceReader


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]],
           title: str = "") -> str:
    """Minimal right-aligned text table (keeps repro.obs self-contained)."""
    cells = [[str(c) for c in row] for row in rows]
    widths = [max(len(h), *(len(r[i]) for r in cells)) if cells else len(h)
              for i, h in enumerate(headers)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Query a columnar trace store written by the "
                    "observability layer (--trace-out / Observability.write).")
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p: argparse.ArgumentParser) -> None:
        p.add_argument("file", help="trace store (.npz)")
        p.add_argument("--run", default=None,
                       help="restrict to one run (default: all)")

    sum_p = sub.add_parser("summary", help="per-category counts/status mix, "
                           "span latency quantiles, per-hop breakdown")
    common(sum_p)

    runs_p = sub.add_parser("runs", help="list runs: names, row counts, "
                            "meta extras")
    runs_p.add_argument("file", help="trace store (.npz)")

    tl_p = sub.add_parser("timeline", help="chronological span-end/event "
                          "listing")
    common(tl_p)
    tl_p.add_argument("--category", default=None)
    tl_p.add_argument("--limit", type=int, default=50)

    slow_p = sub.add_parser("slowest", help="longest spans")
    common(slow_p)
    slow_p.add_argument("--category", default=None)
    slow_p.add_argument("--limit", type=int, default=10)

    health_p = sub.add_parser("health", help="per-node health scores + "
                              "subtree rollup")
    common(health_p)
    health_p.add_argument("--category", default=None,
                          help="score one span category in isolation")
    health_p.add_argument("--limit", type=int, default=15,
                          help="rows per table (sickest first)")
    health_p.add_argument("--min-spans", type=int, default=1,
                          help="skip nodes with fewer recorded spans")

    slo_p = sub.add_parser("slo", help="evaluate an SLO spec against the "
                           "stored spans (exit 1 on violation)")
    common(slo_p)
    slo_p.add_argument("--spec", required=True,
                       help="SLO spec (.toml or .json)")

    crit_p = sub.add_parser("critpath", help="critical-path + self-time "
                            "attribution from parent links")
    common(crit_p)
    crit_p.add_argument("--category", default=None,
                        help="walk roots of this category (default: longest "
                             "roots of any category)")
    crit_p.add_argument("--limit", type=int, default=3,
                        help="root spans to walk")

    perf_p = sub.add_parser("export-perfetto", help="Chrome trace-event "
                            "JSON for ui.perfetto.dev")
    common(perf_p)
    perf_p.add_argument("--category", default=None)
    perf_p.add_argument("-o", "--output", default=None,
                        help="output path (default: <store>.perfetto.json)")

    exp_p = sub.add_parser("export", help="dump raw rows (jsonl/csv)")
    common(exp_p)
    exp_p.add_argument("--stream", choices=("spans", "events"),
                       default="spans")
    exp_p.add_argument("--format", choices=("jsonl", "csv"), default="jsonl")
    exp_p.add_argument("-o", "--output", default=None,
                       help="output path (default: stdout)")
    return parser


def _runs(reader: TraceReader, run: Optional[str]) -> List[str]:
    if run is None:
        return reader.runs
    reader.run_meta(run)  # raises with the known-run list
    return [run]


def _cmd_summary(reader: TraceReader, args: argparse.Namespace) -> int:
    for run in _runs(reader, args.run):
        spans = reader.stream(run, "spans")
        events = reader.stream(run, "events")
        print(f"== run {run}: {len(spans)} spans, {len(events)} events ==")
        stats = span_stats(spans)
        if stats:
            print(_table(
                ["category", "count", "ok", "fail", "timeout", "open",
                 "mean", "p50", "p99", "max"],
                [[s["category"], s["count"], s["ok"], s["fail"], s["timeout"],
                  s["open"], f"{s['mean']:.4f}", f"{s['p50']:.4f}",
                  f"{s['p99']:.4f}", f"{s['max']:.4f}"] for s in stats],
                title="spans (durations in virtual seconds)"))
        event_counts = events.categories()
        if event_counts:
            print(_table(["event category", "count"],
                         sorted(event_counts.items()), title="events"))
        hops = per_hop_latency(events)
        if hops:
            print(_table(
                ["hop", "count", "mean latency", "p99"],
                [[h["hop"], h["count"], f"{h['mean']:.4f}",
                  f"{h['p99']:.4f}"] for h in hops],
                title="per-hop lookup latency breakdown"))
        counts = reader.category_counts(run)
        if counts:
            print(_table(["category", "recorded"], sorted(counts.items()),
                         title="per-category totals (spans + events)"))
        metrics = reader.run_meta(run).get("metrics", {})
        if metrics:
            print(_table(
                ["metric", "value"],
                [[k, f"{v:.6g}"] for k, v in sorted(metrics.items())],
                title="metrics registry snapshot"))
        sim_counts = reader.sim_event_counts(run)
        if sim_counts:
            top = sorted(sim_counts.items(), key=lambda kv: -kv[1])[:12]
            total = sum(sim_counts.values())
            print(_table(["sim event label", "fired"], top,
                         title=f"simulator events ({total} total, top 12)"))
        print()
    return 0


def _cmd_runs(reader: TraceReader, args: argparse.Namespace) -> int:
    rows = []
    for run in reader.runs:
        meta = reader.run_meta(run)
        streams = meta.get("streams", {})
        extras = meta.get("extras", {})
        notes = []
        for key in sorted(extras):
            value = extras[key]
            if key == "topology":
                notes.append(f"topology({len(value)} nodes)")
            elif isinstance(value, list):
                notes.append(f"{key}({len(value)})")
            else:
                notes.append(f"{key}={value}")
        rows.append([run, streams.get("spans", 0), streams.get("events", 0),
                     sum(meta.get("sim_events", {}).values()),
                     " ".join(notes) or "-"])
    print(_table(["run", "spans", "events", "sim events", "extras"], rows,
                 title=f"{reader.path}: {len(reader.runs)} run(s)"))
    extra = reader.meta.get("extra", {})
    if extra:
        print("store extra: "
              + " ".join(f"{k}={extra[k]}" for k in sorted(extra)))
    return 0


def _cmd_timeline(reader: TraceReader, args: argparse.Namespace) -> int:
    for run in _runs(reader, args.run):
        spans = reader.stream(run, "spans")
        events = reader.stream(run, "events")
        if args.category is not None:
            spans = spans.filter(category=args.category)
            events = events.filter(category=args.category)
        rows = timeline_rows(spans, events, limit=args.limit)
        print(f"== run {run} (first {len(rows)}) ==")
        for r in rows:
            print(f"[{r['time']:10.4f}] {r['kind']:<5} "
                  f"{r['category']:<18} node={r['node']:<6} {r['detail']}")
        print()
    return 0


def _cmd_slowest(reader: TraceReader, args: argparse.Namespace) -> int:
    for run in _runs(reader, args.run):
        spans = reader.stream(run, "spans")
        if args.category is not None:
            spans = spans.filter(category=args.category)
        rows = slowest_spans(spans, limit=args.limit)
        print(_table(
            ["category", "id", "node", "t0", "duration", "status", "v0"],
            [[r["category"], r["id"], r["node"], f"{r['t0']:.4f}",
              f"{r['duration']:.4f}", r["status"], f"{r['v0']:g}"]
             for r in rows],
            title=f"run {run}: slowest {len(rows)} spans"))
        print()
    return 0


def _cmd_health(reader: TraceReader, args: argparse.Namespace) -> int:
    from repro.obs.health import health_from_reader

    for run in _runs(reader, args.run):
        nodes, subtrees = health_from_reader(
            reader, run, category=args.category, min_spans=args.min_spans)
        sick = sum(1 for h in nodes if h.sick)
        print(f"== run {run}: {len(nodes)} node(s) scored, {sick} sick ==")
        if nodes:
            print(_table(
                ["node", "score", "spans", "ok", "fail", "timeout",
                 "err rate", "mean lat", "lat z", "load z", "flags"],
                [[h.node, f"{h.score:.1f}", h.spans, h.ok, h.fail, h.timeout,
                  f"{h.error_rate:.3f}", f"{h.mean_latency:.4f}",
                  f"{h.latency_z:+.2f}", f"{h.load_z:+.2f}",
                  ",".join(h.flags) or "-"]
                 for h in nodes[:args.limit]],
                title=f"node health (sickest first, top {args.limit})"))
        if subtrees:
            print(_table(
                ["subtree root", "score", "members", "spans", "worst node",
                 "worst score"],
                [[s.root, f"{s.score:.1f}", s.members, s.spans, s.worst_node,
                  f"{s.worst_score:.1f}"] for s in subtrees[:args.limit]],
                title="subtree rollup (span-weighted, sickest first)"))
        elif nodes:
            print("(no overlay topology in this store — subtree rollup "
                  "skipped; re-record with repro.obs >= 1.7)")
        print()
    return 0


def _cmd_slo(reader: TraceReader, args: argparse.Namespace) -> int:
    from repro.obs.slo import evaluate_store, load_slo

    spec = load_slo(args.spec)
    report = evaluate_store(spec, reader, run=args.run)
    for run in sorted(report.runs):
        results = report.runs[run]
        print(_table(
            ["rule", "observed", "limit", "samples", "status", "detail"],
            [[r.name, f"{r.observed:.6g}", f"{r.rule.limit:g}", r.samples,
              "ok" if r.ok else "VIOLATED", r.detail or "-"]
             for r in results],
            title=f"run {run}: {len(spec)} objective(s) from {spec.source}"))
        recorded = reader.run_extras(run).get("slo_violations", [])
        if recorded:
            print(f"  {len(recorded)} live violation event(s) recorded "
                  "during the run (category slo.violation)")
        print()
    violations = report.violations()
    if violations:
        for run, res in violations:
            print(f"SLO VIOLATION [{run}] {res.name}: observed "
                  f"{res.observed:.6g} > limit {res.rule.limit:g}"
                  + (f" ({res.detail})" if res.detail else ""))
        return 1
    print("all objectives met")
    return 0


def _cmd_critpath(reader: TraceReader, args: argparse.Namespace) -> int:
    from repro.obs.critpath import (build_forest, critical_path,
                                    self_time_by_category, span_attribution)

    for run in _runs(reader, args.run):
        tree = build_forest(reader.stream(run, "spans"))
        print(f"== run {run}: {len(tree.by_id)} spans, {len(tree.roots)} "
              f"roots, {tree.orphans} orphan(s) ==")
        attribution = self_time_by_category(tree)
        if attribution:
            print(_table(
                ["category", "count", "total time", "self time", "self %"],
                [[a["category"], a["count"], f"{a['total_time']:.4f}",
                  f"{a['self_time']:.4f}", f"{a['self_pct']:.1f}"]
                 for a in attribution],
                title="per-category self-time attribution"))
        roots = span_attribution(tree, category=args.category)
        for row in roots[:args.limit]:
            root = tree.by_id[row["span_id"]]
            print(f"\ncritical path of {row['category']} span "
                  f"{row['span_id']} (node {row['node']}, "
                  f"dur {row['duration']:.4f}, {row['children']} child(ren), "
                  f"self {row['self_time']:.4f}, "
                  f"coverage {100 * row['coverage']:.1f}%):")
            for seg in critical_path(root):
                print(f"  [{seg['t0']:10.4f} → {seg['t1']:10.4f}] "
                      f"{seg['duration']:8.4f}  {seg['category']:<18} "
                      f"node={seg['node']} ({seg['status']})")
        print()
    return 0


def _cmd_export_perfetto(reader: TraceReader, args: argparse.Namespace) -> int:
    from repro.obs.perfetto import export_perfetto

    out = args.output
    if out is None:
        base = args.file[:-4] if args.file.endswith(".npz") else args.file
        out = base + ".perfetto.json"
    path = export_perfetto(reader, out, run=args.run, category=args.category)
    with open(path, encoding="utf-8") as fh:
        n = len(json.load(fh)["traceEvents"])
    print(f"wrote {n} trace events -> {path}")
    print("open in https://ui.perfetto.dev (Trace -> Open trace file)")
    return 0


def _cmd_export(reader: TraceReader, args: argparse.Namespace) -> int:
    out = open(args.output, "w", newline="") if args.output else sys.stdout
    try:
        writer = None
        for run in _runs(reader, args.run):
            for row in reader.stream(run, args.stream):
                row["run"] = run
                if args.format == "jsonl":
                    out.write(json.dumps(row, sort_keys=True) + "\n")
                else:
                    if writer is None:
                        writer = csv.DictWriter(out, fieldnames=sorted(row))
                        writer.writeheader()
                    writer.writerow(row)
    finally:
        if args.output:
            out.close()
    return 0


_COMMANDS = {
    "summary": _cmd_summary,
    "runs": _cmd_runs,
    "timeline": _cmd_timeline,
    "slowest": _cmd_slowest,
    "health": _cmd_health,
    "slo": _cmd_slo,
    "critpath": _cmd_critpath,
    "export-perfetto": _cmd_export_perfetto,
    "export": _cmd_export,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = _COMMANDS.get(args.command)
    if handler is None:  # pragma: no cover
        raise SystemExit(f"unknown command {args.command!r}")
    try:
        with TraceReader(args.file) as reader:
            return handler(reader, args)
    except BrokenPipeError:
        # Downstream consumer (e.g. `| head`) closed stdout mid-render;
        # detach it so the interpreter's shutdown flush stays quiet.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
