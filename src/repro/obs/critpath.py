"""Causal-tree reconstruction and critical-path analytics over spans.

The hub records parent links (``job.execute`` under ``job``, quorum
fan-out and lookup hops under their request) but nothing interprets
them.  This module rebuilds the span forest from the stored ``parent``
column and answers the two questions a latency investigation starts
with:

* **Where did the time go?** — :func:`self_time_by_category` attributes
  every span's duration to *self-time* (duration minus the union of its
  children's intervals, clipped to the span) per category, so "jobs are
  slow" decomposes into "jobs spend 80% of their wall time waiting
  outside any execute attempt".
* **What was the chain?** — :func:`critical_path` walks a root span
  end-to-start, at each instant descending into the child that finished
  last, yielding the unbroken chronological chain of self-time segments
  whose lengths sum exactly to the root's duration.

Durations are virtual-time seconds; everything operates on the exact
stored rows (no sketches).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.obs.hub import STATUS_NAMES, STATUS_OPEN
from repro.obs.store import StreamView

__all__ = ["SpanTree", "Span", "build_forest", "critical_path",
           "self_time_by_category", "span_attribution"]


@dataclass
class Span:
    """One span row plus its resolved children (t0-ordered)."""

    sid: int
    parent: int
    category: str
    node: int
    t0: float
    t1: float
    status: int
    children: List["Span"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.t1 - self.t0

    def child_union(self) -> float:
        """Total time covered by ≥ 1 child, clipped to this span."""
        return _union_within(self.children, self.t0, self.t1)

    def self_time(self) -> float:
        """Duration not covered by any child (≥ 0 by construction)."""
        return self.duration - self.child_union()


@dataclass
class SpanTree:
    """The reconstructed forest of one run's spans."""

    by_id: Dict[int, Span]
    roots: List[Span]
    #: Children whose ``parent`` id never closed into the stream (e.g. a
    #: category-filtered parent): promoted to roots, counted here.
    orphans: int = 0

    def roots_of(self, category: str) -> List[Span]:
        return [s for s in self.roots if s.category == category]


def build_forest(spans: StreamView) -> SpanTree:
    """Rebuild the span forest of *spans* from the stored parent links."""
    ids = spans.column("id")
    parents = spans.column("parent")
    cats = spans.column("cat")
    nodes = spans.column("node")
    t0s = spans.column("t0")
    t1s = spans.column("t1")
    statuses = spans.column("status")
    strings = spans.strings

    by_id: Dict[int, Span] = {}
    for i in range(len(ids)):
        sid = int(ids[i])
        by_id[sid] = Span(sid=sid, parent=int(parents[i]),
                          category=strings[int(cats[i])], node=int(nodes[i]),
                          t0=float(t0s[i]), t1=float(t1s[i]),
                          status=int(statuses[i]))
    roots: List[Span] = []
    orphans = 0
    for span in by_id.values():
        parent = by_id.get(span.parent) if span.parent else None
        if parent is None or parent is span:
            if span.parent and span.parent != span.sid:
                orphans += 1
            roots.append(span)
        else:
            parent.children.append(span)
    for span in by_id.values():
        span.children.sort(key=lambda s: (s.t0, -s.t1))
    roots.sort(key=lambda s: (s.t0, -s.t1))
    return SpanTree(by_id=by_id, roots=roots, orphans=orphans)


def _union_within(children: List[Span], t0: float, t1: float) -> float:
    """Length of the union of child intervals clipped to ``[t0, t1]``."""
    total = 0.0
    cur0 = cur1 = None
    for c in children:  # children are t0-sorted
        a, b = max(c.t0, t0), min(c.t1, t1)
        if b <= a:
            continue
        if cur1 is None or a > cur1:
            if cur1 is not None:
                total += cur1 - cur0
            cur0, cur1 = a, b
        elif b > cur1:
            cur1 = b
    if cur1 is not None:
        total += cur1 - cur0
    return total


def critical_path(root: Span) -> List[Dict[str, Any]]:
    """The chronological chain of self-time segments explaining *root*.

    Walks backwards from the root's end: at each cursor, descend into
    the child that finished last before it; any gap between that child's
    end and the cursor is the current span's own self-time.  Segment
    durations sum exactly to the root's duration (each instant of
    ``[t0, t1]`` is attributed to exactly one span on the path).
    """
    segments: List[Dict[str, Any]] = []

    def emit(span: Span, a: float, b: float) -> None:
        segments.append({
            "span_id": span.sid, "category": span.category,
            "node": span.node, "t0": a, "t1": b, "duration": b - a,
            "status": STATUS_NAMES.get(span.status, "?"),
        })

    def walk(span: Span, t_end: float) -> None:
        cursor = min(t_end, span.t1)
        kids = sorted(span.children, key=lambda c: c.t1)
        while cursor > span.t0:
            pick: Optional[Span] = None
            while kids:
                c = kids.pop()
                if c.t0 >= cursor or c.t1 <= span.t0:
                    continue  # entirely outside the remaining window
                pick = c
                break
            if pick is None:
                break
            effective_end = min(pick.t1, cursor)
            if effective_end < cursor:
                emit(span, effective_end, cursor)
            walk(pick, effective_end)
            cursor = max(pick.t0, span.t0)
        if cursor > span.t0:
            emit(span, span.t0, cursor)

    walk(root, root.t1)
    segments.reverse()
    return segments


def self_time_by_category(tree: SpanTree) -> List[Dict[str, Any]]:
    """Per-category attribution: span count, total time, self-time.

    ``self_pct`` is the category's share of the *whole run's* self-time,
    so the rows sum to ~100% and directly rank where time was actually
    spent (total durations double-count parents over their children;
    self-times never do).
    """
    agg: Dict[str, List[float]] = {}
    for span in tree.by_id.values():
        if span.status == STATUS_OPEN and span.duration <= 0.0:
            continue  # finalized-open spans carry no interval
        row = agg.setdefault(span.category, [0.0, 0.0, 0.0])
        row[0] += 1
        row[1] += span.duration
        row[2] += span.self_time()
    grand_self = sum(r[2] for r in agg.values())
    out = [{
        "category": category, "count": int(row[0]),
        "total_time": row[1], "self_time": row[2],
        "self_pct": (100.0 * row[2] / grand_self) if grand_self > 0 else 0.0,
    } for category, row in agg.items()]
    out.sort(key=lambda r: -r["self_time"])
    return out


def span_attribution(tree: SpanTree,
                     category: Optional[str] = None) -> List[Dict[str, Any]]:
    """Per-root accounting: duration = child-covered time + self-time.

    ``coverage`` is the attributed fraction (child union + self-time over
    duration) — 1.0 by construction for closed spans whose children sit
    inside them; child time spilling outside the parent window shows up
    in ``child_overflow`` instead of silently inflating coverage.
    """
    roots = tree.roots if category is None else tree.roots_of(category)
    out: List[Dict[str, Any]] = []
    for root in roots:
        duration = root.duration
        covered = root.child_union()
        self_t = duration - covered
        raw_child = sum(max(0.0, c.t1 - c.t0) for c in root.children)
        overflow = sum(
            max(0.0, (c.t1 - c.t0) -
                (min(c.t1, root.t1) - max(c.t0, root.t0)))
            for c in root.children)
        out.append({
            "span_id": root.sid, "category": root.category, "node": root.node,
            "t0": root.t0, "duration": duration, "children": len(root.children),
            "child_time": covered, "child_raw_time": raw_child,
            "self_time": self_t, "child_overflow": overflow,
            "coverage": ((covered + self_t) / duration) if duration > 0 else 1.0,
            "status": STATUS_NAMES.get(root.status, "?"),
        })
    out.sort(key=lambda r: -r["duration"])
    return out
