"""Declarative SLO rules over recorded spans — the alerting tier.

A spec is a set of per-category objectives loaded from TOML or JSON::

    [slo.lookup]
    p99 = 0.5                 # latency ceiling (virtual seconds)
    max_failure_rate = 0.05   # closed spans with STATUS_FAIL
    max_timeout_rate = 0.01   # closed spans with STATUS_TIMEOUT
    node_error_budget = 10    # fail+timeout spans charged to any one node
    min_samples = 20          # below this, every rule is "skipped", not ok/fail

The category ``"*"`` applies a rule to every span category present.  The
same spec evaluates two ways:

* **offline** — :func:`evaluate_store` / :func:`evaluate_hub` compute
  exact percentiles over the stored span rows (ground truth);
* **streaming** — :class:`StreamingSloMonitor` rides the hub's span-end
  path, re-checking rate rules and the streaming latency sketch
  (:class:`~repro.obs.metrics.QuantileHistogram`, ~2.5% relative error)
  every :attr:`~StreamingSloMonitor.check_every` spans, and emits an
  ``slo.violation`` alert event into the trace the first time a rule
  trips.  The monitor only reads values and appends rows — it draws no
  RNG and schedules no simulator event, so a run with live SLO
  evaluation stays bit-identical to the same run without it.

This module is core-tier (stdlib + NumPy only; see the package layering
contract) — the TOML reader falls back to a minimal parser covering the
spec subset above when :mod:`tomllib` is unavailable (Python < 3.11).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (TYPE_CHECKING, Any, Dict, List, Mapping, Optional, Set,
                    Tuple)

import numpy as np

from repro.obs.hub import (STATUS_FAIL, STATUS_OPEN, STATUS_TIMEOUT, ObsHub)

if TYPE_CHECKING:  # pragma: no cover
    from repro.obs.store import TraceReader

__all__ = ["SloRule", "SloSpec", "RuleResult", "SloReport", "load_slo",
           "parse_slo", "evaluate_hub", "evaluate_store",
           "StreamingSloMonitor"]

#: Latency-rule spec keys and the quantile each gates.
LATENCY_QUANTILES = {"p50": 0.50, "p99": 0.99, "p999": 0.999}

_RATE_KINDS = {"max_failure_rate": "failure_rate",
               "max_timeout_rate": "timeout_rate"}


# --------------------------------------------------------------- spec model
@dataclass(frozen=True)
class SloRule:
    """One objective: a ceiling on one observable of one span category."""

    category: str      # span category, or "*" for every recorded category
    kind: str          # "latency" | "failure_rate" | "timeout_rate" | "node_error_budget"
    limit: float
    quantile: float = 0.0   # latency rules only
    min_samples: int = 1

    @property
    def metric(self) -> str:
        """The gated observable (``p99``, ``failure_rate``, …)."""
        if self.kind == "latency":
            for name, q in LATENCY_QUANTILES.items():
                if q == self.quantile:
                    return name
            return f"p{self.quantile:g}"  # pragma: no cover (parser-gated)
        return self.kind

    def name_for(self, category: str) -> str:
        """Rule id as reported in violations, e.g. ``lookup.p99``."""
        return f"{category}.{self.metric}"

    @property
    def name(self) -> str:
        return self.name_for(self.category)


@dataclass(frozen=True)
class SloSpec:
    """An ordered, immutable set of :class:`SloRule` objects."""

    rules: Tuple[SloRule, ...]
    source: str = "<dict>"

    def __len__(self) -> int:
        return len(self.rules)

    def monitor(self, hub: ObsHub, check_every: int = 64) -> "StreamingSloMonitor":
        """Attach a live :class:`StreamingSloMonitor` for this spec to *hub*."""
        return StreamingSloMonitor(self, hub, check_every=check_every)


# ------------------------------------------------------------------ loading
def _split_table_path(text: str, lineno: int) -> List[str]:
    """Split ``slo."storage.put"`` into path segments (quotes guard dots)."""
    parts: List[str] = []
    buf = ""
    quoted = False
    for ch in text:
        if ch == '"':
            quoted = not quoted
        elif ch == "." and not quoted:
            parts.append(buf.strip())
            buf = ""
        else:
            buf += ch
    parts.append(buf.strip())
    if quoted or any(not p for p in parts):
        raise ValueError(f"line {lineno}: malformed table header [{text}]")
    return parts


def _parse_scalar(text: str, lineno: int) -> Any:
    if text.startswith('"'):
        end = text.find('"', 1)
        if end < 0:
            raise ValueError(f"line {lineno}: unterminated string {text!r}")
        return text[1:end]
    text = text.split("#", 1)[0].strip()
    if text in ("true", "false"):
        return text == "true"
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            continue
    raise ValueError(f"line {lineno}: unsupported TOML value {text!r}")


def _parse_minimal_toml(text: str) -> Dict[str, Any]:
    """Parse the TOML subset SLO specs use: ``[dotted."quoted"]`` table
    headers and ``key = scalar`` pairs (str/int/float/bool, ``#`` comments).

    Only reached on Python < 3.11, where :mod:`tomllib` does not exist;
    its output agrees with tomllib on every valid spec (pinned by
    ``tests/test_obs_slo.py``).
    """
    root: Dict[str, Any] = {}
    current = root
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("["):
            if not line.endswith("]"):
                raise ValueError(f"line {lineno}: malformed table header {line!r}")
            current = root
            for part in _split_table_path(line[1:-1].strip(), lineno):
                nxt = current.setdefault(part, {})
                if not isinstance(nxt, dict):
                    raise ValueError(
                        f"line {lineno}: {part!r} is both a value and a table")
                current = nxt
        else:
            if "=" not in line:
                raise ValueError(f"line {lineno}: expected key = value, got {line!r}")
            key, _, value = line.partition("=")
            key = key.strip()
            if key.startswith('"') and key.endswith('"') and len(key) >= 2:
                key = key[1:-1]
            if not key:
                raise ValueError(f"line {lineno}: empty key")
            current[key] = _parse_scalar(value.strip(), lineno)
    return root


def load_slo(path: str) -> SloSpec:
    """Load an SLO spec from a ``.toml`` or ``.json`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    if path.endswith(".json"):
        data = json.loads(text)
    else:
        try:
            import tomllib
        except ModuleNotFoundError:  # Python < 3.11
            data = _parse_minimal_toml(text)
        else:
            data = tomllib.loads(text)
    return parse_slo(data, source=path)


def _flatten_categories(table: Mapping[str, Any], prefix: str,
                        out: Dict[str, Dict[str, Any]]) -> None:
    """Fold TOML's nested dotted tables back into dotted category names:
    ``[slo.storage.put]`` and ``[slo."storage.put"]`` mean the same spec."""
    scalars = {k: v for k, v in table.items() if not isinstance(v, Mapping)}
    if scalars:
        out.setdefault(prefix, {}).update(scalars)
    for key, value in table.items():
        if isinstance(value, Mapping):
            name = f"{prefix}.{key}" if prefix else key
            _flatten_categories(value, name, out)


def parse_slo(data: Mapping[str, Any], source: str = "<dict>") -> SloSpec:
    """Build an :class:`SloSpec` from the parsed ``{"slo": {...}}`` mapping."""
    raw = data.get("slo")
    if not isinstance(raw, Mapping) or not raw:
        raise ValueError(
            f"{source}: an SLO spec needs a non-empty [slo.<category>] table")
    table: Dict[str, Dict[str, Any]] = {}
    _flatten_categories(raw, "", table)
    if "" in table:
        keys = sorted(table[""])
        raise ValueError(
            f"{source}: objectives {keys} sit directly under [slo] — "
            "put them in a [slo.<category>] table")
    rules: List[SloRule] = []
    for category in sorted(table):
        body = table[category]
        min_samples = body.get("min_samples", 1)
        if not isinstance(min_samples, int) or min_samples < 0:
            raise ValueError(
                f"{source}: [slo.{category}] min_samples must be an int >= 0")
        for key in sorted(body):
            if key == "min_samples":
                continue
            value = body[key]
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    f"{source}: [slo.{category}] {key} must be numeric, "
                    f"got {value!r}")
            limit = float(value)
            if key in LATENCY_QUANTILES:
                rules.append(SloRule(category, "latency", limit,
                                     quantile=LATENCY_QUANTILES[key],
                                     min_samples=min_samples))
            elif key in _RATE_KINDS:
                rules.append(SloRule(category, _RATE_KINDS[key], limit,
                                     min_samples=min_samples))
            elif key == "node_error_budget":
                rules.append(SloRule(category, "node_error_budget", limit,
                                     min_samples=min_samples))
            else:
                known = sorted([*LATENCY_QUANTILES, *_RATE_KINDS,
                                "node_error_budget", "min_samples"])
                raise ValueError(
                    f"{source}: [slo.{category}] unknown objective {key!r} "
                    f"(known: {', '.join(known)})")
    if not rules:
        raise ValueError(f"{source}: spec declares no objectives")
    return SloSpec(rules=tuple(rules), source=source)


# --------------------------------------------------------------- evaluation
@dataclass
class RuleResult:
    """One rule evaluated against one concrete category's spans."""

    rule: SloRule
    category: str      # concrete (wildcards expanded)
    observed: float
    ok: bool
    samples: int
    detail: str = ""

    @property
    def name(self) -> str:
        return self.rule.name_for(self.category)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.name,
            "kind": self.rule.kind,
            "category": self.category,
            "observed": float(self.observed),
            "limit": float(self.rule.limit),
            "samples": int(self.samples),
            "ok": bool(self.ok),
            "detail": self.detail,
        }


def _evaluate_columns(spec: SloSpec, strings: List[str],
                      cols: Mapping[str, np.ndarray]) -> List[RuleResult]:
    """Exact evaluation of *spec* over one run's span columns."""
    cat = cols["cat"]
    status = cols["status"]
    node = cols["node"]
    durations = cols["t1"] - cols["t0"]
    closed = status != STATUS_OPEN
    errors = (status == STATUS_FAIL) | (status == STATUS_TIMEOUT)
    present = sorted(strings[int(c)] for c in np.unique(cat))
    code_of = {s: i for i, s in enumerate(strings)}
    results: List[RuleResult] = []
    for rule in spec.rules:
        categories = present if rule.category == "*" else [rule.category]
        for category in categories:
            mask = closed & (cat == code_of.get(category, -1))
            n = int(np.count_nonzero(mask))
            if n < max(rule.min_samples, 1):
                results.append(RuleResult(
                    rule, category, observed=0.0, ok=True, samples=n,
                    detail=f"skipped: {n} sample(s) < min_samples"))
                continue
            detail = ""
            if rule.kind == "latency":
                observed = float(np.percentile(durations[mask],
                                               rule.quantile * 100.0))
            elif rule.kind == "failure_rate":
                observed = int(np.count_nonzero(mask & (status == STATUS_FAIL))) / n
            elif rule.kind == "timeout_rate":
                observed = int(np.count_nonzero(mask & (status == STATUS_TIMEOUT))) / n
            else:  # node_error_budget
                err_nodes = node[mask & errors]
                if len(err_nodes):
                    uniq, counts = np.unique(err_nodes, return_counts=True)
                    worst = int(np.argmax(counts))
                    observed = float(counts[worst])
                    detail = (f"worst node {int(uniq[worst])}: "
                              f"{int(counts[worst])} error(s)")
                else:
                    observed = 0.0
            results.append(RuleResult(rule, category, observed=float(observed),
                                      ok=float(observed) <= rule.limit,
                                      samples=n, detail=detail))
    return results


def evaluate_hub(spec: SloSpec, hub: ObsHub) -> List[RuleResult]:
    """Evaluate *spec* against a hub's recorded spans (finalizes the hub)."""
    hub.finalize()
    return _evaluate_columns(spec, hub.strings.strings,
                             hub.export_streams()["spans"])


def evaluate_store(spec: SloSpec, reader: "TraceReader",
                   run: Optional[str] = None) -> "SloReport":
    """Evaluate *spec* against a written trace store, one or every run."""
    runs = [run] if run is not None else reader.runs
    per_run = {r: _evaluate_columns(spec, reader.strings,
                                    reader.stream(r, "spans").columns)
               for r in runs}
    return SloReport(source=spec.source, runs=per_run)


@dataclass
class SloReport:
    """Per-run rule results + the violation roll-up the gates consume."""

    source: str
    runs: Dict[str, List[RuleResult]] = field(default_factory=dict)

    def violations(self) -> List[Tuple[str, RuleResult]]:
        return [(run, res) for run in sorted(self.runs)
                for res in self.runs[run] if not res.ok]

    @property
    def passed(self) -> bool:
        return not self.violations()

    def to_dict(self) -> Dict[str, Any]:
        """The compact envelope form (``BenchResult.slo``)."""
        return {
            "spec": self.source,
            "rules": max((len(r) for r in self.runs.values()), default=0),
            "runs": len(self.runs),
            "passed": self.passed,
            "violations": [dict(res.to_dict(), run=run)
                           for run, res in self.violations()],
        }


# ---------------------------------------------------------------- streaming
class StreamingSloMonitor:
    """Live SLO evaluation riding the hub's span-end path.

    Rate and error-budget rules are tracked exactly; latency rules read
    the hub's per-category streaming quantile sketch.  Checks run on
    every error and every :attr:`check_every`-th span of a gated
    category (plus once at finalize), so detection lags bursts by at
    most one window.  The first time a rule trips, one ``slo.violation``
    alert event is appended to the trace (``rid`` indexes the
    ``slo_violations`` list in the run's meta extras) and the rule
    latches — operators gate on *which* objectives broke, not how often.
    """

    def __init__(self, spec: SloSpec, hub: ObsHub, check_every: int = 64) -> None:
        if check_every <= 0:
            raise ValueError(f"check_every must be > 0, got {check_every}")
        self.spec = spec
        self.hub = hub
        self.check_every = int(check_every)
        self.violations: List[Dict[str, Any]] = []
        self._rules_by_code: Dict[int, List[Tuple[int, SloRule]]] = {}
        self._stats: Dict[int, List[int]] = {}  # code -> [n, fails, timeouts, since]
        self._node_errors: Dict[Tuple[int, int], int] = {}
        self._worst_node: Dict[int, Tuple[int, int]] = {}  # code -> (count, node)
        self._fired: Set[Tuple[int, int]] = set()
        self._last_t = 0.0
        self._finalized = False
        hub.slo_monitor = self

    # ------------------------------------------------------------ hot path
    def on_span(self, code: int, node: int, t0: float, t1: float,
                status: int) -> None:
        rules = self._rules_by_code.get(code)
        if rules is None:
            rules = self._resolve(code)
        if not rules:
            return
        stats = self._stats.get(code)
        if stats is None:
            stats = self._stats[code] = [0, 0, 0, 0]
        stats[0] += 1
        stats[3] += 1
        error = status == STATUS_FAIL or status == STATUS_TIMEOUT
        if status == STATUS_FAIL:
            stats[1] += 1
        elif status == STATUS_TIMEOUT:
            stats[2] += 1
        self._last_t = t1
        if error:
            key = (code, node)
            count = self._node_errors.get(key, 0) + 1
            self._node_errors[key] = count
            worst = self._worst_node.get(code)
            if worst is None or count > worst[0]:
                self._worst_node[code] = (count, node)
        if error or stats[3] >= self.check_every:
            stats[3] = 0
            self._check(code, rules, stats, t1)

    def _resolve(self, code: int) -> List[Tuple[int, SloRule]]:
        name = self.hub.strings.lookup(code)
        rules = [(i, r) for i, r in enumerate(self.spec.rules)
                 if r.category == name or r.category == "*"]
        self._rules_by_code[code] = rules
        return rules

    def _check(self, code: int, rules: List[Tuple[int, SloRule]],
               stats: List[int], t: float) -> None:
        n, fails, timeouts = stats[0], stats[1], stats[2]
        for idx, rule in rules:
            if (idx, code) in self._fired or n < max(rule.min_samples, 1):
                continue
            worst_node = -1
            if rule.kind == "latency":
                hist = self.hub.latency_histogram(code)
                if hist is None or hist.count == 0:
                    continue
                observed = hist.quantile(rule.quantile)
            elif rule.kind == "failure_rate":
                observed = fails / n
            elif rule.kind == "timeout_rate":
                observed = timeouts / n
            else:  # node_error_budget
                count, worst_node = self._worst_node.get(code, (0, -1))
                observed = float(count)
            if observed > rule.limit:
                self._fire(idx, rule, code, worst_node, t, observed)

    def _fire(self, idx: int, rule: SloRule, code: int, node: int,
              t: float, observed: float) -> None:
        self._fired.add((idx, code))
        category = self.hub.strings.lookup(code)
        violation = {
            "rule": rule.name_for(category),
            "kind": rule.kind,
            "category": category,
            "observed": float(observed),
            "limit": float(rule.limit),
            "t": float(t),
            "node": int(node),
        }
        rid = len(self.violations)
        self.violations.append(violation)
        self.hub.extras.setdefault("slo_violations", []).append(violation)
        self.hub.slo_violation(node, t, rid, observed)

    # ----------------------------------------------------------- run close
    def final_check(self) -> None:
        """One last evaluation over the full streams (hub finalize calls
        this, so tail-of-run violations are not lost to the window)."""
        if self._finalized:
            return
        self._finalized = True
        for code, stats in self._stats.items():
            self._check(code, self._rules_by_code.get(code, []), stats,
                        self._last_t)

    def report(self) -> SloReport:
        """Exact post-run evaluation of the same spec over the same hub."""
        return SloReport(source=self.spec.source,
                         runs={"live": evaluate_hub(self.spec, self.hub)})
