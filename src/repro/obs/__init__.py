"""Unified observability: span tracing, metrics, and the columnar trace store.

Layering contract: the core modules of this package (metrics, columnar,
hub, store, runtime, query and the analytics tier) must not import
``repro.core`` or ``repro.cluster``, so the simulation core can import
:func:`~repro.obs.runtime.ambient_hub` without a cycle.  Their only look
*down* is the hub's lazily imported ``repro.sim`` event type; everything
else is NumPy, the stdlib and each other.  The two modules that *do* look
upward are therefore not imported here and carry per-module overrides in
``repro/lint/layers.toml``: :mod:`repro.obs.service` (the attachable
``Observability`` service; ``Cluster.with_observability`` imports it
lazily) and :mod:`repro.obs.cli` (the ``python -m repro.obs`` query CLI).
Checked by ``python -m repro.lint`` (RPR201/RPR202).

Typical entry points:

* ``Cluster(...).build(n).with_observability()`` then ``cluster.obs`` — the
  explicit path for library users.
* ``python -m repro.bench run <scenario> --trace-out DIR`` — ambient capture
  around a bench scenario; writes ``trace_<scenario>.npz``.
* ``python -m repro.obs summary <file.npz>`` — query a written store.
* ``python -m repro.obs health|slo|critpath|export-perfetto`` — the
  analytics tier (:mod:`~repro.obs.health`, :mod:`~repro.obs.slo`,
  :mod:`~repro.obs.critpath`, :mod:`~repro.obs.perfetto` — all core-tier).
"""

from repro.obs.columnar import StreamBuffer, StringTable
from repro.obs.critpath import (SpanTree, build_forest, critical_path,
                                self_time_by_category, span_attribution)
from repro.obs.health import (NodeHealth, SubtreeHealth, health_from_reader,
                              node_health, robust_z, subtree_health)
from repro.obs.hub import (EVENT_SCHEMA, SPAN_SCHEMA, STATUS_FAIL,
                           STATUS_NAMES, STATUS_OK, STATUS_OPEN,
                           STATUS_TIMEOUT, ObsHub)
from repro.obs.metrics import (Counter, Gauge, MetricsRegistry,
                               QuantileHistogram)
from repro.obs.perfetto import export_perfetto, trace_events
from repro.obs.runtime import (TraceCapture, active_capture, ambient_hub,
                               capture)
from repro.obs.slo import (RuleResult, SloReport, SloRule, SloSpec,
                           StreamingSloMonitor, evaluate_hub, evaluate_store,
                           load_slo, parse_slo)
from repro.obs.store import SCHEMA, StreamView, TraceReader, write_store

__all__ = [
    "ObsHub",
    "SPAN_SCHEMA",
    "EVENT_SCHEMA",
    "STATUS_OPEN",
    "STATUS_OK",
    "STATUS_FAIL",
    "STATUS_TIMEOUT",
    "STATUS_NAMES",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "QuantileHistogram",
    "StreamBuffer",
    "StringTable",
    "SCHEMA",
    "TraceReader",
    "StreamView",
    "write_store",
    "TraceCapture",
    "capture",
    "ambient_hub",
    "active_capture",
    # SLO tier
    "SloRule",
    "SloSpec",
    "RuleResult",
    "SloReport",
    "load_slo",
    "parse_slo",
    "evaluate_hub",
    "evaluate_store",
    "StreamingSloMonitor",
    # health scoring
    "NodeHealth",
    "SubtreeHealth",
    "robust_z",
    "node_health",
    "subtree_health",
    "health_from_reader",
    # causal analytics
    "SpanTree",
    "build_forest",
    "critical_path",
    "self_time_by_category",
    "span_attribution",
    # perfetto export
    "trace_events",
    "export_perfetto",
]
