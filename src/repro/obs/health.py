"""Per-node health scoring over recorded spans + tree-overlay rollup.

The paper's tree-structured grid overlay lives or dies on detecting sick
*subtrees*: one slow or flapping parent degrades every lookup, quorum
write and job placement routed through its cell.  This module turns the
trace store's span columns into the answers an operator asks:

* :func:`node_health` — per-node aggregates (span load, failure/timeout
  mix, mean span latency) scored 0–100.  Stragglers are flagged by a
  **robust z-score** of per-node mean latency (median/MAD, so one sick
  node cannot drag the baseline toward itself the way mean/std would),
  hot replicas by the same statistic over per-node span load.
* :func:`subtree_health` — rolls node scores up the recorded tree
  overlay (the ``topology`` mapping stores stamp into run meta extras:
  ``child -> parent``), span-weighted, so a subtree whose members are
  individually borderline but collectively sick surfaces at its root.

Everything is vectorised NumPy over :class:`~repro.obs.store.StreamView`
columns; pre-filter the view (``spans.filter(category="lookup")``) to
score one protocol in isolation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.obs.hub import STATUS_FAIL, STATUS_OPEN, STATUS_TIMEOUT
from repro.obs.store import StreamView

__all__ = ["NodeHealth", "SubtreeHealth", "node_health", "subtree_health",
           "health_from_reader", "robust_z"]

#: Default robust-z threshold above which a node is flagged (3.5 is the
#: conventional cut for median/MAD outlier detection).
Z_FLAG = 3.5

#: Scores below this mark a node/subtree "sick" in reports.
SICK_SCORE = 75.0


def robust_z(values: np.ndarray) -> np.ndarray:
    """Median/MAD z-scores (0.6745 · (x − med) / MAD).

    Falls back to classic (x − mean)/std when the MAD degenerates to 0
    (over half the values identical), and to all-zeros when the spread
    itself is 0 — a uniform population has no outliers.
    """
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return values
    med = np.median(values)
    mad = np.median(np.abs(values - med))
    if mad > 0.0:
        return 0.6745 * (values - med) / mad
    std = values.std()
    if std > 0.0:
        return (values - values.mean()) / std
    return np.zeros_like(values)


@dataclass
class NodeHealth:
    """One node's aggregated span record and its 0–100 score."""

    node: int
    spans: int
    ok: int
    fail: int
    timeout: int
    error_rate: float
    mean_latency: float
    busy_time: float       # summed closed-span duration (virtual seconds)
    latency_z: float
    load_z: float
    score: float
    flags: Tuple[str, ...]

    @property
    def sick(self) -> bool:
        return self.score < SICK_SCORE

    def to_dict(self) -> Dict[str, object]:
        return {
            "node": self.node, "spans": self.spans, "ok": self.ok,
            "fail": self.fail, "timeout": self.timeout,
            "error_rate": round(self.error_rate, 6),
            "mean_latency": round(self.mean_latency, 6),
            "busy_time": round(self.busy_time, 6),
            "latency_z": round(self.latency_z, 3),
            "load_z": round(self.load_z, 3),
            "score": round(self.score, 2),
            "flags": list(self.flags),
        }


@dataclass
class SubtreeHealth:
    """Span-weighted health of one overlay subtree, keyed by its root."""

    root: int
    members: int          # nodes in the subtree (root included)
    spans: int            # spans recorded across the subtree
    score: float          # span-weighted mean of member scores
    worst_node: int
    worst_score: float

    @property
    def sick(self) -> bool:
        return self.score < SICK_SCORE

    def to_dict(self) -> Dict[str, object]:
        return {
            "root": self.root, "members": self.members, "spans": self.spans,
            "score": round(self.score, 2), "worst_node": self.worst_node,
            "worst_score": round(self.worst_score, 2),
        }


def node_health(spans: StreamView, *, straggler_z: float = Z_FLAG,
                hot_z: float = Z_FLAG, min_spans: int = 1) -> List[NodeHealth]:
    """Score every node with at least *min_spans* recorded spans.

    Scoring starts at 100 and subtracts independent penalties:

    * up to 60 for the error (fail + timeout) rate — 50% errors exhausts
      the full penalty;
    * up to 25 for straggling — mean span latency whose robust z exceeds
      *straggler_z*;
    * up to 15 for running hot — span load whose robust z exceeds *hot_z*.

    Returned sickest-first (ascending score, node id tiebreak).
    """
    if len(spans) == 0:
        return []
    node = spans.column("node")
    status = spans.column("status")
    durations = spans.column("t1") - spans.column("t0")
    closed = status != STATUS_OPEN

    nodes, inverse = np.unique(node, return_inverse=True)
    counts = np.bincount(inverse)
    fails = np.bincount(inverse, weights=(status == STATUS_FAIL)).astype(np.int64)
    timeouts = np.bincount(inverse, weights=(status == STATUS_TIMEOUT)).astype(np.int64)
    closed_counts = np.bincount(inverse, weights=closed)
    busy = np.bincount(inverse, weights=np.where(closed, durations, 0.0))
    mean_lat = np.divide(busy, closed_counts,
                         out=np.zeros_like(busy), where=closed_counts > 0)

    lat_z = robust_z(mean_lat)
    load_z = robust_z(counts.astype(np.float64))

    out: List[NodeHealth] = []
    for i, ident in enumerate(nodes):
        n = int(counts[i])
        if n < min_spans:
            continue
        err = int(fails[i] + timeouts[i])
        err_rate = err / n
        flags: List[str] = []
        score = 100.0
        if err:
            score -= min(60.0, 120.0 * err_rate)
            flags.append("errors")
        lz = float(lat_z[i])
        if lz > straggler_z and closed_counts[i] > 0:
            score -= min(25.0, 5.0 + (lz - straggler_z) * 5.0)
            flags.append("straggler")
        gz = float(load_z[i])
        if gz > hot_z:
            score -= min(15.0, 3.0 + (gz - hot_z) * 3.0)
            flags.append("hot")
        out.append(NodeHealth(
            node=int(ident), spans=n,
            ok=n - err - int(counts[i] - closed_counts[i]),
            fail=int(fails[i]), timeout=int(timeouts[i]),
            error_rate=err_rate, mean_latency=float(mean_lat[i]),
            busy_time=float(busy[i]), latency_z=lz, load_z=gz,
            score=max(0.0, score), flags=tuple(flags)))
    out.sort(key=lambda h: (h.score, h.node))
    return out


def subtree_health(nodes: List[NodeHealth],
                   topology: Mapping[int, int]) -> List[SubtreeHealth]:
    """Roll per-node scores up the overlay tree, span-weighted.

    *topology* maps ``child -> parent`` (parent ``-1`` or absent = root),
    the shape :meth:`TreePNetwork.topology_snapshot` records into run
    meta extras.  Nodes present in the topology but without spans join
    with neutral weight 0; scored nodes missing from the topology stand
    as single-node roots.  Only internal nodes (≥ 1 child) are reported
    — a leaf's "subtree" is just its own :class:`NodeHealth` row.

    Returned sickest-first.
    """
    health = {h.node: h for h in nodes}
    members = set(topology) | set(health)
    children: Dict[int, List[int]] = {}
    for child in sorted(members):
        parent = topology.get(child, -1)
        if parent is None or parent < 0 or parent == child or parent not in members:
            continue
        children.setdefault(parent, []).append(child)

    roots = [n for n in sorted(members)
             if not (0 <= topology.get(n, -1) != n
                     and topology.get(n, -1) in members)]
    # Pre-order walk with a cycle guard, then accumulate in reverse.
    order: List[int] = []
    seen: set = set()
    stack = list(reversed(roots))
    while stack:
        n = stack.pop()
        if n in seen:
            continue
        seen.add(n)
        order.append(n)
        stack.extend(reversed(children.get(n, [])))
    for n in sorted(members - seen):  # cycle remnants: stand alone
        order.append(n)
        seen.add(n)
        children.pop(n, None)

    # node -> [weighted score sum, span weight, member count, worst node, worst score]
    agg: Dict[int, List[float]] = {}
    for n in order:
        h = health.get(n)
        if h is not None:
            agg[n] = [h.score * h.spans, float(h.spans), 1.0, n, h.score]
        else:
            agg[n] = [0.0, 0.0, 1.0, n, 100.0]
    for n in reversed(order):
        parent = topology.get(n, -1)
        if parent is None or parent < 0 or parent == n or parent not in agg:
            continue
        if n not in children.get(parent, ()):  # cycle remnant, not merged
            continue
        a, p = agg[n], agg[parent]
        p[0] += a[0]
        p[1] += a[1]
        p[2] += a[2]
        if a[4] < p[4]:
            p[3], p[4] = a[3], a[4]

    out = []
    for n in order:
        kids = children.get(n)
        if not kids:
            continue
        total, weight, size, worst, worst_score = agg[n]
        score = total / weight if weight > 0 else 100.0
        out.append(SubtreeHealth(
            root=n, members=int(size), spans=int(weight), score=score,
            worst_node=int(worst), worst_score=worst_score))
    out.sort(key=lambda s: (s.score, s.root))
    return out


def health_from_reader(reader, run: str, *,
                       category: Optional[str] = None,
                       min_spans: int = 1) -> Tuple[List[NodeHealth],
                                                    List[SubtreeHealth]]:
    """One-call report for one stored run: (node rows, subtree rows).

    Subtree rows are empty when the store carries no topology (pre-1.7
    stores, or hubs never bound to a network).
    """
    spans = reader.stream(run, "spans")
    if category is not None:
        spans = spans.filter(category=category)
    nodes = node_health(spans, min_spans=min_spans)
    topology = reader.run_topology(run)
    subtrees = subtree_health(nodes, topology) if topology else []
    return nodes, subtrees
