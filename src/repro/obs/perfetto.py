"""Chrome trace-event JSON export — open any recorded run in Perfetto.

:func:`export_perfetto` converts a trace store into the Trace Event
Format (the ``{"traceEvents": [...]}`` JSON object) that
https://ui.perfetto.dev and ``chrome://tracing`` load directly:

* each store **run** becomes a process (``pid``), named by the run;
* each **node** becomes a thread (``tid``) named ``node <id>``.  Spans
  on one node can overlap without nesting (two concurrent lookups), and
  the B/E duration events the format uses require strict nesting per
  thread — overlapping spans therefore overflow into extra *lanes*
  (``node <id> · lane <k>``), assigned greedily so every lane's spans
  form a laminar family;
* spans emit matched ``B``/``E`` pairs (begin args carry the span id,
  status and ``v0``/``v1`` payloads), instantaneous trace events emit
  thread-scoped ``i`` instants.

Timestamps are virtual-time seconds scaled to microseconds (the
format's unit), globally sorted, so the exported stream is monotonic.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.hub import STATUS_NAMES
from repro.obs.store import TraceReader

__all__ = ["trace_events", "export_perfetto"]

_US = 1e6  # virtual seconds -> trace-event microseconds


def _span_events(spans, pid: int, tids: Dict[Tuple[int, int], int],
                 names: Dict[int, str], next_tid: List[int],
                 ) -> List[Tuple[float, int, int, Dict[str, Any]]]:
    """B/E pairs for one run's spans, lane-assigned so every tid nests.

    Returns sortable tuples ``(ts_us, tid, seq, event)`` — ``seq`` is a
    per-tid sequence number that preserves the stack-correct emission
    order between events sharing a timestamp.
    """
    rows = sorted(
        zip(spans.column("id").tolist(), spans.column("cat").tolist(),
            spans.column("node").tolist(), spans.column("t0").tolist(),
            spans.column("t1").tolist(), spans.column("status").tolist(),
            spans.column("v0").tolist(), spans.column("v1").tolist()),
        key=lambda r: (r[3], -r[4]))
    strings = spans.strings

    # Greedy lane assignment: a span joins the first lane of its node
    # whose open-span stack it nests into (or which is idle by its t0).
    lanes: Dict[int, List[List[float]]] = {}
    by_lane: Dict[Tuple[int, int], List[Tuple]] = {}
    for row in rows:
        node, t0, t1 = int(row[2]), float(row[3]), float(row[4])
        stacks = lanes.setdefault(node, [])
        lane = None
        for k, stack in enumerate(stacks):
            while stack and stack[-1] <= t0:
                stack.pop()
            if not stack or t1 <= stack[-1]:
                lane = k
                break
        if lane is None:
            stacks.append([])
            lane = len(stacks) - 1
        stacks[lane].append(t1)
        key = (node, lane)
        if key not in tids:
            tids[key] = next_tid[0]
            names[next_tid[0]] = (f"node {node}" if lane == 0
                                  else f"node {node} · lane {lane}")
            next_tid[0] += 1
        by_lane.setdefault(key, []).append(row)

    out: List[Tuple[float, int, int, Dict[str, Any]]] = []
    for key, lane_rows in by_lane.items():
        tid = tids[key]
        seq = 0
        open_stack: List[Tuple[float, float]] = []  # (t1, ts_us)
        for sid, cat, node, t0, t1, status, v0, v1 in lane_rows:
            while open_stack and open_stack[-1][0] <= t0:
                end, ts = open_stack.pop()
                out.append((ts, tid, seq, {"ph": "E", "pid": pid, "tid": tid,
                                           "ts": ts}))
                seq += 1
            name = strings[int(cat)]
            out.append((t0 * _US, tid, seq, {
                "ph": "B", "name": name, "cat": name, "pid": pid, "tid": tid,
                "ts": t0 * _US,
                "args": {"id": int(sid),
                         "status": STATUS_NAMES.get(int(status), "?"),
                         "v0": float(v0), "v1": float(v1)},
            }))
            seq += 1
            open_stack.append((float(t1), t1 * _US))
        while open_stack:
            end, ts = open_stack.pop()
            out.append((ts, tid, seq, {"ph": "E", "pid": pid, "tid": tid,
                                       "ts": ts}))
            seq += 1
    return out


def trace_events(reader: TraceReader, run: Optional[str] = None,
                 category: Optional[str] = None) -> List[Dict[str, Any]]:
    """The full trace-event list for *reader* (one run or all).

    Metadata (process/thread names) leads; payload events follow sorted
    by ``(ts, tid, seq)`` — globally monotonic timestamps with per-lane
    emission order preserved for same-timestamp B/E correctness.
    """
    runs = [run] if run is not None else reader.runs
    if run is not None:
        reader.run_meta(run)  # raises with the known-run list
    meta_events: List[Dict[str, Any]] = []
    payload: List[Tuple[float, int, int, Dict[str, Any]]] = []
    next_tid = [1]
    for pid, run_name in enumerate(runs, start=1):
        meta_events.append({"ph": "M", "name": "process_name", "pid": pid,
                            "ts": 0, "args": {"name": run_name}})
        spans = reader.stream(run_name, "spans")
        events = reader.stream(run_name, "events")
        if category is not None:
            spans = spans.filter(category=category)
            events = events.filter(category=category)
        tids: Dict[Tuple[int, int], int] = {}
        names: Dict[int, str] = {}
        payload.extend(_span_events(spans, pid, tids, names, next_tid))
        # Instants ride their node's lane 0 (creating it if span-less).
        strings = events.strings
        for cat, node, t, rid, value in zip(
                events.column("cat").tolist(), events.column("node").tolist(),
                events.column("t").tolist(), events.column("rid").tolist(),
                events.column("value").tolist()):
            key = (int(node), 0)
            tid = tids.get(key)
            if tid is None:
                tid = tids[key] = next_tid[0]
                names[tid] = f"node {int(node)}"
                next_tid[0] += 1
            name = strings[int(cat)]
            payload.append((t * _US, tid, 1 << 30, {
                "ph": "i", "name": name, "cat": name, "pid": pid, "tid": tid,
                "ts": t * _US, "s": "t",
                "args": {"rid": int(rid), "value": float(value)},
            }))
        for tid in sorted(names):
            meta_events.append({"ph": "M", "name": "thread_name", "pid": pid,
                                "tid": tid, "ts": 0,
                                "args": {"name": names[tid]}})
    payload.sort(key=lambda item: (item[0], item[1], item[2]))
    return meta_events + [event for _, _, _, event in payload]


def export_perfetto(reader: TraceReader, path: str,
                    run: Optional[str] = None,
                    category: Optional[str] = None) -> str:
    """Write the Chrome trace-event JSON for *reader* to *path*."""
    events = trace_events(reader, run=run, category=category)
    doc = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": reader.path, "schema": "repro.obs/1",
                      "timeUnit": "virtual-seconds-as-us"},
    }
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, separators=(",", ":"))
        fh.write("\n")
    return path
