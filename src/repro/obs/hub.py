"""`ObsHub` — the per-network span/event recorder.

One hub serves one :class:`~repro.core.treep.TreePNetwork`.  Every
instrumentation site in the stack is the same two-instruction pattern::

    obs = self.obs            # a plain attribute, None when disabled
    if obs is not None:
        obs.lookup_begin(rid, self.ident, self.sim.now)

so the disabled path (the default everywhere) costs one attribute load and
one identity check — nothing allocates, nothing is called.  The enabled
path appends typed rows to chunked NumPy column buffers
(:mod:`repro.obs.columnar`), never draws from an RNG and never schedules a
simulator event, so traced and untraced runs produce bit-identical
scenario metrics at a fixed seed (the determinism gate in
``tests/test_obs_integration.py`` proves it).

Spans are explicit begin/end records with parent links.  Request-scoped
spans (lookups by rid, jobs by job id) are *keyed*: the hub owns the
``key -> open span`` map so call sites carry no span ids around.  Span
durations additionally feed per-category streaming quantile histograms
(``span.<category>.latency`` in :attr:`metrics`), giving p50/p99/p999
without post-processing the trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.obs.columnar import StreamBuffer, StringTable
from repro.obs.metrics import MetricsRegistry, QuantileHistogram

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.events import Event

__all__ = ["ObsHub", "SPAN_SCHEMA", "EVENT_SCHEMA",
           "STATUS_OPEN", "STATUS_OK", "STATUS_FAIL", "STATUS_TIMEOUT"]

# Span status codes (the ``status`` column).
STATUS_OPEN = 0     # never ended; flushed by finalize()
STATUS_OK = 1
STATUS_FAIL = 2
STATUS_TIMEOUT = 3

STATUS_NAMES = {STATUS_OPEN: "open", STATUS_OK: "ok",
                STATUS_FAIL: "fail", STATUS_TIMEOUT: "timeout"}

#: The ``spans`` stream: one row per *ended* (or finalized-open) span.
#: ``v0``/``v1`` carry category-specific payloads (hops, replicas, keys…).
SPAN_SCHEMA = (
    ("id", "i8"), ("parent", "i8"), ("cat", "u2"), ("node", "i8"),
    ("t0", "f8"), ("t1", "f8"), ("status", "i2"), ("v0", "f8"), ("v1", "f8"),
)

#: The ``events`` stream: instantaneous points (per-hop records, placements,
#: checkpoints).  ``rid`` links an event to its request/job/span key.
EVENT_SCHEMA = (
    ("cat", "u2"), ("node", "i8"), ("t", "f8"), ("rid", "i8"), ("value", "f8"),
)


class ObsHub:
    """Span/event recorder + metrics-registry anchor for one network.

    Parameters
    ----------
    categories:
        When given, only these span/event categories record (unknown
        categories cost one set lookup and record nothing).  ``None``
        enables every category **except** the opt-in firehose
        ``sim.event`` stream (per-simulator-event rows; its per-label
        *counts* are always kept — they are one dict add).
    chunk:
        Rows per column-buffer chunk (see :class:`StreamBuffer`).
    """

    def __init__(self, categories: Optional[Iterable[str]] = None,
                 chunk: int = 4096) -> None:
        self.categories = frozenset(categories) if categories is not None else None
        self.strings = StringTable()
        self.spans = StreamBuffer(SPAN_SCHEMA, chunk=chunk)
        self.events = StreamBuffer(EVENT_SCHEMA, chunk=chunk)
        #: category name -> recorded span+event rows (the in-memory totals
        #: ``python -m repro.obs summary`` must reproduce from the store).
        self.counts: Dict[str, int] = {}
        #: simulator event label -> fired count (fed by the engine hook).
        self.sim_event_counts: Dict[str, int] = {}
        self.metrics = MetricsRegistry()
        #: Registries adopted from subsystems (name -> registry); snapshot
        #: together with the hub's own metrics.
        self._adopted: Dict[str, MetricsRegistry] = {}
        self._open: Dict[int, Tuple[int, int, float, int]] = {}  # id -> (cat, node, t0, parent)
        self._keyed: Dict[Tuple[str, Any], int] = {}             # (category, key) -> id
        self._next_id = 1
        self._span_hists: Dict[int, QuantileHistogram] = {}
        self._record_sim_events = (self.categories is not None
                                   and "sim.event" in self.categories)
        #: Live SLO evaluator (:class:`repro.obs.slo.StreamingSloMonitor`);
        #: ``None`` (the default) costs one identity check per span end.
        self.slo_monitor = None
        #: Free-form JSON-safe annotations written into this hub's run
        #: metadata (``extras``) by :func:`repro.obs.store.write_store` —
        #: the SLO monitor logs violations here, :meth:`finalize` stamps
        #: the overlay topology.
        self.extras: Dict[str, Any] = {}
        #: Optional zero-arg callable returning ``{node: parent}`` (set by
        #: the owning network); sampled once at :meth:`finalize` so offline
        #: health analysis can roll scores up the tree overlay.
        self.topology_source = None

    # ------------------------------------------------------------ gating
    def enabled_for(self, category: str) -> bool:
        return self.categories is None or category in self.categories

    # ------------------------------------------------------------- spans
    def begin(self, category: str, node: int, t: float, parent: int = 0) -> int:
        """Open a span; returns its id, or 0 when the category is disabled
        (``end(0, ...)`` is a no-op, so call sites never re-check)."""
        if self.categories is not None and category not in self.categories:
            return 0
        sid = self._next_id
        self._next_id = sid + 1
        self._open[sid] = (self.strings.code(category), node, t, parent)
        self.counts[category] = self.counts.get(category, 0) + 1
        return sid

    def end(self, span_id: int, t: float, status: int = STATUS_OK,
            v0: float = 0.0, v1: float = 0.0) -> None:
        """Close span *span_id*, appending its row to the columnar stream."""
        if span_id == 0:
            return
        opened = self._open.pop(span_id, None)
        if opened is None:
            return  # already ended (double-end is a call-site race, not fatal)
        cat, node, t0, parent = opened
        self.spans.append(span_id, parent, cat, node, t0, t, status, v0, v1)
        hist = self._span_hists.get(cat)
        if hist is None:
            hist = self._span_hists[cat] = self.metrics.histogram(
                f"span.{self.strings.lookup(cat)}.latency")
        hist.observe(t - t0)
        monitor = self.slo_monitor
        if monitor is not None:
            monitor.on_span(cat, node, t0, t, status)

    # keyed spans: the hub owns the request-key -> span-id map ------------
    def begin_keyed(self, category: str, key: Any, node: int, t: float,
                    parent: int = 0) -> int:
        """Open a span addressed by ``(category, key)`` (idempotent: a
        duplicate begin — e.g. a failover resubmission — keeps the first)."""
        mkey = (category, key)
        sid = self._keyed.get(mkey)
        if sid is not None:
            return sid
        sid = self.begin(category, node, t, parent=parent)
        if sid:
            self._keyed[mkey] = sid
        return sid

    def keyed_id(self, category: str, key: Any) -> int:
        """The open span id for ``(category, key)``, or 0 (parent links)."""
        return self._keyed.get((category, key), 0)

    def end_keyed(self, category: str, key: Any, t: float,
                  status: int = STATUS_OK, v0: float = 0.0, v1: float = 0.0) -> None:
        sid = self._keyed.pop((category, key), None)
        if sid is not None:
            self.end(sid, t, status=status, v0=v0, v1=v1)

    def span(self, category: str, node: int, t0: float, t1: float,
             status: int = STATUS_OK, v0: float = 0.0, v1: float = 0.0,
             parent: int = 0) -> int:
        """Record an already-closed span in one call (single-callback work
        such as an anti-entropy sweep, where t0 == t1 in virtual time)."""
        sid = self.begin(category, node, t0, parent=parent)
        self.end(sid, t1, status=status, v0=v0, v1=v1)
        return sid

    # ------------------------------------------------------------- events
    def event(self, category: str, node: int, t: float, rid: int = 0,
              value: float = 0.0) -> None:
        """Record one instantaneous event row."""
        if self.categories is not None and category not in self.categories:
            return
        self.events.append(self.strings.code(category), node, t, rid, value)
        self.counts[category] = self.counts.get(category, 0) + 1

    # ---------------------------------------------- domain-specific helpers
    # Encapsulated here so call sites in core/storage/compute stay one
    # guarded line and the category vocabulary lives in one place.
    def lookup_begin(self, rid: int, node: int, t: float) -> None:
        self.begin_keyed("lookup", rid, node, t)

    def lookup_hop(self, rid: int, node: int, t: float, ttl: int) -> None:
        self.event("lookup.hop", node, t, rid=rid, value=float(ttl))

    def lookup_end(self, rid: int, t: float, found: bool, hops: int,
                   timed_out: bool = False) -> None:
        status = STATUS_TIMEOUT if timed_out else (
            STATUS_OK if found else STATUS_FAIL)
        self.end_keyed("lookup", rid, t, status=status, v0=float(hops))

    def storage_begin(self, kind: str, rid: int, node: int, t: float) -> None:
        self.begin_keyed(f"storage.{kind}", rid, node, t)

    def storage_end(self, kind: str, rid: int, t: float, ok: bool,
                    hops: int = 0, replicas: int = 0,
                    timed_out: bool = False) -> None:
        status = STATUS_TIMEOUT if timed_out else (
            STATUS_OK if ok else STATUS_FAIL)
        self.end_keyed(f"storage.{kind}", rid, t, status=status,
                       v0=float(hops), v1=float(replicas))

    def sweep(self, node: int, t0: float, t1: float, keys: int,
              repairs: int) -> None:
        self.span("antientropy.sweep", node, t0, t1, status=STATUS_OK,
                  v0=float(keys), v1=float(repairs))

    def job_begin(self, job_id: int, node: int, t: float) -> None:
        self.begin_keyed("job", job_id, node, t)

    def job_place(self, job_id: int, worker: int, t: float, attempt: int) -> None:
        self.event("job.place", worker, t, rid=job_id, value=float(attempt))

    def job_execute_begin(self, job_id: int, attempt: int, worker: int,
                          t: float) -> None:
        self.begin_keyed("job.execute", (job_id, attempt), worker, t,
                         parent=self.keyed_id("job", job_id))

    def job_execute_end(self, job_id: int, attempt: int, t: float,
                        executed: float) -> None:
        self.end_keyed("job.execute", (job_id, attempt), t,
                       status=STATUS_OK, v0=executed)

    def job_checkpoint(self, job_id: int, worker: int, t: float,
                       progress: float) -> None:
        self.event("job.checkpoint", worker, t, rid=job_id, value=progress)

    def job_end(self, job_id: int, t: float, ok: bool, attempts: int) -> None:
        self.end_keyed("job", job_id, t,
                       status=STATUS_OK if ok else STATUS_FAIL,
                       v0=float(attempts))

    def slo_violation(self, node: int, t: float, rid: int,
                      value: float) -> None:
        """Record one ``slo.violation`` alert event.  Alerts bypass the
        category filter — a spec was explicitly attached, so its
        violations are always recorded; ``rid`` indexes the violation's
        detail dict in ``extras["slo_violations"]``."""
        self.events.append(self.strings.code("slo.violation"), node, t, rid,
                           value)
        self.counts["slo.violation"] = self.counts.get("slo.violation", 0) + 1

    def latency_histogram(self, cat_code: int) -> Optional[QuantileHistogram]:
        """The streaming latency sketch of one interned category (or
        ``None`` before its first closed span)."""
        return self._span_hists.get(cat_code)

    # ------------------------------------------------------ engine wiring
    def on_sim_event(self, ev: "Event") -> None:
        """Per-simulator-event hook (installed via
        :meth:`~repro.sim.engine.Simulator.set_event_hook` when tracing is
        on).  Always counts by label; appends a row to the events stream
        only when the opt-in ``sim.event`` category was requested."""
        label = ev.label
        counts = self.sim_event_counts
        counts[label] = counts.get(label, 0) + 1
        if self._record_sim_events:
            self.events.append(self.strings.code("sim.event"), -1, ev.time, 0, 0.0)
            self.counts["sim.event"] = self.counts.get("sim.event", 0) + 1

    # -------------------------------------------------- registry adoption
    def adopt_registry(self, name: str, registry: MetricsRegistry) -> None:
        """Snapshot *registry* (a subsystem's metrics) with this hub's."""
        self._adopted[name] = registry

    def metrics_snapshot(self) -> Dict[str, float]:
        """The hub's own metrics plus every adopted registry, flat."""
        out = self.metrics.snapshot()
        for name in sorted(self._adopted):
            out.update(self._adopted[name].snapshot(prefix=f"{name}."))
        return out

    # ------------------------------------------------------------- export
    def open_span_count(self) -> int:
        return len(self._open)

    def finalize(self) -> None:
        """Flush still-open spans (crashed workers, timed-out-but-pending
        requests at run end) into the stream with ``STATUS_OPEN`` and
        ``t1 = t0`` — their begin was already counted, so per-category
        counts match row counts exactly.  Also runs the SLO monitor's
        final check and stamps the overlay topology into :attr:`extras`
        (both idempotent, so repeated finalize stays safe)."""
        monitor = self.slo_monitor
        if monitor is not None:
            monitor.final_check()
        source = self.topology_source
        if source is not None and "topology" not in self.extras:
            try:
                topology = source()
            except Exception:  # a half-torn-down network beats a lost trace
                topology = None
            if topology:
                self.extras["topology"] = {
                    str(k): int(v) for k, v in topology.items()}
        for sid in sorted(self._open):
            cat, node, t0, parent = self._open[sid]
            self.spans.append(sid, parent, cat, node, t0, t0, STATUS_OPEN,
                              0.0, 0.0)
        self._open.clear()
        self._keyed.clear()

    def export_streams(self) -> Dict[str, Dict[str, np.ndarray]]:
        """``{stream name: {column: array}}`` over everything recorded.
        Call :meth:`finalize` first to include open spans."""
        return {"spans": self.spans.columns(), "events": self.events.columns()}

    def category_counts(self) -> Dict[str, int]:
        """Recorded rows per category (the summary ground truth)."""
        return dict(self.counts)
