"""Store-side analysis shared by the ``repro.obs`` CLI and the tests.

Everything here operates on :class:`~repro.obs.store.StreamView` column
arrays with vectorised NumPy — the trace store's exact row data, not the
streaming sketches — so the CLI's numbers are ground truth the in-memory
histograms can be validated against.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.obs.hub import (STATUS_FAIL, STATUS_NAMES, STATUS_OK, STATUS_OPEN,
                           STATUS_TIMEOUT)
from repro.obs.store import StreamView

__all__ = ["span_stats", "per_hop_latency", "slowest_spans", "timeline_rows"]


def span_stats(spans: StreamView) -> List[Dict[str, Any]]:
    """Per-category span statistics: count, status mix, duration quantiles.

    Durations are exact (np.percentile over the stored rows); open spans
    count but contribute no duration.
    """
    cat = spans.column("cat")
    t0 = spans.column("t0")
    t1 = spans.column("t1")
    status = spans.column("status")
    out: List[Dict[str, Any]] = []
    for code in np.unique(cat):
        mask = cat == code
        closed = mask & (status != STATUS_OPEN)
        durations = (t1 - t0)[closed]
        row: Dict[str, Any] = {
            "category": spans._strings[int(code)],
            "count": int(np.count_nonzero(mask)),
            "ok": int(np.count_nonzero(mask & (status == STATUS_OK))),
            "fail": int(np.count_nonzero(mask & (status == STATUS_FAIL))),
            "timeout": int(np.count_nonzero(mask & (status == STATUS_TIMEOUT))),
            "open": int(np.count_nonzero(mask & (status == STATUS_OPEN))),
        }
        if len(durations):
            row.update(
                mean=float(durations.mean()),
                p50=float(np.percentile(durations, 50)),
                p99=float(np.percentile(durations, 99)),
                max=float(durations.max()),
            )
        else:
            row.update(mean=0.0, p50=0.0, p99=0.0, max=0.0)
        out.append(row)
    out.sort(key=lambda r: -r["count"])
    return out


def per_hop_latency(events: StreamView) -> List[Dict[str, Any]]:
    """Per-hop latency breakdown of lookup trails.

    ``lookup.hop`` events carry (rid, arrival time, ttl); sorting by
    (rid, ttl) and differencing consecutive hops of the same request gives
    the per-hop forwarding latency at each depth.
    """
    hops = events.filter(category="lookup.hop")
    if len(hops) == 0:
        return []
    rid = hops.column("rid")
    t = hops.column("t")
    ttl = hops.column("value")
    order = np.lexsort((ttl, rid))
    rid, t, ttl = rid[order], t[order], ttl[order]
    same_req = rid[1:] == rid[:-1]
    consecutive = ttl[1:] == ttl[:-1] + 1
    mask = same_req & consecutive
    hop_idx = ttl[1:][mask].astype(np.int64)
    latency = t[1:][mask] - t[:-1][mask]
    out: List[Dict[str, Any]] = []
    for h in np.unique(hop_idx):
        sel = latency[hop_idx == h]
        out.append({
            "hop": int(h),
            "count": int(len(sel)),
            "mean": float(sel.mean()),
            "p99": float(np.percentile(sel, 99)),
        })
    return out


def slowest_spans(spans: StreamView, limit: int = 10) -> List[Dict[str, Any]]:
    """The *limit* longest closed spans, slowest first."""
    status = spans.column("status")
    mask = status != STATUS_OPEN
    view = StreamView({k: v[mask] for k, v in spans.columns.items()},
                      spans._strings, spans.run, spans.stream)
    if len(view) == 0:
        return []
    durations = view.column("t1") - view.column("t0")
    order = np.argsort(durations)[::-1][:limit]
    rows = []
    for i in order:
        rows.append({
            "category": view._strings[int(view.column("cat")[i])],
            "id": int(view.column("id")[i]),
            "node": int(view.column("node")[i]),
            "t0": float(view.column("t0")[i]),
            "duration": float(durations[i]),
            "status": STATUS_NAMES.get(int(view.column("status")[i]), "?"),
            "v0": float(view.column("v0")[i]),
        })
    return rows


def timeline_rows(spans: StreamView, events: StreamView,
                  limit: int = 50) -> List[Dict[str, Any]]:
    """A chronological merge of span-ends and events (first *limit*).

    Closed spans appear at their **end** time (``t1`` is when the outcome
    became known; ``t0`` stays in the detail); never-ended spans flushed
    with ``STATUS_OPEN`` appear at their begin, the only time they have.
    """
    merged: List[Dict[str, Any]] = []
    for row in spans:
        is_open = row["status"] == STATUS_OPEN
        merged.append({
            "time": row["t0"] if is_open else row["t1"],
            "kind": "span", "category": row["category"],
            "node": row["node"],
            "detail": (f"id={row['id']} t0={row['t0']:.4f} "
                       f"dur={row['t1'] - row['t0']:.4f} "
                       f"{STATUS_NAMES.get(row['status'], '?')} "
                       f"v0={row['v0']:g}"),
        })
    for row in events:
        merged.append({
            "time": row["t"], "kind": "event", "category": row["category"],
            "node": row["node"],
            "detail": f"rid={row['rid']} value={row['value']:g}",
        })
    merged.sort(key=lambda r: (r["time"], r["kind"]))
    return merged[:limit]
