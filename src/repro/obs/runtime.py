"""Ambient trace capture — how ``--trace-out`` reaches scenario-internal
networks.

Bench scenarios construct their own :class:`~repro.core.treep.TreePNetwork`
objects (often several, sweeping N), so the runner cannot hand them a hub.
Instead it activates a :class:`TraceCapture` for the duration of the
scenario; every network constructed while one is active asks
:func:`ambient_hub` for a fresh hub and becomes one *run* in the written
store.  With no capture active (the default, including every test and
every untraced bench run) :func:`ambient_hub` is a single module-global
``None`` check at network construction — zero per-event cost.

The explicit path — ``Cluster(...).with_observability(...)`` — does not go
through this module at all; it attaches an
:class:`~repro.obs.service.Observability` service carrying its own hub.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Mapping, Optional

from repro.obs.hub import ObsHub
from repro.obs.store import write_store

__all__ = ["TraceCapture", "capture", "ambient_hub", "active_capture"]

_ACTIVE: Optional["TraceCapture"] = None


class TraceCapture:
    """Collects one hub per network constructed while active.

    With an ``slo`` spec every new hub gets its own
    :class:`~repro.obs.slo.StreamingSloMonitor`, so violations are
    detected live (and recorded as ``slo.violation`` events) in each run.
    """

    def __init__(self, categories=None, chunk: int = 4096,
                 slo=None) -> None:
        self.categories = categories
        self.chunk = chunk
        self.slo = slo
        self.hubs: List[ObsHub] = []

    def new_hub(self) -> ObsHub:
        hub = ObsHub(categories=self.categories, chunk=self.chunk)
        if self.slo is not None:
            from repro.obs.slo import StreamingSloMonitor
            StreamingSloMonitor(self.slo, hub)
        self.hubs.append(hub)
        return hub

    def runs(self) -> Dict[str, ObsHub]:
        """``{run name: hub}`` in network-construction order."""
        return {f"run-{i:03d}": hub for i, hub in enumerate(self.hubs)}

    def write(self, path: str,
              meta_extra: Optional[Mapping[str, Any]] = None) -> str:
        """Write every captured run to *path* (see
        :func:`~repro.obs.store.write_store`)."""
        return write_store(path, self.runs(), meta_extra=meta_extra)

    # ------------------------------------------------------------ summaries
    def category_counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for hub in self.hubs:
            for cat, n in hub.category_counts().items():
                out[cat] = out.get(cat, 0) + n
        return out

    def span_count(self) -> int:
        return sum(hub.spans.rows + hub.open_span_count() for hub in self.hubs)

    def event_count(self) -> int:
        return sum(hub.events.rows for hub in self.hubs)

    def metrics_snapshot(self) -> Dict[str, float]:
        """Merged metrics across runs, prefixed per run when several."""
        if len(self.hubs) == 1:
            return self.hubs[0].metrics_snapshot()
        out: Dict[str, float] = {}
        for i, hub in enumerate(self.hubs):
            for key, value in hub.metrics_snapshot().items():
                out[f"run-{i:03d}.{key}"] = value
        return out


@contextmanager
def capture(categories=None, chunk: int = 4096,
            slo=None) -> Iterator[TraceCapture]:
    """Activate an ambient capture for the ``with`` body (re-entrant: an
    inner capture shadows, then restores, the outer one)."""
    global _ACTIVE
    prev = _ACTIVE
    cap = TraceCapture(categories=categories, chunk=chunk, slo=slo)
    _ACTIVE = cap
    try:
        yield cap
    finally:
        _ACTIVE = prev


def ambient_hub() -> Optional[ObsHub]:
    """A fresh hub from the active capture, or ``None`` (the usual case).
    Called once per :class:`~repro.core.treep.TreePNetwork` construction."""
    return _ACTIVE.new_hub() if _ACTIVE is not None else None


def active_capture() -> Optional[TraceCapture]:
    return _ACTIVE
