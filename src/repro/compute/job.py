"""Job model of the grid execution subsystem.

A :class:`JobSpec` is what a grid user submits: a CPU demand (share units
held while running), an amount of *work* (virtual seconds of unit-rate
compute — a job's runtime is its remaining work, heterogeneity shows up as
how many jobs a peer can hold concurrently), a minimum-capability
:class:`~repro.services.discovery.Constraint`, and optional DAG
dependencies on other job ids.

:class:`JobRecord` is the scheduler-side life-cycle state;
:class:`JobResult` the client-visible outcome; :class:`ComputeConfig` the
subsystem's tunables (heartbeat cadence, checkpoint interval, work-stealing
dial).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Optional, Set, Tuple

from repro.services.discovery import Constraint


@dataclass(frozen=True)
class ComputeConfig:
    """Tunables of the job-execution subsystem.

    Attributes
    ----------
    heartbeat_interval:
        Seconds between a worker's per-job progress heartbeats.
    heartbeat_timeout:
        Scheduler declares a worker dead for a job after this long without
        a heartbeat (must exceed a couple of intervals plus latency).
    monitor_interval:
        Cadence of the scheduler's failure-detection / retry sweep.
    checkpoint_interval:
        Seconds between a worker's quorum-stored progress checkpoints;
        ``None`` disables checkpointing (the restart-from-scratch
        ablation — re-executions then restart from zero).
    checkpoint_read_timeout:
        How long a resuming worker waits for the checkpoint read before
        starting from zero anyway.
    steal_interval:
        Cadence at which an idle worker probes its level-0 siblings for
        queued work; ``None`` disables work stealing.
    lease_timeout:
        A worker abandons a held job (after a final checkpoint) when its
        heartbeats have gone unacknowledged this long — fencing that
        bounds duplicate execution when a scheduler dies or a job is
        re-placed away from a live-but-partitioned worker.
    max_results:
        Candidate pool size the matchmaker requests from the resource
        directory per placement.
    max_attempts:
        A job is FAILED after this many dispatch attempts.
    """

    heartbeat_interval: float = 5.0
    heartbeat_timeout: float = 12.0
    monitor_interval: float = 4.0
    checkpoint_interval: Optional[float] = 10.0
    checkpoint_read_timeout: float = 8.0
    steal_interval: Optional[float] = 6.0
    lease_timeout: float = 15.0
    max_results: int = 8
    max_attempts: int = 64

    def __post_init__(self) -> None:
        for name in ("heartbeat_interval", "heartbeat_timeout",
                     "monitor_interval", "checkpoint_read_timeout"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be > 0")
        if self.checkpoint_interval is not None and self.checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be > 0 or None")
        if self.steal_interval is not None and self.steal_interval <= 0:
            raise ValueError("steal_interval must be > 0 or None")
        if self.heartbeat_timeout <= self.heartbeat_interval:
            raise ValueError("heartbeat_timeout must exceed heartbeat_interval")
        if self.lease_timeout <= self.heartbeat_interval:
            raise ValueError("lease_timeout must exceed heartbeat_interval")
        if self.max_results < 1 or self.max_attempts < 1:
            raise ValueError("max_results and max_attempts must be >= 1")

    @property
    def checkpointing(self) -> bool:
        return self.checkpoint_interval is not None

    @property
    def stealing(self) -> bool:
        return self.steal_interval is not None


@dataclass(frozen=True)
class JobSpec:
    """What a submitter asks the grid to run."""

    job_id: int
    cpu_demand: float = 1.0
    work: float = 10.0
    constraint: Constraint = field(default_factory=Constraint)
    deps: Tuple[int, ...] = ()
    #: Absolute virtual arrival time used by workload replay
    #: (:meth:`JobScheduler.schedule_submissions`); 0 = immediately.
    submit_at: float = 0.0

    def __post_init__(self) -> None:
        if self.cpu_demand <= 0:
            raise ValueError(f"cpu_demand must be > 0, got {self.cpu_demand}")
        if self.work <= 0:
            raise ValueError(f"work must be > 0, got {self.work}")
        if self.job_id in self.deps:
            raise ValueError(f"job {self.job_id} depends on itself")
        if self.submit_at < 0:
            raise ValueError(f"submit_at must be >= 0, got {self.submit_at}")


class JobState(str, Enum):
    """Scheduler-side life cycle."""

    WAITING = "waiting"    # DAG dependencies not yet complete
    PENDING = "pending"    # ready, no worker found yet (retried)
    RUNNING = "running"    # dispatched (running or queued at a worker)
    DONE = "done"
    FAILED = "failed"


@dataclass
class JobRecord:
    """One job's state in the scheduler's table."""

    job_id: int
    origin: int
    request_id: int
    cpu_demand: float
    work: float
    constraint: Constraint
    deps_remaining: Set[int]
    state: JobState = JobState.PENDING
    worker: Optional[int] = None
    attempt: int = 0
    resume: bool = False
    last_heard: float = 0.0
    progress: float = 0.0
    submitted_at: float = 0.0
    completed_at: Optional[float] = None
    executed: float = 0.0
    reexecutions: int = 0
    placement_hops: int = 0
    placements: int = 0
    #: Consecutive matchmaking rounds that found no admitting live peer.
    no_candidate_rounds: int = 0

    @property
    def terminal(self) -> bool:
        return self.state in (JobState.DONE, JobState.FAILED)


@dataclass(frozen=True)
class JobResult:
    """Client-visible outcome of one submitted job."""

    job_id: int
    ok: bool
    worker: int = -1
    attempts: int = 1
    submitted_at: float = 0.0
    completed_at: float = 0.0

    @property
    def turnaround(self) -> float:
        """Virtual seconds from submission to the terminal report."""
        return max(0.0, self.completed_at - self.submitted_at)


def checkpoint_key(job_id: int) -> str:
    """The replicated-store key a job's progress checkpoints live under."""
    return f"ckpt/{job_id:08d}"
