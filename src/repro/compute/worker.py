"""The per-node compute agent: execution, checkpointing, work stealing.

One :class:`ComputeAgent` is attached to every node by the compute
service's per-node registry — its :meth:`ComputeAgent.handlers` mapping is
installed, torn down on departure and re-installed on revival (the same
pattern as the storage subsystem's :class:`~repro.storage.quorum.StorageAgent`),
and its timers are node-scoped periodic tasks cancelled automatically with
the node.  Every node is a potential **worker**; at most one node at a time
additionally carries the **scheduler** role
(:class:`~repro.compute.scheduler.SchedulerCore`), attached to
:attr:`ComputeAgent.scheduler`.

Execution model
---------------
A job with CPU demand ``d`` occupies ``d`` share units of the worker's
effective capacity (``cpu * (1 - cpu_load)``) while it runs, and runs at
unit rate: remaining work == remaining virtual seconds.  Heterogeneity
therefore shows up as *concurrency* — a 16-core peer runs sixteen
unit-demand jobs at once where a laptop runs one — which keeps progress
linear in time and checkpoints exact.  Jobs beyond the free capacity are
queued; queues drain on completion and are the pool sibling workers steal
from.

Fault tolerance
---------------
While a job runs the worker (a) heartbeats its progress to the scheduler
every ``heartbeat_interval`` and (b) writes a progress checkpoint into the
replicated store (a real quorum write issued from this node) every
``checkpoint_interval``.  A crashed worker simply goes silent: its timers
fire into a dead node and wipe the in-memory job state (a restarted process
has no memory).  When the scheduler re-places the job, the new worker reads
the last checkpoint back (a quorum read) and resumes from there instead of
from zero.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.compute.job import checkpoint_key
from repro.core.lookup import greedy_key_next_hop
from repro.core.messages import (
    JobAccepted,
    JobAck,
    JobComplete,
    JobDispatch,
    JobHeartbeat,
    JobLease,
    JobRejected,
    JobReport,
    JobStealGrant,
    JobStealRequest,
    JobSubmit,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.compute.scheduler import JobScheduler, SchedulerCore
    from repro.core.node import TreePNode


@dataclass
class HeldJob:
    """One job held by a worker (loading a checkpoint, running, or queued)."""

    job_id: int
    cpu_demand: float
    work: float
    attempt: int
    scheduler: int
    resume: bool
    min_cpu: float = 0.0
    min_memory_gb: float = 0.0
    min_bandwidth_mbps: float = 0.0
    state: str = "queued"  # queued | loading | running
    resume_from: float = 0.0
    start_time: float = 0.0
    last_accrual: float = 0.0
    last_lease: float = 0.0
    executed_attempt: float = 0.0
    done_event: object = None
    load_timeout: object = None

    def progress(self, now: float) -> float:
        if self.state == "running":
            return min(self.work, self.resume_from + (now - self.start_time))
        return self.resume_from


class ComputeAgent:
    """Worker half of the grid subsystem, one per node."""

    def __init__(self, node: "TreePNode", service: "JobScheduler") -> None:
        self.node = node
        self.service = service
        #: Scheduler role, populated on at most one node by the facade.
        self.scheduler: Optional["SchedulerCore"] = None
        self.running: Dict[int, HeldJob] = {}
        self.queue: List[HeldJob] = []
        # ---- ground-truth accounting the metrics scraper reads ----
        #: Virtual compute seconds actually executed on this node (accrued
        #: at heartbeat ticks and at completion; the sub-interval between a
        #: worker's last tick and its death is unaccounted — identically so
        #: for every ablation).
        self.executed_work: float = 0.0
        self.checkpoints_written: int = 0
        self.steals_done: int = 0
        self.stolen_from: int = 0
        self.leases_expired: int = 0
        self._hb_timer = None
        self._ckpt_timer = None
        self._steal_timer = None
        self._arm_steal_timer()

    def handlers(self) -> Dict[type, object]:
        """Declarative handler mapping installed by the service registry."""
        return {
            JobSubmit: self.handle_submit,
            JobAck: self._on_ack,
            JobDispatch: self._on_dispatch,
            JobAccepted: self._to_scheduler("on_accepted"),
            JobRejected: self._to_scheduler("on_rejected"),
            JobHeartbeat: self._to_scheduler("on_heartbeat"),
            JobComplete: self._to_scheduler("on_complete"),
            JobLease: self._on_lease,
            JobReport: self._on_report,
            JobStealRequest: self._on_steal_request,
            JobStealGrant: self._on_steal_grant,
        }

    def _arm_steal_timer(self) -> None:
        if not self.service.config.stealing:
            return
        if self._steal_timer is not None and self._steal_timer.running:
            return
        # Deterministic per-node phase de-synchronises probe storms.  The
        # timer is node-scoped in the registry: a departure cancels it.
        phase = (self.node.ident % 97) / 97.0
        self._steal_timer = self.service.node_timer(
            self.node.ident, self.service.config.steal_interval,
            self._steal_tick, jitter=lambda: phase,
            label=f"steal:{self.node.ident}",
        )

    def revive(self) -> None:
        """The process came back up (handlers already re-installed by the
        registry): re-arm the node-scoped probe loop."""
        self._arm_steal_timer()

    # ------------------------------------------------------------- plumbing
    def _to_scheduler(self, method: str):
        """Adapter: deliver a scheduler-bound message to the local role."""

        def handler(src: int, msg) -> None:
            if self.scheduler is not None:
                getattr(self.scheduler, method)(src, msg)

        return handler

    def _up(self) -> bool:
        return self.node.network.is_up(self.node.ident)

    def close(self) -> None:
        """Stop this agent's timers (facade shutdown)."""
        for t in (self._hb_timer, self._ckpt_timer, self._steal_timer):
            if t is not None:
                t.stop()
        self._hb_timer = self._ckpt_timer = self._steal_timer = None

    def shutdown(self) -> None:
        """Facade teardown: cancel in-flight work, then stop every timer."""
        self._crash_cleanup()
        self.close()

    # ------------------------------------------------------------ capacity
    def effective_cpu(self) -> float:
        return self.node.capacity.effective_cpu

    def free_cpu(self) -> float:
        used = sum(h.cpu_demand for h in self.running.values())
        return self.effective_cpu() - used

    # ------------------------------------------------------ submit routing
    def handle_submit(self, src: int, msg: JobSubmit) -> None:
        """Route a submission greedily towards the scheduler's overlay ID."""
        if msg.scheduler == self.node.ident and self.scheduler is not None:
            self.scheduler.on_submit(src, msg)
            return
        if msg.ttl > self.node.config.ttl_max:
            return
        nxt = greedy_key_next_hop(self.node, msg.scheduler)
        if nxt is not None:
            self.node.send(nxt, replace(msg, ttl=msg.ttl + 1))
            return
        if self.scheduler is not None:
            # We are the closest live peer to a dead scheduler's ID and
            # carry the failed-over role: adopt the submission.
            self.scheduler.on_submit(src, msg)
        # Otherwise the walk stalled at a non-scheduler (the scheduler died
        # and no failover happened yet): drop; the facade resubmits when
        # `ensure_scheduler` promotes a replacement.

    def _on_ack(self, src: int, msg: JobAck) -> None:
        self.service._on_ack(self.node.ident, msg)

    def _on_report(self, src: int, msg: JobReport) -> None:
        self.service._deposit(self.node.ident, msg)

    # ------------------------------------------------------------ dispatch
    def _on_dispatch(self, src: int, msg: JobDispatch) -> None:
        held = self.running.get(msg.job_id)
        if held is None:
            held = next((h for h in self.queue if h.job_id == msg.job_id), None)
        if held is not None:
            # Already holding this job (failover re-dispatch landed on the
            # worker still running it): adopt the new scheduler/attempt so
            # heartbeats and the completion go to the right place.
            held.scheduler = msg.scheduler
            held.attempt = msg.attempt
            held.last_lease = self.node.sim.now
            self.node.send(msg.scheduler, JobAccepted(
                msg.job_id, self.node.ident, msg.attempt,
                queued=held.state == "queued"))
            return
        if msg.cpu_demand > self.effective_cpu():
            self.node.send(msg.scheduler, JobRejected(
                msg.job_id, self.node.ident, msg.attempt))
            return
        held = HeldJob(
            job_id=msg.job_id, cpu_demand=msg.cpu_demand, work=msg.work,
            attempt=msg.attempt, scheduler=msg.scheduler, resume=msg.resume,
            min_cpu=msg.min_cpu, min_memory_gb=msg.min_memory_gb,
            min_bandwidth_mbps=msg.min_bandwidth_mbps,
            last_lease=self.node.sim.now,
        )
        queued = self.free_cpu() < held.cpu_demand
        self.node.send(msg.scheduler, JobAccepted(
            msg.job_id, self.node.ident, msg.attempt, queued=queued))
        if queued:
            self.queue.append(held)
            self._ensure_timers()
        else:
            self._start(held)

    # ----------------------------------------------------------- execution
    def _start(self, held: HeldJob) -> None:
        """Admit *held* into the running set (loading a checkpoint first
        when this is a resumed attempt and checkpointing is on)."""
        self.running[held.job_id] = held
        self._ensure_timers()
        if held.resume and self.service.config.checkpointing:
            held.state = "loading"
            me = self.node.ident
            attempt = held.attempt
            self.service.store.get_async(
                checkpoint_key(held.job_id), via=me,
                on_done=lambda res: self._on_checkpoint(held.job_id, attempt, res),
            )
            held.load_timeout = self.node.sim.schedule(
                self.service.config.checkpoint_read_timeout,
                lambda: self._checkpoint_timeout(held.job_id, attempt),
                label=f"ckpt-read:{held.job_id}",
            )
        else:
            self._begin(held, 0.0)

    def _on_checkpoint(self, job_id: int, attempt: int, result) -> None:
        held = self.running.get(job_id)
        if held is None or held.attempt != attempt or held.state != "loading":
            return
        if held.load_timeout is not None:
            held.load_timeout.cancel()  # type: ignore[attr-defined]
            held.load_timeout = None
        progress = 0.0
        if getattr(result, "found", False) and isinstance(result.value, dict):
            progress = float(result.value.get("progress", 0.0))
        self._begin(held, progress)

    def _checkpoint_timeout(self, job_id: int, attempt: int) -> None:
        held = self.running.get(job_id)
        if held is not None and held.attempt == attempt and held.state == "loading":
            self._begin(held, 0.0)  # the read stalled: restart from zero

    def _begin(self, held: HeldJob, resume_from: float) -> None:
        now = self.node.sim.now
        held.state = "running"
        held.resume_from = min(max(0.0, resume_from), held.work)
        held.start_time = now
        held.last_accrual = now
        held.executed_attempt = 0.0
        remaining = max(held.work - held.resume_from, 1e-9)
        attempt = held.attempt
        obs = self.node.obs
        if obs is not None:
            obs.job_execute_begin(held.job_id, attempt, self.node.ident, now)
        held.done_event = self.node.sim.schedule(
            remaining, lambda: self._complete(held.job_id, attempt),
            label=f"job-done:{held.job_id}",
        )

    def _accrue(self, held: HeldJob, now: float) -> None:
        if held.state != "running":
            return
        delta = max(0.0, now - held.last_accrual)
        held.last_accrual = now
        held.executed_attempt += delta
        self.executed_work += delta

    def _complete(self, job_id: int, attempt: int) -> None:
        held = self.running.get(job_id)
        if held is None or held.attempt != attempt or held.state != "running":
            return
        if not self._up():
            self._crash_cleanup()
            return
        now = self.node.sim.now
        self._accrue(held, now)
        del self.running[job_id]
        obs = self.node.obs
        if obs is not None:
            obs.job_execute_end(job_id, attempt, now, held.executed_attempt)
        self.node.send(held.scheduler, JobComplete(
            job_id, self.node.ident, attempt, executed=held.executed_attempt))
        self._drain_queue()
        if not self.running and not self.queue:
            self._stop_job_timers()

    def _drain_queue(self) -> None:
        """Start queued jobs that now fit, FIFO with skips."""
        i = 0
        while i < len(self.queue):
            held = self.queue[i]
            if held.cpu_demand <= self.free_cpu():
                self.queue.pop(i)
                self._start(held)
            else:
                i += 1

    def _crash_cleanup(self) -> None:
        """The process died: wipe in-memory job state, go silent."""
        for held in self.running.values():
            if held.done_event is not None:
                held.done_event.cancel()  # type: ignore[attr-defined]
            if held.load_timeout is not None:
                held.load_timeout.cancel()  # type: ignore[attr-defined]
        self.running.clear()
        self.queue.clear()
        self._stop_job_timers()

    # --------------------------------------------------------------- timers
    def _ensure_timers(self) -> None:
        cfg = self.service.config
        me = self.node.ident
        if self._hb_timer is None or not self._hb_timer.running:
            self._hb_timer = self.service.node_timer(
                me, cfg.heartbeat_interval, self._heartbeat_tick,
                label=f"job-hb:{me}")
        if cfg.checkpointing and (self._ckpt_timer is None or not self._ckpt_timer.running):
            self._ckpt_timer = self.service.node_timer(
                me, cfg.checkpoint_interval, self._checkpoint_tick,
                label=f"job-ckpt:{me}")

    def _stop_job_timers(self) -> None:
        for t in (self._hb_timer, self._ckpt_timer):
            if t is not None:
                t.stop()

    def _heartbeat_tick(self) -> None:
        if not self._up():
            self._crash_cleanup()
            return
        now = self.node.sim.now
        for held in list(self.running.values()):
            self._accrue(held, now)
            self.node.send(held.scheduler, JobHeartbeat(
                held.job_id, self.node.ident, held.attempt,
                progress=held.progress(now)))
        for held in self.queue:
            self.node.send(held.scheduler, JobHeartbeat(
                held.job_id, self.node.ident, held.attempt,
                progress=held.resume_from, queued=True))
        self._expire_leases(now)

    def _on_lease(self, src: int, msg: JobLease) -> None:
        held = self.running.get(msg.job_id)
        if held is None:
            held = next((h for h in self.queue if h.job_id == msg.job_id), None)
        if held is not None and held.attempt == msg.attempt:
            held.last_lease = self.node.sim.now

    def _expire_leases(self, now: float) -> None:
        """Abandon jobs whose heartbeats stopped being acknowledged.

        The scheduler died, or re-placed the job elsewhere and no longer
        answers this attempt: write a final checkpoint so the resumed
        attempt inherits our progress, then drop the run — bounding
        duplicate execution to one lease window.
        """
        timeout = self.service.config.lease_timeout
        expired = [h for h in list(self.running.values()) + self.queue
                   if now - h.last_lease > timeout]
        for held in expired:
            self.leases_expired += 1
            if held.state == "running":
                self._accrue(held, now)
                if self.service.config.checkpointing:
                    progress = held.progress(now)
                    if progress > held.resume_from:
                        self.service.store.put_async(
                            checkpoint_key(held.job_id),
                            {"progress": progress, "attempt": held.attempt},
                            via=self.node.ident,
                        )
                        self.checkpoints_written += 1
                        obs = self.node.obs
                        if obs is not None:
                            obs.job_checkpoint(held.job_id, self.node.ident,
                                               now, progress)
            if held.done_event is not None:
                held.done_event.cancel()  # type: ignore[attr-defined]
            if held.load_timeout is not None:
                held.load_timeout.cancel()  # type: ignore[attr-defined]
            self.running.pop(held.job_id, None)
            if held in self.queue:
                self.queue.remove(held)
        if expired:
            self._drain_queue()
            if not self.running and not self.queue:
                self._stop_job_timers()

    def _checkpoint_tick(self) -> None:
        if not self._up():
            self._crash_cleanup()
            return
        now = self.node.sim.now
        for held in self.running.values():
            if held.state != "running":
                continue
            progress = held.progress(now)
            if progress <= held.resume_from:
                continue  # nothing new since the resume point
            self.service.store.put_async(
                checkpoint_key(held.job_id),
                {"progress": progress, "attempt": held.attempt},
                via=self.node.ident,
            )
            self.checkpoints_written += 1
            obs = self.node.obs
            if obs is not None:
                obs.job_checkpoint(held.job_id, self.node.ident, now,
                                   progress)

    # -------------------------------------------------------- work stealing
    def _steal_tick(self) -> None:
        if not self._up():
            self._crash_cleanup()
            return
        if not self.service.has_active_jobs():
            return
        if self.queue:
            return  # we are loaded ourselves
        free = self.free_cpu()
        if free <= 0:
            return
        cap = self.node.capacity
        probe = JobStealRequest(self.node.ident, free, cap.cpu,
                                cap.memory_gb, cap.bandwidth_mbps)
        # Probe the cell: ID-adjacent siblings on the level-0 bus plus our
        # parents — the high-capacity peers placement packs first, whose
        # queues the under-loaded cell members drain.
        targets = set(self.node.table.level0)
        targets.update(self.node.table.parents.values())
        targets.discard(self.node.ident)
        for peer in targets:
            self.node.send(peer, probe)

    def _on_steal_request(self, src: int, msg: JobStealRequest) -> None:
        if not self.queue:
            return
        for i, held in enumerate(self.queue):
            if held.cpu_demand > msg.free_cpu:
                continue
            if (msg.cpu < held.min_cpu or msg.memory_gb < held.min_memory_gb
                    or msg.bandwidth_mbps < held.min_bandwidth_mbps):
                continue
            self.queue.pop(i)
            self.stolen_from += 1
            self.node.send(msg.thief, JobStealGrant(
                held.job_id, self.node.ident, held.scheduler, held.attempt,
                cpu_demand=held.cpu_demand, work=held.work,
                min_cpu=held.min_cpu, min_memory_gb=held.min_memory_gb,
                min_bandwidth_mbps=held.min_bandwidth_mbps,
                resume=held.resume))
            return

    def _on_steal_grant(self, src: int, msg: JobStealGrant) -> None:
        if msg.job_id in self.running or any(
                h.job_id == msg.job_id for h in self.queue):
            return
        held = HeldJob(
            job_id=msg.job_id, cpu_demand=msg.cpu_demand, work=msg.work,
            attempt=msg.attempt, scheduler=msg.scheduler, resume=msg.resume,
            min_cpu=msg.min_cpu, min_memory_gb=msg.min_memory_gb,
            min_bandwidth_mbps=msg.min_bandwidth_mbps,
            last_lease=self.node.sim.now,
        )
        self.steals_done += 1
        # Tell the scheduler immediately so the job is re-owned before the
        # victim's silence could be mistaken for a failure.
        self.node.send(msg.scheduler, JobHeartbeat(
            held.job_id, self.node.ident, held.attempt,
            progress=0.0, queued=self.free_cpu() < held.cpu_demand))
        if self.free_cpu() < held.cpu_demand:
            self.queue.append(held)
            self._ensure_timers()
        else:
            self._start(held)
