"""The scheduler role and the grid client facade.

:class:`SchedulerCore` is the node-resident half: it lives on exactly one
peer (attached to that node's :class:`~repro.compute.worker.ComputeAgent`)
and speaks only protocol messages — submissions arrive as routed
:class:`~repro.core.messages.JobSubmit` datagrams, placements leave as
:class:`~repro.core.messages.JobDispatch`, liveness comes back as
:class:`~repro.core.messages.JobHeartbeat`.  Matchmaking walks the
hierarchy's capability aggregates (:class:`~repro.services.discovery.ResourceDirectory`)
and picks the admitted candidate with the most *remaining* headroom under
the scheduler's own assignment book — the discovery + load-balancing combo
the paper positions TreeP under DGET for.

:class:`JobScheduler` is the synchronous-ish client facade (the compute
analogue of :class:`~repro.storage.quorum.ReplicatedStore`): it attaches a
:class:`~repro.compute.worker.ComputeAgent` to every node, injects
submissions at any live peer, collects :class:`~repro.core.messages.JobReport`
outcomes, and drives the simulator in bounded windows.  It also owns
**scheduler failover**: when churn kills the scheduler peer,
:meth:`JobScheduler.ensure_scheduler` promotes the best surviving peer and
resubmits every unfinished job from the client's own records with
``resume=True`` — workers then restart from their last quorum-stored
checkpoint, not from zero.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Mapping, Optional, Set

from repro.cluster.registry import attach_service
from repro.cluster.service import (
    Handler,
    Service,
    ServiceContext,
    warn_direct_wire,
)
from repro.compute.job import (
    ComputeConfig,
    JobRecord,
    JobResult,
    JobSpec,
    JobState,
)
from repro.compute.worker import ComputeAgent
from repro.core.messages import (
    JobAccepted,
    JobAck,
    JobComplete,
    JobDispatch,
    JobHeartbeat,
    JobLease,
    JobRejected,
    JobReport,
    JobSubmit,
)
from repro.metrics.scheduling import SchedulingStats
from repro.obs.metrics import MetricsRegistry
from repro.services.discovery import Constraint, ResourceDirectory
from repro.storage.quorum import QuorumConfig, ReplicatedStore

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.treep import TreePNetwork


class SchedulerCore:
    """Node-resident job table + matchmaker + failure detector."""

    def __init__(
        self,
        agent: ComputeAgent,
        service: "JobScheduler",
        completed: Optional[Set[int]] = None,
        failed: Optional[Set[int]] = None,
    ) -> None:
        self.agent = agent
        self.node = agent.node
        self.service = service
        self.records: Dict[int, JobRecord] = {}
        #: job id -> ids of WAITING jobs blocked on it.
        self.dependents: Dict[int, Set[int]] = {}
        #: CPU-share units this scheduler believes each worker holds.
        self.assigned: Dict[int, float] = {}
        #: Job ids known complete / failed (seeded from the client's
        #: records on failover so reconstructed DAGs neither re-run
        #: finished stages nor wait forever on failed ones).
        self.completed: Set[int] = set(completed or ())
        self.failed: Set[int] = set(failed or ())
        # Node-scoped periodic task: cancelled by the registry if the
        # scheduler host departs (failover then re-creates the core, or a
        # revival re-arms it via restart_monitor).
        self._timer = self._arm_monitor()

    def _arm_monitor(self):
        return self.service.node_timer(
            self.node.ident, self.service.config.monitor_interval,
            self._monitor_tick, label=f"sched-monitor:{self.node.ident}",
        )

    def restart_monitor(self) -> None:
        """Re-arm the monitor after the host process came back up (the
        registry cancelled the node-scoped timer at departure)."""
        if not self._timer.running:
            self._timer = self._arm_monitor()

    def stop(self) -> None:
        self._timer.stop()

    # ------------------------------------------------------------- helpers
    def _up(self, ident: int) -> bool:
        return self.node.network.is_up(ident)

    def _free(self, ident: int) -> float:
        cap = self.service.net.capacities[ident]
        return cap.effective_cpu - self.assigned.get(ident, 0.0)

    def _release(self, rec: JobRecord, worker: Optional[int] = None) -> None:
        w = worker if worker is not None else rec.worker
        if w is not None:
            self.assigned[w] = max(0.0, self.assigned.get(w, 0.0) - rec.cpu_demand)
        if worker is None:
            rec.worker = None

    # ----------------------------------------------------------- submission
    def on_submit(self, src: int, msg: JobSubmit) -> None:
        now = self.node.sim.now
        existing = self.records.get(msg.job_id)
        if existing is not None or msg.job_id in self.completed:
            self.node.send(msg.origin, JobAck(
                msg.request_id, msg.job_id, self.node.ident, hops=msg.ttl))
            return
        rec = JobRecord(
            job_id=msg.job_id, origin=msg.origin, request_id=msg.request_id,
            cpu_demand=msg.cpu_demand, work=msg.work,
            constraint=Constraint(min_cpu=msg.min_cpu,
                                  min_memory_gb=msg.min_memory_gb,
                                  min_bandwidth_mbps=msg.min_bandwidth_mbps),
            deps_remaining={d for d in msg.deps if d not in self.completed},
            resume=msg.resume, submitted_at=now, last_heard=now,
        )
        self.records[msg.job_id] = rec
        self.node.send(msg.origin, JobAck(
            msg.request_id, msg.job_id, self.node.ident, hops=msg.ttl))
        if self._any_dep_failed(msg.deps):
            self._fail(rec)  # a dead dependency can never be satisfied
        elif rec.deps_remaining:
            rec.state = JobState.WAITING
            for d in rec.deps_remaining:
                self.dependents.setdefault(d, set()).add(msg.job_id)
        else:
            self._dispatch(rec)

    def _any_dep_failed(self, deps) -> bool:
        for d in deps:
            if d in self.failed:
                return True
            drec = self.records.get(d)
            if drec is not None and drec.state is JobState.FAILED:
                return True
        return False

    # ------------------------------------------------------------ placement
    def _dispatch(self, rec: JobRecord, exclude: frozenset = frozenset()) -> None:
        if rec.attempt >= self.service.config.max_attempts:
            self._fail(rec)
            return
        # Matchmake from a random live entry point: the directory walk
        # ascends only until an ancestor's aggregate admits the constraint,
        # so placements explore different subtrees instead of always
        # draining the root's first cells (sibling work stealing then
        # smooths any local saturation).
        res = self.service.directory.query(
            rec.constraint, origin=self.service.random_origin(),
            max_results=self.service.config.max_results,
        )
        rec.placement_hops += res.hops
        rec.placements += 1
        self.service._m_placement_hops.inc(res.hops)
        self.service._m_placements.inc()
        candidates = [c for c in res.matches if self._up(c) and c not in exclude]
        if not candidates:
            rec.no_candidate_rounds += 1
            if rec.no_candidate_rounds >= self.service.config.max_attempts:
                self._fail(rec)  # persistently unplaceable constraint
            else:
                rec.state = JobState.PENDING
                rec.worker = None
            return  # otherwise the monitor sweep retries
        rec.no_candidate_rounds = 0
        with_room = [c for c in candidates if self._free(c) >= rec.cpu_demand]
        if with_room:
            worker = max(with_room, key=lambda c: (self._free(c), c))
        else:
            # Saturated: queue at the beefiest admitted peer; idle siblings
            # will steal from its queue.
            cap = self.service.net.capacities
            worker = max(candidates, key=lambda c: (cap[c].effective_cpu, c))
        rec.attempt += 1
        rec.state = JobState.RUNNING
        rec.worker = worker
        rec.last_heard = self.node.sim.now
        obs = self.node.obs
        if obs is not None:
            obs.job_place(rec.job_id, worker, self.node.sim.now, rec.attempt)
        self.assigned[worker] = self.assigned.get(worker, 0.0) + rec.cpu_demand
        c = rec.constraint
        self.node.send(worker, JobDispatch(
            rec.job_id, self.node.ident, rec.attempt,
            cpu_demand=rec.cpu_demand, work=rec.work,
            min_cpu=c.min_cpu, min_memory_gb=c.min_memory_gb,
            min_bandwidth_mbps=c.min_bandwidth_mbps,
            resume=rec.resume or rec.attempt > 1,
        ))

    def _fail(self, rec: JobRecord) -> None:
        rec.state = JobState.FAILED
        rec.completed_at = self.node.sim.now
        self.failed.add(rec.job_id)
        self._release(rec)
        self.node.send(rec.origin, JobReport(
            rec.request_id, rec.job_id, ok=False,
            worker=-1, attempts=max(1, rec.attempt)))
        # A failed dependency can never satisfy its dependents: cascade.
        for dep_id in sorted(self.dependents.pop(rec.job_id, ())):
            drec = self.records.get(dep_id)
            if drec is not None and drec.state is JobState.WAITING:
                self._fail(drec)

    # ------------------------------------------------------- worker traffic
    def on_accepted(self, src: int, msg: JobAccepted) -> None:
        rec = self.records.get(msg.job_id)
        if rec is None or rec.terminal or msg.attempt != rec.attempt:
            return
        rec.last_heard = self.node.sim.now
        rec.worker = msg.worker

    def on_rejected(self, src: int, msg: JobRejected) -> None:
        rec = self.records.get(msg.job_id)
        if rec is None or rec.terminal or msg.attempt != rec.attempt:
            return
        self._release(rec, msg.worker)
        rec.worker = None
        self._dispatch(rec, exclude=frozenset((msg.worker,)))

    def on_heartbeat(self, src: int, msg: JobHeartbeat) -> None:
        rec = self.records.get(msg.job_id)
        if rec is None or rec.terminal or msg.attempt != rec.attempt:
            return  # no lease ack: a stale attempt will fence itself off
        rec.last_heard = self.node.sim.now
        rec.progress = max(rec.progress, msg.progress)
        self.node.send(msg.worker, JobLease(msg.job_id, msg.attempt))
        if msg.worker != rec.worker:
            # Work stealing: the attempt moved to a sibling — move the
            # assignment book entry and re-own the job.
            self._release(rec, rec.worker)
            rec.worker = msg.worker
            self.assigned[msg.worker] = (
                self.assigned.get(msg.worker, 0.0) + rec.cpu_demand)
            self.service._m_steal_reassignments.inc()

    def on_complete(self, src: int, msg: JobComplete) -> None:
        rec = self.records.get(msg.job_id)
        if rec is None:
            return
        if rec.terminal:
            # A duplicate attempt (pre-failover stragglers) finished after
            # the job was already terminal: just return its share.
            self._release(rec, msg.worker)
            return
        rec.state = JobState.DONE
        rec.completed_at = self.node.sim.now
        rec.executed += msg.executed
        self._release(rec, msg.worker)
        rec.worker = msg.worker  # the peer that actually finished it
        self.completed.add(msg.job_id)
        self.node.send(rec.origin, JobReport(
            rec.request_id, rec.job_id, ok=True,
            worker=msg.worker, attempts=max(1, rec.attempt)))
        self._unblock(msg.job_id)

    def _unblock(self, done_id: int) -> None:
        for dep_id in sorted(self.dependents.pop(done_id, ())):
            drec = self.records.get(dep_id)
            if drec is None or drec.state is not JobState.WAITING:
                continue
            drec.deps_remaining.discard(done_id)
            if not drec.deps_remaining:
                self._dispatch(drec)

    # ------------------------------------------------------------- monitor
    def _monitor_tick(self) -> None:
        if self.agent.scheduler is not self or not self._up(self.node.ident):
            self._timer.stop()
            return
        now = self.node.sim.now
        timeout = self.service.config.heartbeat_timeout
        for rec in list(self.records.values()):
            if rec.state is JobState.RUNNING:
                if now - rec.last_heard > timeout:
                    # Missed heartbeats: declare the worker dead for this
                    # job and re-place, resuming from the last checkpoint.
                    old = rec.worker
                    self._release(rec)
                    rec.reexecutions += 1
                    self.service._m_reexecutions.inc()
                    rec.last_heard = now
                    self._dispatch(
                        rec,
                        exclude=frozenset(() if old is None else (old,)))
            elif rec.state is JobState.PENDING:
                self._dispatch(rec)
            elif rec.state is JobState.WAITING:
                # Failover reconstruction may have satisfied deps already —
                # or shown them unsatisfiable.
                rec.deps_remaining -= self.completed
                if self._any_dep_failed(rec.deps_remaining):
                    self._fail(rec)
                elif not rec.deps_remaining:
                    self._dispatch(rec)


@dataclass
class _ClientJob:
    """The submitter-side record of one job."""

    spec: JobSpec
    origin: int
    request_id: int
    submitted_at: float
    last_sent: float = 0.0
    acked: bool = False
    #: Whether the last send asked for checkpoint resume (kept so a lost
    #: failover resubmission is retried with the same semantics).
    resume: bool = False


class JobScheduler(Service):
    """Grid job execution client against a built TreeP network.

    >>> from repro.cluster import Cluster
    >>> grid = Cluster(seed=7).build(64).with_compute().compute
    >>> jid = grid.submit(JobSpec(job_id=1, cpu_demand=1.0, work=5.0))
    >>> grid.run_until_done(timeout=120.0)
    True
    >>> grid.results[jid].ok
    True

    As a :class:`~repro.cluster.service.Service` the facade resolves its
    dependencies at attach time: a missing storage service (checkpoints) or
    discovery service (matchmaking aggregates) is created and attached
    first, and dependencies it spawned are detached with it.  The direct
    ``JobScheduler(net, ...)`` constructor remains as a deprecation shim.
    """

    name = "compute"

    def __init__(
        self,
        net: Optional["TreePNetwork"] = None,
        store: Optional[ReplicatedStore] = None,
        config: Optional[ComputeConfig] = None,
        quorum: Optional[QuorumConfig] = None,
    ) -> None:
        super().__init__()
        self.net: Optional["TreePNetwork"] = None
        self.config = config if config is not None else ComputeConfig()
        self.store = store
        self._quorum = quorum
        self.directory: Optional[ResourceDirectory] = None
        self._rng = None
        self.agents: Dict[int, ComputeAgent] = {}
        self._rid = itertools.count(1)
        #: Every job this client has (or will have) submitted: id -> spec.
        self.expected: Dict[int, JobSpec] = {}
        self.client: Dict[int, _ClientJob] = {}
        self.results: Dict[int, JobResult] = {}
        self.scheduler_ident: Optional[int] = None
        # ---- service-wide counters surviving scheduler failover ----
        # Kept in a metrics registry (the reference migration of an ad-hoc
        # accounting path); the read-only properties below preserve the
        # pre-1.6 attribute API and exact integer semantics.
        self.metrics = MetricsRegistry()
        self._m_reexecutions = self.metrics.counter("scheduler.reexecutions")
        self._m_steal_reassignments = self.metrics.counter(
            "scheduler.steal_reassignments")
        self._m_failovers = self.metrics.counter("scheduler.failovers")
        self._m_placement_hops = self.metrics.counter(
            "scheduler.placement_hops")
        self._m_placements = self.metrics.counter("scheduler.placements")
        if net is not None:
            if net.layout is None:
                raise RuntimeError("network must be built first")
            warn_direct_wire("JobScheduler(net, ...)", "Cluster.with_compute(...)")
            attach_service(net, self)

    # Pre-1.6 counter attribute API, now registry-backed.
    @property
    def reexecutions(self) -> int:
        return int(self._m_reexecutions.value)

    @property
    def steal_reassignments(self) -> int:
        return int(self._m_steal_reassignments.value)

    @property
    def failovers(self) -> int:
        return int(self._m_failovers.value)

    @property
    def placement_hops_total(self) -> int:
        return int(self._m_placement_hops.value)

    @property
    def placements_total(self) -> int:
        return int(self._m_placements.value)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        if ctx.net.layout is None:
            raise RuntimeError("network must be built first")
        self.net = ctx.net
        self._rng = ctx.net.rng.get("compute-scheduler")
        if self.store is None:
            quorum = self._quorum
            self.store = ctx.require(
                "storage", factory=lambda: ReplicatedStore(quorum=quorum)
            )  # type: ignore[assignment]
        else:
            if not self.store.attached:
                attach_service(ctx.net, self.store)
            ctx.depends_on(self.store)
        self.directory = ctx.require(
            "discovery", factory=ResourceDirectory
        )  # type: ignore[assignment]
        obs = ctx.net.obs
        if obs is not None:
            obs.adopt_registry(self.name, self.metrics)

    def setup_node(self, node) -> None:
        self.agents[node.ident] = ComputeAgent(node, self)

    def node_handlers(self, node) -> Mapping[type, Handler]:
        return self.agents[node.ident].handlers()

    def on_ready(self, ctx: ServiceContext) -> None:
        self.activate_scheduler()

    def on_node_leave(self, ident: int) -> None:
        # Crash-stop: the registry already cancelled the node's periodic
        # tasks; wipe the in-memory worker state (a restarted process has
        # no memory) and cancel its one-shot completion events.
        agent = self.agents.get(ident)
        if agent is not None:
            agent._crash_cleanup()

    def on_node_revive(self, node) -> None:
        agent = self.agents[node.ident]
        agent.revive()
        if agent.scheduler is not None:
            # The scheduler host came back before anyone called
            # ensure_scheduler: its job table is intact (same process), but
            # the registry cancelled its monitor at departure — re-arm it
            # or heartbeat-loss detection stays dead for the rest of the run.
            agent.scheduler.restart_monitor()

    def on_detach(self) -> None:
        for agent in self.agents.values():
            if agent.scheduler is not None:
                agent.scheduler.stop()
                agent.scheduler = None
            agent.shutdown()

    def node_timer(
        self,
        ident: int,
        interval: float,
        callback: Callable[[], None],
        *,
        jitter=None,
        label: str = "",
    ):
        """Register a node-scoped periodic task through the service context
        (shared by :class:`ComputeAgent` and :class:`SchedulerCore`)."""
        return self.ctx.every(interval, callback, node=ident,
                              jitter=jitter, label=label)

    def close(self) -> None:
        """Tear the service down: registry-owned cleanup of every agent's
        handlers and timers; dependencies this facade spawned for itself
        (its own store/directory) are detached with it, an injected store
        stays attached (its lifecycle belongs to the caller)."""
        self.detach()

    def random_origin(self) -> int:
        """A seeded random live peer (matchmaking entry-point diversity)."""
        alive = self.net.alive_ids()
        if not alive:
            raise RuntimeError("no live node left")
        return alive[int(self._rng.integers(0, len(alive)))]

    # ------------------------------------------------------ scheduler role
    def _pick_scheduler(self) -> int:
        """The best surviving peer: highest level, then score, then id."""
        live = [self.net.nodes[i] for i in self.net.ids
                if self.net.network.is_up(i)]
        if not live:
            raise RuntimeError("no live node to host the scheduler")
        best = max(live, key=lambda n: (n.max_level, n.score, n.ident))
        return best.ident

    def activate_scheduler(self, ident: Optional[int] = None) -> int:
        """Install the scheduler role on *ident* (default: the best peer)."""
        ident = ident if ident is not None else self._pick_scheduler()
        if not self.net.network.is_up(ident):
            raise ValueError(f"scheduler host {ident} is down")
        old = self.scheduler_ident
        if old is not None and old in self.agents:
            core = self.agents[old].scheduler
            if core is not None:
                core.stop()
            self.agents[old].scheduler = None
        done = {jid for jid, r in self.results.items() if r.ok}
        lost = {jid for jid, r in self.results.items() if not r.ok}
        self.agents[ident].scheduler = SchedulerCore(
            self.agents[ident], self, completed=done, failed=lost)
        self.scheduler_ident = ident
        return ident

    def scheduler_core(self) -> Optional[SchedulerCore]:
        if self.scheduler_ident is None:
            return None
        agent = self.agents.get(self.scheduler_ident)
        return agent.scheduler if agent is not None else None

    def ensure_scheduler(self) -> bool:
        """Fail over the scheduler role if its host died.

        Promotes the best surviving peer and resubmits every unfinished job
        from the client's own records with ``resume=True``, so workers
        restart from their last quorum-stored checkpoint.  Returns ``True``
        when a failover happened.  Call after churn, the way the storage
        benches call :func:`~repro.core.repair.apply_failure_step`.
        """
        if (self.scheduler_ident is not None
                and self.net.network.is_up(self.scheduler_ident)
                and self.scheduler_core() is not None):
            return False
        self._harvest()
        self._m_failovers.inc()
        self.activate_scheduler()
        for job_id, spec in self.expected.items():
            if job_id in self.results or job_id not in self.client:
                continue  # finished, or not yet submitted by the workload
            self._send_submit(spec, resume=True)
        return True

    # ----------------------------------------------------------- submission
    #: Seconds an un-acknowledged submission waits before being re-sent
    #: (the submit datagram is fire-and-forget UDP; a relay dying with it
    #: in flight must not strand the job).
    SUBMIT_RETRY = 12.0

    def submit(self, spec: JobSpec, via: Optional[int] = None) -> int:
        """Submit one job through a live entry point; returns the job id."""
        if spec.job_id in self.expected:
            raise ValueError(f"job {spec.job_id} already submitted")
        self.expected[spec.job_id] = spec
        self._send_submit(spec, via=via)
        return spec.job_id

    def _send_submit(
        self, spec: JobSpec, via: Optional[int] = None, resume: bool = False
    ) -> None:
        origin = self.net.live_origin(
            via if via is not None and self.net.network.is_up(via) else None)
        rid = next(self._rid)
        self.client[spec.job_id] = _ClientJob(
            spec=spec, origin=origin.ident, request_id=rid,
            submitted_at=(self.client[spec.job_id].submitted_at
                          if spec.job_id in self.client
                          else self.net.sim.now),
            last_sent=self.net.sim.now, resume=resume,
        )
        hub = self.net.obs
        if hub is not None:
            # Keyed + idempotent: retries and failover resubmissions extend
            # the same job span.
            hub.job_begin(spec.job_id, origin.ident, self.net.sim.now)
        c = spec.constraint
        msg = JobSubmit(
            rid, origin.ident, spec.job_id, self.scheduler_ident,
            cpu_demand=spec.cpu_demand, work=spec.work,
            min_cpu=c.min_cpu, min_memory_gb=c.min_memory_gb,
            min_bandwidth_mbps=c.min_bandwidth_mbps,
            deps=spec.deps, resume=resume,
        )
        self.agents[origin.ident].handle_submit(origin.ident, msg)

    def schedule_submissions(
        self, specs: List[JobSpec], via_pool: Optional[List[int]] = None
    ) -> None:
        """Arrange each spec's submission at absolute virtual time
        ``spec.submit_at`` (arrivals already in the past fire immediately).

        All job ids are registered in :attr:`expected` immediately, so
        :meth:`run_until_done` waits for arrivals that have not fired yet.
        """
        for spec in specs:
            if spec.job_id in self.expected:
                raise ValueError(f"job {spec.job_id} already scheduled")
            self.expected[spec.job_id] = spec
        for i, spec in enumerate(specs):
            via = via_pool[i % len(via_pool)] if via_pool else None
            self.net.sim.schedule_at(
                max(self.net.sim.now, spec.submit_at),
                lambda s=spec, v=via: self._send_submit(s, via=v),
                label=f"job-submit:{spec.job_id}",
            )

    # -------------------------------------------------------------- results
    def _on_ack(self, origin: int, msg: JobAck) -> None:
        rec = self.client.get(msg.job_id)
        if rec is not None and rec.request_id == msg.request_id:
            rec.acked = True

    def _deposit(self, origin: int, msg: JobReport) -> None:
        if msg.job_id in self.results:
            return
        rec = self.client.get(msg.job_id)
        self.results[msg.job_id] = JobResult(
            job_id=msg.job_id, ok=msg.ok, worker=msg.worker,
            attempts=msg.attempts,
            submitted_at=rec.submitted_at if rec is not None else 0.0,
            completed_at=self.net.sim.now,
        )
        hub = self.net.obs
        if hub is not None:
            hub.job_end(msg.job_id, self.net.sim.now, msg.ok, msg.attempts)

    def _harvest(self) -> None:
        """Fold terminal records the origin never heard about into results.

        The driver-side converged view (mirroring the storage subsystem's
        split): a :class:`~repro.core.messages.JobReport` to an origin that
        died after submitting would otherwise strand a finished job.
        """
        core = self.scheduler_core()
        if core is None:
            return
        hub = self.net.obs
        for rec in core.records.values():
            if rec.terminal and rec.job_id not in self.results:
                crec = self.client.get(rec.job_id)
                self.results[rec.job_id] = JobResult(
                    job_id=rec.job_id, ok=rec.state is JobState.DONE,
                    worker=rec.worker if rec.worker is not None else -1,
                    attempts=max(1, rec.attempt),
                    submitted_at=(crec.submitted_at if crec is not None
                                  else rec.submitted_at),
                    completed_at=(rec.completed_at
                                  if rec.completed_at is not None
                                  else self.net.sim.now),
                )
                if hub is not None:
                    hub.job_end(rec.job_id, self.net.sim.now,
                                rec.state is JobState.DONE,
                                max(1, rec.attempt))

    def pending_jobs(self) -> List[int]:
        return [jid for jid in self.expected if jid not in self.results]

    def has_active_jobs(self) -> bool:
        return len(self.results) < len(self.expected)

    def _retry_unacked(self) -> None:
        """Re-send submissions the scheduler never acknowledged.

        The submit datagram can die with a relay (UDP semantics); the
        scheduler handles re-submissions idempotently, so retrying is
        always safe."""
        now = self.net.sim.now
        for job_id, crec in list(self.client.items()):
            if job_id in self.results or crec.acked:
                continue
            if now - crec.last_sent > self.SUBMIT_RETRY:
                self._send_submit(crec.spec, resume=crec.resume)

    def run_until_done(self, timeout: float, step: float = 10.0) -> bool:
        """Run the sim in *step* windows until every expected job has a
        terminal result or *timeout* virtual seconds pass."""
        sim = self.net.sim
        deadline = sim.now + timeout
        while True:
            self._harvest()
            if not self.pending_jobs():
                return True
            if sim.now >= deadline:
                return False
            self._retry_unacked()
            sim.run(until=min(deadline, sim.now + step))

    # -------------------------------------------------------------- metrics
    def stats(self) -> SchedulingStats:
        """Scrape the subsystem's ground-truth scheduling metrics."""
        self._harvest()
        ok = [r for r in self.results.values() if r.ok]
        useful = sum(self.expected[r.job_id].work for r in ok
                     if r.job_id in self.expected)
        executed = sum(a.executed_work for a in self.agents.values())
        first_submit = min((c.submitted_at for c in self.client.values()),
                           default=0.0)
        last_done = max((r.completed_at for r in ok), default=first_submit)
        return SchedulingStats(
            submitted=len(self.expected),
            completed=len(ok),
            failed=sum(1 for r in self.results.values() if not r.ok),
            makespan=max(0.0, last_done - first_submit),
            useful_work=useful,
            executed_work=executed,
            reexecutions=self.reexecutions,
            checkpoints_written=sum(a.checkpoints_written
                                    for a in self.agents.values()),
            steals=sum(a.steals_done for a in self.agents.values()),
            steal_reassignments=self.steal_reassignments,
            leases_expired=sum(a.leases_expired for a in self.agents.values()),
            placement_hops=self.placement_hops_total,
            placements=self.placements_total,
            failovers=self.failovers,
            mean_turnaround=(sum(r.turnaround for r in ok) / len(ok))
            if ok else 0.0,
        )
