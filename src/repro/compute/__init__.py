"""Grid job execution on the TreeP overlay (the DGET headline use case).

The paper builds TreeP as the substrate of the DGET grid middleware so the
system can "take advantage of the different peers' characteristics" and
"rapidly adapt to ... load balancing, failures, network traffic" (§I, §V);
this package is the subsystem that actually *executes* work on that
substrate:

* :mod:`repro.compute.job` — the job model: :class:`JobSpec` (demand,
  work, constraint, DAG deps), scheduler-side :class:`JobRecord`,
  client-side :class:`JobResult`, and :class:`ComputeConfig`.
* :mod:`repro.compute.worker` — :class:`ComputeAgent`, the per-node
  worker: capacity-bounded execution, progress heartbeats, periodic
  quorum-stored checkpoints, and level-0 sibling work stealing.
* :mod:`repro.compute.scheduler` — :class:`SchedulerCore`, the
  node-resident scheduler (aggregate-walking matchmaker, heartbeat
  failure detector, checkpointed re-execution, DAG ordering), and
  :class:`JobScheduler`, the client facade with scheduler failover.

Everything is message-level protocol traffic (``Job*`` datagrams through
the simulated fabric); checkpoints ride the replicated storage subsystem's
quorum path, so a worker killed mid-job is re-placed and **resumes** from
its last checkpoint instead of restarting.

Layer contract: this package *owns job execution* — matchmaking,
dispatch, heartbeat failure detection, checkpointed re-execution, DAG
ordering and scheduler failover.  It sits at the top of the subsystem
stack and may import ``repro.cluster`` (the ``Service`` protocol),
``repro.storage`` (checkpoints ride the quorum path),
``repro.services`` (discovery aggregates for matchmaking),
``repro.obs`` (the scheduler's metrics registry), ``repro.core``,
``repro.sim`` and ``repro.metrics``; nothing in ``src/repro`` imports
compute except the package root ``repro``, the ``repro.workloads`` job
generators, the ``repro.cluster`` facade (lazily, inside
``with_compute``) and the measurement layer ``repro.bench``.  Checked by
``python -m repro.lint`` (RPR201/RPR202) against
``repro/lint/layers.toml``.  See ``docs/architecture.md``.
"""

from repro.compute.job import (
    ComputeConfig,
    JobRecord,
    JobResult,
    JobSpec,
    JobState,
    checkpoint_key,
)
from repro.compute.scheduler import JobScheduler, SchedulerCore
from repro.compute.worker import ComputeAgent, HeldJob

__all__ = [
    "ComputeAgent",
    "ComputeConfig",
    "HeldJob",
    "JobRecord",
    "JobResult",
    "JobScheduler",
    "JobSpec",
    "JobState",
    "SchedulerCore",
    "checkpoint_key",
]
