"""The `Service` lifecycle protocol: one contract for every overlay service.

Before this layer existed each subsystem invented its own wiring —
:class:`~repro.services.dht.TreePDht`, :class:`~repro.storage.quorum.ReplicatedStore`
and :class:`~repro.compute.scheduler.JobScheduler` all took a network and
independently spliced handlers, node hooks and periodic timers onto nodes,
leaving the caller to compose them in a fragile, order-sensitive way.  A
:class:`Service` instead *declares* what it needs and a
:class:`ServiceContext` (handed to it at attach time) does the wiring with
full bookkeeping, so everything a service installs can be torn down again —
per node when a peer departs, or wholesale when the service is detached.

Lifecycle
---------
::

    attach            on_attach(ctx)          service-wide setup
      └ per node      setup_node(node)        per-node state (stores, agents)
                      node_handlers(node)     declarative handler mapping
      └ finally       on_ready(ctx)           runs once all nodes are wired
    churn             on_node_join(node)      exactly once per protocol join
                      on_node_leave(ident)    exactly once per crash-stop
                      on_node_revive(node)    exactly once per revival
    detach            on_detach()             after registry-owned cleanup

The registry (see :mod:`repro.cluster.registry`) records every handler and
periodic task per ``(service, node)``; departures cancel the node's tasks
and unregister its handlers, revivals re-install them, and
:meth:`Service.detach` sweeps everything — the handler/hook leak the old
facades had is structurally impossible.

Construction goes through :class:`~repro.cluster.cluster.Cluster`
(``Cluster(...).build(n).with_storage(...)``); the old direct-wire
constructors (``ReplicatedStore(net, ...)``) still work as thin deprecation
shims that attach through the same registry.
"""

from __future__ import annotations

import warnings
from typing import TYPE_CHECKING, Any, Callable, Mapping, Optional

from repro.sim.engine import PeriodicTimer, TimerGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.registry import ClusterState
    from repro.core.config import TreePConfig
    from repro.core.node import TreePNode
    from repro.core.treep import TreePNetwork
    from repro.sim.engine import Simulator

__all__ = ["Service", "ServiceContext", "ServiceError", "warn_direct_wire"]

#: Handler signature services declare: ``handler(src, payload)``.
Handler = Callable[[int, Any], None]


class ServiceError(RuntimeError):
    """Misuse of the service lifecycle (double attach, missing dependency…)."""


def warn_direct_wire(old: str, new: str) -> None:
    """Deprecation warning for the pre-1.3 direct-wire constructors."""
    warnings.warn(
        f"{old} is deprecated since 1.3.0: construct services through the "
        f"Cluster facade instead ({new}); the direct constructor keeps "
        "working as a shim that attaches through the service registry.",
        DeprecationWarning,
        stacklevel=3,
    )


class Service:
    """Base class of the service lifecycle protocol.

    Subclasses set :attr:`name` (the registry key — attaching a second
    service with the same name cleanly replaces the first) and override any
    of the lifecycle hooks below.  All wiring goes through the
    :class:`ServiceContext` received in :meth:`on_attach`, never directly
    through ``node.register_handler`` / ``sim.every`` — that is what makes
    teardown automatic.
    """

    #: Registry key; subclasses must override.
    name: str = ""

    def __init__(self) -> None:
        self._ctx: Optional["ServiceContext"] = None

    # ------------------------------------------------------------ lifecycle
    @property
    def attached(self) -> bool:
        return self._ctx is not None

    @property
    def ctx(self) -> "ServiceContext":
        if self._ctx is None:
            raise ServiceError(
                f"service {self.name!r} is not attached to a network"
            )
        return self._ctx

    def detach(self) -> None:
        """Tear this service down: unregister every handler it installed,
        cancel every periodic task it registered, drop its churn callbacks.
        Idempotent (matching the old facades' ``close``)."""
        if self._ctx is not None:
            self._ctx.state.detach(self)

    # --------------------------------------------------- overridable hooks
    def on_attach(self, ctx: "ServiceContext") -> None:
        """Service-wide setup; runs before any per-node wiring.  Resolve
        cross-service dependencies here via :meth:`ServiceContext.require`."""

    def on_ready(self, ctx: "ServiceContext") -> None:
        """Runs once every existing node has been through :meth:`setup_node`
        (role election, initial aggregate computation, …)."""

    def on_detach(self) -> None:
        """Runs after the registry removed this service's handlers/tasks."""

    def setup_node(self, node: "TreePNode") -> None:
        """Create per-node state (stores, agents).  Called for every node
        that exists at attach time and for every node created afterwards."""

    def node_handlers(self, node: "TreePNode") -> Mapping[type, Handler]:
        """Declarative typed-message handler registration: the mapping is
        installed on *node* through the registry (after :meth:`setup_node`),
        re-installed on revival, and unregistered on departure/detach."""
        return {}

    def on_node_join(self, node: "TreePNode") -> None:
        """Churn callback: a brand-new peer joined (post :meth:`setup_node`)."""

    def on_node_leave(self, ident: int) -> None:
        """Churn callback: a live peer crash-stopped.  The registry has
        already cancelled the node's periodic tasks and unregistered this
        service's handlers from it."""

    def on_node_revive(self, node: "TreePNode") -> None:
        """Churn callback: a crash-stopped peer came back (same process,
        per-node state intact).  Handlers are already re-installed; re-arm
        any node-scoped periodic tasks here."""


class ServiceContext:
    """What a service sees of the network: mediated, bookkept wiring.

    One context per attached service; created by
    :meth:`~repro.cluster.registry.ClusterState.attach`.
    """

    def __init__(self, net: "TreePNetwork", service: Service, state: "ClusterState") -> None:
        self.net = net
        self.service = service
        self.state = state
        #: Service-wide periodic tasks (node-scoped ones live in the
        #: per-node registries); cancelled wholesale at detach.
        self.timers = TimerGroup()
        #: Services spawned by :meth:`require` factories on behalf of this
        #: service; detached with it (dependency ownership).
        self.spawned: list[Service] = []

    # ------------------------------------------------------------ shortcuts
    @property
    def sim(self) -> "Simulator":
        return self.net.sim

    @property
    def config(self) -> "TreePConfig":
        return self.net.config

    # ---------------------------------------------------------- composition
    def require(
        self,
        name: str,
        factory: Optional[Callable[[], Service]] = None,
    ) -> Service:
        """Resolve the attached service *name* (cross-service dependency).

        With a *factory*, a missing dependency is constructed, attached to
        the same network, recorded as owned by this service (detached with
        it), and returned; without one, a missing dependency raises.
        """
        svc = self.state.services.get(name)
        if svc is None:
            if factory is None:
                raise ServiceError(
                    f"service {self.service.name!r} requires {name!r}, which "
                    f"is not attached; add it to the Cluster first"
                )
            svc = factory()
            self.state.attach(svc)
            self.spawned.append(svc)
        # Record the edge either way: replacing a service some attached
        # dependent still points at is refused by the registry.
        self.state.add_dependency(self.service.name, name)
        return svc

    def depends_on(self, service: Service) -> None:
        """Record a dependency edge on an *injected* service (one handed to
        the constructor rather than resolved via :meth:`require`), so the
        registry refuses to replace it out from under this service."""
        self.state.add_dependency(self.service.name, service.name)

    # -------------------------------------------------------- periodic tasks
    def every(
        self,
        interval: float,
        callback: Callable[[], None],
        *,
        node: Optional[int] = None,
        jitter: Optional[Callable[[], float]] = None,
        label: str = "",
    ) -> PeriodicTimer:
        """Register a periodic task with automatic cancellation.

        Service-scoped by default (cancelled at detach); with ``node=ident``
        the task is filed in that node's registry and additionally cancelled
        when the node departs.
        """
        timer = self.net.sim.every(
            interval, callback, jitter=jitter,
            label=label or f"{self.service.name}-task",
        )
        if node is None:
            self.timers.add(timer)
        else:
            self.state.registry_for_ident(node).add_timer(self.service.name, timer)
        return timer

    # ------------------------------------------------- registry-driven wiring
    def install_node(self, node: "TreePNode") -> None:
        """Per-node setup + declarative handler installation (attach/join)."""
        self.service.setup_node(node)
        mapping = dict(self.service.node_handlers(node))
        if mapping:
            self.state.registry_for(node).install_handlers(self.service.name, mapping)

    def reinstall_handlers(self, node: "TreePNode") -> None:
        """Re-register this service's handlers on a revived node."""
        mapping = dict(self.service.node_handlers(node))
        if mapping:
            self.state.registry_for(node).install_handlers(self.service.name, mapping)

    # --------------------------------------------------------- churn relays
    def _on_join(self, node: "TreePNode") -> None:
        self.install_node(node)
        self.service.on_node_join(node)

    def _on_leave(self, ident: int) -> None:
        registry = self.state.registries.get(ident)
        if registry is not None:
            registry.teardown_service(self.service.name)
        self.service.on_node_leave(ident)

    def _on_revive(self, ident: int) -> None:
        node = self.net.nodes.get(ident)
        if node is not None:
            self.reinstall_handlers(node)
            self.service.on_node_revive(node)
