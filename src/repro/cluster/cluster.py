"""`Cluster` — the unified entry point to a TreeP deployment.

One object owns what used to be five hand-composed facades: the overlay
build, service construction order, cross-service dependencies
(compute → storage → overlay) and clean shutdown::

    from repro import Cluster, ComputeConfig, JobSpec, QuorumConfig

    cluster = (
        Cluster(seed=42)
        .build(n=128)
        .with_storage(QuorumConfig(n=3, w=2, r=2), anti_entropy=10.0)
        .with_compute(ComputeConfig(checkpoint_interval=8.0))
    )
    cluster.storage.put("job/42", {"state": "queued"})
    cluster.compute.submit(JobSpec(job_id=1, cpu_demand=2.0, work=60.0))
    cluster.compute.run_until_done(timeout=300.0)
    cluster.shutdown()

``with_compute`` pulls in storage and discovery automatically when absent;
``shutdown`` (or the context-manager exit) detaches everything in reverse
dependency order through the service registry, so no handler or periodic
task outlives the facade.  New subsystems plug in through
:meth:`Cluster.add_service` with any :class:`~repro.cluster.service.Service`
implementation — no core changes needed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Optional, Sequence, Tuple

from repro.cluster.registry import ClusterState
from repro.cluster.service import Service, ServiceError
from repro.core.config import TreePConfig
from repro.core.treep import TreePNetwork
from repro.sim.trace import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover
    from repro.compute.job import ComputeConfig
    from repro.compute.scheduler import JobScheduler
    from repro.obs.hub import ObsHub
    from repro.obs.service import Observability
    from repro.core.capacity import NodeCapacity
    from repro.core.hierarchy import HierarchyLayout
    from repro.core.ids import AssignStrategy
    from repro.core.node import TreePNode
    from repro.services.dht import TreePDht
    from repro.services.discovery import ResourceDirectory
    from repro.services.loadbalance import LoadBalancer
    from repro.sim.latency import LatencyModel
    from repro.storage.antientropy import AntiEntropy
    from repro.storage.quorum import QuorumConfig, ReplicatedStore

__all__ = ["Cluster"]


class Cluster:
    """Fluent facade over a :class:`~repro.core.treep.TreePNetwork` plus its
    attached services.

    Parameters mirror ``TreePNetwork``; an existing network can be wrapped
    with ``Cluster(net=existing)`` (the service plane is shared either way,
    so facade styles compose instead of colliding).
    """

    def __init__(
        self,
        config: Optional[TreePConfig] = None,
        seed: int = 0,
        *,
        latency: Optional["LatencyModel"] = None,
        loss: float = 0.0,
        tracer: Tracer = NULL_TRACER,
        net: Optional[TreePNetwork] = None,
    ) -> None:
        if net is not None:
            if (config is not None or seed != 0 or latency is not None
                    or loss != 0.0 or tracer is not NULL_TRACER):
                raise ValueError(
                    "Cluster(net=...) wraps an existing network: config, "
                    "seed, latency, loss and tracer are that network's own "
                    "and cannot be overridden here"
                )
            self.net = net
        else:
            self.net = TreePNetwork(
                config=config, seed=seed, latency=latency, loss=loss, tracer=tracer
            )

    # ------------------------------------------------------------- building
    @property
    def built(self) -> bool:
        return bool(self.net.nodes)

    def build(
        self,
        n: int,
        strategy: "AssignStrategy" = "random",
        capacities: Optional[Sequence["NodeCapacity"]] = None,
    ) -> "Cluster":
        """Create *n* peers in steady state; returns ``self`` (fluent)."""
        self.net.build(n, strategy=strategy, capacities=capacities)
        return self

    def build_from(
        self, ids: Sequence[int], capacities: Dict[int, "NodeCapacity"]
    ) -> "Cluster":
        """Build from explicit IDs/capacities (deterministic tests)."""
        self.net.build_from(ids, capacities)
        return self

    @property
    def layout(self) -> "HierarchyLayout":
        if self.net.layout is None:
            raise ServiceError("cluster not built: call build(n) first")
        return self.net.layout

    def _require_built(self, what: str) -> None:
        if not self.built:
            raise ServiceError(f"{what} needs a built overlay: call build(n) first")

    # ------------------------------------------------------------- services
    @property
    def state(self) -> ClusterState:
        """The network's service plane (shared with legacy-attached facades)."""
        return ClusterState.of(self.net)

    @property
    def services(self) -> Tuple[Service, ...]:
        """Attached services in attach (dependency) order."""
        state = self.state
        return tuple(state.services[name] for name in state.order)

    def service(self, name: str) -> Optional[Service]:
        return self.state.services.get(name)

    def add_service(self, service: Service) -> "Cluster":
        """Attach any :class:`Service` implementation (the generic plug-in
        point new subsystems use); returns ``self`` (fluent)."""
        self.state.attach(service)
        return self

    def _get(self, name: str, hint: str) -> Service:
        svc = self.state.services.get(name)
        if svc is None:
            raise ServiceError(f"no {name!r} service attached: call {hint} first")
        return svc

    # ------------------------------------------------- the five subsystems
    def with_dht(self, replicas: int = 2) -> "Cluster":
        """Attach the simple single-coordinator DHT."""
        from repro.services.dht import TreePDht

        self._require_built("with_dht")
        self.state.attach(TreePDht(replicas=replicas))
        return self

    def with_discovery(self) -> "Cluster":
        """Attach hierarchy-walking grid resource discovery."""
        from repro.services.discovery import ResourceDirectory

        self._require_built("with_discovery")
        self.state.attach(ResourceDirectory())
        return self

    def with_loadbalance(self) -> "Cluster":
        """Attach capacity-aware hierarchical load balancing."""
        from repro.services.loadbalance import LoadBalancer

        self._require_built("with_loadbalance")
        self.state.attach(LoadBalancer())
        return self

    def with_storage(
        self,
        quorum: Optional["QuorumConfig"] = None,
        placement: str = "successor",
        anti_entropy: Optional[float] = None,
    ) -> "Cluster":
        """Attach the replicated quorum store.

        ``anti_entropy=interval`` additionally attaches the re-replication
        service (drive it with ``cluster.anti_entropy.converge()`` after
        churn, or arm the periodic sweep with ``.start()``).
        """
        from repro.storage.antientropy import AntiEntropy
        from repro.storage.quorum import ReplicatedStore

        self._require_built("with_storage")
        self.state.attach(ReplicatedStore(quorum=quorum, placement=placement))
        if anti_entropy is not None:
            self.state.attach(AntiEntropy(interval=anti_entropy))
        return self

    def with_compute(
        self,
        config: Optional["ComputeConfig"] = None,
        quorum: Optional["QuorumConfig"] = None,
    ) -> "Cluster":
        """Attach grid job execution.

        Owns the dependency chain: a missing storage service (checkpoints)
        or discovery service (matchmaking aggregates) is created and
        attached first; *quorum* only shapes a storage service created here.
        """
        from repro.compute.scheduler import JobScheduler

        self._require_built("with_compute")
        self.state.attach(JobScheduler(config=config, quorum=quorum))
        return self

    def with_observability(
        self,
        categories: Optional[Iterable[str]] = None,
        hub: Optional["ObsHub"] = None,
        slo=None,
    ) -> "Cluster":
        """Attach the observability layer (span tracing + metrics).

        Records into its own :class:`~repro.obs.hub.ObsHub` (or *hub* when
        given); read it back via :attr:`obs`, or write a trace store with
        ``cluster.observability.write(path)``.  *slo* (a spec path or
        :class:`~repro.obs.slo.SloSpec`) additionally monitors service
        objectives live during the run.  Instrumentation draws no
        randomness and schedules no events, so enabling it never changes a
        seeded run's outcome.
        """
        from repro.obs.service import Observability

        self._require_built("with_observability")
        self.state.attach(Observability(categories=categories, hub=hub,
                                        slo=slo))
        return self

    # ------------------------------------------------------ typed accessors
    @property
    def dht(self) -> "TreePDht":
        return self._get("dht", "with_dht()")  # type: ignore[return-value]

    @property
    def directory(self) -> "ResourceDirectory":
        return self._get("discovery", "with_discovery() or with_compute()")  # type: ignore[return-value]

    @property
    def balancer(self) -> "LoadBalancer":
        return self._get("loadbalance", "with_loadbalance()")  # type: ignore[return-value]

    @property
    def storage(self) -> "ReplicatedStore":
        return self._get("storage", "with_storage()")  # type: ignore[return-value]

    @property
    def anti_entropy(self) -> "AntiEntropy":
        return self._get("anti-entropy", "with_storage(anti_entropy=...)")  # type: ignore[return-value]

    @property
    def compute(self) -> "JobScheduler":
        return self._get("compute", "with_compute()")  # type: ignore[return-value]

    @property
    def observability(self) -> "Observability":
        return self._get("observability", "with_observability()")  # type: ignore[return-value]

    @property
    def obs(self) -> "ObsHub":
        """The attached observability hub (spans, events, metrics)."""
        return self.observability.hub

    # ------------------------------------------------------- overlay driving
    @property
    def sim(self):
        return self.net.sim

    @property
    def config(self) -> TreePConfig:
        return self.net.config

    @property
    def ids(self):
        return self.net.ids

    def alive_ids(self):
        return self.net.alive_ids()

    def run_for(self, duration: float) -> None:
        self.net.sim.run_for(duration)

    def lookup_sync(self, origin: int, target: int, algo="G"):
        """Resolve one lookup, stepping the sim only until it completes.

        Unlike ``TreePNetwork.lookup_sync`` (which drains the event queue
        and therefore never returns while a service's periodic timers keep
        re-arming), this stops at the lookup's own resolution or timeout —
        safe with any combination of services attached.
        """
        pend = self.net.lookup(origin, target, algo)
        sim = self.net.sim
        # The lookup's timeout event guarantees a result lands; stepping
        # can only stop early if the queue empties (no services attached).
        while pend.result is None and sim.step():
            pass
        assert pend.result is not None, "lookup left unresolved by an empty queue"
        return pend.result

    def join_node(
        self,
        ident: int,
        capacity: Optional["NodeCapacity"] = None,
        via: Optional[int] = None,
    ) -> "TreePNode":
        """Protocol-driven join; every service's ``on_node_join`` fires."""
        return self.net.join_new_node(ident, capacity=capacity, via=via)

    def fail_nodes(self, idents: Iterable[int], heal: bool = False) -> None:
        """Crash-stop peers; churn callbacks fire through the registry.

        ``heal=True`` additionally runs one converged table-repair pass
        (:func:`~repro.core.repair.apply_failure_step`), the usual
        between-bursts step of the churn drivers.
        """
        idents = list(idents)
        self.net.fail_nodes(idents)
        if heal:
            from repro.core.repair import FULL_POLICY, apply_failure_step

            apply_failure_step(self.net, idents, FULL_POLICY)

    def revive_nodes(self, idents: Iterable[int]) -> None:
        self.net.revive_nodes(idents)

    def start_maintenance(self) -> None:
        self.net.start_maintenance()

    def stop_maintenance(self) -> None:
        self.net.stop_maintenance()

    # -------------------------------------------------------------- shutdown
    def shutdown(self) -> None:
        """Detach every service (reverse dependency order) and stop the
        overlay's keep-alive loops.  Idempotent."""
        self.state.detach_all()
        self.net.stop_maintenance()

    def __enter__(self) -> "Cluster":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(s.name for s in self.services) or "no services"
        return f"Cluster(n={len(self.net.nodes)}, {names})"
