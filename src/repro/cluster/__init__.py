"""The unified service layer: `Cluster` facade + `Service` lifecycle protocol.

* :class:`~repro.cluster.cluster.Cluster` — one fluent entry point building
  the overlay and composing services with owned construction order,
  cross-service dependencies and clean shutdown.
* :class:`~repro.cluster.service.Service` — the lifecycle contract every
  subsystem (dht, discovery, loadbalance, storage, anti-entropy, compute)
  implements: attach/detach, ``on_node_join`` / ``on_node_leave`` /
  ``on_node_revive`` churn callbacks, declarative typed-message handler
  registration, and periodic tasks with automatic cancellation.
* :class:`~repro.cluster.registry.ServiceRegistry` — the per-node ledger
  that owns cleanup, making handler/timer leaks structurally impossible.

Layer contract: this package *owns composition* — service construction
order, cross-service dependency wiring, per-node handler/timer ownership,
and exactly-once churn callback dispatch.  At module scope it may import
only ``repro.core`` (the overlay it composes over) and ``repro.sim``
(timers, liveness hooks); the ``with_*`` factories lazily import
``repro.services``, ``repro.storage``, ``repro.compute`` and
``repro.obs`` at composition time, so at import time subsystems depend on
this layer's protocol and not the reverse.  Checked by ``python -m
repro.lint`` (RPR201/RPR202) against ``repro/lint/layers.toml``.  See
``docs/architecture.md``.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.registry import ClusterState, ServiceRegistry, attach_service
from repro.cluster.service import Service, ServiceContext, ServiceError

__all__ = [
    "Cluster",
    "ClusterState",
    "Service",
    "ServiceContext",
    "ServiceError",
    "ServiceRegistry",
    "attach_service",
]
