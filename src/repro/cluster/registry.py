"""Per-node `ServiceRegistry` and the per-network service plane.

The registry is the ledger behind the :class:`~repro.cluster.service.Service`
protocol: for every node it records, per service, which typed-message
handlers were installed and which periodic tasks were registered, so cleanup
is owned by the registry instead of being every facade's (forgettable)
responsibility:

* node departs  → its tasks are cancelled, its handlers unregistered;
* node revives  → handlers are re-installed (state stays: crash-stop keeps
  the per-node stores, modelling a process restart over intact disk);
* service detaches → both are swept from every node, plus the service-wide
  tasks and churn hooks.

:class:`ClusterState` is the one-per-network container (created lazily and
cached on the :class:`~repro.core.treep.TreePNetwork`) holding the attached
services by name and the per-node registries.  Both the new
:class:`~repro.cluster.cluster.Cluster` facade and the legacy direct-wire
constructors attach through it, so the two styles compose on one registry.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Tuple

from repro.cluster.service import Handler, Service, ServiceContext, ServiceError
from repro.sim.engine import PeriodicTimer, TimerGroup

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode
    from repro.core.treep import TreePNetwork

__all__ = ["ServiceRegistry", "ClusterState", "attach_service"]


class ServiceRegistry:
    """One node's ledger: what each service installed on it."""

    def __init__(self, node: "TreePNode") -> None:
        self.node = node
        #: service name -> exact handler registrations it owns on this node.
        self._handlers: Dict[str, Dict[type, Handler]] = {}
        #: service name -> node-scoped periodic tasks.
        self._timers: Dict[str, TimerGroup] = {}

    # ------------------------------------------------------------- handlers
    def install_handlers(self, service: str, mapping: Mapping[type, Handler]) -> None:
        """Register *mapping* on the node (``replace=True`` semantics: a
        service re-attaching, or a same-name successor, takes over).

        A message type already claimed by a *different* service on this
        node is refused — silently stealing it would leave the first
        service's ledger stale and its traffic black-holed at its detach.
        """
        for msg_type in mapping:
            for owner, owned in self._handlers.items():
                if owner != service and msg_type in owned:
                    raise ServiceError(
                        f"service {service!r} claims {msg_type.__name__} on "
                        f"node {self.node.ident}, already handled by "
                        f"service {owner!r}"
                    )
        for msg_type, handler in mapping.items():
            self.node.register_handler(msg_type, handler, replace=True)
        self._handlers[service] = dict(mapping)

    def uninstall_handlers(self, service: str) -> None:
        """Unregister exactly the handlers *service* still owns."""
        for msg_type, handler in self._handlers.pop(service, {}).items():
            self.node.unregister_handler(msg_type, handler)

    def handler_types(self, service: str) -> Tuple[type, ...]:
        return tuple(self._handlers.get(service, ()))

    # --------------------------------------------------------------- timers
    def add_timer(self, service: str, timer: PeriodicTimer) -> PeriodicTimer:
        return self._timers.setdefault(service, TimerGroup()).add(timer)

    def active_timers(self, service: str) -> int:
        group = self._timers.get(service)
        return len(group) if group is not None else 0

    def stop_timers(self, service: str) -> int:
        group = self._timers.pop(service, None)
        return group.stop_all() if group is not None else 0

    # -------------------------------------------------------------- teardown
    def teardown_service(self, service: str) -> None:
        """Registry-owned cleanup for one service on this node."""
        self.stop_timers(service)
        self.uninstall_handlers(service)

    def services(self) -> Tuple[str, ...]:
        return tuple(dict.fromkeys([*self._handlers, *self._timers]))


class ClusterState:
    """Per-network service plane: attached services + per-node registries."""

    def __init__(self, net: "TreePNetwork") -> None:
        self.net = net
        self.services: Dict[str, Service] = {}
        #: Attach order (detach-all runs in reverse: compute before storage).
        self.order: List[str] = []
        self.registries: Dict[int, ServiceRegistry] = {}
        #: Dependency edges: name -> names of attached services that hold a
        #: reference to it (recorded by ``ctx.require``/``ctx.depends_on``).
        #: Replacing a service with live dependents is refused — they would
        #: keep driving the detached instance, whose handlers are gone.
        self.dependents: Dict[str, set] = {}

    def add_dependency(self, dependent: str, dependency: str) -> None:
        if dependent != dependency:
            self.dependents.setdefault(dependency, set()).add(dependent)

    @classmethod
    def of(cls, net: "TreePNetwork") -> "ClusterState":
        """The network's service plane, created on first use."""
        state = getattr(net, "_cluster_state", None)
        if state is None:
            state = cls(net)
            net._cluster_state = state
        return state

    # ------------------------------------------------------------ registries
    def registry_for(self, node: "TreePNode") -> ServiceRegistry:
        reg = self.registries.get(node.ident)
        if reg is None or reg.node is not node:
            # First sight of this node object — including an id reused by a
            # brand-new process, which must start with a clean ledger.
            reg = ServiceRegistry(node)
            self.registries[node.ident] = reg
        return reg

    def registry_for_ident(self, ident: int) -> ServiceRegistry:
        node = self.net.nodes.get(ident)
        if node is None:
            raise ServiceError(f"no node {ident} in the network")
        return self.registry_for(node)

    # --------------------------------------------------------------- attach
    def attach(self, service: Service) -> Service:
        """Attach *service*: dependency setup, per-node wiring, churn hooks.

        A previously attached service with the same :attr:`Service.name` is
        detached first (clean replacement — the registry equivalent of the
        old ``register_handler(..., replace=True)``).
        """
        if not service.name:
            raise ServiceError(f"{type(service).__name__} has no service name")
        if service.attached:
            if self.services.get(service.name) is service:
                return service  # already attached here: no-op
            raise ServiceError(
                f"service {service.name!r} is already attached to another network"
            )
        predecessor = self.services.get(service.name)
        if predecessor is not None:
            holders = sorted(
                d for d in self.dependents.get(service.name, ())
                if d != service.name and d in self.services
            )
            if holders:
                raise ServiceError(
                    f"cannot replace service {service.name!r}: "
                    f"{', '.join(repr(h) for h in holders)} still depend(s) "
                    f"on the attached instance; detach them first"
                )
            self.detach(predecessor)

        ctx = ServiceContext(self.net, service, self)
        service._ctx = ctx
        try:
            service.on_attach(ctx)
            for node in list(self.net.nodes.values()):
                ctx.install_node(node)
            service.on_ready(ctx)
        except Exception:
            self._unwire(service, ctx)
            # Dependencies a factory attached during on_attach are fully
            # wired (hooks and all); roll them back too, or a failed
            # with_compute would silently leave storage/discovery behind.
            self._detach_spawned(ctx)
            raise
        # Recorded only now, so dependencies a factory attached during
        # on_attach sit earlier in the order and detach_all (reverse order)
        # tears the dependent down first (compute before storage).
        self.services[service.name] = service
        self.order.append(service.name)
        self.net.add_node_hook(ctx._on_join, retroactive=False)
        self.net.add_leave_hook(ctx._on_leave)
        self.net.add_revive_hook(ctx._on_revive)
        return service

    # --------------------------------------------------------------- detach
    def _unwire(self, service: Service, ctx: ServiceContext) -> None:
        """Shared teardown: registry sweep + bookkeeping removal."""
        for registry in self.registries.values():
            registry.teardown_service(service.name)
        ctx.timers.stop_all()
        if self.services.get(service.name) is service:
            del self.services[service.name]
            self.order.remove(service.name)
        # Drop this service's dependency edges in both directions.
        self.dependents.pop(service.name, None)
        for holders in self.dependents.values():
            holders.discard(service.name)
        service._ctx = None

    def _detach_spawned(self, ctx: ServiceContext) -> None:
        """Detach dependencies *ctx*'s service spawned — except any that
        another still-attached service depends on (the same hazard the
        replacement guard refuses: they would be left driving a detached
        instance whose handlers are gone)."""
        for dep in reversed(ctx.spawned):
            if not dep.attached or self.services.get(dep.name) is not dep:
                continue
            holders = [d for d in self.dependents.get(dep.name, ())
                       if d in self.services]
            if holders:
                continue  # shared dependency: its other users keep it alive
            self.detach(dep)

    def detach(self, service: Service) -> None:
        """Registry-owned teardown of *service* (idempotent)."""
        ctx = service._ctx
        if ctx is None or ctx.state is not self:
            return
        self.net.remove_node_hook(ctx._on_join)
        self.net.remove_leave_hook(ctx._on_leave)
        self.net.remove_revive_hook(ctx._on_revive)
        self._unwire(service, ctx)
        service.on_detach()
        self._detach_spawned(ctx)

    def detach_all(self) -> None:
        """Detach every service, newest first (reverse dependency order)."""
        for name in reversed(list(self.order)):
            svc = self.services.get(name)
            if svc is not None:
                self.detach(svc)


def attach_service(net: "TreePNetwork", service: Service) -> Service:
    """Attach *service* to *net*'s service plane (the legacy shims' path)."""
    return ClusterState.of(net).attach(service)
