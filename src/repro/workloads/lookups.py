"""Lookup traffic generation.

The paper's batches are uniform random (origin, target) pairs over the
surviving population.  Real P2P request streams are skewed, so a Zipf mode
is provided for the service-layer examples and ablations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Sequence, Tuple

import numpy as np

PairMode = Literal["uniform", "zipf-targets"]


@dataclass
class LookupWorkload:
    """Generator of (origin, target) pairs over a node population.

    Parameters
    ----------
    rng:
        Randomness source (use a dedicated substream).
    mode:
        ``uniform`` — both endpoints uniform, distinct (the paper's setup).
        ``zipf-targets`` — origins uniform, targets Zipf-ranked so a few
        nodes are hot (service workloads).
    zipf_s:
        Zipf exponent for the skewed mode.
    """

    rng: np.random.Generator
    mode: PairMode = "uniform"
    zipf_s: float = 1.2

    def pairs(self, population: Sequence[int], count: int) -> List[Tuple[int, int]]:
        """Draw *count* (origin, target) pairs with origin != target."""
        pop = list(population)
        if len(pop) < 2:
            raise ValueError("population must have at least 2 nodes")
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")

        out: List[Tuple[int, int]] = []
        n = len(pop)
        if self.mode == "uniform":
            while len(out) < count:
                idx = self.rng.integers(0, n, size=2 * (count - len(out)) + 4)
                for a, b in zip(idx[::2], idx[1::2]):
                    if a != b:
                        out.append((pop[int(a)], pop[int(b)]))
                        if len(out) == count:
                            break
            return out

        if self.mode == "zipf-targets":
            ranks = np.arange(1, n + 1, dtype=float)
            weights = ranks ** (-self.zipf_s)
            weights /= weights.sum()
            # Stable hot set: rank order is the population order (callers
            # shuffle if they want a different hot set).
            targets = self.rng.choice(n, size=count, p=weights)
            origins = self.rng.integers(0, n, size=count)
            for o, t in zip(origins, targets):
                o = int(o)
                t = int(t)
                if o == t:
                    o = (o + 1) % n
                out.append((pop[o], pop[t]))
            return out

        raise ValueError(f"unknown mode {self.mode!r}")
