"""Churn schedules beyond the paper's no-repair failure sweep.

§VI plans "various churn rates" on Grid-5000; :class:`ChurnSchedule` is the
declarative version: a sequence of timed join/leave events, either scripted
or sampled from session/downtime distributions, replayable onto a network.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Literal, Sequence

import numpy as np

EventKind = Literal["leave", "rejoin"]


@dataclass(frozen=True)
class ChurnEvent:
    time: float
    kind: EventKind
    node: int


@dataclass
class ChurnSchedule:
    """A precomputed, sorted list of churn events."""

    events: List[ChurnEvent] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.events.sort(key=lambda e: e.time)

    def __iter__(self) -> Iterator[ChurnEvent]:
        return iter(self.events)

    def __len__(self) -> int:
        return len(self.events)

    def until(self, t: float) -> List[ChurnEvent]:
        return [e for e in self.events if e.time <= t]

    @staticmethod
    def sampled(
        population: Sequence[int],
        rng: np.random.Generator,
        duration: float,
        mean_uptime: float = 300.0,
        mean_downtime: float = 60.0,
    ) -> "ChurnSchedule":
        """Exponential on/off sessions for every node over *duration*.

        Nodes start up; leave after Exp(mean_uptime); rejoin after
        Exp(mean_downtime); repeat.  The classic P2P churn model.
        """
        if duration <= 0:
            raise ValueError("duration must be > 0")
        if mean_uptime <= 0 or mean_downtime <= 0:
            raise ValueError("mean_uptime and mean_downtime must be > 0")
        events: List[ChurnEvent] = []
        for node in population:
            t = float(rng.exponential(mean_uptime))
            up = True
            while t < duration:
                events.append(ChurnEvent(time=t, kind="leave" if up else "rejoin", node=node))
                t += float(rng.exponential(mean_downtime if up else mean_uptime))
                up = not up
        return ChurnSchedule(events=events)

    def churn_rate(self, duration: float) -> float:
        """Leave events per node-second (a scalar intensity measure)."""
        if duration <= 0:
            raise ValueError("duration must be > 0")
        leaves = sum(1 for e in self.events if e.kind == "leave")
        nodes = len({e.node for e in self.events}) or 1
        return leaves / (nodes * duration)
