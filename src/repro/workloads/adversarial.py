"""Adversarial workload plans: rack failures, stragglers, partition cuts.

The propagation physics (how a cut blocks datagrams, how a straggler
slows a link) lives in :mod:`repro.sim.conditions`; this module makes the
*topology* decisions — which overlay subtree counts as a rack, which
address sets end up on each side of a cut, who runs slow — from nothing
but a ``topology_snapshot()`` mapping (``{node: parent, root: -1}``) and
a dedicated RNG stream.  Like :mod:`repro.workloads.churn` it is purely
declarative (no sim import): plans are values a driver replays onto a
cluster, so the same plan can feed a scenario, a test, or a campaign.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.workloads.churn import ChurnEvent, ChurnSchedule

__all__ = [
    "PartitionPlan",
    "RackFailurePlan",
    "StragglerPlan",
    "children_map",
    "subtree_members",
    "subtree_in_span",
    "subtree_partition_plan",
    "rack_failure_plan",
    "straggler_plan",
]


def children_map(topology: Mapping[int, int]) -> Dict[int, List[int]]:
    """Invert a ``{node: parent}`` snapshot into sorted child lists."""
    children: Dict[int, List[int]] = {}
    for node in sorted(topology):
        parent = topology[node]
        if parent >= 0:
            children.setdefault(parent, []).append(node)
    return children


def subtree_members(topology: Mapping[int, int], root: int) -> List[int]:
    """Every node in the subtree rooted at *root* (inclusive), sorted."""
    if root not in topology:
        raise ValueError(f"node {root} not in topology")
    children = children_map(topology)
    members: List[int] = []
    frontier = [root]
    while frontier:
        node = frontier.pop()
        members.append(node)
        frontier.extend(children.get(node, ()))
    return sorted(members)


def _internal_nodes(topology: Mapping[int, int]) -> List[int]:
    """Nodes with at least one child, excluding the overlay root (killing
    the root's subtree is the whole network, not a rack)."""
    children = children_map(topology)
    return sorted(n for n in children if topology.get(n, -1) >= 0)


def subtree_in_span(
    topology: Mapping[int, int],
    rng: np.random.Generator,
    lo: float,
    hi: float,
) -> int:
    """Pick an internal non-root node whose subtree covers a fraction of
    the population within ``[lo, hi]`` — the "one rack, but not half the
    overlay" cut used by partition scenarios.  Candidates are visited in
    a *rng*-permuted order; if none lands in the span, the nearest miss
    is returned (small topologies may only offer leaves-plus-everything).
    """
    if not 0.0 <= lo <= hi:
        raise ValueError(f"need 0 <= lo <= hi, got [{lo}, {hi}]")
    candidates = _internal_nodes(topology)
    if not candidates:
        raise ValueError("topology has no internal non-root nodes")
    population = len(topology)
    order = [candidates[i] for i in rng.permutation(len(candidates))]
    best, best_err = order[0], float("inf")
    for root in order:
        frac = len(subtree_members(topology, root)) / population
        if lo <= frac <= hi:
            return root
        err = (lo - frac) if frac < lo else (frac - hi)
        if err < best_err:
            best, best_err = root, err
    return best


@dataclass(frozen=True)
class RackFailurePlan:
    """Correlated kill-set: whole subtrees instead of a random sample.

    ``racks`` are disjoint subtree member tuples in kill order;
    :attr:`victims` flattens them.  ``fraction`` is the *achieved* kill
    fraction over the snapshot population (the plan stops adding racks
    once the target is met, so it can overshoot by at most one rack).
    """

    racks: Tuple[Tuple[int, ...], ...]
    population: int
    fraction: float

    @property
    def victims(self) -> Tuple[int, ...]:
        return tuple(n for rack in self.racks for n in rack)

    def as_schedule(self, start: float, spacing: float) -> ChurnSchedule:
        """One leave event per victim, racks staggered ``spacing`` apart
        (members of one rack fail at the same instant — that is the
        correlation)."""
        events = [ChurnEvent(time=start + i * spacing, kind="leave", node=n)
                  for i, rack in enumerate(self.racks) for n in rack]
        return ChurnSchedule(events=events)


def rack_failure_plan(
    topology: Mapping[int, int],
    rng: np.random.Generator,
    fraction: float,
    max_rack_span: Optional[float] = 0.5,
) -> RackFailurePlan:
    """Pick disjoint overlay subtrees ("racks") until at least
    ``fraction`` of the snapshot population is covered.

    Candidate racks are the subtrees under internal non-root nodes,
    visited in a *rng*-permuted order; a candidate overlapping an
    already-chosen rack, or spanning more than ``max_rack_span`` of the
    population (a cap that keeps one giant subtree from trivially being
    "the failure"), is skipped.  When the candidates run dry before the
    target, leaves are drafted as single-node racks so ``fraction=1.0``
    and leaf-heavy topologies still terminate.
    """
    if not topology:
        raise ValueError("topology is empty")
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    population = len(topology)
    target = int(np.ceil(fraction * population))
    cap = population if max_rack_span is None else max(
        1, int(max_rack_span * population))

    candidates = _internal_nodes(topology)
    order = [candidates[i] for i in rng.permutation(len(candidates))]
    chosen: List[Tuple[int, ...]] = []
    covered: set = set()
    for root in order:
        if len(covered) >= target:
            break
        members = subtree_members(topology, root)
        if len(members) > cap or covered.intersection(members):
            continue
        chosen.append(tuple(members))
        covered.update(members)
    if len(covered) < target:
        spares = [n for n in sorted(topology) if n not in covered]
        order = [spares[i] for i in rng.permutation(len(spares))]
        for node in order:
            if len(covered) >= target:
                break
            chosen.append((node,))
            covered.add(node)
    return RackFailurePlan(racks=tuple(chosen), population=population,
                           fraction=len(covered) / population)


@dataclass(frozen=True)
class StragglerPlan:
    """A victim set and how much slower its links run."""

    victims: Tuple[int, ...]
    factor: float

    @property
    def victim_set(self) -> frozenset:
        return frozenset(self.victims)


def straggler_plan(
    population: Sequence[int],
    rng: np.random.Generator,
    fraction: float,
    factor: float,
) -> StragglerPlan:
    """Draw ``ceil(fraction * len(population))`` stragglers uniformly."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if factor < 1.0:
        raise ValueError(f"factor must be >= 1, got {factor}")
    pool = sorted(int(n) for n in population)
    count = int(np.ceil(fraction * len(pool))) if pool else 0
    picks = (rng.choice(len(pool), size=count, replace=False)
             if count else np.empty(0, dtype=int))
    return StragglerPlan(victims=tuple(sorted(pool[i] for i in picks)),
                         factor=float(factor))


@dataclass(frozen=True)
class PartitionPlan:
    """A timed cut between two address sets, ready for
    ``NetworkConditions.schedule`` (or a manual cut/heal pair)."""

    a: Tuple[int, ...]
    b: Tuple[int, ...]
    start: float
    duration: float
    bidirectional: bool = True
    name: str = ""

    @property
    def heal_time(self) -> float:
        return self.start + self.duration


def subtree_partition_plan(
    topology: Mapping[int, int],
    root: int,
    start: float,
    duration: float,
    *,
    bidirectional: bool = True,
    name: str = "",
) -> PartitionPlan:
    """Cut the subtree under *root* off from the rest of the overlay —
    the canonical rack-uplink failure."""
    inside = subtree_members(topology, root)
    inside_set = set(inside)
    outside = sorted(n for n in topology if n not in inside_set)
    if not outside:
        raise ValueError(f"subtree at {root} spans the whole topology")
    return PartitionPlan(a=tuple(inside), b=tuple(outside), start=start,
                         duration=duration, bidirectional=bidirectional,
                         name=name or f"subtree-{root}")
