"""Named capacity mixes for experiment populations.

The paper's variable-``nc`` case keys everything on node heterogeneity;
these presets give experiments reproducible, recognisable mixes.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.core.capacity import CapacityDistribution, NodeCapacity


def homogeneous_mix(n: int, cpu: float = 2.0) -> List[NodeCapacity]:
    """Identical peers — isolates topology effects from heterogeneity."""
    if n <= 0:
        raise ValueError(f"n must be > 0, got {n}")
    return [NodeCapacity(cpu=cpu, memory_gb=4.0, bandwidth_mbps=20.0,
                         storage_gb=100.0, uptime_hours=24.0)] * n


def measured_p2p_mix(n: int, rng: np.random.Generator) -> List[NodeCapacity]:
    """The default heterogeneous population (see CapacityDistribution)."""
    return CapacityDistribution(rng).sample_many(n)


def grid_cluster_mix(
    n: int,
    rng: np.random.Generator,
    server_fraction: float = 0.1,
) -> List[NodeCapacity]:
    """A DGET-style grid: a stable server core plus desktop edge nodes.

    Servers: many cores, fat pipes, long uptime, low load.  Desktops: the
    measured-P2P shape.  The bimodality is what makes capacity-aware
    promotion visibly useful — servers should dominate the upper layers.
    """
    if not 0.0 <= server_fraction <= 1.0:
        raise ValueError(f"server_fraction must be in [0,1], got {server_fraction}")
    n_servers = int(round(server_fraction * n))
    out: List[NodeCapacity] = []
    for _ in range(n_servers):
        out.append(
            NodeCapacity(
                cpu=float(rng.choice([16, 32, 64])),
                memory_gb=float(rng.choice([64, 128, 256])),
                bandwidth_mbps=float(rng.uniform(500, 2000)),
                storage_gb=float(rng.uniform(1000, 10000)),
                uptime_hours=float(rng.uniform(500, 5000)),
                cpu_load=float(rng.beta(1.5, 8)),
                net_load=float(rng.beta(1.5, 8)),
            )
        )
    dist = CapacityDistribution(rng)
    out.extend(dist.sample() for _ in range(n - n_servers))
    perm = rng.permutation(len(out))
    return [out[int(i)] for i in perm]
