"""Grid job traffic: arrival processes, mixed demands, DAG batches.

:class:`JobWorkload` draws :class:`~repro.compute.job.JobSpec` streams the
way :class:`~repro.workloads.storage.StorageWorkload` draws PUT/GET
streams: a Poisson arrival process over jobs with discrete CPU-demand
classes and log-normal work sizes, an optional fraction carrying
minimum-capability constraints, plus layered DAG batches (every job in
layer *i* depends on every job in layer *i-1* — the fan-out/fan-in shape
of a staged grid computation).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.compute.job import JobSpec
from repro.services.discovery import Constraint


@dataclass
class JobWorkload:
    """Generator of seeded grid-job streams.

    Parameters
    ----------
    rng:
        Randomness source (use a dedicated substream).
    arrival_rate:
        Mean job arrivals per virtual second (exponential inter-arrivals).
    demand_classes / demand_weights:
        Discrete CPU-demand mix (share units), sampled per job.
    work_mean / work_sigma:
        Log-normal work size (virtual seconds of unit-rate compute).
    constrained_fraction:
        Probability a job carries a minimum-capability constraint drawn
        from :attr:`constraint_pool`.
    """

    rng: np.random.Generator
    arrival_rate: float = 0.5
    demand_classes: Sequence[float] = (0.5, 1.0, 2.0)
    demand_weights: Sequence[float] = (0.5, 0.35, 0.15)
    work_mean: float = 20.0
    work_sigma: float = 0.5
    constrained_fraction: float = 0.25
    constraint_pool: Sequence[Constraint] = (
        Constraint(min_cpu=2.0),
        Constraint(min_memory_gb=4.0),
        Constraint(min_cpu=2.0, min_bandwidth_mbps=20.0),
    )
    _ids: "itertools.count" = field(default_factory=lambda: itertools.count(1),
                                    repr=False)

    def __post_init__(self) -> None:
        if self.arrival_rate <= 0:
            raise ValueError(f"arrival_rate must be > 0, got {self.arrival_rate}")
        if len(self.demand_classes) != len(self.demand_weights):
            raise ValueError("demand_classes and demand_weights must align")
        if any(d <= 0 for d in self.demand_classes):
            raise ValueError("demand classes must be > 0")
        if not 0.0 <= self.constrained_fraction <= 1.0:
            raise ValueError("constrained_fraction must be in [0, 1]")
        if self.work_mean <= 0:
            raise ValueError(f"work_mean must be > 0, got {self.work_mean}")

    # ------------------------------------------------------------- sampling
    def _demand(self) -> float:
        w = np.asarray(self.demand_weights, dtype=float)
        idx = int(self.rng.choice(len(self.demand_classes), p=w / w.sum()))
        return float(self.demand_classes[idx])

    def _work(self) -> float:
        mu = np.log(self.work_mean) - 0.5 * self.work_sigma ** 2
        return float(max(1.0, self.rng.lognormal(mu, self.work_sigma)))

    def _constraint(self) -> Constraint:
        if self.rng.random() >= self.constrained_fraction:
            return Constraint()
        return self.constraint_pool[int(self.rng.integers(0, len(self.constraint_pool)))]

    def jobs(self, count: int, start: float = 0.0) -> List[JobSpec]:
        """Draw *count* independent jobs with Poisson arrivals from *start*."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        t = start
        out: List[JobSpec] = []
        for _ in range(count):
            t += float(self.rng.exponential(1.0 / self.arrival_rate))
            out.append(JobSpec(
                job_id=next(self._ids),
                cpu_demand=self._demand(),
                work=self._work(),
                constraint=self._constraint(),
                submit_at=t,
            ))
        return out

    def dag_batch(
        self,
        layers: Sequence[int],
        submit_at: float = 0.0,
        work: Optional[float] = None,
    ) -> List[JobSpec]:
        """A layered DAG: ``layers[i]`` jobs, each depending on all of
        layer ``i-1`` (fan-out then fan-in when widths shrink).

        The whole batch is submitted at *submit_at* — ordering is enforced
        by the scheduler's dependency tracking, not by arrival times.
        """
        if not layers or any(w < 1 for w in layers):
            raise ValueError("layers must be a non-empty sequence of >= 1")
        out: List[JobSpec] = []
        prev: Tuple[int, ...] = ()
        for width in layers:
            ids = [next(self._ids) for _ in range(width)]
            for jid in ids:
                out.append(JobSpec(
                    job_id=jid,
                    cpu_demand=self._demand(),
                    work=work if work is not None else self._work(),
                    deps=prev,
                    submit_at=submit_at,
                ))
            prev = tuple(ids)
        return out
