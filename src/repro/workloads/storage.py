"""Mixed read/write storage traffic with durability accounting.

:class:`StorageWorkload` draws a stream of PUT/GET operations over a fixed
keyspace (uniform or Zipf-skewed key popularity, configurable read
fraction); :func:`run_storage_ops` replays the stream against a
:class:`~repro.storage.quorum.ReplicatedStore` and keeps the client-side
truth — the last acknowledged value per key — so the run's stats separate
*misses* (key readable nowhere) from *stale reads* (an older acknowledged
value surfaced), the distinction the quorum-overlap guarantee is about.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Literal, Optional, Sequence, TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.quorum import ReplicatedStore

OpKind = Literal["put", "get"]
KeyMode = Literal["uniform", "zipf"]


@dataclass(frozen=True)
class StorageOp:
    """One client operation."""

    kind: OpKind
    key: str
    value: Any = None


@dataclass
class StorageWorkload:
    """Generator of mixed PUT/GET streams over a bounded keyspace.

    Parameters
    ----------
    rng:
        Randomness source (use a dedicated substream).
    keyspace:
        Number of distinct keys (``k/0000`` … style).
    read_fraction:
        Probability an operation is a GET.
    key_mode:
        ``uniform`` — keys equally popular. ``zipf`` — rank-skewed
        popularity (hot keys), exponent :attr:`zipf_s`.
    """

    rng: np.random.Generator
    keyspace: int = 64
    read_fraction: float = 0.5
    key_mode: KeyMode = "uniform"
    zipf_s: float = 1.2
    key_prefix: str = "k"

    def __post_init__(self) -> None:
        if self.keyspace < 1:
            raise ValueError(f"keyspace must be >= 1, got {self.keyspace}")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ValueError(
                f"read_fraction must be in [0, 1], got {self.read_fraction}")

    def key(self, index: int) -> str:
        return f"{self.key_prefix}/{index:05d}"

    def keys(self) -> List[str]:
        return [self.key(i) for i in range(self.keyspace)]

    def seed_ops(self) -> List[StorageOp]:
        """One initial PUT per key, so GETs never race an empty store."""
        return [StorageOp("put", self.key(i), f"v0/{i}")
                for i in range(self.keyspace)]

    def ops(self, count: int) -> List[StorageOp]:
        """Draw *count* operations (reads and overwriting writes)."""
        if count <= 0:
            raise ValueError(f"count must be > 0, got {count}")
        if self.key_mode == "uniform":
            idx = self.rng.integers(0, self.keyspace, size=count)
        elif self.key_mode == "zipf":
            ranks = np.arange(1, self.keyspace + 1, dtype=float)
            weights = ranks ** (-self.zipf_s)
            weights /= weights.sum()
            idx = self.rng.choice(self.keyspace, size=count, p=weights)
        else:
            raise ValueError(f"unknown key_mode {self.key_mode!r}")
        reads = self.rng.random(count) < self.read_fraction
        out: List[StorageOp] = []
        for seq, (i, is_read) in enumerate(zip(idx, reads)):
            key = self.key(int(i))
            if is_read:
                out.append(StorageOp("get", key))
            else:
                out.append(StorageOp("put", key, f"v{seq + 1}/{int(i)}"))
        return out


@dataclass
class StorageRunStats:
    """What one replayed stream observed, with durability accounting."""

    puts: int = 0
    put_ok: int = 0
    gets: int = 0
    hits: int = 0
    stale_reads: int = 0
    misses: int = 0
    #: GETs that missed because the key was never acknowledged (not a
    #: durability violation — there was nothing to lose).
    misses_unwritten: int = 0
    quorum_degraded: int = 0
    #: Client-side truth: last acknowledged value per key.
    written: Dict[str, Any] = field(default_factory=dict)

    @property
    def durability(self) -> float:
        """Fraction of GETs on acknowledged keys that returned a value."""
        expected = self.gets - self.misses_unwritten
        return 1.0 if expected <= 0 else (self.hits + self.stale_reads) / expected


def run_storage_ops(
    store: "ReplicatedStore",
    ops: Sequence[StorageOp],
    rng: Optional[np.random.Generator] = None,
    via_pool: Optional[Sequence[int]] = None,
) -> StorageRunStats:
    """Replay *ops* against *store*, issuing each from a (random) live node.

    ``via_pool`` restricts the client entry points; with *rng* the entry
    point is sampled per op, otherwise ops round-robin over the pool.
    """
    stats = StorageRunStats()
    pool = list(via_pool) if via_pool is not None else None

    def pick_via(i: int) -> Optional[int]:
        if pool is None:
            return None
        if rng is not None:
            return pool[int(rng.integers(0, len(pool)))]
        return pool[i % len(pool)]

    for i, op in enumerate(ops):
        via = pick_via(i)
        if op.kind == "put":
            stats.puts += 1
            r = store.put(op.key, op.value, via=via)
            if r.ok:
                stats.put_ok += 1
                stats.written[op.key] = op.value
        else:
            stats.gets += 1
            r = store.get(op.key, via=via)
            if not r.quorum_met:
                stats.quorum_degraded += 1
            expected = stats.written.get(op.key)
            if r.found:
                if expected is None or r.value == expected:
                    stats.hits += 1
                else:
                    stats.stale_reads += 1
            else:
                stats.misses += 1
                if expected is None:
                    stats.misses_unwritten += 1
    return stats
