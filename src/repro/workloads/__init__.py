"""Workload generators: lookup traffic, churn schedules, capacity mixes,
mixed read/write storage streams, grid job arrivals and DAG batches, plus
adversarial plans (rack failures, stragglers, partition cuts)."""

from repro.workloads.adversarial import (
    PartitionPlan,
    RackFailurePlan,
    StragglerPlan,
    children_map,
    rack_failure_plan,
    straggler_plan,
    subtree_members,
    subtree_partition_plan,
)
from repro.workloads.capacities import (
    grid_cluster_mix,
    homogeneous_mix,
    measured_p2p_mix,
)
from repro.workloads.jobs import JobWorkload
from repro.workloads.lookups import LookupWorkload
from repro.workloads.churn import ChurnSchedule
from repro.workloads.storage import (
    StorageOp,
    StorageRunStats,
    StorageWorkload,
    run_storage_ops,
)

__all__ = [
    "ChurnSchedule",
    "JobWorkload",
    "LookupWorkload",
    "PartitionPlan",
    "RackFailurePlan",
    "StorageOp",
    "StorageRunStats",
    "StorageWorkload",
    "StragglerPlan",
    "children_map",
    "grid_cluster_mix",
    "homogeneous_mix",
    "measured_p2p_mix",
    "rack_failure_plan",
    "run_storage_ops",
    "straggler_plan",
    "subtree_members",
    "subtree_partition_plan",
]
