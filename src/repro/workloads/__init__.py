"""Workload generators: lookup traffic, churn schedules, capacity mixes,
mixed read/write storage streams, grid job arrivals and DAG batches."""

from repro.workloads.capacities import (
    grid_cluster_mix,
    homogeneous_mix,
    measured_p2p_mix,
)
from repro.workloads.jobs import JobWorkload
from repro.workloads.lookups import LookupWorkload
from repro.workloads.churn import ChurnSchedule
from repro.workloads.storage import (
    StorageOp,
    StorageRunStats,
    StorageWorkload,
    run_storage_ops,
)

__all__ = [
    "ChurnSchedule",
    "JobWorkload",
    "LookupWorkload",
    "StorageOp",
    "StorageRunStats",
    "StorageWorkload",
    "grid_cluster_mix",
    "homogeneous_mix",
    "measured_p2p_mix",
    "run_storage_ops",
]
