"""Workload generators: lookup traffic, churn schedules, capacity mixes."""

from repro.workloads.capacities import (
    grid_cluster_mix,
    homogeneous_mix,
    measured_p2p_mix,
)
from repro.workloads.lookups import LookupWorkload
from repro.workloads.churn import ChurnSchedule

__all__ = [
    "ChurnSchedule",
    "LookupWorkload",
    "grid_cluster_mix",
    "homogeneous_mix",
    "measured_p2p_mix",
]
