"""Anti-entropy: churn-driven re-replication.

Node departures shrink replica sets silently — the quorum path only ever
touches keys that are read or written.  The :class:`AntiEntropy` task closes
the gap: a periodic sweep (registered with the simulator's timer wheel, like
the keep-alive loops in :mod:`repro.core.maintenance`) that

1. catalogues every key held by a **live** node,
2. resolves the freshest ``(version, writer)`` copy per key,
3. compares the live holder set against the placement strategy's ideal
   (:meth:`~repro.storage.replication.PlacementStrategy.repair_targets`), and
4. pushes the freshest copy to targets that lack it — as real
   :class:`~repro.core.messages.StoreReplicate` datagrams through the
   fabric, so re-replication traffic shows up in the network counters the
   benches read.

The sweep itself is the *converged-view* half (mirroring
:mod:`repro.core.repair`'s converged mode): detection uses global liveness,
repair happens with protocol messages.  Rejoined nodes holding stale
versions are overwritten the same way (the sweep pushes to any target whose
stamp is dominated), complementing per-read repair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cluster.registry import attach_service
from repro.cluster.service import (
    Service,
    ServiceContext,
    ServiceError,
    warn_direct_wire,
)
from repro.core.messages import StoreReplicate
from repro.metrics.durability import DurabilityTracker
from repro.storage.quorum import REPAIR_RID, ReplicatedStore
from repro.storage.store import VersionedValue

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import PeriodicTimer


@dataclass(frozen=True)
class SweepReport:
    """Outcome of one anti-entropy pass."""

    time: float
    keys: int
    under_replicated: int
    repairs_sent: int
    lost: int

    @property
    def clean(self) -> bool:
        """Nothing to do: every key fully replicated, nothing lost."""
        return self.repairs_sent == 0 and self.lost == 0


class AntiEntropy(Service):
    """Periodic re-replication maintenance for a :class:`ReplicatedStore`.

    As a :class:`~repro.cluster.service.Service` the sweep timer registers
    through the service context, so detaching the service (or shutting a
    :class:`~repro.cluster.Cluster` down) cancels it even when the caller
    forgot :meth:`stop`.  Construct through
    ``Cluster.with_storage(anti_entropy=interval)``; ``AntiEntropy(store)``
    still works and resolves the store dependency directly.
    """

    name = "anti-entropy"

    def __init__(
        self,
        store: Optional[ReplicatedStore] = None,
        interval: float = 30.0,
        tracker: Optional[DurabilityTracker] = None,
    ) -> None:
        super().__init__()
        if interval <= 0:
            raise ValueError(f"interval must be > 0, got {interval}")
        self.store = store
        self.interval = interval
        self.tracker = tracker
        if self.tracker is None and store is not None:
            self.tracker = DurabilityTracker(n_target=store.quorum.n)
        self.reports: List[SweepReport] = []
        self._timer: Optional["PeriodicTimer"] = None
        if store is not None and store.attached:
            warn_direct_wire(
                "AntiEntropy(store, ...) on an attached store",
                "Cluster.with_storage(..., anti_entropy=interval)",
            )
            attach_service(store.net, self)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        if self.store is None:
            self.store = ctx.require("storage")  # type: ignore[assignment]
        else:
            if not self.store.attached:
                # Injected new-style (detached) store: wire it to the same
                # network, or the first sweep would find no agents at all.
                attach_service(ctx.net, self.store)
            ctx.depends_on(self.store)
        if self.tracker is None:
            self.tracker = DurabilityTracker(n_target=self.store.quorum.n)

    def on_detach(self) -> None:
        self.stop()

    def _resolved_store(self) -> ReplicatedStore:
        """The attached store this task sweeps — loud failure otherwise
        (an unattached store has no agents: a sweep over it would report
        'healthy' while repairing nothing)."""
        if self.store is None or not self.store.attached:
            raise ServiceError(
                "anti-entropy has no attached store: construct it through "
                "Cluster.with_storage(..., anti_entropy=interval) or attach "
                "it (and its store) with add_service first"
            )
        return self.store

    # ------------------------------------------------------------ scheduling
    @property
    def running(self) -> bool:
        return self._timer is not None and self._timer.running

    def start(self) -> None:
        """Arm the periodic sweep on the network's simulator."""
        if self.running:
            return
        if self.attached:
            self._timer = self.ctx.every(self.interval, self.sweep,
                                         label="anti-entropy")
        else:
            self._timer = self._resolved_store().net.sim.every(
                self.interval, self.sweep, label="anti-entropy"
            )

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
            self._timer = None

    # ----------------------------------------------------------------- sweep
    def _catalogue(self) -> Dict[int, Dict[int, VersionedValue]]:
        """``{key id: {live holder: copy}}`` over the current population."""
        net = self.store.net
        up = net.network.is_up
        catalog: Dict[int, Dict[int, VersionedValue]] = {}
        for ident, agent in self.store.agents.items():
            if not up(ident):
                continue
            for key_id, vv in agent.store.items():
                catalog.setdefault(key_id, {})[ident] = vv
        return catalog

    def sweep(self) -> SweepReport:
        """One detection + repair pass; returns what it found and sent."""
        store = self._resolved_store()
        net = store.net
        n = store.quorum.n
        catalog = self._catalogue()
        live = [i for i in net.ids if net.network.is_up(i)]  # hoisted per sweep

        repairs = 0
        under = 0
        for key_id, holders in catalog.items():
            freshest = max(holders.values(), key=VersionedValue.stamp)
            fresh_holders = [
                i for i, vv in holders.items() if vv.stamp() == freshest.stamp()
            ]
            if len(holders) < n:
                under += 1
            source = min(fresh_holders)
            # Always compare against the placement ideal: besides refilling
            # after departures, this follows the targets as the topology
            # grows (joins closer to the key), so routed reads keep landing
            # on holders.  Old copies are left in place (conservative:
            # extra durability over strict ownership hand-off).
            targets = store.placement.repair_targets(net, key_id, n, live)
            rep = StoreReplicate(REPAIR_RID, source, key_id,
                                 freshest.value, freshest.version,
                                 freshest.writer, freshest.timestamp)
            # Push to ideal targets missing a fresh copy, and reconcile
            # stale holders *outside* the target set too — a rejoined node
            # carrying an old value must not keep it, or a later failure
            # burst could route reads onto the stale copy.
            stale_holders = [h for h, vv in holders.items()
                             if h not in targets and freshest.dominates(vv)]
            for t in list(targets) + stale_holders:
                if t == source:
                    continue
                if freshest.dominates(holders.get(t)):
                    net.nodes[source].send(t, rep)
                    repairs += 1

        lost = sum(1 for k in store.tracked_keys if k not in catalog)
        rf_by_key = {k: len(catalog.get(k, ())) for k in store.tracked_keys}
        report = SweepReport(time=net.sim.now, keys=len(catalog),
                             under_replicated=under, repairs_sent=repairs,
                             lost=lost)
        self.reports.append(report)
        self.tracker.record(net.sim.now, rf_by_key)
        hub = net.obs
        if hub is not None:
            hub.sweep(-1, report.time, net.sim.now, len(catalog), repairs)
        return report

    #: Virtual seconds one converge pass runs to deliver its repairs — a
    #: generous multiple of the default per-hop latency ceiling.
    SETTLE = 1.0

    def converge(self, max_sweeps: int = 8) -> int:
        """Sweep-and-settle until a pass sends no repairs; returns passes run.

        Each pass's replication datagrams are delivered (the sim runs for a
        bounded :attr:`SETTLE` window — a plain ``drain()`` would never
        return while this task's own periodic timer or the overlay's
        keep-alives keep re-arming) before the next detection, so
        convergence normally takes one repairing pass plus one clean
        confirmation pass.
        """
        for i in range(1, max_sweeps + 1):
            report = self.sweep()
            self.store.net.sim.run_for(self.SETTLE)
            if report.repairs_sent == 0:
                return i
        return max_sweeps
