"""Replicated key/value storage on the TreeP overlay.

The paper (§I) notes TreeP "can be easily modified to provide Distributed
Hash Table (DHT) functionality"; this package cashes that in as a real
storage subsystem rather than a demo:

* :mod:`repro.storage.store` — per-node versioned :class:`KVStore`
  partitions with last-write-wins conflict resolution.
* :mod:`repro.storage.replication` — pluggable replica placement
  (level-0 neighbours, ID-space successors) with node-local and
  converged-view answers.
* :mod:`repro.storage.quorum` — sloppy-quorum PUT/GET (configurable
  N/W/R), per-key version counters, read repair;
  :class:`ReplicatedStore` is the client facade.
* :mod:`repro.storage.antientropy` — periodic churn-driven
  re-replication registered with the simulator.

Layer contract: this package *owns the durability of key/value data* —
replica placement, quorum semantics (N/W/R), write stamps and read
repair, and anti-entropy convergence.  As a service it may import
``repro.cluster`` (the ``Service`` protocol it implements),
``repro.core`` (key routing, node types), ``repro.sim`` (time, delivery)
and ``repro.metrics`` (durability accounting); it must not import
``repro.services`` or ``repro.compute`` — compute depends on storage for
checkpoints, never the reverse.  See ``docs/architecture.md``.
"""

from repro.storage.antientropy import AntiEntropy, SweepReport
from repro.storage.quorum import (
    QuorumConfig,
    ReplicatedStore,
    StorageAgent,
    StoreResult,
)
from repro.storage.replication import (
    Level0Placement,
    PlacementStrategy,
    SuccessorPlacement,
    make_placement,
)
from repro.storage.store import KVStore, VersionedValue, hash_key

__all__ = [
    "AntiEntropy",
    "KVStore",
    "Level0Placement",
    "PlacementStrategy",
    "QuorumConfig",
    "ReplicatedStore",
    "StorageAgent",
    "StoreResult",
    "SuccessorPlacement",
    "SweepReport",
    "VersionedValue",
    "hash_key",
    "make_placement",
]
