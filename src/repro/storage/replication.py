"""Replica placement strategies.

A strategy answers two questions:

* :meth:`~PlacementStrategy.replicas` — **node-local**: where should the
  coordinating (responsible) node place the N copies of a key, using only
  its own routing table?  This is what quorum writes use.
* :meth:`~PlacementStrategy.repair_targets` — **converged view**: given the
  network's current live population, where *should* the N copies live?
  This is what the anti-entropy sweep uses to detect and fix
  under-replication, mirroring the converged-mode healing in
  :mod:`repro.core.repair`.

Two strategies ship:

* :class:`Level0Placement` — the seed DHT's scheme: the responsible node
  plus its level-0 bus neighbours.  Cheap (the copies ride links the
  overlay already maintains) but correlated: adjacent IDs fail together
  under spatially correlated churn.
* :class:`SuccessorPlacement` — ID-space successor-style placement over the
  tessellation: the N live peers Euclidean-closest to the key.  Because the
  level-0 bus is ID-ordered, the responsible node's own neighbourhood
  usually *is* that set, so the node-local and converged answers agree once
  maintenance has healed the tables.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Protocol, Sequence, Type

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode
    from repro.core.treep import TreePNetwork


class PlacementStrategy(Protocol):
    """Where the N replicas of a key should live."""

    name: str

    def replicas(self, node: "TreePNode", key_id: int, n: int) -> List[int]:
        """Up to *n* distinct targets, the coordinator (*node*) first."""
        ...

    def repair_targets(
        self,
        net: "TreePNetwork",
        key_id: int,
        n: int,
        live: Optional[Sequence[int]] = None,
    ) -> List[int]:
        """The ideal live replica set for *key_id* given current liveness.

        *live* lets a sweep pass the precomputed live population instead of
        re-scanning it per key.
        """
        ...


def _pad_with_closest(
    out: List[int], pool: Sequence[int], key_id: int, n: int, space
) -> List[int]:
    """Extend *out* to *n* entries with the pool members closest to the key."""
    seen = set(out)
    for ident in sorted(pool, key=lambda i: (space.distance(i, key_id), i)):
        if len(out) >= n:
            break
        if ident not in seen:
            out.append(ident)
            seen.add(ident)
    return out


class Level0Placement:
    """Responsible node + its level-0 neighbours (the seed DHT's scheme)."""

    name = "level0"

    def replicas(self, node: "TreePNode", key_id: int, n: int) -> List[int]:
        space = node.config.space
        out = [node.ident]
        _pad_with_closest(out, node.table.level0, key_id, n, space)
        if len(out) < n:
            # Thin neighbourhood (bus endpoint): widen to indirect knowledge.
            _pad_with_closest(out, node.table.level0_indirect, key_id, n, space)
        return out[:n]

    def repair_targets(
        self,
        net: "TreePNetwork",
        key_id: int,
        n: int,
        live: Optional[Sequence[int]] = None,
    ) -> List[int]:
        space = net.config.space
        if live is None:
            live = [i for i in net.ids if net.network.is_up(i)]
        if not live:
            return []
        responsible = min(live, key=lambda i: (space.distance(i, key_id), i))
        out = [responsible]
        neighbours = [
            i for i in net.nodes[responsible].table.level0
            if net.network.is_up(i)
        ]
        _pad_with_closest(out, neighbours, key_id, n, space)
        if len(out) < n:
            _pad_with_closest(out, live, key_id, n, space)
        return out[:n]


class SuccessorPlacement:
    """The N peers Euclidean-closest to the key in the ID space."""

    name = "successor"

    def replicas(self, node: "TreePNode", key_id: int, n: int) -> List[int]:
        space = node.config.space
        out = [node.ident]
        pool = [e.ident for e in node.table.candidates()]
        return _pad_with_closest(out, pool, key_id, n, space)[:n]

    def repair_targets(
        self,
        net: "TreePNetwork",
        key_id: int,
        n: int,
        live: Optional[Sequence[int]] = None,
    ) -> List[int]:
        space = net.config.space
        if live is None:
            live = [i for i in net.ids if net.network.is_up(i)]
        return _pad_with_closest([], live, key_id, n, space)[:n]


_STRATEGIES: Dict[str, Type] = {
    Level0Placement.name: Level0Placement,
    SuccessorPlacement.name: SuccessorPlacement,
}


def make_placement(name_or_strategy) -> PlacementStrategy:
    """Resolve a strategy instance from a name or pass an instance through."""
    if isinstance(name_or_strategy, str):
        try:
            return _STRATEGIES[name_or_strategy]()
        except KeyError:
            raise ValueError(
                f"unknown placement strategy {name_or_strategy!r}; "
                f"choose from {sorted(_STRATEGIES)}"
            ) from None
    return name_or_strategy
