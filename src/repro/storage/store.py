"""Per-node versioned key/value state.

Every node participating in the replicated store owns one :class:`KVStore`
(replacing the ad-hoc ``kv_store`` dict the first DHT cut grafted onto
:class:`~repro.core.node.TreePNode`).  Values carry a three-part
last-write-wins stamp ``(timestamp, version, writer)``:

* **timestamp** — the (simulated) time the write was coordinated.  It
  leads the stamp because per-key version counters restart when
  coordination moves to a node that never saw the key (e.g. after the
  whole replica set died); the globally monotonic clock keeps a later
  acknowledged write dominant over any stale higher-versioned copy a
  rejoining replica may carry.
* **version** — the per-key monotonically increasing counter the
  coordinator maintains (client-visible versioning, and the tie-break
  for same-instant writes).
* **writer** — the coordinating node's id, the deterministic final
  tie-break.

Replicas merge copies last-write-wins on that stamp, so concurrent writes
converge to the same value on every replica regardless of delivery order.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple


def hash_key(key: str, extent: int) -> int:
    """Map an application key onto the overlay ID space (SHA-256)."""
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % extent


@dataclass(frozen=True)
class VersionedValue:
    """One stored value with its last-write-wins stamp."""

    value: Any
    version: int
    writer: int = -1
    timestamp: float = 0.0

    def stamp(self) -> Tuple[float, int, int]:
        """The total-order key used for conflict resolution."""
        return (self.timestamp, self.version, self.writer)

    def dominates(self, other: Optional["VersionedValue"]) -> bool:
        """True when this copy wins LWW against *other* (or fills a hole)."""
        return other is None or self.stamp() > other.stamp()


class KVStore:
    """The versioned key/value partition held by one node.

    >>> s = KVStore(owner=7)
    >>> s.apply(42, "a", version=1, writer=7)
    True
    >>> s.apply(42, "stale", version=1, writer=3)  # loses the tie-break
    False
    >>> s.get(42).value
    'a'
    """

    __slots__ = ("owner", "_data")

    def __init__(self, owner: int) -> None:
        self.owner = owner
        self._data: Dict[int, VersionedValue] = {}

    # ------------------------------------------------------------- mutation
    def apply(
        self,
        key_id: int,
        value: Any,
        version: int,
        writer: int = -1,
        timestamp: float = 0.0,
    ) -> bool:
        """Merge a copy last-write-wins; returns True when it was adopted."""
        incoming = VersionedValue(value=value, version=version, writer=writer,
                                  timestamp=timestamp)
        if incoming.dominates(self._data.get(key_id)):
            self._data[key_id] = incoming
            return True
        return False

    def drop(self, key_id: int) -> bool:
        """Remove a key outright (ownership handed off); True when present."""
        return self._data.pop(key_id, None) is not None

    def clear(self) -> None:
        self._data.clear()

    # -------------------------------------------------------------- queries
    def get(self, key_id: int) -> Optional[VersionedValue]:
        return self._data.get(key_id)

    def version_of(self, key_id: int) -> int:
        """Current version of *key_id* (0 when absent)."""
        vv = self._data.get(key_id)
        return vv.version if vv is not None else 0

    def next_version(self, key_id: int) -> int:
        """The per-key version counter a coordinating write should use."""
        return self.version_of(key_id) + 1

    def keys(self) -> List[int]:
        return list(self._data)

    def items(self) -> Iterator[Tuple[int, VersionedValue]]:
        return iter(self._data.items())

    def __contains__(self, key_id: int) -> bool:
        return key_id in self._data

    def __len__(self) -> int:
        return len(self._data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KVStore(owner={self.owner}, keys={len(self._data)})"
