"""Sloppy-quorum replication: coordinator logic and the client facade.

The write/read path is Dynamo-shaped, grafted onto TreeP routing:

1. A client injects a :class:`~repro.core.messages.StorePut` /
   :class:`~repro.core.messages.StoreGet` at any live node; the request is
   routed greedily towards the key (``greedy_key_next_hop``) until it
   reaches the **responsible node** — the live peer locally closest to the
   key in the ID space.
2. The responsible node **coordinates**: it picks the replica set from its
   placement strategy, stamps writes with the per-key version counter
   (last-write-wins, writer id as tie-break), fans out
   :class:`~repro.core.messages.StoreReplicate` / ``StoreRead`` datagrams,
   and answers the client once **W** acks / **R** replies are in (or its
   timeout fires — the *sloppy* part: the best effort achieved is
   reported, never rolled back).
3. Quorum reads return the freshest stamp seen and **read-repair** any
   replica that reported a stale or missing copy.

:class:`StorageAgent` is the per-node server side; :class:`ReplicatedStore`
is the synchronous client the examples, benches and tests drive, and it
implements the :class:`~repro.cluster.service.Service` lifecycle protocol —
each node's agent handlers are declared via
:meth:`ReplicatedStore.node_handlers` and installed/removed by the per-node
service registry (no monkey-patching, no leak on teardown).

Construct through :meth:`repro.cluster.Cluster.with_storage`; the direct
``ReplicatedStore(net, ...)`` constructor remains as a deprecation shim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Mapping, Optional, Set, Tuple

from repro.cluster.registry import attach_service
from repro.cluster.service import Handler, Service, ServiceContext, warn_direct_wire
from repro.core.lookup import greedy_key_next_hop
from repro.core.messages import (
    StoreAck,
    StoreGet,
    StoreGetResult,
    StorePut,
    StorePutResult,
    StoreRead,
    StoreReadReply,
    StoreReplicate,
)
from repro.storage.replication import PlacementStrategy, make_placement
from repro.storage.store import KVStore, VersionedValue, hash_key

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.node import TreePNode
    from repro.core.treep import TreePNetwork

#: Request id used by repair/anti-entropy replication no coordinator waits on.
REPAIR_RID = 0

#: Virtual seconds a client op runs past its reply so the request's trailing
#: datagrams land (a few times the default per-hop latency ceiling).
_SETTLE = 0.2


@dataclass(frozen=True)
class QuorumConfig:
    """Replication degree and quorum sizes.

    ``w + r > n`` makes read/write quorums overlap, so a read always sees
    the latest acknowledged write; smaller values trade consistency for
    availability (the classic sloppy-quorum dial).
    """

    n: int = 3
    w: int = 2
    r: int = 2
    timeout: float = 5.0
    #: Extra non-improving read hops allowed when a coordinator's replicas
    #: all miss (greedy local minimum after churn); 0 disables the fallback.
    #: The dial trades churn availability against miss cost: a GET of a key
    #: that exists nowhere cannot be distinguished from a stalled walk, so
    #: it explores up to this many extra coordinators before reporting the
    #: miss.  Workloads dominated by reads of nonexistent keys should lower
    #: it (or disable it on healthy networks).
    read_fallback: int = 16

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be >= 1, got {self.n}")
        if not 1 <= self.w <= self.n:
            raise ValueError(f"need 1 <= w <= n, got w={self.w}, n={self.n}")
        if not 1 <= self.r <= self.n:
            raise ValueError(f"need 1 <= r <= n, got r={self.r}, n={self.n}")
        if self.timeout <= 0:
            raise ValueError(f"timeout must be > 0, got {self.timeout}")
        if self.read_fallback < 0:
            raise ValueError(f"read_fallback must be >= 0, got {self.read_fallback}")

    @property
    def overlap(self) -> int:
        """Guaranteed intersection size of any write and read quorum."""
        return self.w + self.r - self.n

    @property
    def strict(self) -> bool:
        """True when every read quorum intersects every write quorum."""
        return self.overlap >= 1


@dataclass
class StoreResult:
    """Client-visible outcome of one quorum PUT or GET."""

    key: str
    key_id: int
    ok: bool
    value: Any = None
    version: int = 0
    replicas: Tuple[int, ...] = ()
    quorum_met: bool = False
    hops: int = 0

    @property
    def found(self) -> bool:
        """GET alias: the read resolved to a value."""
        return self.ok


@dataclass
class _PendingWrite:
    request_id: int
    origin: int
    key_id: int
    version: int
    targets: Tuple[int, ...]
    acks: Set[int]
    hops: int
    timeout_event: object = None


@dataclass
class _PendingRead:
    request_id: int
    origin: int
    key_id: int
    targets: Tuple[int, ...]
    replies: Dict[int, Optional[VersionedValue]]
    hops: int
    fallbacks: int = 0
    path: Tuple[int, ...] = ()
    timeout_event: object = None


class StorageAgent:
    """Per-node storage server: the KVStore plus coordinator state.

    Registered on a node through :meth:`TreePNode.register_handler`; one
    agent per node per :class:`ReplicatedStore`.
    """

    def __init__(
        self, node: "TreePNode", quorum: QuorumConfig, placement: PlacementStrategy
    ) -> None:
        self.node = node
        self.quorum = quorum
        self.placement = placement
        self.store = KVStore(node.ident)
        self._writes: Dict[int, _PendingWrite] = {}
        self._reads: Dict[int, _PendingRead] = {}
        #: Client-side sink: results for requests this node originated.
        self.replies: Dict[int, object] = {}
        #: Request ids the client stopped waiting for (late results dropped;
        #: insertion-ordered so the network pump can cap it).
        self.abandoned: Dict[int, None] = {}
        #: In-sim async clients: ``callbacks[rid]`` is invoked (once) with
        #: the :class:`StorePutResult` / :class:`StoreGetResult` instead of
        #: parking it in :attr:`replies`.  This is how services layered on
        #: the storage (the compute subsystem's checkpointing) issue quorum
        #: ops without pumping the simulator.
        self.callbacks: Dict[int, Callable[[Any], None]] = {}

    def handlers(self) -> Dict[type, Callable[[int, Any], None]]:
        """Declarative handler mapping; the owning service's registry
        installs it on the node (and removes it again on teardown)."""
        return {
            StorePut: self.handle_put,
            StoreGet: self.handle_get,
            StoreReplicate: self._on_replicate,
            StoreAck: self._on_ack,
            StoreRead: self._on_read,
            StoreReadReply: self._on_read_reply,
            StorePutResult: self._on_result,
            StoreGetResult: self._on_result,
        }

    # ------------------------------------------------------------- routing
    def _route(self, msg) -> bool:
        """Forward towards the key if a closer peer exists; True when sent."""
        if msg.ttl > self.node.config.ttl_max:
            return True  # drop: the client's drain ends with no reply
        nxt = greedy_key_next_hop(self.node, msg.key_id)
        if nxt is None:
            return False
        self.node.send(nxt, replace(msg, ttl=msg.ttl + 1))
        return True

    # -------------------------------------------------------------- writes
    def handle_put(self, src: int, msg: StorePut) -> None:
        if self._route(msg):
            return
        # We are the responsible node: coordinate the quorum write.  The
        # stamp leads with coordination time so this write dominates any
        # stale copy on replicas that are down right now (LWW survives a
        # per-key version-counter restart on a fresh coordinator).
        version = self.store.next_version(msg.key_id)
        now = self.node.sim.now
        self.store.apply(msg.key_id, msg.value, version,
                         writer=self.node.ident, timestamp=now)
        targets = tuple(self.placement.replicas(self.node, msg.key_id, self.quorum.n))
        pend = _PendingWrite(
            request_id=msg.request_id, origin=msg.origin, key_id=msg.key_id,
            version=version, targets=targets,
            acks={self.node.ident}, hops=msg.ttl,
        )
        rep = StoreReplicate(msg.request_id, self.node.ident, msg.key_id,
                             msg.value, version, self.node.ident, now)
        for t in targets:
            if t != self.node.ident:
                self.node.send(t, rep)
        # Like the read path: never wait for acks that can't exist when the
        # placement couldn't name w distinct targets (thin table, tiny net).
        if len(pend.acks) >= min(self.quorum.w, len(targets)):
            self._finish_write(pend)
            return
        self._writes[msg.request_id] = pend
        pend.timeout_event = self.node.sim.schedule(
            self.quorum.timeout,
            lambda: self._write_timeout(msg.request_id),
            label=f"store-put-timeout:{msg.request_id}",
        )

    def _on_replicate(self, src: int, msg: StoreReplicate) -> None:
        applied = self.store.apply(msg.key_id, msg.value, msg.version,
                                   writer=msg.writer, timestamp=msg.timestamp)
        if msg.request_id != REPAIR_RID:
            # A rejection (the replica holds a newer-stamped copy — this
            # write already lost LWW to a concurrent one) must not count
            # towards W.  Holding this exact stamp already (a repair or
            # read-repair of the same write raced the fanout here) IS
            # success, or the write would spuriously time out.
            held = self.store.get(msg.key_id)
            ok = applied or (held is not None and held.stamp()
                             == (msg.timestamp, msg.version, msg.writer))
            self.node.send(msg.coordinator, StoreAck(
                msg.request_id, msg.key_id, self.node.ident,
                self.store.version_of(msg.key_id), ok=ok))

    def _on_ack(self, src: int, msg: StoreAck) -> None:
        pend = self._writes.get(msg.request_id)
        if pend is None or not msg.ok:
            return
        pend.acks.add(msg.holder)
        if len(pend.acks) >= min(self.quorum.w, len(pend.targets)):
            del self._writes[msg.request_id]
            if pend.timeout_event is not None:
                pend.timeout_event.cancel()  # type: ignore[attr-defined]
            self._finish_write(pend)

    def _write_timeout(self, rid: int) -> None:
        pend = self._writes.pop(rid, None)
        if pend is not None:
            self._finish_write(pend)  # sloppy: report what was achieved

    def _finish_write(self, pend: _PendingWrite) -> None:
        ok = len(pend.acks) >= self.quorum.w
        self.node.send(pend.origin, StorePutResult(
            pend.request_id, pend.key_id, ok, pend.version,
            tuple(sorted(pend.acks)), pend.hops))

    # --------------------------------------------------------------- reads
    def handle_get(self, src: int, msg: StoreGet) -> None:
        if msg.ttl > self.node.config.ttl_max:
            return
        exclude = frozenset(msg.path) | {self.node.ident}
        nxt = greedy_key_next_hop(self.node, msg.key_id, exclude)
        if nxt is not None:
            self.node.send(nxt, replace(msg, ttl=msg.ttl + 1,
                                        path=msg.path + (self.node.ident,)))
            return
        targets = tuple(self.placement.replicas(self.node, msg.key_id, self.quorum.n))
        pend = _PendingRead(
            request_id=msg.request_id, origin=msg.origin, key_id=msg.key_id,
            targets=targets, replies={self.node.ident: self.store.get(msg.key_id)},
            hops=msg.ttl, fallbacks=msg.fallbacks,
            path=msg.path + (self.node.ident,),
        )
        for t in targets:
            if t != self.node.ident:
                self.node.send(t, StoreRead(msg.request_id, self.node.ident, msg.key_id))
        if self._read_complete(pend):
            self._finish_read(pend)
            return
        self._reads[msg.request_id] = pend
        pend.timeout_event = self.node.sim.schedule(
            self.quorum.timeout,
            lambda: self._read_timeout(msg.request_id),
            label=f"store-get-timeout:{msg.request_id}",
        )

    def _on_read(self, src: int, msg: StoreRead) -> None:
        vv = self.store.get(msg.key_id)
        if vv is None:
            reply = StoreReadReply(msg.request_id, msg.key_id, self.node.ident, False)
        else:
            reply = StoreReadReply(msg.request_id, msg.key_id, self.node.ident,
                                   True, vv.value, vv.version, vv.writer,
                                   vv.timestamp)
        self.node.send(msg.coordinator, reply)

    def _on_read_reply(self, src: int, msg: StoreReadReply) -> None:
        pend = self._reads.get(msg.request_id)
        if pend is None:
            return
        pend.replies[msg.holder] = (
            VersionedValue(msg.value, msg.version, msg.writer, msg.timestamp)
            if msg.found else None
        )
        if self._read_complete(pend):
            del self._reads[msg.request_id]
            if pend.timeout_event is not None:
                pend.timeout_event.cancel()  # type: ignore[attr-defined]
            self._finish_read(pend)

    def _read_complete(self, pend: _PendingRead) -> bool:
        """R *found* replies satisfy the quorum early; otherwise wait for
        every target (a quick self-miss at a coordinator that merely hasn't
        received its copy yet must not out-race the real holders' replies).
        """
        found = sum(1 for vv in pend.replies.values() if vv is not None)
        return found >= self.quorum.r or len(pend.replies) >= len(pend.targets)

    def _read_timeout(self, rid: int) -> None:
        pend = self._reads.pop(rid, None)
        if pend is not None:
            self._finish_read(pend)  # sloppy: answer from the replies we got

    def _fallback_read(self, pend: _PendingRead) -> bool:
        """Sloppy-read fallback: every replica missed, so hand the request to
        the closest *unvisited* candidate (an NGSA-style non-improving hop —
        after churn the greedy walk can stall at a local minimum that never
        heard of the key's true neighbourhood).  True when forwarded."""
        if pend.fallbacks >= self.quorum.read_fallback:
            return False
        exclude = frozenset(pend.path) | {self.node.ident}
        best = greedy_key_next_hop(self.node, pend.key_id, exclude,
                                   improving_only=False)
        if best is None:
            return False
        self.node.send(best, StoreGet(pend.request_id, pend.origin, pend.key_id,
                                      ttl=pend.hops + 1,
                                      fallbacks=pend.fallbacks + 1,
                                      path=pend.path))
        return True

    def _finish_read(self, pend: _PendingRead) -> None:
        present = [vv for vv in pend.replies.values() if vv is not None]
        freshest = max(present, key=VersionedValue.stamp, default=None)
        quorum_met = len(pend.replies) >= self.quorum.r
        if freshest is None and self._fallback_read(pend):
            return  # a downstream coordinator will answer the origin
        if freshest is not None:
            # Read repair: push the winning version to stale/missing holders.
            for holder, vv in pend.replies.items():
                if holder != self.node.ident and freshest.dominates(vv):
                    self.node.send(holder, StoreReplicate(
                        REPAIR_RID, self.node.ident, pend.key_id,
                        freshest.value, freshest.version, freshest.writer,
                        freshest.timestamp))
            self.store.apply(pend.key_id, freshest.value, freshest.version,
                             freshest.writer, freshest.timestamp)
            result = StoreGetResult(pend.request_id, pend.key_id, True,
                                    freshest.value, freshest.version,
                                    quorum_met, pend.hops)
        else:
            result = StoreGetResult(pend.request_id, pend.key_id, False,
                                    None, 0, quorum_met, pend.hops)
        self.node.send(pend.origin, result)

    # ----------------------------------------------------------- client sink
    def _on_result(self, src: int, msg) -> None:
        cb = self.callbacks.pop(msg.request_id, None)
        if cb is not None:
            cb(msg)
            return
        if self.abandoned.pop(msg.request_id, 0) is None:
            return  # the client gave up on this request long ago
        self.replies[msg.request_id] = msg


class ReplicatedStore(Service):
    """Synchronous quorum PUT/GET client against a built TreeP network.

    >>> from repro.cluster import Cluster
    >>> store = Cluster(seed=7).build(64).with_storage(
    ...     QuorumConfig(n=3, w=2, r=2)).storage
    >>> store.put("job/42", {"state": "done"}).ok
    True
    >>> store.get("job/42").value
    {'state': 'done'}
    """

    name = "storage"

    def __init__(
        self,
        net: Optional["TreePNetwork"] = None,
        quorum: Optional[QuorumConfig] = None,
        placement: PlacementStrategy | str = "successor",
    ) -> None:
        super().__init__()
        self.net: Optional["TreePNetwork"] = None
        self.quorum = quorum if quorum is not None else QuorumConfig()
        self.placement = make_placement(placement)
        self.agents: Dict[int, StorageAgent] = {}
        self._rid = itertools.count(1)
        #: key ids successfully written at least once (durability baseline).
        self.tracked_keys: Dict[int, str] = {}
        if net is not None:
            warn_direct_wire("ReplicatedStore(net, ...)", "Cluster.with_storage(...)")
            attach_service(net, self)

    # ------------------------------------------------------------ lifecycle
    def on_attach(self, ctx: ServiceContext) -> None:
        self.net = ctx.net

    def setup_node(self, node: "TreePNode") -> None:
        self.agents[node.ident] = StorageAgent(node, self.quorum, self.placement)

    def node_handlers(self, node: "TreePNode") -> Mapping[type, Handler]:
        return self.agents[node.ident].handlers()

    def close(self) -> None:
        """Tear the service down: the registry unregisters every agent's
        handlers (on current *and* rebuilt nodes — the pre-1.3 facade left
        them behind) and stops covering newly created nodes."""
        self.detach()

    def key_id(self, key: str) -> int:
        return hash_key(key, self.net.config.space.extent)

    def _await_reply(self, agent: StorageAgent, rid: int, timeout: float):
        return self.net.pump_until_reply(
            agent.replies, agent.abandoned, rid,
            timeout=timeout, settle=_SETTLE)

    def _put_deadline(self) -> float:
        """One coordination (plus routing slack)."""
        return 4 * self.quorum.timeout

    def _get_deadline(self) -> float:
        """Reads must outlive the worst sloppy-fallback chain: every
        fallback hop can burn a full read timeout on dead targets, and a
        genuine late result must not be discarded as abandoned."""
        return (self.quorum.read_fallback + 2) * self.quorum.timeout

    # ------------------------------------------------------------------ API
    def put(self, key: str, value: Any, via: Optional[int] = None) -> StoreResult:
        """Quorum write; blocks (runs the sim) until resolved or timed out."""
        node = self.net.live_origin(via)
        key_id = self.key_id(key)
        rid = next(self._rid)  # facade-unique; safe across origins
        agent = self.agents[node.ident]
        hub = self.net.obs
        if hub is not None:
            hub.storage_begin("put", rid, node.ident, self.net.sim.now)
        agent.handle_put(node.ident, StorePut(rid, node.ident, key_id, value, 0))
        reply = self._await_reply(agent, rid, self._put_deadline())
        if hub is not None:
            if reply is None:
                hub.storage_end("put", rid, self.net.sim.now, ok=False,
                                hops=0, replicas=0, timed_out=True)
            else:
                hub.storage_end("put", rid, self.net.sim.now, ok=reply.ok,
                                hops=reply.hops,
                                replicas=len(reply.replicas),
                                timed_out=False)
        if reply is None:
            return StoreResult(key=key, key_id=key_id, ok=False)
        if reply.ok:
            self.tracked_keys[key_id] = key
        return StoreResult(key=key, key_id=key_id, ok=reply.ok,
                           version=reply.version, replicas=reply.replicas,
                           quorum_met=reply.ok, hops=reply.hops)

    def get(self, key: str, via: Optional[int] = None) -> StoreResult:
        """Quorum read; blocks until the coordinator answers or times out."""
        node = self.net.live_origin(via)
        key_id = self.key_id(key)
        rid = next(self._rid)
        agent = self.agents[node.ident]
        hub = self.net.obs
        if hub is not None:
            hub.storage_begin("get", rid, node.ident, self.net.sim.now)
        agent.handle_get(node.ident, StoreGet(rid, node.ident, key_id, 0))
        reply = self._await_reply(agent, rid, self._get_deadline())
        if hub is not None:
            if reply is None:
                hub.storage_end("get", rid, self.net.sim.now, ok=False,
                                hops=0, replicas=0, timed_out=True)
            else:
                hub.storage_end("get", rid, self.net.sim.now, ok=reply.found,
                                hops=reply.hops, replicas=0,
                                timed_out=False)
        if reply is None:
            return StoreResult(key=key, key_id=key_id, ok=False)
        return StoreResult(key=key, key_id=key_id, ok=reply.found,
                           value=reply.value, version=reply.version,
                           quorum_met=reply.quorum_met, hops=reply.hops)

    # ------------------------------------------------------------ async API
    def _async_rid(self, agent: StorageAgent, on_done) -> int:
        """Allocate a request id wired for asynchronous completion."""
        rid = next(self._rid)
        if on_done is not None:
            agent.callbacks[rid] = on_done
            # Same cap as the abandoned sink: a result that never arrives
            # (its coordinator died) must not pin its closure forever.
            while len(agent.callbacks) > self.net.ABANDONED_CAP:
                agent.callbacks.pop(next(iter(agent.callbacks)))
        else:
            # Fire-and-forget: pre-abandon so the eventual result is
            # discarded instead of accreting in the reply sink.
            agent.abandoned[rid] = None
            while len(agent.abandoned) > self.net.ABANDONED_CAP:
                agent.abandoned.pop(next(iter(agent.abandoned)))
        return rid

    def put_async(
        self,
        key: str,
        value: Any,
        via: Optional[int] = None,
        on_done: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Issue a quorum write without pumping the simulator.

        For protocol code running *inside* the sim (timers, handlers): the
        write proceeds as real datagram traffic and *on_done*, when given,
        is invoked with the :class:`~repro.core.messages.StorePutResult`
        when the coordinator answers.  Returns the request id.  Unlike
        :meth:`put`, the key is not added to the durability-tracked set —
        callers that want anti-entropy accounting should use :meth:`put`.
        """
        node = self.net.live_origin(via)
        agent = self.agents[node.ident]
        rid = self._async_rid(agent, on_done)
        agent.handle_put(node.ident, StorePut(rid, node.ident, self.key_id(key), value, 0))
        return rid

    def get_async(
        self,
        key: str,
        via: Optional[int] = None,
        on_done: Optional[Callable[[Any], None]] = None,
    ) -> int:
        """Issue a quorum read without pumping the simulator (see
        :meth:`put_async`); *on_done* receives the
        :class:`~repro.core.messages.StoreGetResult`."""
        node = self.net.live_origin(via)
        agent = self.agents[node.ident]
        rid = self._async_rid(agent, on_done)
        agent.handle_get(node.ident, StoreGet(rid, node.ident, self.key_id(key), 0))
        return rid

    # ---------------------------------------------------------- diagnostics
    def replica_map(self, live_only: bool = True) -> Dict[int, List[int]]:
        """``{key id: sorted holder ids}`` across the (live) population."""
        out: Dict[int, List[int]] = {}
        for ident, agent in self.agents.items():
            if live_only and not self.net.network.is_up(ident):
                continue
            for key_id in agent.store.keys():
                out.setdefault(key_id, []).append(ident)
        for holders in out.values():
            holders.sort()
        return out

    def live_replica_count(self, key_id: int) -> int:
        up = self.net.network.is_up
        return sum(
            1 for ident, agent in self.agents.items()
            if up(ident) and key_id in agent.store
        )

    def replication_factors(self) -> Dict[int, int]:
        """Live replica count for every tracked key (0 == lost)."""
        counts = {k: 0 for k in self.tracked_keys}
        for key_id, holders in self.replica_map(live_only=True).items():
            if key_id in counts:
                counts[key_id] = len(holders)
        return counts
