"""repro — a full reproduction of *TreeP: A Tree Based P2P Network
Architecture* (Hudzia, Kechadi, Ottewill — CLUSTER 2005).

Public surface:

* :class:`~repro.cluster.Cluster` — **the recommended entry point**: one
  fluent facade building the overlay and composing services
  (``Cluster(seed=7).build(128).with_storage(...).with_compute(...)``)
  with owned construction order, cross-service dependencies and clean
  shutdown.
* :class:`~repro.cluster.Service` — the lifecycle protocol every subsystem
  implements (attach/detach, churn callbacks, declarative handler
  registration, auto-cancelled periodic tasks); subclass it to plug new
  services into the same registry.
* :class:`~repro.core.treep.TreePNetwork` — build and drive a TreeP overlay.
* :class:`~repro.core.config.TreePConfig` — all tunables; presets for the
  paper's two experimental cases.
* :class:`~repro.core.lookup.LookupAlgorithm` — G / NG / NGSA.
* :mod:`repro.services` — DHT, resource discovery and load balancing on top
  of the overlay.
* :mod:`repro.storage` — the replicated key/value subsystem: quorum
  reads/writes (:class:`~repro.storage.quorum.ReplicatedStore`), versioned
  per-node stores, and churn-driven anti-entropy re-replication.
* :mod:`repro.compute` — the grid job-execution subsystem: a message-level
  distributed scheduler (:class:`~repro.compute.scheduler.JobScheduler`)
  with aggregate-walking matchmaking, heartbeat failure detection,
  checkpointed re-execution on top of the replicated store, DAG
  dependencies and sibling work stealing.
* :mod:`repro.baselines` — Chord and flooding comparators on the same
  simulated substrate.
* :mod:`repro.experiments` — one runner per figure of the paper's §IV.
* :mod:`repro.bench` — the unified benchmark harness:
  ``python -m repro.bench run|list|compare|report|campaign`` over 23
  declarative scenarios — including the ``scale_*`` 10k-node sweeps
  behind ``docs/performance.md`` — writing versioned ``BenchResult``
  JSON to ``benchmarks/out/`` (the repo's perf trajectory); ``campaign``
  fans a scenario × params × seeds matrix across worker processes and
  aggregates mean/std/confidence-interval per metric, gated on CI
  overlap by ``compare``.
* :mod:`repro.obs` — the unified observability layer: span/event tracing
  across lookups, quorum RW, anti-entropy and job lifecycles
  (``Cluster(...).with_observability()`` or ``--trace-out`` on the bench
  CLI), a metrics registry with streaming quantile histograms, a columnar
  on-disk trace store, a cluster health engine (declarative SLO rules
  with streaming + offline evaluation, per-node/subtree health scores,
  causal critical-path analytics, Perfetto export), and ``python -m
  repro.obs summary|runs|timeline|slowest|health|slo|critpath|
  export-perfetto|export`` to query it — see ``docs/observability.md``.

See README.md for the module map ("Module map") and the per-subsystem
overviews, and ``docs/`` for the architecture, API, benchmark and performance guides;
each ``benchmarks/bench_*.py`` is a thin pytest binding onto the harness
and still prints the measured-vs-paper record it regenerates.
"""

from repro.cluster import Cluster, Service, ServiceContext, ServiceError
from repro.compute import ComputeConfig, JobResult, JobScheduler, JobSpec
from repro.core.capacity import CapacityDistribution, NodeCapacity
from repro.core.config import TreePConfig
from repro.core.ids import IdSpace
from repro.core.lookup import LookupAlgorithm, LookupResult
from repro.core.treep import TreePNetwork
from repro.obs import MetricsRegistry, ObsHub, TraceReader
from repro.storage import AntiEntropy, QuorumConfig, ReplicatedStore

__version__ = "1.9.0"

__all__ = [
    "AntiEntropy",
    "CapacityDistribution",
    "Cluster",
    "ComputeConfig",
    "IdSpace",
    "JobResult",
    "JobScheduler",
    "JobSpec",
    "LookupAlgorithm",
    "LookupResult",
    "MetricsRegistry",
    "NodeCapacity",
    "ObsHub",
    "QuorumConfig",
    "ReplicatedStore",
    "Service",
    "ServiceContext",
    "ServiceError",
    "TraceReader",
    "TreePConfig",
    "TreePNetwork",
    "__version__",
]
