"""repro — a full reproduction of *TreeP: A Tree Based P2P Network
Architecture* (Hudzia, Kechadi, Ottewill — CLUSTER 2005).

Public surface:

* :class:`~repro.core.treep.TreePNetwork` — build and drive a TreeP overlay.
* :class:`~repro.core.config.TreePConfig` — all tunables; presets for the
  paper's two experimental cases.
* :class:`~repro.core.lookup.LookupAlgorithm` — G / NG / NGSA.
* :mod:`repro.services` — DHT, resource discovery and load balancing on top
  of the overlay.
* :mod:`repro.storage` — the replicated key/value subsystem: quorum
  reads/writes (:class:`~repro.storage.quorum.ReplicatedStore`), versioned
  per-node stores, and churn-driven anti-entropy re-replication.
* :mod:`repro.baselines` — Chord and flooding comparators on the same
  simulated substrate.
* :mod:`repro.experiments` — one runner per figure of the paper's §IV.

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record.
"""

from repro.core.capacity import CapacityDistribution, NodeCapacity
from repro.core.config import TreePConfig
from repro.core.ids import IdSpace
from repro.core.lookup import LookupAlgorithm, LookupResult
from repro.core.treep import TreePNetwork
from repro.storage import AntiEntropy, QuorumConfig, ReplicatedStore

__version__ = "1.1.0"

__all__ = [
    "AntiEntropy",
    "CapacityDistribution",
    "IdSpace",
    "LookupAlgorithm",
    "LookupResult",
    "NodeCapacity",
    "QuorumConfig",
    "ReplicatedStore",
    "TreePConfig",
    "TreePNetwork",
    "__version__",
]
